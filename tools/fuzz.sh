#!/usr/bin/env bash
# Coverage-guided fuzzing driver for the libFuzzer harnesses in fuzz/
# (DESIGN.md §13). Requires clang: libFuzzer ships with clang only, so on
# gcc-only machines this script exits with instructions and the plain
# `fuzz-regression` ctest label carries replay coverage instead.
#
# Per target the script:
#   1. replays every committed fuzz/regressions/<target>/ input file by
#      file (a regression that crashes again fails fast, before fuzzing);
#   2. fuzzes for FUZZ_TIME seconds from a working corpus seeded with the
#      committed fuzz/corpus/<target>/ inputs, ASan+UBSan live;
#   3. on a crash, minimizes the artifact and dedupes it into
#      fuzz/regressions/<target>/ (named by content hash, so re-finding a
#      known crash never duplicates a file) — commit these;
#   4. merge-minimizes the working corpus back into fuzz/corpus/<target>/
#      when CORPUS_MERGE=1, keeping the committed seeds small.
#
# Usage:
#   tools/fuzz.sh                 # all targets, FUZZ_TIME seconds each
#   tools/fuzz.sh rib snapshot    # just these targets
#
# Env vars:
#   FUZZ_TIME     seconds of fuzzing per target (default 60; 0 = replay
#                 seeds + regressions only, no fuzzing — the CI smoke)
#   CORPUS_MERGE  1 = minimize the grown corpus back into fuzz/corpus/
#                 (default 0; off in CI so caches don't churn the tree)
#   BUILD_DIR     fuzz build tree (default <repo>/build-fuzz)
#   CLANG_CXX     clang++ binary to use (default clang++)
#   JOBS          parallel build jobs (default: nproc)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
FUZZ_TIME="${FUZZ_TIME:-60}"
CORPUS_MERGE="${CORPUS_MERGE:-0}"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build-fuzz}"
CLANG_CXX="${CLANG_CXX:-clang++}"
JOBS="${JOBS:-$(nproc)}"

ALL_TARGETS=(trace_corpus rib snapshot checkpoint inferences server_protocol)
TARGETS=("$@")
if [[ ${#TARGETS[@]} -eq 0 ]]; then
  TARGETS=("${ALL_TARGETS[@]}")
fi

if ! command -v "${CLANG_CXX}" > /dev/null 2>&1; then
  echo "fuzz.sh: ${CLANG_CXX} not found — libFuzzer needs clang." >&2
  echo "Install clang or run the replay coverage instead:" >&2
  echo "  ctest --test-dir build -L fuzz-regression" >&2
  exit 2
fi

echo "=== configure + build (${BUILD_DIR}) ==="
cmake -S "${REPO_ROOT}" -B "${BUILD_DIR}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_COMPILER="${CLANG_CXX}" \
  -DMAPIT_FUZZ=ON \
  ${CMAKE_EXTRA_ARGS:-} > /dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target $(printf 'fuzz_%s ' "${TARGETS[@]}")

fail=0
for target in "${TARGETS[@]}"; do
  bin="${BUILD_DIR}/fuzz/fuzz_${target}"
  seeds="${REPO_ROOT}/fuzz/corpus/${target}"
  regressions="${REPO_ROOT}/fuzz/regressions/${target}"
  work="${BUILD_DIR}/fuzz/work/${target}"
  artifacts="${BUILD_DIR}/fuzz/artifacts/${target}"
  mkdir -p "${work}" "${artifacts}" "${regressions}"

  echo "=== ${target}: replay committed regressions + seeds ==="
  replay_files=()
  for dir in "${regressions}" "${seeds}"; do
    [[ -d "${dir}" ]] || continue
    while IFS= read -r -d '' f; do replay_files+=("$f"); done \
      < <(find "${dir}" -maxdepth 1 -type f -print0 | sort -z)
  done
  if [[ ${#replay_files[@]} -gt 0 ]]; then
    if ! "${bin}" "${replay_files[@]}" > /dev/null; then
      echo "fuzz.sh: ${target}: a COMMITTED input crashes the harness" >&2
      fail=1
      continue
    fi
  fi

  if [[ "${FUZZ_TIME}" -le 0 ]]; then
    echo "=== ${target}: replay-only (FUZZ_TIME=${FUZZ_TIME}) ==="
    continue
  fi

  echo "=== ${target}: fuzz ${FUZZ_TIME}s ==="
  # Seed the working corpus (first dir receives new finds; seeds stay
  # read-only). -timeout bounds a single input; malloc_limit_mb keeps
  # decompression-bomb style inputs from taking out the machine.
  set +e
  "${bin}" "${work}" "${seeds}" \
    -max_total_time="${FUZZ_TIME}" \
    -timeout=10 \
    -rss_limit_mb=2048 -malloc_limit_mb=512 \
    -print_final_stats=1 \
    -artifact_prefix="${artifacts}/" 2>&1 | tail -20
  status=${PIPESTATUS[0]}
  set -e

  crashes=$(find "${artifacts}" -maxdepth 1 -type f \
            \( -name 'crash-*' -o -name 'timeout-*' -o -name 'oom-*' \) \
            2> /dev/null | sort)
  if [[ -n "${crashes}" ]]; then
    fail=1
    echo "fuzz.sh: ${target}: NEW findings:" >&2
    while IFS= read -r artifact; do
      # Minimize, then file under a content hash so the same crash found
      # twice lands on the same name (dedupe for free).
      minimized="${artifact}.min"
      set +e
      "${bin}" -minimize_crash=1 -runs=2000 -exact_artifact_path="${minimized}" \
        "${artifact}" > /dev/null 2>&1
      set -e
      [[ -s "${minimized}" ]] || cp "${artifact}" "${minimized}"
      hash=$(sha256sum "${minimized}" | cut -c1-16)
      dest="${regressions}/$(basename "${artifact}" | cut -d- -f1)_${hash}.bin"
      cp "${minimized}" "${dest}"
      echo "  ${dest}" >&2
    done <<< "${crashes}"
  elif [[ "${status}" -ne 0 ]]; then
    echo "fuzz.sh: ${target}: fuzzer exited ${status} without artifacts" >&2
    fail=1
  fi

  if [[ "${CORPUS_MERGE}" == "1" ]]; then
    echo "=== ${target}: merge-minimize corpus back into fuzz/corpus ==="
    merged="${BUILD_DIR}/fuzz/merged/${target}"
    rm -rf "${merged}" && mkdir -p "${merged}"
    "${bin}" -merge=1 "${merged}" "${seeds}" "${work}" > /dev/null 2>&1
    rm -f "${seeds}"/*
    cp "${merged}"/* "${seeds}/" 2> /dev/null || true
  fi
done

if [[ "${fail}" -ne 0 ]]; then
  echo "fuzz.sh: findings above — minimized inputs were copied into" >&2
  echo "fuzz/regressions/; fix the parser and commit them as tests." >&2
  exit 1
fi
echo "fuzz.sh: all targets clean"
