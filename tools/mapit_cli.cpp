// mapit — command-line front end for the MAP-IT library.
//
//   mapit run       run MAP-IT over a traceroute corpus + datasets
//   mapit stats     sanitization / interface-graph statistics for a corpus
//   mapit simulate  generate a synthetic Internet's datasets to files
//   mapit snapshot  run MAP-IT and write the binary snapshot artifact
//   mapit query     batch-answer queries against a snapshot (stdin/stdout)
//   mapit serve     serve a snapshot over a TCP line protocol
//   mapit ingest    stream delta traces into a journal + live snapshot
//   mapit send      ship a delta trace file to a remote ingest over MDP1
//   mapit supervise babysit a fleet of serve/ingest workers from a spec
//   mapit help      usage
//
// All file formats are the library's line-oriented text formats (see the
// respective *_io headers); `mapit simulate` writes examples of each. The
// snapshot artifact is the binary format of src/store/format.h.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "baselines/claims.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/as_path.h"
#include "core/explain.h"
#include "core/result_io.h"
#include "core/supervisor.h"
#include "eval/diff_sweep.h"
#include "eval/experiment.h"
#include "fault/atomic_file.h"
#include "ingest/runner.h"
#include "ingest/sender.h"
#include "net/error.h"
#include "net/load_report.h"
#include "net/parse.h"
#include "query/query_engine.h"
#include "query/async_server.h"
#include "query/hub.h"
#include "query/server.h"
#include "store/reader.h"
#include "store/writer.h"
#include "supervise/supervise.h"
#include "topo/truth_io.h"
#include "trace/sanitize.h"
#include "trace/trace_io.h"

namespace {

using namespace mapit;

/// Documented process exit codes, used consistently across subcommands so
/// schedulers and scripts can branch on them (see README and DESIGN.md §11).
constexpr int kExitOk = 0;
constexpr int kExitUsage = 2;             ///< bad flags/arguments
constexpr int kExitLoadError = 3;         ///< input file unreadable/malformed
constexpr int kExitCheckpointMismatch = 4;  ///< corrupt or foreign checkpoint
constexpr int kExitInterrupted = 5;  ///< graceful checkpoint-and-exit
                                     ///< (signal, deadline, memory budget)
constexpr int kExitCrashLoop = 6;    ///< supervise: a worker tripped the
                                     ///< crash-loop circuit breaker
constexpr int kExitTransportRejected = 7;  ///< send: rejected at the MDP1
                                           ///< handshake (auth/fingerprint)
constexpr int kExitTransportGaveUp = 8;  ///< send: reconnect attempts
                                         ///< exhausted

/// Prints usage to stdout for `mapit help` (exit 0) and to stderr for
/// every rejected invocation (exit 2) — errors must never masquerade as
/// successful output in a pipeline.
[[noreturn]] void usage(int exit_code) {
  (exit_code == 0 ? std::cout : std::cerr) <<
      "usage:\n"
      "  mapit run --traces FILE --rib FILE [options]\n"
      "      --relationships FILE   CAIDA serial-1 AS relationships\n"
      "      --as2org FILE          asn|org sibling data\n"
      "      --ixps FILE            IXP prefix list\n"
      "      --f VALUE              majority threshold (default 0.5)\n"
      "      --remove-rule RULE     majority (default) or add\n"
      "      --no-stub              disable the stub-AS heuristic\n"
      "      --no-siblings          disable sibling grouping\n"
      "      --output FILE          confident inferences (default stdout)\n"
      "      --uncertain FILE       uncertain inferences\n"
      "      --explain ADDRESS      print the evidence trail for one address\n"
      "      --threads N            worker threads (0 = one per core, default;\n"
      "                             1 = single-threaded; output is identical\n"
      "                             for every value)\n"
      "      --lenient              quarantine malformed trace/RIB lines\n"
      "                             (skip + count to stderr) instead of\n"
      "                             aborting; strict is the default\n"
      "      --checkpoint-dir DIR   write a resumable checkpoint into DIR at\n"
      "                             run boundaries (crash-safe; see --resume)\n"
      "      --resume DIR           restore the checkpoint in DIR and\n"
      "                             continue; output is byte-identical to an\n"
      "                             uninterrupted run (any thread count)\n"
      "      --checkpoint-interval SECS\n"
      "                             min seconds between boundary checkpoint\n"
      "                             writes (default 30; 0 = every boundary;\n"
      "                             stopping always writes)\n"
      "      --deadline SECS        wall-clock budget; on expiry checkpoint\n"
      "                             and exit 5 (requires --checkpoint-dir)\n"
      "      --memory-budget MB     peak-RSS budget; on breach checkpoint\n"
      "                             and exit 5 (requires --checkpoint-dir)\n"
      "      --stop-after N         checkpoint and exit 5 after N run\n"
      "                             boundaries (deterministic interruption\n"
      "                             for tests/CI resume matrices)\n"
      "  mapit eval --inferences FILE --truth FILE [--target ASN]\n"
      "  mapit paths --traces FILE --rib FILE [run options] [--limit N]\n"
      "  mapit stats --traces FILE [--threads N]\n"
      "  mapit simulate --out DIR [--seed N] [--scale small|standard]\n"
      "  mapit sweep [--rates R,R,...] [--seeds N,N,...] [--out FILE]\n"
      "      differential baseline sweep: MAP-IT vs the Simple and\n"
      "      Convention heuristics over an artifact-rate x seed grid;\n"
      "      emits a deterministic JSON report (default rates 0,0.5,1\n"
      "      and seeds 7,9)\n"
      "      --state FILE           resumable cell state (atomic rewrite\n"
      "                             per cell; stale grids are discarded)\n"
      "      --baseline FILE        compare against a committed report;\n"
      "                             any integer-field drift exits 1\n"
      "      --threads N            engine workers (output-invariant)\n"
      "  mapit snapshot --traces FILE --rib FILE --out SNAPSHOT [run options]\n"
      "      runs MAP-IT and writes the mmap-ready binary snapshot (byte-\n"
      "      deterministic for identical inputs, any thread count)\n"
      "  mapit query SNAPSHOT\n"
      "      one query per stdin line, one answer per stdout line:\n"
      "        lookup <addr> <f|b> | addr <addr> | ip2as <addr> [f|b]\n"
      "        | links <asn> <asn> | stats\n"
      "  mapit serve SNAPSHOT [--port N] [server options]\n"
      "      TCP server for the same line protocol on 127.0.0.1:N\n"
      "      (default: an ephemeral port, printed on stderr)\n"
      "      --async                epoll event-loop server instead of the\n"
      "                             thread-per-connection one; also speaks\n"
      "                             the length-prefixed binary protocol\n"
      "                             (connections starting with \"MQB1\")\n"
      "      --reuseport            SO_REUSEPORT: run N processes on one\n"
      "                             port, kernel load-balances connections\n"
      "      --backlog N            listen(2) backlog (default: SOMAXCONN)\n"
      "      --idle-timeout SECS    close connections idle this long\n"
      "                             (default 300, 0 = never)\n"
      "      --send-timeout SECS    drop a connection whose blocked send\n"
      "                             stalls this long (blocking server only;\n"
      "                             default: --idle-timeout)\n"
      "      --max-connections N    refuse clients past N live connections\n"
      "                             with an ERR line (default 256)\n"
      "      --max-line BYTES       answer ERR to longer request lines\n"
      "                             instead of buffering them (default 1MiB)\n"
      "      --watch-interval SECS  poll SNAPSHOT for replacement every\n"
      "                             SECS seconds and hot-swap to the new\n"
      "                             version without dropping connections\n"
      "                             (default 2; 0 disables watching)\n"
      "      --max-inflight BYTES   load shedding: past BYTES of answer\n"
      "                             data in flight, new requests are\n"
      "                             answered `ERR overloaded retry` and\n"
      "                             closed (default 0 = unlimited)\n"
      "      answers HEALTH probe lines itself; SIGTERM/SIGINT drain\n"
      "      gracefully (in-flight batches are answered first); SIGHUP\n"
      "      forces an immediate snapshot re-check\n"
      "  mapit ingest --traces FILE --rib FILE --journal FILE --out SNAPSHOT\n"
      "      streaming ingestion: load the base corpus once, then fold\n"
      "      delta traces incrementally and republish SNAPSHOT after each\n"
      "      batch; deltas are preserved in an append-only crash-safe\n"
      "      journal and replayed on restart, so the published snapshot is\n"
      "      always byte-identical to a cold run over base+deltas\n"
      "      [--relationships/--as2org/--ixps/--f/--remove-rule/--no-stub/\n"
      "       --no-siblings/--threads/--lenient as for `mapit run`]\n"
      "      --follow FILE          tail an append-only delta corpus file\n"
      "      --listen PORT          accept MDP1 framed batches from `mapit\n"
      "                             send` on 127.0.0.1:PORT (0 = ephemeral,\n"
      "                             printed on stderr together with the base\n"
      "                             fingerprint); requires --secret-file;\n"
      "                             non-MDP1 bytes are refused with one ERR\n"
      "                             line and a clean close\n"
      "      --listen-plain PORT    legacy loopback listener: raw newline-\n"
      "                             delimited delta lines, no auth, no\n"
      "                             delivery guarantees across disconnects\n"
      "      --secret-file FILE     shared HMAC secret for --listen\n"
      "                             (trailing newline stripped)\n"
      "      --heartbeat SECS       MDP1 idle heartbeat cadence (default 2;\n"
      "                             0 disables)\n"
      "      --deadline SECS        drop an MDP1 peer silent this long\n"
      "                             (default 15; 0 disables)\n"
      "      --max-inflight N       per-connection unACKed batch quota\n"
      "                             (default 8)\n"
      "      --batch-lines N        fold after N pending lines (default\n"
      "                             1000)\n"
      "      --batch-seconds SECS   ...or SECS after the first pending\n"
      "                             line (default 5; 0 = count-only)\n"
      "      --poll-interval SECS   source poll cadence (default 0.2)\n"
      "      --drain                consume what the sources have now,\n"
      "                             flush, publish, exit (batch mode)\n"
      "      --max-batches N        stop after N batch commits\n"
      "      --retry-interval SECS  degraded mode: a journal/publish I/O\n"
      "                             failure (ENOSPC, EIO) parks the batch\n"
      "                             and retries it every SECS while the\n"
      "                             sources keep being tailed (default 1)\n"
      "      --max-pending N        pause source polling past N accepted\n"
      "                             but unflushed lines while degraded\n"
      "                             (default: 10x --batch-lines)\n"
      "      --health-port N        answer `OK degraded=...` probes on\n"
      "                             127.0.0.1:N (0 = ephemeral; the\n"
      "                             supervise probe target)\n"
      "      SIGTERM/SIGINT flush pending accepted lines as a final batch\n"
      "      before exiting; rerunning resumes from the journal\n"
      "  mapit send --file FILE --port N --session NAME --secret-file FILE\n"
      "      ship a delta trace file to a remote `mapit ingest --listen`\n"
      "      over MDP1: length-prefixed, CRC-framed, HMAC-authenticated\n"
      "      batches with exactly-once delivery — an ACK names journal-\n"
      "      durable state, so a sender killed and restarted at any point\n"
      "      resumes from the receiver's watermark without loss or\n"
      "      duplication\n"
      "      --host HOST            receiver address (default 127.0.0.1)\n"
      "      --expect-base HEX      require the receiver's base fingerprint\n"
      "                             to match (as `ingest --listen` logs;\n"
      "                             mismatch exits 7 before sending)\n"
      "      --follow               keep tailing FILE after EOF (default:\n"
      "                             drain and exit once everything is ACKed)\n"
      "      --batch-lines N        cut a batch at N lines (default 256)\n"
      "      --batch-seconds SECS   ...or when the oldest pending line is\n"
      "                             this old (default 0.5)\n"
      "      --poll-interval SECS   tailer poll cadence when idle\n"
      "                             (default 0.05)\n"
      "      --window N             max unACKed batches in flight\n"
      "                             (default 8)\n"
      "      --max-attempts N       give up after N consecutive failed\n"
      "                             connection attempts (exit 8; default\n"
      "                             0 = retry forever with capped\n"
      "                             exponential backoff)\n"
      "      --heartbeat SECS       idle heartbeat cadence (default 2;\n"
      "                             0 disables)\n"
      "      --deadline SECS        reconnect when the receiver is silent\n"
      "                             this long (default 15; 0 disables)\n"
      "  mapit supervise SPEC\n"
      "      fork/exec and babysit a worker fleet (serve workers sharing a\n"
      "      --reuseport port + an ingest process) from a declarative SPEC\n"
      "      file: `worker <name> [probe=PORT] <argv...>` lines plus\n"
      "      optional `set <key> <value>` lines (restart-base-ms,\n"
      "      restart-cap-ms, breaker-restarts, breaker-window-s,\n"
      "      probe-interval-s, probe-timeout-s, probe-misses,\n"
      "      probe-grace-s, drain-s). Crashed workers restart with capped\n"
      "      exponential backoff; a live PID that stops answering HEALTH\n"
      "      on its probe port is killed and restarted; breaker-restarts\n"
      "      exits within breaker-window-s abandon that worker (exit 6\n"
      "      at shutdown) while the rest keep serving. SIGTERM/SIGINT\n"
      "      cascade a bounded graceful drain; SIGHUP is forwarded\n"
      "      --restart-base-ms/--restart-cap-ms/--breaker-restarts/\n"
      "      --breaker-window/--probe-interval/--probe-timeout/\n"
      "      --probe-misses/--probe-grace/--drain override the spec\n"
      "  mapit help\n"
      "\n"
      "exit codes (shared by every subcommand; see README):\n"
      "  0  success\n"
      "  2  usage error: bad flags or arguments\n"
      "  3  load/parse error: unreadable or malformed input file, or an\n"
      "     unrecoverable runtime failure outside the families below\n"
      "  4  checkpoint/journal mismatch or corruption (foreign base inputs,\n"
      "     torn non-tail frames, bad CRCs)\n"
      "  5  interrupted by signal/deadline/memory budget; resumable state\n"
      "     (checkpoint or journal) was flushed first\n"
      "  6  supervise ended with at least one worker abandoned by the\n"
      "     crash-loop breaker\n"
      "  7  send was rejected at the MDP1 handshake: wrong secret or base\n"
      "     fingerprint mismatch (retrying cannot help; nothing was\n"
      "     journaled)\n"
      "  8  send exhausted --max-attempts without completing a handshake\n"
      "     (transient transport failure; retrying may help)\n";
  std::exit(exit_code);
}

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) tokens_.emplace_back(argv[i]);
  }

  std::optional<std::string> value(const std::string& flag) {
    for (std::size_t i = 0; i + 1 < tokens_.size(); ++i) {
      if (tokens_[i] == flag) {
        used_[i] = used_[i + 1] = true;
        return tokens_[i + 1];
      }
    }
    return std::nullopt;
  }

  bool flag(const std::string& name) {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (tokens_[i] == name) {
        used_[i] = true;
        return true;
      }
    }
    return false;
  }

  /// Claims the first still-unclaimed token as a positional argument.
  /// Call after every value()/flag() lookup so flag values are not
  /// mistaken for positionals.
  std::optional<std::string> positional() {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!used_.contains(i)) {
        used_[i] = true;
        return tokens_[i];
      }
    }
    return std::nullopt;
  }

  void reject_unknown() const {
    for (std::size_t i = 0; i < tokens_.size(); ++i) {
      if (!used_.contains(i)) {
        std::cerr << "unknown argument: " << tokens_[i] << "\n";
        usage(kExitUsage);
      }
    }
  }

 private:
  std::vector<std::string> tokens_;
  std::unordered_map<std::size_t, bool> used_;
};

/// Generic bounded unsigned flag parse shared by --threads/--port/etc.
std::optional<unsigned long> parse_bounded(const std::string& value,
                                           unsigned long max) {
  std::size_t pos = 0;
  unsigned long parsed = 0;
  try {
    parsed = std::stoul(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || parsed > max) return std::nullopt;
  return parsed;
}

unsigned parse_threads(Args& args) {
  unsigned threads = 0;  // 0 = one worker per hardware thread
  if (const auto value = args.value("--threads")) {
    const auto parsed = parse_bounded(*value, 1024);
    if (!parsed) {
      std::cerr << "--threads expects an integer in [0, 1024], got '" << *value
                << "'\n";
      std::exit(kExitUsage);
    }
    threads = static_cast<unsigned>(*parsed);
  }
  return threads;
}

/// Non-negative seconds flag (fractions allowed: "--deadline 0.5").
double parse_seconds_or_die(const char* flag, const std::string& value) {
  std::size_t pos = 0;
  double parsed = -1;
  try {
    parsed = std::stod(value, &pos);
  } catch (const std::exception&) {
    pos = 0;
  }
  if (pos != value.size() || !(parsed >= 0)) {
    std::cerr << flag << " expects non-negative seconds, got '" << value
              << "'\n";
    std::exit(kExitUsage);
  }
  return parsed;
}

/// Parses the engine options shared by run/paths/snapshot/ingest:
/// --f, --remove-rule, --no-stub, --no-siblings, --threads.
core::Options parse_engine_options(Args& args) {
  core::Options options;
  if (const auto f = args.value("--f")) {
    // Strict parse: std::stod would accept "0.5x" and abort the process on
    // "abc" with a raw std::invalid_argument.
    std::size_t pos = 0;
    double parsed = -1;
    try {
      parsed = std::stod(*f, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != f->size() || !(parsed >= 0.0) || !(parsed <= 1.0)) {
      std::cerr << "--f expects a fraction in [0, 1], got '" << *f << "'\n";
      std::exit(kExitUsage);
    }
    options.f = parsed;
  }
  if (const auto rule = args.value("--remove-rule")) {
    if (*rule == "majority") {
      options.remove_rule = core::RemoveRule::kMajority;
    } else if (*rule == "add") {
      options.remove_rule = core::RemoveRule::kAddRule;
    } else {
      std::cerr << "unknown remove rule '" << *rule << "'\n";
      std::exit(kExitUsage);
    }
  }
  options.stub_heuristic = !args.flag("--no-stub");
  options.sibling_grouping = !args.flag("--no-siblings");
  options.threads = parse_threads(args);
  return options;
}

std::ifstream open_or_die(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) {
    std::cerr << "cannot open " << path << "\n";
    std::exit(kExitLoadError);
  }
  return stream;
}

/// Reads the MDP1 shared secret: whole file, trailing newline stripped —
/// so `echo secret > file` and a binary key both work.
std::string read_secret_or_die(const std::string& path) {
  std::ifstream stream(path, std::ios::binary);
  if (!stream) {
    std::cerr << "cannot open secret file " << path << "\n";
    std::exit(kExitLoadError);
  }
  std::ostringstream contents;
  contents << stream.rdbuf();
  std::string secret = contents.str();
  while (!secret.empty() &&
         (secret.back() == '\n' || secret.back() == '\r')) {
    secret.pop_back();
  }
  if (secret.empty()) {
    std::cerr << "secret file " << path << " is empty\n";
    std::exit(kExitUsage);
  }
  return secret;
}

/// Prints a lenient-load summary to stderr when lines were quarantined.
void report_quarantine(const char* what, const mapit::LoadReport& report) {
  const std::string summary = report.summary(what);
  if (!summary.empty()) std::cerr << summary;
}

/// Checkpointing configuration shared by run/snapshot (absent = plain,
/// unsupervised run).
struct CheckpointSetup {
  std::string dir;          ///< --checkpoint-dir or --resume target
  bool resume = false;      ///< restore dir's checkpoint before running
  double interval_seconds = 30;  ///< min seconds between boundary writes
  core::CheckpointMeta meta;     ///< this invocation's identity
};

/// Everything the `run`-shaped subcommands (run, snapshot) share: datasets
/// loaded, traces sanitized, interface graph and IP2AS composite built.
/// Later members reference earlier ones (ip2as points at ixps), so the
/// struct is heap-held and immovable once built.
struct RunPipeline {
  core::Options options;
  std::optional<CheckpointSetup> checkpoint;
  core::SupervisorOptions supervisor;
  trace::TraceCorpus corpus;
  bgp::Rib rib;
  asdata::AsRelationships rels;
  asdata::As2Org orgs;
  asdata::IxpRegistry ixps;
  trace::SanitizeResult sanitized;
  std::unique_ptr<graph::InterfaceGraph> graph;
  std::unique_ptr<bgp::Ip2As> ip2as;

  [[nodiscard]] core::Result run() const {
    return core::run_mapit(*graph, *ip2as, orgs, rels, options);
  }
};

/// Parses the shared run options out of `args` and builds the pipeline.
/// The caller must have claimed its subcommand-specific flags already:
/// this calls reject_unknown() before doing any heavy work.
std::unique_ptr<RunPipeline> build_run_pipeline(Args& args, const char* verb) {
  const auto traces_path = args.value("--traces");
  const auto rib_path = args.value("--rib");
  if (!traces_path || !rib_path) {
    std::cerr << verb << ": --traces and --rib are required\n";
    usage(kExitUsage);
  }

  auto pipeline = std::make_unique<RunPipeline>();
  core::Options& options = pipeline->options;
  options = parse_engine_options(args);
  const bool lenient = args.flag("--lenient");
  const auto relationships_path = args.value("--relationships");
  const auto as2org_path = args.value("--as2org");
  const auto ixps_path = args.value("--ixps");

  const auto checkpoint_dir = args.value("--checkpoint-dir");
  const auto resume_dir = args.value("--resume");
  if (checkpoint_dir && resume_dir) {
    std::cerr << verb << ": --checkpoint-dir and --resume are mutually "
                         "exclusive (--resume keeps checkpointing into its "
                         "own directory)\n";
    usage(kExitUsage);
  }
  if (checkpoint_dir || resume_dir) {
    CheckpointSetup setup;
    setup.dir = resume_dir ? *resume_dir : *checkpoint_dir;
    setup.resume = resume_dir.has_value();
    if (const auto value = args.value("--checkpoint-interval")) {
      setup.interval_seconds =
          parse_seconds_or_die("--checkpoint-interval", *value);
    }
    pipeline->checkpoint = std::move(setup);
  } else if (args.value("--checkpoint-interval")) {
    std::cerr << verb << ": --checkpoint-interval requires --checkpoint-dir "
                         "or --resume\n";
    usage(kExitUsage);
  }
  if (const auto value = args.value("--deadline")) {
    pipeline->supervisor.deadline_seconds =
        parse_seconds_or_die("--deadline", *value);
  }
  if (const auto value = args.value("--memory-budget")) {
    const auto parsed = parse_bounded(*value, 1UL << 30);
    if (!parsed || *parsed == 0) {
      std::cerr << "--memory-budget expects MiB in [1, 2^30], got '" << *value
                << "'\n";
      std::exit(kExitUsage);
    }
    pipeline->supervisor.memory_budget_mb = *parsed;
  }
  if (const auto value = args.value("--stop-after")) {
    const auto parsed = parse_bounded(*value, 1UL << 20);
    if (!parsed || *parsed == 0) {
      std::cerr << "--stop-after expects a boundary count in [1, 2^20], "
                   "got '" << *value << "'\n";
      std::exit(kExitUsage);
    }
    pipeline->supervisor.boundary_limit = static_cast<int>(*parsed);
  }
  if (!pipeline->checkpoint &&
      (pipeline->supervisor.deadline_seconds > 0 ||
       pipeline->supervisor.memory_budget_mb > 0 ||
       pipeline->supervisor.boundary_limit > 0)) {
    std::cerr << verb << ": --deadline/--memory-budget/--stop-after perform "
                         "a graceful checkpoint-and-exit and therefore "
                         "require --checkpoint-dir (or --resume)\n";
    usage(kExitUsage);
  }
  args.reject_unknown();

  LoadReport trace_report;
  LoadReport rib_report;
  auto traces_stream = open_or_die(*traces_path);
  pipeline->corpus = trace::read_corpus(traces_stream, options.threads,
                                        lenient ? &trace_report : nullptr);
  auto rib_stream = open_or_die(*rib_path);
  pipeline->rib = bgp::Rib::read(rib_stream, lenient ? &rib_report : nullptr);
  if (lenient) {
    report_quarantine("traces", trace_report);
    report_quarantine("rib", rib_report);
  }

  if (relationships_path) {
    auto stream = open_or_die(*relationships_path);
    pipeline->rels = asdata::AsRelationships::read(stream);
  }
  if (as2org_path) {
    auto stream = open_or_die(*as2org_path);
    pipeline->orgs = asdata::As2Org::read(stream);
  }
  if (ixps_path) {
    auto stream = open_or_die(*ixps_path);
    pipeline->ixps = asdata::IxpRegistry::read(stream);
  }

  if (pipeline->checkpoint) {
    // Identity of this invocation: any change to the engine options or to
    // the raw input bytes between checkpoint and resume must be caught, so
    // fingerprint the files themselves (cheap next to the run).
    CheckpointSetup& setup = *pipeline->checkpoint;
    setup.meta.config_hash = core::config_hash(options);
    setup.meta.corpus_fingerprint = core::fingerprint_file(*traces_path);
    setup.meta.rib_fingerprint = core::fingerprint_file(*rib_path);
    std::uint64_t datasets = core::kFingerprintSeed;
    for (const auto& optional_path :
         {relationships_path, as2org_path, ixps_path}) {
      // Presence markers keep "no file" distinct from "empty file" and from
      // the same bytes arriving under a different dataset slot.
      datasets = core::fingerprint_bytes(datasets, optional_path ? "+" : "-");
      if (optional_path) {
        datasets = core::fingerprint_file(*optional_path, datasets);
      }
    }
    setup.meta.datasets_fingerprint = datasets;
  }

  pipeline->sanitized = trace::sanitize(pipeline->corpus, options.threads);
  std::cerr << "sanitized " << pipeline->corpus.size() << " traces ("
            << pipeline->sanitized.stats.discarded_traces << " discarded, "
            << pipeline->sanitized.stats.removed_ttl0_hops
            << " TTL=0 hops removed)\n";

  const auto all_addresses = pipeline->corpus.distinct_addresses();
  pipeline->graph = std::make_unique<graph::InterfaceGraph>(
      pipeline->sanitized.clean, all_addresses, options.threads);
  pipeline->ip2as = std::make_unique<bgp::Ip2As>(
      pipeline->rib, net::PrefixTrie<asdata::Asn>{}, &pipeline->ixps);
  std::cerr << "interface graph: " << pipeline->graph->size()
            << " interfaces\n";
  return pipeline;
}

/// A supervised engine run: either a finished Result, or the StopReason a
/// graceful checkpoint-and-exit was triggered by (exit code 5).
struct EngineRunResult {
  std::optional<core::Result> result;
  core::StopReason stop = core::StopReason::kNone;
};

/// Runs the engine for run/snapshot. Without checkpointing this is a plain
/// run(); with it, a SignalGuard + RunSupervisor watch the run, every
/// boundary may persist a crash-safe checkpoint (throttled by
/// --checkpoint-interval; a stop always writes), --resume restores and
/// continues, and completion deletes the now-stale checkpoint file.
EngineRunResult run_engine(const RunPipeline& pipeline) {
  EngineRunResult out;
  if (!pipeline.checkpoint) {
    out.result = pipeline.run();
    return out;
  }
  const CheckpointSetup& setup = *pipeline.checkpoint;
  const std::string path = core::checkpoint_path(setup.dir);
  std::filesystem::create_directories(setup.dir);

  core::Engine engine(*pipeline.graph, *pipeline.ip2as, pipeline.orgs,
                      pipeline.rels, pipeline.options);
  core::SignalGuard signals;
  core::RunSupervisor supervisor(pipeline.supervisor, &signals);

  core::RunControl control;
  std::string resume_blob;
  if (setup.resume) {
    core::Checkpoint restored = core::read_checkpoint(path);
    core::verify_checkpoint_meta(setup.meta, restored.meta);
    resume_blob = std::move(restored.engine_state);
    control.resume_state = &resume_blob;
    control.resume_boundary = restored.boundary;
    std::cerr << "resuming from " << path << " (" << restored.iterations_done
              << " iterations done, paused "
              << (restored.boundary == core::RunBoundary::kAfterAddStep
                      ? "after an add step"
                      : "after an iteration")
              << ")\n";
  }

  auto last_write = std::chrono::steady_clock::now();
  std::size_t checkpoints_written = 0;
  control.on_boundary = [&](core::RunBoundary boundary, int iterations) {
    supervisor.note_boundary();
    const core::StopReason stop = supervisor.should_stop();
    const bool stopping = stop != core::StopReason::kNone;
    const auto now = std::chrono::steady_clock::now();
    const bool interval_elapsed =
        setup.interval_seconds <= 0 ||
        std::chrono::duration<double>(now - last_write).count() >=
            setup.interval_seconds;
    if (stopping || interval_elapsed) {
      core::Checkpoint checkpoint;
      checkpoint.meta = setup.meta;
      checkpoint.boundary = boundary;
      checkpoint.iterations_done = iterations;
      checkpoint.engine_state = engine.save_state();
      core::write_checkpoint(path, checkpoint);
      last_write = now;
      ++checkpoints_written;
    }
    if (stopping) out.stop = stop;
    return !stopping;
  };

  core::RunOutcome outcome = engine.run_controlled(control);
  if (outcome.completed()) {
    out.result = std::move(*outcome.result);
    out.stop = core::StopReason::kNone;
    // The run finished; its outputs supersede the checkpoint. Removal is
    // best-effort — a stale checkpoint is rejected-at-worst, never wrong.
    std::error_code ec;
    std::filesystem::remove(path, ec);
  } else {
    std::cerr << "run stopped (" << core::to_string(out.stop) << ") after "
              << outcome.iterations_done << " iterations; checkpoint "
              << (checkpoints_written > 0 ? "written to " : "expected at ")
              << path << " — resume with --resume " << setup.dir << "\n";
  }
  return out;
}

int cmd_run(Args& args) {
  const auto output_path = args.value("--output");
  const auto uncertain_path = args.value("--uncertain");
  const auto explain_address = args.value("--explain");
  const auto pipeline = build_run_pipeline(args, "run");

  EngineRunResult run = run_engine(*pipeline);
  if (!run.result) return kExitInterrupted;
  const core::Result result = std::move(*run.result);
  std::cerr << "MAP-IT: " << result.inferences.size()
            << " confident inferences, " << result.uncertain.size()
            << " uncertain, " << result.stats.iterations << " iterations"
            << (result.stats.converged ? "" : " (iteration cap hit!)") << "\n";

  // File outputs are written crash-safely (tmp + fsync + atomic rename): a
  // kill mid-write leaves the previous complete file, never a torn one.
  if (output_path) {
    core::write_inferences_file(*output_path, result.inferences);
  } else {
    core::write_inferences(std::cout, result.inferences);
  }
  if (uncertain_path) {
    core::write_inferences_file(*uncertain_path, result.uncertain);
  }
  if (explain_address) {
    std::cerr << core::explain(
        result, *pipeline->graph, *pipeline->ip2as,
        net::Ipv4Address::parse_or_throw(*explain_address));
  }
  return kExitOk;
}

int cmd_snapshot(Args& args) {
  const auto out_path = args.value("--out");
  if (!out_path) {
    std::cerr << "snapshot: --out is required\n";
    usage(kExitUsage);
  }
  const auto pipeline = build_run_pipeline(args, "snapshot");

  EngineRunResult run = run_engine(*pipeline);
  if (!run.result) return kExitInterrupted;
  const core::Result result = std::move(*run.result);
  const store::SnapshotData data =
      store::make_snapshot_data(result, *pipeline->graph, *pipeline->ip2as);
  const store::WriteInfo info = store::write_snapshot_file(data, *out_path);

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", info.payload_crc32);
  std::cout << "snapshot " << *out_path << ": " << info.bytes
            << " bytes, crc32 " << crc_hex << ", "
            << result.inferences.size() << " inferences ("
            << result.uncertain.size() << " uncertain), " << data.links.size()
            << " links, " << data.bgp_prefixes.size() << " prefixes, "
            << data.mappings.size() << " mappings\n";
  return kExitOk;
}

int cmd_query(Args& args) {
  const auto snapshot_path = args.positional();
  if (!snapshot_path) {
    std::cerr << "query: snapshot path is required\n";
    usage(kExitUsage);
  }
  args.reject_unknown();

  const store::SnapshotReader reader = store::SnapshotReader::open(
      *snapshot_path);
  const query::QueryEngine engine(reader);
  std::string line;
  std::string out;
  while (std::getline(std::cin, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') continue;
    out += engine.answer(line);
    out += '\n';
    // Flush in chunks so interactive use stays responsive while huge
    // batches still amortize the write syscalls.
    if (out.size() >= 64 * 1024) {
      std::cout << out;
      out.clear();
    }
  }
  std::cout << out << std::flush;
  return 0;
}

int cmd_serve(Args& args) {
  const auto snapshot_path = args.positional();
  if (!snapshot_path) {
    std::cerr << "serve: snapshot path is required\n";
    usage(kExitUsage);
  }
  query::ServerOptions server_options;
  server_options.idle_timeout = std::chrono::seconds(300);
  if (const auto value = args.value("--port")) {
    const auto parsed = parse_bounded(*value, 65535);
    if (!parsed) {
      std::cerr << "--port expects an integer in [0, 65535], got '" << *value
                << "'\n";
      return kExitUsage;
    }
    server_options.port = static_cast<std::uint16_t>(*parsed);
  }
  if (const auto value = args.value("--idle-timeout")) {
    const auto parsed = parse_bounded(*value, 86400);
    if (!parsed) {
      std::cerr << "--idle-timeout expects seconds in [0, 86400], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    server_options.idle_timeout = std::chrono::seconds(*parsed);
  }
  if (const auto value = args.value("--max-connections")) {
    const auto parsed = parse_bounded(*value, 65536);
    if (!parsed || *parsed == 0) {
      std::cerr << "--max-connections expects an integer in [1, 65536], "
                   "got '" << *value << "'\n";
      return kExitUsage;
    }
    server_options.max_connections = *parsed;
  }
  if (const auto value = args.value("--max-line")) {
    const auto parsed = parse_bounded(*value, 1UL << 30);
    if (!parsed || *parsed == 0) {
      std::cerr << "--max-line expects bytes in [1, 2^30], got '" << *value
                << "'\n";
      return kExitUsage;
    }
    server_options.max_line_bytes = *parsed;
  }
  if (const auto value = args.value("--send-timeout")) {
    const auto parsed = parse_bounded(*value, 86400);
    if (!parsed) {
      std::cerr << "--send-timeout expects seconds in [0, 86400], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    server_options.send_timeout = std::chrono::seconds(*parsed);
  }
  if (const auto value = args.value("--backlog")) {
    const auto parsed = parse_bounded(*value, 65536);
    if (!parsed || *parsed == 0) {
      std::cerr << "--backlog expects an integer in [1, 65536], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    server_options.backlog = static_cast<int>(*parsed);
  }
  if (const auto value = args.value("--max-inflight")) {
    const auto parsed = parse_bounded(*value, 1UL << 34);
    if (!parsed) {
      std::cerr << "--max-inflight expects bytes in [0, 2^34], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    server_options.max_inflight_bytes = *parsed;
  }
  server_options.reuse_port = args.flag("--reuseport");
  const bool use_async = args.flag("--async");
  unsigned long watch_interval = 2;
  if (const auto value = args.value("--watch-interval")) {
    const auto parsed = parse_bounded(*value, 86400);
    if (!parsed) {
      std::cerr << "--watch-interval expects seconds in [0, 86400], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    watch_interval = *parsed;
  }
  args.reject_unknown();

  query::SnapshotHub hub(*snapshot_path);
  // Both servers expose the same surface; run whichever under the same
  // signal-drain scaffolding.
  const auto run = [&](auto& server) {
    {
      const auto snapshot = hub.current();
      std::cerr << "serving " << *snapshot_path << " on 127.0.0.1:"
                << server.port() << (use_async ? " (async)" : "") << " ("
                << snapshot->reader.inferences().size()
                << " inference records, " << snapshot->reader.size_bytes()
                << " bytes mmap'd)\n";
    }

    // The watcher polls the snapshot path and hot-swaps new versions in;
    // running queries keep their pinned generation, new batches see the
    // fresh one. A snapshot that fails to validate keeps the old one.
    std::atomic<bool> watch_stop{false};
    std::thread watcher;
    if (watch_interval > 0) {
      watcher = std::thread([&] {
        while (!watch_stop.load()) {
          for (unsigned long slept = 0;
               slept < watch_interval * 10 && !watch_stop.load(); ++slept) {
            std::this_thread::sleep_for(std::chrono::milliseconds{100});
          }
          if (watch_stop.load()) break;
          if (hub.refresh()) {
            std::cerr << "snapshot replaced; now serving generation "
                      << hub.current()->generation << "\n";
          }
        }
      });
    }

    // SIGTERM/SIGINT drain the server gracefully (in-flight batches are
    // answered, then connections close) instead of killing it mid-send.
    // SIGHUP forces an immediate snapshot re-check (the operator just
    // republished and does not want to wait out --watch-interval). The
    // drain thread blocks on the signal guard's self-pipe; when
    // serve_forever() returns for any other reason, `done` + wake() send
    // it home — `done` first, because a SIGHUP can consume the wake byte.
    core::SignalGuard signals;
    std::atomic<bool> done{false};
    std::thread drain([&] {
      std::uint64_t seen_hups = 0;
      while (true) {
        const int signal_number = signals.wait();
        if (signal_number != 0) {
          std::cerr << "received "
                    << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
                    << ", draining connections...\n";
          server.stop();
          return;
        }
        if (done.load()) return;
        const std::uint64_t hups = core::SignalGuard::hup_count();
        if (hups != seen_hups) {
          seen_hups = hups;
          std::cerr << "received SIGHUP, re-checking snapshot...\n";
          if (hub.refresh()) {
            std::cerr << "snapshot replaced; now serving generation "
                      << hub.current()->generation << "\n";
          }
        }
      }
    });
    server.serve_forever();
    done.store(true);
    signals.wake();
    drain.join();
    watch_stop.store(true);
    if (watcher.joinable()) watcher.join();
    if (core::SignalGuard::signal_received() != 0) {
      std::cerr << "drained; exiting\n";
    }
    return kExitOk;
  };
  if (use_async) {
    query::AsyncServer server(hub, server_options);
    return run(server);
  }
  query::LineServer server(hub, server_options);
  return run(server);
}

int cmd_ingest(Args& args) {
  ingest::IngestOptions options;
  const auto traces_path = args.value("--traces");
  const auto rib_path = args.value("--rib");
  const auto journal_path = args.value("--journal");
  const auto out_path = args.value("--out");
  if (!traces_path || !rib_path || !journal_path || !out_path) {
    std::cerr << "ingest: --traces, --rib, --journal and --out are "
                 "required\n";
    usage(kExitUsage);
  }
  options.traces_path = *traces_path;
  options.rib_path = *rib_path;
  options.journal_path = *journal_path;
  options.out_path = *out_path;
  options.engine_options = parse_engine_options(args);
  options.lenient = args.flag("--lenient");
  if (const auto value = args.value("--relationships")) {
    options.relationships_path = *value;
  }
  if (const auto value = args.value("--as2org")) options.as2org_path = *value;
  if (const auto value = args.value("--ixps")) options.ixps_path = *value;
  if (const auto value = args.value("--follow")) options.follow_path = *value;
  if (const auto value = args.value("--listen")) {
    const auto parsed = parse_bounded(*value, 65535);
    if (!parsed) {
      std::cerr << "--listen expects a port in [0, 65535], got '" << *value
                << "'\n";
      return kExitUsage;
    }
    options.listen_port = static_cast<int>(*parsed);
  }
  if (const auto value = args.value("--listen-plain")) {
    const auto parsed = parse_bounded(*value, 65535);
    if (!parsed) {
      std::cerr << "--listen-plain expects a port in [0, 65535], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.listen_plain_port = static_cast<int>(*parsed);
  }
  if (const auto value = args.value("--secret-file")) {
    options.secret = read_secret_or_die(*value);
  }
  if (const auto value = args.value("--heartbeat")) {
    options.transport_heartbeat_seconds =
        parse_seconds_or_die("--heartbeat", *value);
  }
  if (const auto value = args.value("--deadline")) {
    options.transport_deadline_seconds =
        parse_seconds_or_die("--deadline", *value);
  }
  if (const auto value = args.value("--max-inflight")) {
    const auto parsed = parse_bounded(*value, 1UL << 16);
    if (!parsed || *parsed == 0) {
      std::cerr << "--max-inflight expects an integer in [1, 2^16], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.max_inflight_batches = *parsed;
  }
  if (const auto value = args.value("--batch-lines")) {
    const auto parsed = parse_bounded(*value, 1UL << 24);
    if (!parsed || *parsed == 0) {
      std::cerr << "--batch-lines expects an integer in [1, 2^24], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.batch_lines = *parsed;
  }
  if (const auto value = args.value("--batch-seconds")) {
    options.batch_seconds = parse_seconds_or_die("--batch-seconds", *value);
  }
  if (const auto value = args.value("--poll-interval")) {
    options.poll_interval = parse_seconds_or_die("--poll-interval", *value);
  }
  options.drain = args.flag("--drain");
  if (const auto value = args.value("--max-batches")) {
    const auto parsed = parse_bounded(*value, 1UL << 30);
    if (!parsed || *parsed == 0) {
      std::cerr << "--max-batches expects an integer in [1, 2^30], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.max_batches = *parsed;
  }
  if (const auto value = args.value("--retry-interval")) {
    options.retry_interval = parse_seconds_or_die("--retry-interval", *value);
  }
  if (const auto value = args.value("--max-pending")) {
    const auto parsed = parse_bounded(*value, 1UL << 30);
    if (!parsed || *parsed == 0) {
      std::cerr << "--max-pending expects an integer in [1, 2^30], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.max_pending_lines = *parsed;
  }
  if (const auto value = args.value("--health-port")) {
    const auto parsed = parse_bounded(*value, 65535);
    if (!parsed) {
      std::cerr << "--health-port expects a port in [0, 65535], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.health_port = static_cast<int>(*parsed);
  }
  args.reject_unknown();
  if (options.listen_port >= 0 && options.secret.empty()) {
    std::cerr << "ingest: --listen speaks the authenticated MDP1 transport "
                 "and requires --secret-file; use --listen-plain for the "
                 "legacy loopback line protocol\n";
    usage(kExitUsage);
  }
  if (options.follow_path.empty() && options.listen_port < 0 &&
      options.listen_plain_port < 0 && !options.drain) {
    std::cerr << "ingest: need --follow, --listen and/or --listen-plain "
                 "(or --drain to just replay the journal and republish)\n";
    usage(kExitUsage);
  }
  options.log = &std::cerr;

  // SIGTERM/SIGINT flush the pending accepted lines as a final batch and
  // end the session; the journal makes the next run resume seamlessly.
  // The watcher loops because SIGHUP also wakes wait() (and means nothing
  // to ingest) — a HUP must not disarm the TERM handler.
  core::SignalGuard signals;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (true) {
      const int signal_number = signals.wait();
      if (signal_number != 0) {
        std::cerr << "received "
                  << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
                  << ", flushing pending deltas...\n";
        stop.store(true);
        return;
      }
      if (done.load()) return;
    }
  });
  ingest::IngestStats stats;
  try {
    stats = ingest::run_ingest(options, &stop);
  } catch (...) {
    done.store(true);
    signals.wake();
    watcher.join();
    throw;
  }
  done.store(true);
  signals.wake();
  watcher.join();

  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x", stats.snapshot_crc);
  std::cerr << "ingest done: replayed " << stats.replayed_traces
            << ", folded " << stats.folded_traces << " traces in "
            << stats.batches << " batches (" << stats.quarantined
            << " quarantined), " << stats.publishes
            << " publishes, last crc32 " << crc_hex << "\n";
  return core::SignalGuard::signal_received() != 0 ? kExitInterrupted
                                                   : kExitOk;
}

int cmd_send(Args& args) {
  ingest::SendOptions options;
  const auto file = args.value("--file");
  const auto port = args.value("--port");
  const auto session = args.value("--session");
  const auto secret_file = args.value("--secret-file");
  if (!file || !port || !session || !secret_file) {
    std::cerr << "send: --file, --port, --session and --secret-file are "
                 "required\n";
    usage(kExitUsage);
  }
  options.path = *file;
  options.session = *session;
  const auto parsed_port = parse_bounded(*port, 65535);
  if (!parsed_port || *parsed_port == 0) {
    std::cerr << "--port expects a port in [1, 65535], got '" << *port
              << "'\n";
    return kExitUsage;
  }
  options.port = static_cast<std::uint16_t>(*parsed_port);
  options.secret = read_secret_or_die(*secret_file);
  if (const auto value = args.value("--host")) options.host = *value;
  if (const auto value = args.value("--expect-base")) {
    std::size_t pos = 0;
    unsigned long long parsed = 0;
    try {
      parsed = std::stoull(*value, &pos, 16);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (value->empty() || pos != value->size()) {
      std::cerr << "--expect-base expects the hex fingerprint `ingest "
                   "--listen` logs, got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.expect_base = static_cast<std::uint64_t>(parsed);
  }
  options.follow = args.flag("--follow");
  if (const auto value = args.value("--batch-lines")) {
    const auto parsed = parse_bounded(*value, 1UL << 20);
    if (!parsed || *parsed == 0) {
      std::cerr << "--batch-lines expects an integer in [1, 2^20], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.batch_lines = *parsed;
  }
  if (const auto value = args.value("--batch-seconds")) {
    options.batch_seconds = parse_seconds_or_die("--batch-seconds", *value);
  }
  if (const auto value = args.value("--poll-interval")) {
    options.poll_seconds = parse_seconds_or_die("--poll-interval", *value);
  }
  if (const auto value = args.value("--window")) {
    const auto parsed = parse_bounded(*value, 1UL << 16);
    if (!parsed || *parsed == 0) {
      std::cerr << "--window expects an integer in [1, 2^16], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.window = *parsed;
  }
  if (const auto value = args.value("--max-attempts")) {
    const auto parsed = parse_bounded(*value, 1UL << 30);
    if (!parsed) {
      std::cerr << "--max-attempts expects an integer in [0, 2^30], got '"
                << *value << "'\n";
      return kExitUsage;
    }
    options.max_attempts = *parsed;
  }
  if (const auto value = args.value("--heartbeat")) {
    options.heartbeat_seconds = parse_seconds_or_die("--heartbeat", *value);
  }
  if (const auto value = args.value("--deadline")) {
    options.deadline_seconds = parse_seconds_or_die("--deadline", *value);
  }
  args.reject_unknown();
  options.log = [](const std::string& line) {
    std::cerr << "send: " << line << "\n";
  };

  // SIGTERM/SIGINT stop the sender cleanly mid-stream; anything unACKed
  // is simply resent by the next invocation (the receiver dedupes).
  core::SignalGuard signals;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::thread watcher([&] {
    while (true) {
      const int signal_number = signals.wait();
      if (signal_number != 0) {
        std::cerr << "send: received "
                  << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
                  << ", stopping\n";
        stop.store(true);
        return;
      }
      if (done.load()) return;
    }
  });
  ingest::SendStats stats;
  try {
    stats = ingest::run_sender(options, stop);
  } catch (...) {
    done.store(true);
    signals.wake();
    watcher.join();
    throw;
  }
  done.store(true);
  signals.wake();
  watcher.join();

  std::cerr << "send done: " << stats.lines_sent << " lines in "
            << stats.batches_sent << " batches (" << stats.batches_acked
            << " acked, " << stats.batches_resent << " resent, "
            << stats.reconnects << " reconnects), watermark seq "
            << stats.last_acked_seq << " offset " << stats.acked_offset
            << "\n";
  return core::SignalGuard::signal_received() != 0 ? kExitInterrupted
                                                   : kExitOk;
}

int cmd_supervise(Args& args) {
  const auto spec_path = args.positional();
  if (!spec_path) {
    std::cerr << "supervise: spec file path is required\n";
    usage(kExitUsage);
  }
  supervise::SuperviseOptions options;
  try {
    options = supervise::load_spec(*spec_path);
  } catch (const supervise::SpecError& error) {
    std::cerr << "supervise: " << error.what() << "\n";
    return kExitUsage;
  }
  // Flag overrides beat the spec (same precedence as everywhere else:
  // command line wins over file).
  const auto int_override = [&](const char* flag, int& field,
                                unsigned long max) {
    if (const auto value = args.value(flag)) {
      const auto parsed = parse_bounded(*value, max);
      if (!parsed) {
        std::cerr << flag << " expects an integer in [0, " << max
                  << "], got '" << *value << "'\n";
        std::exit(kExitUsage);
      }
      field = static_cast<int>(*parsed);
    }
  };
  const auto seconds_override = [&](const char* flag, double& field) {
    if (const auto value = args.value(flag)) {
      field = parse_seconds_or_die(flag, *value);
    }
  };
  int_override("--restart-base-ms", options.restart_base_ms, 1UL << 20);
  int_override("--restart-cap-ms", options.restart_cap_ms, 1UL << 26);
  int_override("--breaker-restarts", options.breaker_restarts, 1UL << 16);
  int_override("--probe-misses", options.probe_misses, 1UL << 16);
  seconds_override("--breaker-window", options.breaker_window_s);
  seconds_override("--probe-interval", options.probe_interval_s);
  seconds_override("--probe-timeout", options.probe_timeout_s);
  seconds_override("--probe-grace", options.probe_grace_s);
  seconds_override("--drain", options.drain_s);
  args.reject_unknown();
  if (options.workers.empty()) {
    std::cerr << "supervise: " << *spec_path << " declares no workers\n";
    return kExitUsage;
  }
  options.log = &std::cerr;

  // TERM/INT set the stop flag the supervisor's loop polls (it cascades
  // the shutdown itself); SIGHUP increments the counter it forwards to
  // the fleet. The watcher loops for the same reason ingest's does.
  core::SignalGuard signals;
  std::atomic<bool> stop{false};
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> hups{0};
  std::thread watcher([&] {
    while (true) {
      const int signal_number = signals.wait();
      hups.store(core::SignalGuard::hup_count());
      if (signal_number != 0) {
        std::cerr << "supervise: received "
                  << (signal_number == SIGTERM ? "SIGTERM" : "SIGINT")
                  << ", stopping the fleet...\n";
        stop.store(true);
        return;
      }
      if (done.load()) return;
    }
  });
  supervise::ProcessSupervisor supervisor(std::move(options));
  supervise::SuperviseReport report;
  try {
    report = supervisor.run(&stop, &hups);
  } catch (...) {
    done.store(true);
    signals.wake();
    watcher.join();
    throw;
  }
  done.store(true);
  signals.wake();
  watcher.join();

  std::cerr << "supervise done: " << report.restarts << " restarts, "
            << report.probe_kills << " probe kills"
            << (report.breaker_tripped
                    ? ", at least one worker abandoned by the breaker"
                    : "")
            << "\n";
  return report.breaker_tripped ? kExitCrashLoop : kExitOk;
}

int cmd_paths(Args& args) {
  const auto traces_path = args.value("--traces");
  const auto rib_path = args.value("--rib");
  if (!traces_path || !rib_path) {
    std::cerr << "paths: --traces and --rib are required\n";
    usage(kExitUsage);
  }
  std::size_t limit = 20;
  if (const auto l = args.value("--limit")) {
    const auto parsed = net::parse_uint<std::size_t>(*l);
    if (!parsed) {
      std::cerr << "--limit expects a non-negative integer, got '" << *l
                << "'\n";
      usage(kExitUsage);
    }
    limit = *parsed;
  }
  const unsigned threads = parse_threads(args);
  const bool lenient = args.flag("--lenient");
  const auto relationships_path = args.value("--relationships");
  const auto as2org_path = args.value("--as2org");
  const auto ixps_path = args.value("--ixps");
  args.reject_unknown();

  LoadReport trace_report;
  LoadReport rib_report;
  auto traces_stream = open_or_die(*traces_path);
  const trace::TraceCorpus corpus = trace::read_corpus(
      traces_stream, threads, lenient ? &trace_report : nullptr);
  auto rib_stream = open_or_die(*rib_path);
  const bgp::Rib rib =
      bgp::Rib::read(rib_stream, lenient ? &rib_report : nullptr);
  if (lenient) {
    report_quarantine("traces", trace_report);
    report_quarantine("rib", rib_report);
  }
  asdata::AsRelationships rels;
  if (relationships_path) {
    auto stream = open_or_die(*relationships_path);
    rels = asdata::AsRelationships::read(stream);
  }
  asdata::As2Org orgs;
  if (as2org_path) {
    auto stream = open_or_die(*as2org_path);
    orgs = asdata::As2Org::read(stream);
  }
  asdata::IxpRegistry ixps;
  if (ixps_path) {
    auto stream = open_or_die(*ixps_path);
    ixps = asdata::IxpRegistry::read(stream);
  }

  const auto sanitized = trace::sanitize(corpus, threads);
  const auto all_addresses = corpus.distinct_addresses();
  const graph::InterfaceGraph graph(sanitized.clean, all_addresses, threads);
  const bgp::Ip2As ip2as(rib, net::PrefixTrie<asdata::Asn>{}, &ixps);
  core::Options paths_options;
  paths_options.threads = threads;
  const core::Result result =
      core::run_mapit(graph, ip2as, orgs, rels, paths_options);
  const core::PathAnnotator annotator(result, ip2as);

  auto print_path = [](const char* label,
                       const std::vector<asdata::Asn>& path) {
    std::cout << "  " << label << ":";
    for (asdata::Asn asn : path) std::cout << " AS" << asn;
    std::cout << "\n";
  };
  std::size_t shown = 0;
  for (const trace::Trace& t : sanitized.clean.traces()) {
    if (shown >= limit) break;
    const core::AnnotatedPath annotated = annotator.annotate(t);
    if (annotated.as_path == annotated.naive_as_path) continue;  // boring
    ++shown;
    std::cout << "trace to " << t.destination.to_string() << " (monitor "
              << t.monitor << ")\n";
    print_path("naive ", annotated.naive_as_path);
    print_path("mapit ", annotated.as_path);
  }
  if (shown == 0) {
    std::cout << "no traces with corrected AS paths in the first "
              << sanitized.clean.size() << "\n";
  }
  return 0;
}

int cmd_eval(Args& args) {
  const auto inferences_path = args.value("--inferences");
  const auto truth_path = args.value("--truth");
  if (!inferences_path || !truth_path) {
    std::cerr << "eval: --inferences and --truth are required\n";
    usage(kExitUsage);
  }
  std::optional<asdata::Asn> target;
  if (const auto t = args.value("--target")) {
    const auto parsed = net::parse_uint<asdata::Asn>(*t);
    if (!parsed) {
      std::cerr << "--target expects an ASN, got '" << *t << "'\n";
      usage(kExitUsage);
    }
    target = *parsed;
  }
  args.reject_unknown();

  auto inf_stream = open_or_die(*inferences_path);
  const std::vector<core::Inference> inferences =
      core::read_inferences(inf_stream);
  auto truth_stream = open_or_die(*truth_path);
  const std::vector<topo::TrueLink> truth =
      topo::read_true_links(truth_stream);

  // Lightweight link-coverage check (the full §5.2 verification rules need
  // the complete internal-interface inventory; use the library's Evaluator
  // for that). A truth link is matched when any inference on either of its
  // addresses names its AS pair; an inference on a truth address naming a
  // different pair is a mismatch.
  std::size_t in_scope = 0, matched = 0, mismatched = 0;
  for (const topo::TrueLink& link : truth) {
    if (target && link.as_a != *target && link.as_b != *target) continue;
    ++in_scope;
    bool ok = false, bad = false;
    for (const core::Inference& inference : inferences) {
      if (inference.half.address != link.addr_a &&
          inference.half.address != link.addr_b) {
        continue;
      }
      const auto pair = inference.as_pair();
      const auto want = link.as_a <= link.as_b
                            ? std::make_pair(link.as_a, link.as_b)
                            : std::make_pair(link.as_b, link.as_a);
      (pair == want ? ok : bad) = true;
    }
    matched += ok ? 1 : 0;
    mismatched += (!ok && bad) ? 1 : 0;
  }
  std::cout << "truth links in scope : " << in_scope << "\n"
            << "matched by inferences: " << matched << " ("
            << (in_scope == 0 ? 100.0 : 100.0 * static_cast<double>(matched) /
                                            static_cast<double>(in_scope))
            << "%)\n"
            << "wrong-pair inferences: " << mismatched << "\n";
  return 0;
}

int cmd_stats(Args& args) {
  const auto traces_path = args.value("--traces");
  if (!traces_path) {
    std::cerr << "stats: --traces is required\n";
    usage(kExitUsage);
  }
  const unsigned threads = parse_threads(args);
  const bool lenient = args.flag("--lenient");
  args.reject_unknown();
  LoadReport trace_report;
  auto stream = open_or_die(*traces_path);
  const trace::TraceCorpus corpus =
      trace::read_corpus(stream, threads, lenient ? &trace_report : nullptr);
  if (lenient) report_quarantine("traces", trace_report);
  const auto sanitized = trace::sanitize(corpus, threads);
  const auto all_addresses = corpus.distinct_addresses();
  const graph::InterfaceGraph graph(sanitized.clean, all_addresses, threads);
  const graph::GraphStats gs = graph.stats();

  std::cout << "traces                : " << corpus.size() << "\n"
            << "discarded (cycles)    : " << sanitized.stats.discarded_traces
            << " (" << 100.0 * sanitized.stats.discard_fraction() << "%)\n"
            << "TTL=0 hops removed    : " << sanitized.stats.removed_ttl0_hops
            << "\n"
            << "distinct addresses    : " << sanitized.stats.input_addresses
            << " -> " << sanitized.stats.retained_addresses << " ("
            << 100.0 * sanitized.stats.address_retention() << "% retained)\n"
            << "graph interfaces      : " << gs.interfaces << "\n"
            << "|N_F| > 1             : " << gs.forward_multi << "\n"
            << "|N_B| > 1             : " << gs.backward_multi << "\n"
            << "both-direction overlap: " << gs.both_directions_overlap
            << " (" << 100.0 * gs.overlap_fraction() << "%)\n"
            << "/31-numbered          : " << 100.0 * gs.slash31_fraction
            << "%\n";
  return 0;
}

int cmd_simulate(Args& args) {
  const auto out_dir = args.value("--out");
  if (!out_dir) {
    std::cerr << "simulate: --out is required\n";
    usage(kExitUsage);
  }
  eval::ExperimentConfig config = eval::ExperimentConfig::small();
  if (const auto scale = args.value("--scale")) {
    if (*scale == "standard") {
      config = eval::ExperimentConfig::standard();
    } else if (*scale != "small") {
      std::cerr << "unknown scale '" << *scale << "'\n";
      return kExitUsage;
    }
  }
  if (const auto seed = args.value("--seed")) {
    const auto parsed = net::parse_uint<std::uint64_t>(*seed);
    if (!parsed) {
      std::cerr << "--seed expects a non-negative integer, got '" << *seed
                << "'\n";
      return kExitUsage;
    }
    const std::uint64_t value = *parsed;
    config.topology.seed = value;
    config.simulation.seed = value ^ 0xFEEDu;
    config.dataset_seed = value ^ 0xBEEFu;
  }
  args.reject_unknown();

  const auto experiment = eval::Experiment::build(config);
  const std::filesystem::path dir(*out_dir);
  std::filesystem::create_directories(dir);

  {
    std::ofstream out(dir / "traces.txt");
    trace::write_corpus(out, experiment->raw_corpus());
  }
  {
    std::ofstream out(dir / "rib.txt");
    experiment->internet()
        .export_rib(config.noise, config.dataset_seed)
        .write(out);
  }
  {
    std::ofstream out(dir / "relationships.txt");
    experiment->relationships().write(out);
  }
  {
    std::ofstream out(dir / "as2org.txt");
    experiment->orgs().write(out);
  }
  {
    std::ofstream out(dir / "ixps.txt");
    experiment->ixps().write(out);
  }
  {
    std::ofstream out(dir / "truth.txt");
    topo::write_true_links(out, experiment->internet().true_links());
  }
  std::cout << "wrote traces.txt rib.txt relationships.txt as2org.txt "
               "ixps.txt truth.txt to "
            << dir.string() << "\n"
            << "(" << experiment->raw_corpus().size() << " traces over "
            << experiment->internet().ases().size() << " ASes)\n"
            << "try: mapit run --traces " << (dir / "traces.txt").string()
            << " --rib " << (dir / "rib.txt").string()
            << " --relationships " << (dir / "relationships.txt").string()
            << " --as2org " << (dir / "as2org.txt").string() << " --ixps "
            << (dir / "ixps.txt").string() << "\n";
  return 0;
}

int cmd_sweep(Args& args) {
  eval::DiffSweepOptions options;
  options.progress = &std::cerr;
  if (const auto rates = args.value("--rates")) {
    options.rates.clear();
    std::stringstream in(*rates);
    std::string token;
    while (std::getline(in, token, ',')) {
      std::size_t pos = 0;
      double rate = -1;
      try {
        rate = std::stod(token, &pos);
      } catch (const std::exception&) {
        pos = 0;
      }
      if (pos != token.size() || !(rate >= 0.0) || !(rate <= 1.0)) {
        std::cerr << "--rates expects comma-separated fractions in [0, 1], "
                     "got '" << token << "'\n";
        return kExitUsage;
      }
      options.rates.push_back(rate);
    }
  }
  if (const auto seeds = args.value("--seeds")) {
    options.seeds.clear();
    std::stringstream in(*seeds);
    std::string token;
    while (std::getline(in, token, ',')) {
      const auto seed = net::parse_uint<std::uint64_t>(token);
      if (!seed) {
        std::cerr << "--seeds expects comma-separated integers, got '"
                  << token << "'\n";
        return kExitUsage;
      }
      options.seeds.push_back(*seed);
    }
  }
  if (options.rates.empty() || options.seeds.empty()) {
    std::cerr << "sweep: need at least one rate and one seed\n";
    return kExitUsage;
  }
  if (const auto state = args.value("--state")) options.state_path = *state;
  options.threads = parse_threads(args);
  const auto out_path = args.value("--out");
  const auto baseline_path = args.value("--baseline");
  args.reject_unknown();

  const eval::DiffSweepReport report = eval::run_diff_sweep(options);
  const std::string json = eval::format_diff_sweep_json(report);
  if (out_path) {
    fault::write_file_atomic(*out_path, json);
  } else {
    std::cout << json;
  }

  if (baseline_path) {
    std::ifstream in(*baseline_path);
    if (!in) throw mapit::Error("cannot open baseline: " + *baseline_path);
    const eval::DiffSweepReport baseline =
        eval::parse_diff_sweep_json(in, *baseline_path);
    const std::vector<std::string> drift =
        eval::diff_sweep_drift(baseline, report);
    if (!drift.empty()) {
      std::cerr << "DIFF SWEEP DRIFT against " << *baseline_path << ":\n";
      for (const std::string& line : drift) std::cerr << "  " << line << "\n";
      return 1;
    }
    std::cerr << "diff sweep matches baseline " << *baseline_path << " ("
              << report.cells.size() << " cells)\n";
  }
  return kExitOk;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage(kExitUsage);
  const std::string command = argv[1];
  Args args(argc, argv);
  try {
    if (command == "run") return cmd_run(args);
    if (command == "eval") return cmd_eval(args);
    if (command == "paths") return cmd_paths(args);
    if (command == "stats") return cmd_stats(args);
    if (command == "simulate") return cmd_simulate(args);
    if (command == "sweep") return cmd_sweep(args);
    if (command == "snapshot") return cmd_snapshot(args);
    if (command == "query") return cmd_query(args);
    if (command == "serve") return cmd_serve(args);
    if (command == "ingest") return cmd_ingest(args);
    if (command == "send") return cmd_send(args);
    if (command == "supervise") return cmd_supervise(args);
    if (command == "help" || command == "--help" || command == "-h") usage(0);
    std::cerr << "unknown command '" << command << "'\n";
    usage(kExitUsage);
  } catch (const ingest::TransportAuthError& error) {
    std::cerr << "transport error: " << error.what() << "\n";
    return kExitTransportRejected;
  } catch (const ingest::TransportRetriesExhausted& error) {
    std::cerr << "transport error: " << error.what() << "\n";
    return kExitTransportGaveUp;
  } catch (const core::CheckpointError& error) {
    std::cerr << "checkpoint error: " << error.what() << "\n";
    return kExitCheckpointMismatch;
  } catch (const mapit::Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return kExitLoadError;
  }
}
