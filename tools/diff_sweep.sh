#!/usr/bin/env bash
# Differential baseline sweep: run MAP-IT and the §5.6 heuristics across
# an artifact-rate × seed grid and diff the integer results against the
# committed DIFF_sweep.json. Any disagreement is real engine/baseline
# drift (the pipeline is seeded and thread-invariant), so the script
# exits non-zero on the first drifted cell.
#
#   tools/diff_sweep.sh                 # default grid vs committed baseline
#   tools/diff_sweep.sh --regen         # re-run grid and rewrite baseline
#
# Env vars:
#   MAPIT_BIN    path to the mapit CLI (default: <repo>/build/tools/mapit)
#   SWEEP_RATES  comma-separated artifact-rate multipliers (default 0,0.5,1)
#   SWEEP_SEEDS  comma-separated experiment seeds (default 7,9)
#   SWEEP_STATE  resumable state file; a killed sweep picks up at the
#                first unfinished cell (default: <build>/diff_sweep.state)
#   SWEEP_THREADS engine worker threads (default 1; output-invariant)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
MAPIT_BIN="${MAPIT_BIN:-${REPO_ROOT}/build/tools/mapit}"
SWEEP_RATES="${SWEEP_RATES:-0,0.5,1}"
SWEEP_SEEDS="${SWEEP_SEEDS:-7,9}"
SWEEP_STATE="${SWEEP_STATE:-$(dirname "${MAPIT_BIN}")/../diff_sweep.state}"
SWEEP_THREADS="${SWEEP_THREADS:-1}"
BASELINE="${REPO_ROOT}/DIFF_sweep.json"

if [[ ! -x "${MAPIT_BIN}" ]]; then
  echo "diff_sweep.sh: mapit CLI not found at ${MAPIT_BIN} (build first," >&2
  echo "or point MAPIT_BIN at the binary)" >&2
  exit 2
fi

if [[ "${1:-}" == "--regen" ]]; then
  rm -f "${SWEEP_STATE}"
  "${MAPIT_BIN}" sweep --rates "${SWEEP_RATES}" --seeds "${SWEEP_SEEDS}" \
    --threads "${SWEEP_THREADS}" --state "${SWEEP_STATE}" --out "${BASELINE}"
  echo "diff_sweep.sh: rewrote ${BASELINE}"
  exit 0
fi

if [[ ! -f "${BASELINE}" ]]; then
  echo "diff_sweep.sh: committed baseline ${BASELINE} missing" >&2
  echo "(run tools/diff_sweep.sh --regen to create it)" >&2
  exit 2
fi

"${MAPIT_BIN}" sweep --rates "${SWEEP_RATES}" --seeds "${SWEEP_SEEDS}" \
  --threads "${SWEEP_THREADS}" --state "${SWEEP_STATE}" \
  --baseline "${BASELINE}" > /dev/null
