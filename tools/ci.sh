#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, run the full test suite, then smoke the
# micro-benchmarks (minimal measurement time — this checks the bench binaries
# run, not their numbers). Run from anywhere; operates on the repo root.
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-${REPO_ROOT}/build}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

echo "== configure =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test =="
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== bench smoke =="
"${BUILD_DIR}/bench/perf_micro" --benchmark_min_time=0.01

echo "CI OK"
