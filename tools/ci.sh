#!/usr/bin/env bash
# Single CI entry point: configure, build, test, smoke stages. Run from
# anywhere; operates on the repo root. Behaviour is driven by env vars so
# every job in .github/workflows/ci.yml calls this same script:
#
#   STAGES        comma/space-separated stage list. `configure` and `build`
#                 always run first; the rest are selectable:
#                   test       ctest (honours CTEST_LABELS)
#                   fault      fault-injection matrices (ctest -L fault)
#                   checkpoint kill/resume matrix through the real binary
#                   bench      bench smoke + inference-count tripwire
#                   snapshot   CLI snapshot + golden queries + CRC tripwire
#                   async      epoll server smoke over both wire protocols
#                   ingest     streaming-ingest smoke: cold-vs-incremental
#                              equivalence + kill-mid-journal resume
#                   remote     MDP1 remote delta transport smoke: `mapit
#                              send` against `mapit ingest --listen`,
#                              kill -9 the sender mid-stream twice, restart,
#                              and require the published snapshot to be
#                              byte-identical to a cold batch run; wrong
#                              secret must be rejected with exit 7
#                   supervise  self-healing smoke: supervised worker fleet,
#                              kill -9 one mid-replay, zero failed golden
#                              answers + automatic restart, SIGTERM drain
#                   sweep      differential baseline sweep vs DIFF_sweep.json
#                   fuzz       bounded libFuzzer smoke via tools/fuzz.sh
#                              (clang only; replays regressions first)
#                 Unset: the legacy per-stage toggles below pick the set.
#                 A stage-timing table is printed on exit either way.
#   BUILD_TYPE    CMake build type (default RelWithDebInfo)
#   SANITIZE      MAPIT_SANITIZE value, e.g. "address;undefined" or "thread"
#                 (default: none)
#   WERROR        MAPIT_WERROR, ON or OFF (default OFF)
#   CTEST_LABELS  regex for ctest -L, e.g. "unit|integration" to skip the
#                 slow standard-scale tests in sanitizer jobs (default: all)
#   BENCH_SMOKE   1 = run the bench smoke + inference-count tripwire,
#                 0 = skip, e.g. under sanitizers (default 1)
#   SNAPSHOT_SMOKE 1 = build a snapshot through the CLI, run the canned
#                 query batch against the committed golden answers, and
#                 check the standard run's artifact CRC against the
#                 committed BENCH_query.json (default: BENCH_SMOKE)
#   FAULT_MATRIX  1 = run the fault-injection matrices (ctest -L fault):
#                 crash-at-every-syscall artifact tests and the server
#                 chaos/soak tests. Cheap; sanitizer jobs rely on it
#                 (default 1)
#   CHECKPOINT_MATRIX 1 = kill the CLI at every run boundary (--stop-after),
#                 chain --resume until completion for threads 1 and 8, and
#                 require byte-identical inferences vs an uninterrupted
#                 run; also checks the deadline checkpoint-and-exit path
#                 (default: FAULT_MATRIX)
#   ASYNC_SMOKE   1 = boot `mapit serve --async` on a real snapshot and
#                 replay the canned query batch over both wire protocols
#                 (line and binary), diffing each response stream against
#                 the committed golden answers; ends with a SIGTERM
#                 graceful-drain check (default: SNAPSHOT_SMOKE)
#   SUPERVISE_SMOKE 1 = boot a supervised two-worker serve fleet, kill -9
#                 one worker mid-replay, and require zero failed golden
#                 answers plus a recorded automatic restart; ends with a
#                 SIGTERM cascade that must drain the fleet
#                 (default: ASYNC_SMOKE)
#   INGEST_SMOKE  1 = stream the tail of a seeded corpus through
#                 `mapit ingest --drain` and require the published snapshot
#                 to be byte-identical to a cold `mapit snapshot` over the
#                 full corpus; then truncate the delta journal twice (deep
#                 cut and torn frame) and re-ingest — every resume must
#                 converge to the same bytes (default: SNAPSHOT_SMOKE)
#   REMOTE_INGEST_SMOKE 1 = stream a delta corpus with `mapit send` into
#                 `mapit ingest --listen` over the authenticated MDP1
#                 transport, kill -9 the sender mid-stream twice and
#                 restart it (the receiver's (session, seq) watermark must
#                 drop every replayed batch), then require the published
#                 snapshot and a journal-replay re-run to be byte-identical
#                 to a cold `mapit snapshot` over base+delta; also checks
#                 that a wrong shared secret is refused at HELLO with
#                 exit 7 and no journal growth (default: INGEST_SMOKE)
#   DIFF_SWEEP    1 = run the MAP-IT vs baselines sweep over the default
#                 artifact-rate × seed grid and require exact agreement
#                 with the committed DIFF_sweep.json (default: BENCH_SMOKE)
#   FUZZ_SMOKE    1 = replay committed fuzz regressions, then fuzz every
#                 harness for FUZZ_TIME seconds under ASan+UBSan. Needs
#                 clang; see tools/fuzz.sh (default 0)
#   FUZZ_TIME     seconds per fuzz target in the fuzz stage (default 60)
#   BUILD_DIR     override the derived build directory
#   JOBS          parallel build/test jobs (default: nproc)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
SANITIZE="${SANITIZE:-}"
WERROR="${WERROR:-OFF}"
CTEST_LABELS="${CTEST_LABELS:-}"
BENCH_SMOKE="${BENCH_SMOKE:-1}"
SNAPSHOT_SMOKE="${SNAPSHOT_SMOKE:-${BENCH_SMOKE}}"
FAULT_MATRIX="${FAULT_MATRIX:-1}"
CHECKPOINT_MATRIX="${CHECKPOINT_MATRIX:-${FAULT_MATRIX}}"
ASYNC_SMOKE="${ASYNC_SMOKE:-${SNAPSHOT_SMOKE}}"
SUPERVISE_SMOKE="${SUPERVISE_SMOKE:-${ASYNC_SMOKE}}"
INGEST_SMOKE="${INGEST_SMOKE:-${SNAPSHOT_SMOKE}}"
REMOTE_INGEST_SMOKE="${REMOTE_INGEST_SMOKE:-${INGEST_SMOKE}}"
DIFF_SWEEP="${DIFF_SWEEP:-${BENCH_SMOKE}}"
FUZZ_SMOKE="${FUZZ_SMOKE:-0}"
FUZZ_TIME="${FUZZ_TIME:-60}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

# One build dir per (type, sanitizer) combination so matrix jobs and local
# runs never poison each other's caches.
if [[ -z "${BUILD_DIR:-}" ]]; then
  suffix="$(echo "${BUILD_TYPE}" | tr '[:upper:]' '[:lower:]')"
  if [[ -n "${SANITIZE}" ]]; then
    suffix+="-$(echo "${SANITIZE}" | tr ';' '-')"
  fi
  BUILD_DIR="${REPO_ROOT}/build-${suffix}"
fi

# ---------------------------------------------------------------------------
# Stage runner: every stage goes through run_stage so the timing table on
# exit reflects exactly what ran — also when a stage fails.
STAGE_NAMES=()
STAGE_TIMES=()
STAGE_RESULTS=()

print_stage_table() {
  echo
  echo "== stage timings =="
  printf '%-12s %10s  %s\n' "stage" "seconds" "result"
  local i
  for i in "${!STAGE_NAMES[@]}"; do
    printf '%-12s %10s  %s\n' "${STAGE_NAMES[$i]}" "${STAGE_TIMES[$i]}" \
      "${STAGE_RESULTS[$i]}"
  done
}
trap print_stage_table EXIT

run_stage() {
  local name="$1"
  local start end
  start=$(date +%s%N)
  STAGE_NAMES+=("${name}")
  STAGE_TIMES+=("-")
  STAGE_RESULTS+=("FAILED")
  local idx=$((${#STAGE_NAMES[@]} - 1))
  "stage_${name}"
  end=$(date +%s%N)
  STAGE_TIMES[idx]=$(awk -v n=$((end - start)) 'BEGIN{printf "%.1f", n/1e9}')
  STAGE_RESULTS[idx]="ok"
}

# ---------------------------------------------------------------------------

stage_configure() {
  echo "== configure (${BUILD_TYPE}${SANITIZE:+, sanitize=${SANITIZE}}) =="
  local cmake_args=(
    -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
    -DMAPIT_WERROR="${WERROR}"
    -DMAPIT_SANITIZE="${SANITIZE}"
  )
  if command -v ccache >/dev/null 2>&1; then
    cmake_args+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
  fi
  cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" "${cmake_args[@]}"
}

stage_build() {
  echo "== build =="
  cmake --build "${BUILD_DIR}" -j "${JOBS}"
}

stage_test() {
  echo "== test${CTEST_LABELS:+ (-L '${CTEST_LABELS}')} =="
  local ctest_args=(--test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}")
  if [[ -n "${CTEST_LABELS}" ]]; then
    ctest_args+=(-L "${CTEST_LABELS}")
  fi
  ctest "${ctest_args[@]}"
}

stage_fault() {
  echo "== fault matrix (-L fault) =="
  # Fault-injection matrices have their own label (and timeout) so the
  # sanitizer jobs — whose CTEST_LABELS exclude them above — still run
  # them: crash/ENOSPC/short-write at every syscall of the atomic artifact
  # writer, and the query-server chaos/soak suite.
  ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}" -L fault
}

stage_checkpoint() {
  echo "== checkpoint kill/resume matrix =="
  # Kill-at-every-pass proof through the real binary: every invocation
  # advances exactly one run boundary, checkpoints, and exits 5; the chain
  # of --resume legs must converge to byte-identical inferences for every
  # thread count, and a completed run must clean up its checkpoint.
  local mapit_bin="${BUILD_DIR}/tools/mapit"
  local work="${BUILD_DIR}/checkpoint_matrix"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${mapit_bin}" simulate --out "${work}" --seed 9
  local inputs=(--traces "${work}/traces.txt" --rib "${work}/rib.txt"
                --relationships "${work}/relationships.txt"
                --as2org "${work}/as2org.txt" --ixps "${work}/ixps.txt")
  "${mapit_bin}" run "${inputs[@]}" --threads 1 \
    --output "${work}/reference.txt" \
    --uncertain "${work}/reference_uncertain.txt"

  local threads ckpt rc legs
  for threads in 1 8; do
    ckpt="${work}/ckpt-${threads}"
    local flags=("${inputs[@]}" --threads "${threads}"
                 --output "${work}/resumed-${threads}.txt"
                 --uncertain "${work}/resumed-${threads}-uncertain.txt")
    set +e
    "${mapit_bin}" run "${flags[@]}" --checkpoint-dir "${ckpt}" \
      --stop-after 1
    rc=$?
    legs=0
    while [[ "${rc}" -eq 5 ]]; do
      legs=$((legs + 1))
      if [[ "${legs}" -gt 50 ]]; then
        echo "resume chain did not terminate in 50 legs" >&2
        exit 1
      fi
      "${mapit_bin}" run "${flags[@]}" --resume "${ckpt}" --stop-after 1
      rc=$?
    done
    set -e
    if [[ "${rc}" -ne 0 ]]; then
      echo "resume leg exited ${rc} (threads=${threads})" >&2
      exit 1
    fi
    if [[ "${legs}" -lt 2 ]]; then
      echo "resume chain too short to prove anything (${legs} legs)" >&2
      exit 1
    fi
    cmp "${work}/reference.txt" "${work}/resumed-${threads}.txt"
    cmp "${work}/reference_uncertain.txt" \
      "${work}/resumed-${threads}-uncertain.txt"
    if [[ -e "${ckpt}/engine.ckpt" ]]; then
      echo "completed run did not remove its checkpoint" >&2
      exit 1
    fi
    echo "threads=${threads}: ${legs} resume legs, byte-identical: ok"
  done

  # Deadline supervision: an already-expired budget must checkpoint and
  # exit 5 at the first boundary, leaving a valid checkpoint a plain
  # --resume completes from — with the same bytes.
  local dflags=("${inputs[@]}" --threads 1
                --output "${work}/deadline.txt"
                --uncertain "${work}/deadline_uncertain.txt")
  set +e
  "${mapit_bin}" run "${dflags[@]}" \
    --checkpoint-dir "${work}/ckpt-deadline" --deadline 0.000001
  rc=$?
  set -e
  if [[ "${rc}" -ne 5 ]]; then
    echo "expired deadline should exit 5, got ${rc}" >&2
    exit 1
  fi
  "${mapit_bin}" run "${dflags[@]}" --resume "${work}/ckpt-deadline"
  cmp "${work}/reference.txt" "${work}/deadline.txt"
  echo "deadline checkpoint-and-exit + resume: ok"
}

stage_bench() {
  echo "== bench smoke =="
  # Minimal measurement time: checks the bench binaries run, not their
  # numbers.
  "${BUILD_DIR}/bench/perf_micro" --benchmark_min_time=0.01

  echo "== inference-count tripwire =="
  # perf_engine_report re-runs the standard experiment; its inference count
  # must match the committed BENCH_engine.json. A drift means the engine's
  # output changed — that must be a deliberate, reviewed update of the
  # committed report, never a side effect.
  local report="${BUILD_DIR}/bench_smoke_report.json"
  "${BUILD_DIR}/bench/perf_engine_report" --reps 1 --threads 1,2 \
    --out "${report}"
  python3 - "${report}" "${REPO_ROOT}/BENCH_engine.json" <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
got, want = fresh["standard_inferences"], committed["standard_inferences"]
if got != want:
    sys.exit(f"standard_inferences drifted: got {got}, committed {want}")
print(f"standard_inferences == {want}: ok")
EOF
}

stage_snapshot() {
  echo "== snapshot smoke =="
  # Build a snapshot through the CLI from seeded synthetic datasets, answer
  # the committed canned query batch, and diff against the committed golden
  # answers. The batch ends with `stats`, whose answer embeds the artifact's
  # CRC — so byte-determinism drift, format drift, and engine-output drift
  # all fail this diff, not just protocol regressions.
  local mapit_bin="${BUILD_DIR}/tools/mapit"
  local work="${BUILD_DIR}/snapshot_smoke"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${mapit_bin}" simulate --out "${work}" --seed 9
  "${mapit_bin}" snapshot \
    --traces "${work}/traces.txt" --rib "${work}/rib.txt" \
    --relationships "${work}/relationships.txt" \
    --as2org "${work}/as2org.txt" --ixps "${work}/ixps.txt" \
    --out "${work}/snapshot.bin"
  "${mapit_bin}" query "${work}/snapshot.bin" \
    < "${REPO_ROOT}/tests/cli/golden_queries.txt" > "${work}/answers.txt"
  diff -u "${REPO_ROOT}/tests/cli/golden_answers.txt" "${work}/answers.txt"
  echo "golden query answers: ok"

  echo "== snapshot crash matrix =="
  # Crash-at-every-injection-point proof for the artifact the smoke above
  # just consumed: whatever syscall dies mid-replace, the destination path
  # must still hold a complete, CRC-valid snapshot.
  "${BUILD_DIR}/tests/mapit_store_fault_test"

  echo "== snapshot checksum tripwire (standard run) =="
  # perf_query_report rebuilds the standard experiment's snapshot; its CRC
  # and inference count must match the committed BENCH_query.json. Any
  # change to the engine's output or the artifact encoding must arrive as a
  # deliberate update of the committed report.
  local query_report="${BUILD_DIR}/snapshot_smoke_report.json"
  "${BUILD_DIR}/bench/perf_query_report" --reps 1 --out "${query_report}"
  python3 - "${query_report}" "${REPO_ROOT}/BENCH_query.json" <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
for key in ("snapshot_crc32", "snapshot_bytes", "standard_inferences"):
    got, want = fresh[key], committed[key]
    if got != want:
        sys.exit(f"{key} drifted: got {got}, committed {want}")
    print(f"{key} == {want}: ok")
EOF
}

stage_async() {
  echo "== async serve smoke =="
  # Boot the epoll event-loop server through the real binary and replay the
  # canned query batch over BOTH wire protocols. The line-protocol response
  # must be byte-identical to the committed golden answers — the same bytes
  # `mapit query` and the blocking server produce — and the binary-protocol
  # frame payloads must reassemble to the same file. SIGTERM at the end
  # must drain gracefully (exit 0), not kill the loop mid-answer.
  local mapit_bin="${BUILD_DIR}/tools/mapit"
  local work="${BUILD_DIR}/async_smoke"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${mapit_bin}" simulate --out "${work}" --seed 9
  "${mapit_bin}" snapshot \
    --traces "${work}/traces.txt" --rib "${work}/rib.txt" \
    --relationships "${work}/relationships.txt" \
    --as2org "${work}/as2org.txt" --ixps "${work}/ixps.txt" \
    --out "${work}/snapshot.bin"

  "${mapit_bin}" serve "${work}/snapshot.bin" --async --reuseport \
    --backlog 512 2> "${work}/serve.log" &
  local serve_pid=$!
  trap 'kill "${serve_pid}" 2>/dev/null || true; print_stage_table' EXIT
  local port=""
  local _i
  for _i in $(seq 1 100); do
    port="$(sed -n 's/^serving .* on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "${work}/serve.log" | head -n 1)"
    [[ -n "${port}" ]] && break
    if ! kill -0 "${serve_pid}" 2>/dev/null; then
      echo "async server died during startup:" >&2
      cat "${work}/serve.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "async server never announced its port" >&2
    cat "${work}/serve.log" >&2
    exit 1
  fi

  local protocol
  for protocol in line binary; do
    python3 - "${port}" "${REPO_ROOT}/tests/cli/golden_queries.txt" \
      "${work}/${protocol}_answers.txt" "${protocol}" <<'EOF'
import socket, struct, sys

port, query_path, out_path, protocol = sys.argv[1:5]
queries = []
for line in open(query_path):
    line = line.strip()
    if line and not line.startswith("#"):
        queries.append(line)

sock = socket.create_connection(("127.0.0.1", int(port)), timeout=30)
sock.settimeout(30)
if protocol == "line":
    sock.sendall(("\n".join(queries) + "\n").encode())
else:
    request = b"MQB1"
    for query in queries:
        payload = query.encode()
        request += struct.pack("<I", len(payload)) + payload
    sock.sendall(request)
sock.shutdown(socket.SHUT_WR)
data = b""
while True:
    chunk = sock.recv(65536)
    if not chunk:
        break
    data += chunk
sock.close()

if protocol == "binary":
    payloads, offset = [], 0
    while offset < len(data):
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        payloads.append(data[offset:offset + length])
        offset += length
    data = b"\n".join(payloads) + b"\n"
open(out_path, "wb").write(data)
EOF
    diff -u "${REPO_ROOT}/tests/cli/golden_answers.txt" \
      "${work}/${protocol}_answers.txt"
    echo "async ${protocol}-protocol golden answers: ok"
  done

  kill -TERM "${serve_pid}"
  wait "${serve_pid}"
  trap print_stage_table EXIT
  echo "async SIGTERM graceful drain: ok"
}

stage_ingest() {
  echo "== ingest cold-vs-incremental equivalence =="
  # The streaming-ingestion signature invariant, proven through the real
  # binary: folding a delta stream onto a base corpus must publish a
  # snapshot byte-identical to a cold batch run over the concatenated
  # corpus — for any batching boundary. `cmp` (not a CRC) so any drift in
  # any byte fails.
  local mapit_bin="${BUILD_DIR}/tools/mapit"
  local work="${BUILD_DIR}/ingest_smoke"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${mapit_bin}" simulate --out "${work}" --seed 9
  local datasets=(--rib "${work}/rib.txt"
                  --relationships "${work}/relationships.txt"
                  --as2org "${work}/as2org.txt" --ixps "${work}/ixps.txt")

  # Split the corpus: the first 3/4 is the base batch the pipeline starts
  # from, the rest arrives later as an appended delta stream.
  local total base_lines
  total=$(wc -l < "${work}/traces.txt")
  base_lines=$((total * 3 / 4))
  head -n "${base_lines}" "${work}/traces.txt" > "${work}/base.txt"
  tail -n "+$((base_lines + 1))" "${work}/traces.txt" > "${work}/delta.txt"

  "${mapit_bin}" snapshot --traces "${work}/traces.txt" "${datasets[@]}" \
    --out "${work}/cold.snap"

  local ingest_flags=(--traces "${work}/base.txt" "${datasets[@]}"
                      --journal "${work}/deltas.jnl"
                      --out "${work}/live.snap"
                      --follow "${work}/delta.txt" --drain)
  "${mapit_bin}" ingest "${ingest_flags[@]}" 2> "${work}/ingest.log"
  cmp "${work}/cold.snap" "${work}/live.snap"
  echo "incremental publish == cold snapshot: ok (${total} traces," \
       "$((total - base_lines)) streamed)"

  echo "== ingest kill-mid-journal resume =="
  # Simulate a crash that tore the journal tail: chop bytes off the end,
  # re-run, and require the resumed pipeline — replayed prefix plus
  # re-tailed delta lines — to publish the same bytes. Two cuts: a deep
  # one that loses whole records, and a 3-byte one that tears a frame
  # mid-header.
  local size cut
  for cut in 4096 3; do
    size=$(stat -c %s "${work}/deltas.jnl")
    if [[ "${size}" -le "${cut}" ]]; then
      echo "journal too small (${size} bytes) for a ${cut}-byte cut" >&2
      exit 1
    fi
    truncate -s $((size - cut)) "${work}/deltas.jnl"
    rm -f "${work}/live.snap"
    "${mapit_bin}" ingest "${ingest_flags[@]}" 2>> "${work}/ingest.log"
    cmp "${work}/cold.snap" "${work}/live.snap"
    echo "resume after ${cut}-byte journal cut: byte-identical: ok"
  done
}

stage_remote() {
  echo "== remote delta transport (MDP1) kill -9 resilience =="
  # The exactly-once claim, proven through the real binaries: `mapit send`
  # streams a delta file into `mapit ingest --listen` over the framed,
  # authenticated transport; the sender is kill -9'd mid-stream twice and
  # restarted (resuming from the receiver's durable watermark, resending
  # anything unACKed), and the final published snapshot must still be
  # byte-identical (cmp) to a cold batch run over base+delta. A wrong
  # shared secret must be refused at HELLO with exit 7 and zero journal
  # writes, and a receiver restart replaying the journal must republish
  # the same bytes.
  local mapit_bin="${BUILD_DIR}/tools/mapit"
  local work="${BUILD_DIR}/remote_smoke"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${mapit_bin}" simulate --out "${work}" --seed 11
  local datasets=(--rib "${work}/rib.txt"
                  --relationships "${work}/relationships.txt"
                  --as2org "${work}/as2org.txt" --ixps "${work}/ixps.txt")

  local total base_lines
  total=$(wc -l < "${work}/traces.txt")
  base_lines=$((total * 3 / 4))
  head -n "${base_lines}" "${work}/traces.txt" > "${work}/base.txt"
  tail -n "+$((base_lines + 1))" "${work}/traces.txt" > "${work}/delta.txt"

  "${mapit_bin}" snapshot --traces "${work}/traces.txt" "${datasets[@]}" \
    --out "${work}/cold.snap"

  printf 'remote-smoke-shared-secret\n' > "${work}/secret"
  printf 'not-the-shared-secret\n' > "${work}/wrong.secret"

  # --listen 0 binds an ephemeral port; scrape it from the startup log
  # line ("ingest: listening (MDP1) on 127.0.0.1:<port>, ...").
  "${mapit_bin}" ingest --traces "${work}/base.txt" "${datasets[@]}" \
    --journal "${work}/deltas.jnl" --out "${work}/live.snap" \
    --listen 0 --secret-file "${work}/secret" \
    --batch-seconds 0.1 --poll-interval 0.02 \
    2> "${work}/ingest.log" &
  local ingest_pid=$!
  trap 'kill "${ingest_pid}" 2>/dev/null || true; print_stage_table' EXIT

  local port="" _i
  for _i in $(seq 1 100); do
    port="$(sed -n 's/.*listening (MDP1) on 127\.0\.0\.1:\([0-9]*\).*/\1/p' \
      "${work}/ingest.log" | head -n 1)"
    if [[ -n "${port}" ]]; then break; fi
    if ! kill -0 "${ingest_pid}" 2>/dev/null; then
      echo "ingest exited before binding its MDP1 listener:" >&2
      cat "${work}/ingest.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "ingest never logged its MDP1 listen port" >&2
    cat "${work}/ingest.log" >&2
    exit 1
  fi

  # Wrong shared secret: refused at HELLO with the dedicated exit code,
  # before anything reaches the journal.
  local journal_before rc=0
  journal_before=$(stat -c %s "${work}/deltas.jnl")
  "${mapit_bin}" send --file "${work}/delta.txt" --port "${port}" \
    --session smoke --secret-file "${work}/wrong.secret" \
    2> "${work}/send_rejected.log" || rc=$?
  if [[ "${rc}" != 7 ]]; then
    echo "wrong secret: expected exit 7 (auth rejected), got ${rc}:" >&2
    cat "${work}/send_rejected.log" >&2
    exit 1
  fi
  if [[ "$(stat -c %s "${work}/deltas.jnl")" != "${journal_before}" ]]; then
    echo "rejected handshake grew the delta journal" >&2
    exit 1
  fi
  echo "wrong secret refused at HELLO (exit 7, no journal writes): ok"

  # Stream the delta with small batches so a kill -9 reliably lands with
  # batches in flight; --follow keeps the sender alive (tailing) even if
  # it finishes early, so the kill always interrupts a live session.
  local send_flags=(--file "${work}/delta.txt" --port "${port}"
                    --session smoke --secret-file "${work}/secret"
                    --batch-lines 20 --batch-seconds 0.05
                    --poll-interval 0.02 --window 2)
  local round send_pid
  for round in 1 2; do
    "${mapit_bin}" send "${send_flags[@]}" --follow \
      2>> "${work}/send.log" &
    send_pid=$!
    sleep 0.4
    kill -9 "${send_pid}" 2>/dev/null || true
    wait "${send_pid}" 2>/dev/null || true
    echo "sender kill -9 round ${round}: ok"
  done
  # The final run drains to EOF and exits once every line is ACKed —
  # i.e. journaled and fsynced by the receiver. Anything the kills left
  # unACKed is resent; anything already durable is replayed and must be
  # dropped by the (session, seq) watermark.
  "${mapit_bin}" send "${send_flags[@]}" 2>> "${work}/send.log"

  kill -TERM "${ingest_pid}"
  rc=0
  wait "${ingest_pid}" || rc=$?
  trap print_stage_table EXIT
  if [[ "${rc}" != 5 ]]; then
    echo "ingest: expected exit 5 (interrupted by SIGTERM), got ${rc}:" >&2
    cat "${work}/ingest.log" >&2
    exit 1
  fi
  cmp "${work}/cold.snap" "${work}/live.snap"
  echo "remote stream survives two sender kill -9s: byte-identical: ok" \
       "(${total} traces, $((total - base_lines)) sent remotely)"

  # Receiver restart: replaying the journal (remote batches + watermarks)
  # alone must republish the same bytes.
  rm -f "${work}/live.snap"
  "${mapit_bin}" ingest --traces "${work}/base.txt" "${datasets[@]}" \
    --journal "${work}/deltas.jnl" --out "${work}/live.snap" --drain \
    2>> "${work}/ingest.log"
  cmp "${work}/cold.snap" "${work}/live.snap"
  echo "receiver restart journal replay: byte-identical: ok"
}

stage_supervise() {
  echo "== supervise self-healing smoke =="
  # Boot a supervised fleet — two `serve --async --reuseport` workers
  # sharing one port — then kill -9 one worker mid-replay. The replay
  # retries transient connection errors (a reset is exactly what a killed
  # worker's in-flight connections see) but treats any WRONG bytes as a
  # hard failure: the surviving worker must keep answering the golden
  # batch while the supervisor restarts its sibling. Ends with a SIGTERM
  # cascade that must drain the whole fleet and exit 0.
  local mapit_bin="${BUILD_DIR}/tools/mapit"
  local work="${BUILD_DIR}/supervise_smoke"
  rm -rf "${work}"
  mkdir -p "${work}"
  "${mapit_bin}" simulate --out "${work}" --seed 9
  "${mapit_bin}" snapshot \
    --traces "${work}/traces.txt" --rib "${work}/rib.txt" \
    --relationships "${work}/relationships.txt" \
    --as2org "${work}/as2org.txt" --ixps "${work}/ixps.txt" \
    --out "${work}/snapshot.bin"

  local port
  port="$(python3 -c 'import socket
s = socket.socket()
s.bind(("127.0.0.1", 0))
print(s.getsockname()[1])')"

  cat > "${work}/fleet.spec" <<EOF
set restart-base-ms 100
set restart-cap-ms 1000
set breaker-restarts 10
set breaker-window-s 60
set drain-s 10
worker web1 ${mapit_bin} serve ${work}/snapshot.bin --async --reuseport --port ${port}
worker web2 ${mapit_bin} serve ${work}/snapshot.bin --async --reuseport --port ${port}
EOF

  "${mapit_bin}" supervise "${work}/fleet.spec" 2> "${work}/supervise.log" &
  local super_pid=$!
  trap 'kill "${super_pid}" 2>/dev/null || true; print_stage_table' EXIT

  local pid1="" _i
  for _i in $(seq 1 100); do
    pid1="$(sed -n 's/^supervise: started web1 pid \([0-9]*\).*/\1/p' \
      "${work}/supervise.log" | head -n 1)"
    if [[ -n "${pid1}" ]] && \
       grep -q '^supervise: started web2 pid ' "${work}/supervise.log"; then
      break
    fi
    pid1=""
    if ! kill -0 "${super_pid}" 2>/dev/null; then
      echo "supervisor died during startup:" >&2
      cat "${work}/supervise.log" >&2
      exit 1
    fi
    sleep 0.1
  done
  if [[ -z "${pid1}" ]]; then
    echo "supervisor never reported both workers started" >&2
    cat "${work}/supervise.log" >&2
    exit 1
  fi

  # One golden replay round: retries connection-level failures, hard-fails
  # on any byte drift. Reused for every round below.
  replay_round() {
    python3 - "${port}" "${REPO_ROOT}/tests/cli/golden_queries.txt" \
      "${work}/replay_answers.txt" <<'EOF'
import socket, sys, time

port, query_path, out_path = sys.argv[1:4]
queries = [l.strip() for l in open(query_path)
           if l.strip() and not l.startswith("#")]
request = ("\n".join(queries) + "\n").encode()
deadline = time.monotonic() + 60
last = None
while time.monotonic() < deadline:
    try:
        sock = socket.create_connection(("127.0.0.1", int(port)), timeout=10)
        sock.settimeout(10)
        sock.sendall(request)
        sock.shutdown(socket.SHUT_WR)
        data = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            data += chunk
        sock.close()
        open(out_path, "wb").write(data)
        sys.exit(0)
    except OSError as error:
        last = error  # reset/refused mid-kill: retry against the survivor
        time.sleep(0.2)
sys.exit(f"replay never completed: {last}")
EOF
    diff -u "${REPO_ROOT}/tests/cli/golden_answers.txt" \
      "${work}/replay_answers.txt"
  }

  local round
  for round in 1 2 3; do replay_round; done
  echo "supervised fleet golden answers (pre-kill): ok"

  kill -9 "${pid1}"
  # The kill must not cost clients a single wrong answer while the
  # supervisor brings the worker back.
  for round in 1 2 3 4 5; do replay_round; done
  echo "golden answers across kill -9 of web1 (pid ${pid1}): ok"

  local restarted=""
  for _i in $(seq 1 100); do
    if grep -q '^supervise: restarted web1 ' "${work}/supervise.log"; then
      restarted=yes
      break
    fi
    sleep 0.1
  done
  if [[ -z "${restarted}" ]]; then
    echo "supervisor never recorded the web1 restart" >&2
    cat "${work}/supervise.log" >&2
    exit 1
  fi
  replay_round
  echo "automatic restart recorded and fleet still golden: ok"

  kill -TERM "${super_pid}"
  local rc=0
  wait "${super_pid}" || rc=$?
  trap print_stage_table EXIT
  if [[ "${rc}" -ne 0 ]]; then
    echo "supervise exited ${rc} after SIGTERM (want 0):" >&2
    cat "${work}/supervise.log" >&2
    exit 1
  fi
  if ! grep -q '^supervise: fleet stopped' "${work}/supervise.log"; then
    echo "supervisor did not report a drained fleet" >&2
    cat "${work}/supervise.log" >&2
    exit 1
  fi
  echo "supervise SIGTERM cascade drained the fleet: ok"
}

stage_sweep() {
  echo "== differential baseline sweep =="
  # MAP-IT vs the §5.6 heuristics across the artifact-rate × seed grid;
  # the fresh integers must agree exactly with the committed
  # DIFF_sweep.json (the pipeline is seeded and thread-invariant, so any
  # disagreement is real drift). Resumable: a killed sweep continues at
  # the first unfinished cell through the state file.
  MAPIT_BIN="${BUILD_DIR}/tools/mapit" \
    SWEEP_STATE="${BUILD_DIR}/diff_sweep.state" \
    "${REPO_ROOT}/tools/diff_sweep.sh"
  echo "diff sweep vs committed baseline: ok"
}

stage_fuzz() {
  echo "== fuzz smoke (${FUZZ_TIME}s per target) =="
  # Replays every committed regression input, then fuzzes each harness
  # under ASan+UBSan for FUZZ_TIME seconds. New findings are minimized
  # into fuzz/regressions/ and fail the stage. Needs clang (libFuzzer);
  # gcc-only machines cover the same inputs via `ctest -L fuzz-regression`.
  FUZZ_TIME="${FUZZ_TIME}" JOBS="${JOBS}" "${REPO_ROOT}/tools/fuzz.sh"
}

# ---------------------------------------------------------------------------
# Stage selection: STAGES wins; otherwise derive the list from the legacy
# per-stage toggles so existing CI jobs keep working unchanged.
if [[ -n "${STAGES:-}" ]]; then
  SELECTED=()
  for stage in $(echo "${STAGES}" | tr ',' ' '); do
    case "${stage}" in
      configure|build) ;;  # always run; listed for convenience
      test|fault|checkpoint|bench|snapshot|async|ingest|remote|supervise|sweep|fuzz)
        SELECTED+=("${stage}") ;;
      *)
        echo "ci.sh: unknown stage '${stage}' (valid: test fault checkpoint" \
             "bench snapshot async ingest remote supervise sweep fuzz)" >&2
        exit 2 ;;
    esac
  done
else
  SELECTED=(test)
  if [[ "${FAULT_MATRIX}" == "1" ]]; then SELECTED+=(fault); fi
  if [[ "${CHECKPOINT_MATRIX}" == "1" ]]; then SELECTED+=(checkpoint); fi
  if [[ "${BENCH_SMOKE}" == "1" ]]; then SELECTED+=(bench); fi
  if [[ "${SNAPSHOT_SMOKE}" == "1" ]]; then SELECTED+=(snapshot); fi
  if [[ "${ASYNC_SMOKE}" == "1" ]]; then SELECTED+=(async); fi
  if [[ "${SUPERVISE_SMOKE}" == "1" ]]; then SELECTED+=(supervise); fi
  if [[ "${INGEST_SMOKE}" == "1" ]]; then SELECTED+=(ingest); fi
  if [[ "${REMOTE_INGEST_SMOKE}" == "1" ]]; then SELECTED+=(remote); fi
  if [[ "${DIFF_SWEEP}" == "1" ]]; then SELECTED+=(sweep); fi
  if [[ "${FUZZ_SMOKE}" == "1" ]]; then SELECTED+=(fuzz); fi
fi

run_stage configure
run_stage build
for stage in "${SELECTED[@]}"; do
  run_stage "${stage}"
done

echo "CI OK"
