#!/usr/bin/env bash
# Single CI entry point: configure, build, test, bench smoke. Run from
# anywhere; operates on the repo root. Behaviour is driven by env vars so
# every job in .github/workflows/ci.yml calls this same script:
#
#   BUILD_TYPE    CMake build type (default RelWithDebInfo)
#   SANITIZE      MAPIT_SANITIZE value, e.g. "address;undefined" or "thread"
#                 (default: none)
#   WERROR        MAPIT_WERROR, ON or OFF (default OFF)
#   CTEST_LABELS  regex for ctest -L, e.g. "unit|integration" to skip the
#                 slow standard-scale tests in sanitizer jobs (default: all)
#   BENCH_SMOKE   1 = run the bench smoke + inference-count tripwire,
#                 0 = skip, e.g. under sanitizers (default 1)
#   BUILD_DIR     override the derived build directory
#   JOBS          parallel build/test jobs (default: nproc)
set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_TYPE="${BUILD_TYPE:-RelWithDebInfo}"
SANITIZE="${SANITIZE:-}"
WERROR="${WERROR:-OFF}"
CTEST_LABELS="${CTEST_LABELS:-}"
BENCH_SMOKE="${BENCH_SMOKE:-1}"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 2)}"

# One build dir per (type, sanitizer) combination so matrix jobs and local
# runs never poison each other's caches.
if [[ -z "${BUILD_DIR:-}" ]]; then
  suffix="$(echo "${BUILD_TYPE}" | tr '[:upper:]' '[:lower:]')"
  if [[ -n "${SANITIZE}" ]]; then
    suffix+="-$(echo "${SANITIZE}" | tr ';' '-')"
  fi
  BUILD_DIR="${REPO_ROOT}/build-${suffix}"
fi

CMAKE_ARGS=(
  -DCMAKE_BUILD_TYPE="${BUILD_TYPE}"
  -DMAPIT_WERROR="${WERROR}"
  -DMAPIT_SANITIZE="${SANITIZE}"
)
if command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=(-DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

echo "== configure (${BUILD_TYPE}${SANITIZE:+, sanitize=${SANITIZE}}) =="
cmake -B "${BUILD_DIR}" -S "${REPO_ROOT}" "${CMAKE_ARGS[@]}"

echo "== build =="
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== test${CTEST_LABELS:+ (-L '${CTEST_LABELS}')} =="
CTEST_ARGS=(--test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}")
if [[ -n "${CTEST_LABELS}" ]]; then
  CTEST_ARGS+=(-L "${CTEST_LABELS}")
fi
ctest "${CTEST_ARGS[@]}"

if [[ "${BENCH_SMOKE}" == "1" ]]; then
  echo "== bench smoke =="
  # Minimal measurement time: checks the bench binaries run, not their
  # numbers.
  "${BUILD_DIR}/bench/perf_micro" --benchmark_min_time=0.01

  echo "== inference-count tripwire =="
  # perf_engine_report re-runs the standard experiment; its inference count
  # must match the committed BENCH_engine.json. A drift means the engine's
  # output changed — that must be a deliberate, reviewed update of the
  # committed report, never a side effect.
  report="${BUILD_DIR}/bench_smoke_report.json"
  "${BUILD_DIR}/bench/perf_engine_report" --reps 1 --threads 1,2 \
    --out "${report}"
  python3 - "${report}" "${REPO_ROOT}/BENCH_engine.json" <<'EOF'
import json, sys
fresh = json.load(open(sys.argv[1]))
committed = json.load(open(sys.argv[2]))
got, want = fresh["standard_inferences"], committed["standard_inferences"]
if got != want:
    sys.exit(f"standard_inferences drifted: got {got}, committed {want}")
print(f"standard_inferences == {want}: ok")
EOF
fi

echo "CI OK"
