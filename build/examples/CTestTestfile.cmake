# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multipass_refinement]=] "/root/repo/build/examples/multipass_refinement")
set_tests_properties([=[example_multipass_refinement]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_third_party_address]=] "/root/repo/build/examples/third_party_address")
set_tests_properties([=[example_third_party_address]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_synthetic_internet]=] "/root/repo/build/examples/synthetic_internet")
set_tests_properties([=[example_synthetic_internet]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_diagnostics]=] "/root/repo/build/examples/diagnostics")
set_tests_properties([=[example_diagnostics]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
