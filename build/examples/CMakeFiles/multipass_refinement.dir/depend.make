# Empty dependencies file for multipass_refinement.
# This may be replaced when dependencies are built.
