file(REMOVE_RECURSE
  "CMakeFiles/multipass_refinement.dir/multipass_refinement.cpp.o"
  "CMakeFiles/multipass_refinement.dir/multipass_refinement.cpp.o.d"
  "multipass_refinement"
  "multipass_refinement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multipass_refinement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
