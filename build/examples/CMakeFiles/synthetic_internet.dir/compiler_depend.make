# Empty compiler generated dependencies file for synthetic_internet.
# This may be replaced when dependencies are built.
