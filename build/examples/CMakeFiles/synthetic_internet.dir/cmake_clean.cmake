file(REMOVE_RECURSE
  "CMakeFiles/synthetic_internet.dir/synthetic_internet.cpp.o"
  "CMakeFiles/synthetic_internet.dir/synthetic_internet.cpp.o.d"
  "synthetic_internet"
  "synthetic_internet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_internet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
