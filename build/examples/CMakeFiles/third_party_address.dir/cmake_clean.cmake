file(REMOVE_RECURSE
  "CMakeFiles/third_party_address.dir/third_party_address.cpp.o"
  "CMakeFiles/third_party_address.dir/third_party_address.cpp.o.d"
  "third_party_address"
  "third_party_address.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/third_party_address.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
