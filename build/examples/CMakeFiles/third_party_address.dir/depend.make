# Empty dependencies file for third_party_address.
# This may be replaced when dependencies are built.
