file(REMOVE_RECURSE
  "CMakeFiles/mapit_cli.dir/mapit_cli.cpp.o"
  "CMakeFiles/mapit_cli.dir/mapit_cli.cpp.o.d"
  "mapit"
  "mapit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
