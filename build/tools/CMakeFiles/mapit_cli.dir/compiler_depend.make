# Empty compiler generated dependencies file for mapit_cli.
# This may be replaced when dependencies are built.
