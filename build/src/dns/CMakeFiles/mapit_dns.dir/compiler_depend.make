# Empty compiler generated dependencies file for mapit_dns.
# This may be replaced when dependencies are built.
