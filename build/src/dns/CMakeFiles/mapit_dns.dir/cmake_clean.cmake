file(REMOVE_RECURSE
  "CMakeFiles/mapit_dns.dir/hostnames.cpp.o"
  "CMakeFiles/mapit_dns.dir/hostnames.cpp.o.d"
  "libmapit_dns.a"
  "libmapit_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
