file(REMOVE_RECURSE
  "libmapit_dns.a"
)
