file(REMOVE_RECURSE
  "CMakeFiles/mapit_graph.dir/interface_graph.cpp.o"
  "CMakeFiles/mapit_graph.dir/interface_graph.cpp.o.d"
  "CMakeFiles/mapit_graph.dir/other_side.cpp.o"
  "CMakeFiles/mapit_graph.dir/other_side.cpp.o.d"
  "libmapit_graph.a"
  "libmapit_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
