# Empty compiler generated dependencies file for mapit_graph.
# This may be replaced when dependencies are built.
