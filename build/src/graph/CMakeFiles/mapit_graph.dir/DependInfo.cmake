
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/interface_graph.cpp" "src/graph/CMakeFiles/mapit_graph.dir/interface_graph.cpp.o" "gcc" "src/graph/CMakeFiles/mapit_graph.dir/interface_graph.cpp.o.d"
  "/root/repo/src/graph/other_side.cpp" "src/graph/CMakeFiles/mapit_graph.dir/other_side.cpp.o" "gcc" "src/graph/CMakeFiles/mapit_graph.dir/other_side.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mapit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mapit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
