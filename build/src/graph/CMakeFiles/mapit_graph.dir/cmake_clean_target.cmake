file(REMOVE_RECURSE
  "libmapit_graph.a"
)
