file(REMOVE_RECURSE
  "CMakeFiles/mapit_topo.dir/generator.cpp.o"
  "CMakeFiles/mapit_topo.dir/generator.cpp.o.d"
  "CMakeFiles/mapit_topo.dir/internet.cpp.o"
  "CMakeFiles/mapit_topo.dir/internet.cpp.o.d"
  "CMakeFiles/mapit_topo.dir/truth_io.cpp.o"
  "CMakeFiles/mapit_topo.dir/truth_io.cpp.o.d"
  "libmapit_topo.a"
  "libmapit_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
