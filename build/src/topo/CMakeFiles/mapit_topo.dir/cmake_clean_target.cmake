file(REMOVE_RECURSE
  "libmapit_topo.a"
)
