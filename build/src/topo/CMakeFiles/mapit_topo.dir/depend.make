# Empty dependencies file for mapit_topo.
# This may be replaced when dependencies are built.
