file(REMOVE_RECURSE
  "libmapit_core.a"
)
