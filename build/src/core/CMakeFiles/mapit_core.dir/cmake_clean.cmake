file(REMOVE_RECURSE
  "CMakeFiles/mapit_core.dir/as_path.cpp.o"
  "CMakeFiles/mapit_core.dir/as_path.cpp.o.d"
  "CMakeFiles/mapit_core.dir/engine.cpp.o"
  "CMakeFiles/mapit_core.dir/engine.cpp.o.d"
  "CMakeFiles/mapit_core.dir/explain.cpp.o"
  "CMakeFiles/mapit_core.dir/explain.cpp.o.d"
  "CMakeFiles/mapit_core.dir/inference.cpp.o"
  "CMakeFiles/mapit_core.dir/inference.cpp.o.d"
  "CMakeFiles/mapit_core.dir/links.cpp.o"
  "CMakeFiles/mapit_core.dir/links.cpp.o.d"
  "CMakeFiles/mapit_core.dir/result_io.cpp.o"
  "CMakeFiles/mapit_core.dir/result_io.cpp.o.d"
  "libmapit_core.a"
  "libmapit_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
