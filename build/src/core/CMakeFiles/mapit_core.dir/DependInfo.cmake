
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/as_path.cpp" "src/core/CMakeFiles/mapit_core.dir/as_path.cpp.o" "gcc" "src/core/CMakeFiles/mapit_core.dir/as_path.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/core/CMakeFiles/mapit_core.dir/engine.cpp.o" "gcc" "src/core/CMakeFiles/mapit_core.dir/engine.cpp.o.d"
  "/root/repo/src/core/explain.cpp" "src/core/CMakeFiles/mapit_core.dir/explain.cpp.o" "gcc" "src/core/CMakeFiles/mapit_core.dir/explain.cpp.o.d"
  "/root/repo/src/core/inference.cpp" "src/core/CMakeFiles/mapit_core.dir/inference.cpp.o" "gcc" "src/core/CMakeFiles/mapit_core.dir/inference.cpp.o.d"
  "/root/repo/src/core/links.cpp" "src/core/CMakeFiles/mapit_core.dir/links.cpp.o" "gcc" "src/core/CMakeFiles/mapit_core.dir/links.cpp.o.d"
  "/root/repo/src/core/result_io.cpp" "src/core/CMakeFiles/mapit_core.dir/result_io.cpp.o" "gcc" "src/core/CMakeFiles/mapit_core.dir/result_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mapit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/mapit_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/asdata/CMakeFiles/mapit_asdata.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mapit_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mapit_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
