# Empty compiler generated dependencies file for mapit_core.
# This may be replaced when dependencies are built.
