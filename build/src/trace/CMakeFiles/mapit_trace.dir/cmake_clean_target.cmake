file(REMOVE_RECURSE
  "libmapit_trace.a"
)
