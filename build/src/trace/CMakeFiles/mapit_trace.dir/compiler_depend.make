# Empty compiler generated dependencies file for mapit_trace.
# This may be replaced when dependencies are built.
