file(REMOVE_RECURSE
  "CMakeFiles/mapit_trace.dir/sanitize.cpp.o"
  "CMakeFiles/mapit_trace.dir/sanitize.cpp.o.d"
  "CMakeFiles/mapit_trace.dir/trace.cpp.o"
  "CMakeFiles/mapit_trace.dir/trace.cpp.o.d"
  "CMakeFiles/mapit_trace.dir/trace_io.cpp.o"
  "CMakeFiles/mapit_trace.dir/trace_io.cpp.o.d"
  "libmapit_trace.a"
  "libmapit_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
