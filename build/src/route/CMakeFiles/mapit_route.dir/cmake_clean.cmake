file(REMOVE_RECURSE
  "CMakeFiles/mapit_route.dir/as_routing.cpp.o"
  "CMakeFiles/mapit_route.dir/as_routing.cpp.o.d"
  "CMakeFiles/mapit_route.dir/forwarder.cpp.o"
  "CMakeFiles/mapit_route.dir/forwarder.cpp.o.d"
  "libmapit_route.a"
  "libmapit_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
