
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/route/as_routing.cpp" "src/route/CMakeFiles/mapit_route.dir/as_routing.cpp.o" "gcc" "src/route/CMakeFiles/mapit_route.dir/as_routing.cpp.o.d"
  "/root/repo/src/route/forwarder.cpp" "src/route/CMakeFiles/mapit_route.dir/forwarder.cpp.o" "gcc" "src/route/CMakeFiles/mapit_route.dir/forwarder.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mapit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/asdata/CMakeFiles/mapit_asdata.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mapit_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/mapit_bgp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
