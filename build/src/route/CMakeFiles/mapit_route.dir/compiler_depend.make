# Empty compiler generated dependencies file for mapit_route.
# This may be replaced when dependencies are built.
