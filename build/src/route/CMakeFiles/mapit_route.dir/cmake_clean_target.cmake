file(REMOVE_RECURSE
  "libmapit_route.a"
)
