file(REMOVE_RECURSE
  "libmapit_eval.a"
)
