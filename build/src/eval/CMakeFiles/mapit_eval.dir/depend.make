# Empty dependencies file for mapit_eval.
# This may be replaced when dependencies are built.
