file(REMOVE_RECURSE
  "CMakeFiles/mapit_eval.dir/evaluator.cpp.o"
  "CMakeFiles/mapit_eval.dir/evaluator.cpp.o.d"
  "CMakeFiles/mapit_eval.dir/experiment.cpp.o"
  "CMakeFiles/mapit_eval.dir/experiment.cpp.o.d"
  "CMakeFiles/mapit_eval.dir/ground_truth.cpp.o"
  "CMakeFiles/mapit_eval.dir/ground_truth.cpp.o.d"
  "libmapit_eval.a"
  "libmapit_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
