file(REMOVE_RECURSE
  "libmapit_net.a"
)
