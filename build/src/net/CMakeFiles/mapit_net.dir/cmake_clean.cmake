file(REMOVE_RECURSE
  "CMakeFiles/mapit_net.dir/ipv4.cpp.o"
  "CMakeFiles/mapit_net.dir/ipv4.cpp.o.d"
  "CMakeFiles/mapit_net.dir/point_to_point.cpp.o"
  "CMakeFiles/mapit_net.dir/point_to_point.cpp.o.d"
  "CMakeFiles/mapit_net.dir/prefix.cpp.o"
  "CMakeFiles/mapit_net.dir/prefix.cpp.o.d"
  "CMakeFiles/mapit_net.dir/special_purpose.cpp.o"
  "CMakeFiles/mapit_net.dir/special_purpose.cpp.o.d"
  "libmapit_net.a"
  "libmapit_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
