# Empty dependencies file for mapit_net.
# This may be replaced when dependencies are built.
