
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ipv4.cpp" "src/net/CMakeFiles/mapit_net.dir/ipv4.cpp.o" "gcc" "src/net/CMakeFiles/mapit_net.dir/ipv4.cpp.o.d"
  "/root/repo/src/net/point_to_point.cpp" "src/net/CMakeFiles/mapit_net.dir/point_to_point.cpp.o" "gcc" "src/net/CMakeFiles/mapit_net.dir/point_to_point.cpp.o.d"
  "/root/repo/src/net/prefix.cpp" "src/net/CMakeFiles/mapit_net.dir/prefix.cpp.o" "gcc" "src/net/CMakeFiles/mapit_net.dir/prefix.cpp.o.d"
  "/root/repo/src/net/special_purpose.cpp" "src/net/CMakeFiles/mapit_net.dir/special_purpose.cpp.o" "gcc" "src/net/CMakeFiles/mapit_net.dir/special_purpose.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
