file(REMOVE_RECURSE
  "libmapit_tracesim.a"
)
