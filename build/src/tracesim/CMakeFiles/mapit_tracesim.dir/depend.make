# Empty dependencies file for mapit_tracesim.
# This may be replaced when dependencies are built.
