file(REMOVE_RECURSE
  "CMakeFiles/mapit_tracesim.dir/simulator.cpp.o"
  "CMakeFiles/mapit_tracesim.dir/simulator.cpp.o.d"
  "libmapit_tracesim.a"
  "libmapit_tracesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_tracesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
