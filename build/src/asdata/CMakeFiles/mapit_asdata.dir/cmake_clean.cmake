file(REMOVE_RECURSE
  "CMakeFiles/mapit_asdata.dir/as2org.cpp.o"
  "CMakeFiles/mapit_asdata.dir/as2org.cpp.o.d"
  "CMakeFiles/mapit_asdata.dir/ixp.cpp.o"
  "CMakeFiles/mapit_asdata.dir/ixp.cpp.o.d"
  "CMakeFiles/mapit_asdata.dir/relationships.cpp.o"
  "CMakeFiles/mapit_asdata.dir/relationships.cpp.o.d"
  "libmapit_asdata.a"
  "libmapit_asdata.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_asdata.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
