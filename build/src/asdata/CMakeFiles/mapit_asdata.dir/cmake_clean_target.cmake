file(REMOVE_RECURSE
  "libmapit_asdata.a"
)
