# Empty dependencies file for mapit_asdata.
# This may be replaced when dependencies are built.
