
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/asdata/as2org.cpp" "src/asdata/CMakeFiles/mapit_asdata.dir/as2org.cpp.o" "gcc" "src/asdata/CMakeFiles/mapit_asdata.dir/as2org.cpp.o.d"
  "/root/repo/src/asdata/ixp.cpp" "src/asdata/CMakeFiles/mapit_asdata.dir/ixp.cpp.o" "gcc" "src/asdata/CMakeFiles/mapit_asdata.dir/ixp.cpp.o.d"
  "/root/repo/src/asdata/relationships.cpp" "src/asdata/CMakeFiles/mapit_asdata.dir/relationships.cpp.o" "gcc" "src/asdata/CMakeFiles/mapit_asdata.dir/relationships.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mapit_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
