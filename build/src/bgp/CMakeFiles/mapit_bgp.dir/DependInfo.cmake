
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bgp/ip2as.cpp" "src/bgp/CMakeFiles/mapit_bgp.dir/ip2as.cpp.o" "gcc" "src/bgp/CMakeFiles/mapit_bgp.dir/ip2as.cpp.o.d"
  "/root/repo/src/bgp/rib.cpp" "src/bgp/CMakeFiles/mapit_bgp.dir/rib.cpp.o" "gcc" "src/bgp/CMakeFiles/mapit_bgp.dir/rib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/net/CMakeFiles/mapit_net.dir/DependInfo.cmake"
  "/root/repo/build/src/asdata/CMakeFiles/mapit_asdata.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
