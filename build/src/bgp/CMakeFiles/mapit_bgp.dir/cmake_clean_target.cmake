file(REMOVE_RECURSE
  "libmapit_bgp.a"
)
