file(REMOVE_RECURSE
  "CMakeFiles/mapit_bgp.dir/ip2as.cpp.o"
  "CMakeFiles/mapit_bgp.dir/ip2as.cpp.o.d"
  "CMakeFiles/mapit_bgp.dir/rib.cpp.o"
  "CMakeFiles/mapit_bgp.dir/rib.cpp.o.d"
  "libmapit_bgp.a"
  "libmapit_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
