# Empty compiler generated dependencies file for mapit_bgp.
# This may be replaced when dependencies are built.
