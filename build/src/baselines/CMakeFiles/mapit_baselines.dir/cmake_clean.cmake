file(REMOVE_RECURSE
  "CMakeFiles/mapit_baselines.dir/bdrmap_lite.cpp.o"
  "CMakeFiles/mapit_baselines.dir/bdrmap_lite.cpp.o.d"
  "CMakeFiles/mapit_baselines.dir/claims.cpp.o"
  "CMakeFiles/mapit_baselines.dir/claims.cpp.o.d"
  "CMakeFiles/mapit_baselines.dir/itdk.cpp.o"
  "CMakeFiles/mapit_baselines.dir/itdk.cpp.o.d"
  "CMakeFiles/mapit_baselines.dir/simple.cpp.o"
  "CMakeFiles/mapit_baselines.dir/simple.cpp.o.d"
  "libmapit_baselines.a"
  "libmapit_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
