file(REMOVE_RECURSE
  "libmapit_baselines.a"
)
