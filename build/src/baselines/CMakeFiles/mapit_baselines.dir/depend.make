# Empty dependencies file for mapit_baselines.
# This may be replaced when dependencies are built.
