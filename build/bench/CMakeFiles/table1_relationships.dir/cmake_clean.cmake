file(REMOVE_RECURSE
  "CMakeFiles/table1_relationships.dir/table1_relationships.cpp.o"
  "CMakeFiles/table1_relationships.dir/table1_relationships.cpp.o.d"
  "table1_relationships"
  "table1_relationships.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_relationships.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
