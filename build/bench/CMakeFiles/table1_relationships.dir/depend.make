# Empty dependencies file for table1_relationships.
# This may be replaced when dependencies are built.
