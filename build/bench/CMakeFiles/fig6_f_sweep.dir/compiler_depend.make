# Empty compiler generated dependencies file for fig6_f_sweep.
# This may be replaced when dependencies are built.
