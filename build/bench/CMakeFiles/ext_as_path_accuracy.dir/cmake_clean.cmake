file(REMOVE_RECURSE
  "CMakeFiles/ext_as_path_accuracy.dir/ext_as_path_accuracy.cpp.o"
  "CMakeFiles/ext_as_path_accuracy.dir/ext_as_path_accuracy.cpp.o.d"
  "ext_as_path_accuracy"
  "ext_as_path_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_as_path_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
