# Empty dependencies file for ext_as_path_accuracy.
# This may be replaced when dependencies are built.
