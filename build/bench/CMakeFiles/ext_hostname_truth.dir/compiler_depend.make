# Empty compiler generated dependencies file for ext_hostname_truth.
# This may be replaced when dependencies are built.
