file(REMOVE_RECURSE
  "CMakeFiles/ext_hostname_truth.dir/ext_hostname_truth.cpp.o"
  "CMakeFiles/ext_hostname_truth.dir/ext_hostname_truth.cpp.o.d"
  "ext_hostname_truth"
  "ext_hostname_truth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_hostname_truth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
