# Empty dependencies file for ext_bdrmap_comparison.
# This may be replaced when dependencies are built.
