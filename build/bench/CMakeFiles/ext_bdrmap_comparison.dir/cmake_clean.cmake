file(REMOVE_RECURSE
  "CMakeFiles/ext_bdrmap_comparison.dir/ext_bdrmap_comparison.cpp.o"
  "CMakeFiles/ext_bdrmap_comparison.dir/ext_bdrmap_comparison.cpp.o.d"
  "ext_bdrmap_comparison"
  "ext_bdrmap_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bdrmap_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
