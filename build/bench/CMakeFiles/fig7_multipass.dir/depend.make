# Empty dependencies file for fig7_multipass.
# This may be replaced when dependencies are built.
