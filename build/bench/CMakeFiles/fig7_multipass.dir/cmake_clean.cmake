file(REMOVE_RECURSE
  "CMakeFiles/fig7_multipass.dir/fig7_multipass.cpp.o"
  "CMakeFiles/fig7_multipass.dir/fig7_multipass.cpp.o.d"
  "fig7_multipass"
  "fig7_multipass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_multipass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
