file(REMOVE_RECURSE
  "CMakeFiles/ext_visibility_sweep.dir/ext_visibility_sweep.cpp.o"
  "CMakeFiles/ext_visibility_sweep.dir/ext_visibility_sweep.cpp.o.d"
  "ext_visibility_sweep"
  "ext_visibility_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_visibility_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
