# Empty dependencies file for ext_visibility_sweep.
# This may be replaced when dependencies are built.
