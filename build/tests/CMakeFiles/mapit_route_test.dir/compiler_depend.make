# Empty compiler generated dependencies file for mapit_route_test.
# This may be replaced when dependencies are built.
