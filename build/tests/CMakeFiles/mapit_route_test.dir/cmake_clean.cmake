file(REMOVE_RECURSE
  "CMakeFiles/mapit_route_test.dir/route/as_routing_test.cpp.o"
  "CMakeFiles/mapit_route_test.dir/route/as_routing_test.cpp.o.d"
  "CMakeFiles/mapit_route_test.dir/route/forwarder_test.cpp.o"
  "CMakeFiles/mapit_route_test.dir/route/forwarder_test.cpp.o.d"
  "mapit_route_test"
  "mapit_route_test.pdb"
  "mapit_route_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
