# Empty compiler generated dependencies file for mapit_integration_test.
# This may be replaced when dependencies are built.
