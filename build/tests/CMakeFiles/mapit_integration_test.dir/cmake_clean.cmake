file(REMOVE_RECURSE
  "CMakeFiles/mapit_integration_test.dir/integration/config_sweep_test.cpp.o"
  "CMakeFiles/mapit_integration_test.dir/integration/config_sweep_test.cpp.o.d"
  "CMakeFiles/mapit_integration_test.dir/integration/io_roundtrip_test.cpp.o"
  "CMakeFiles/mapit_integration_test.dir/integration/io_roundtrip_test.cpp.o.d"
  "CMakeFiles/mapit_integration_test.dir/integration/parser_robustness_test.cpp.o"
  "CMakeFiles/mapit_integration_test.dir/integration/parser_robustness_test.cpp.o.d"
  "CMakeFiles/mapit_integration_test.dir/integration/pipeline_test.cpp.o"
  "CMakeFiles/mapit_integration_test.dir/integration/pipeline_test.cpp.o.d"
  "CMakeFiles/mapit_integration_test.dir/integration/standard_scale_test.cpp.o"
  "CMakeFiles/mapit_integration_test.dir/integration/standard_scale_test.cpp.o.d"
  "mapit_integration_test"
  "mapit_integration_test.pdb"
  "mapit_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
