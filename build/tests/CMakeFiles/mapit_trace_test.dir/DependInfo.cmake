
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/trace/sanitize_test.cpp" "tests/CMakeFiles/mapit_trace_test.dir/trace/sanitize_test.cpp.o" "gcc" "tests/CMakeFiles/mapit_trace_test.dir/trace/sanitize_test.cpp.o.d"
  "/root/repo/tests/trace/trace_io_test.cpp" "tests/CMakeFiles/mapit_trace_test.dir/trace/trace_io_test.cpp.o" "gcc" "tests/CMakeFiles/mapit_trace_test.dir/trace/trace_io_test.cpp.o.d"
  "/root/repo/tests/trace/trace_test.cpp" "tests/CMakeFiles/mapit_trace_test.dir/trace/trace_test.cpp.o" "gcc" "tests/CMakeFiles/mapit_trace_test.dir/trace/trace_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dns/CMakeFiles/mapit_dns.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/mapit_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/tracesim/CMakeFiles/mapit_tracesim.dir/DependInfo.cmake"
  "/root/repo/build/src/route/CMakeFiles/mapit_route.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/mapit_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mapit_core.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/mapit_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mapit_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/mapit_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/bgp/CMakeFiles/mapit_bgp.dir/DependInfo.cmake"
  "/root/repo/build/src/asdata/CMakeFiles/mapit_asdata.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mapit_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
