# Empty dependencies file for mapit_trace_test.
# This may be replaced when dependencies are built.
