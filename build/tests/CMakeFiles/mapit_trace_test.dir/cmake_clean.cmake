file(REMOVE_RECURSE
  "CMakeFiles/mapit_trace_test.dir/trace/sanitize_test.cpp.o"
  "CMakeFiles/mapit_trace_test.dir/trace/sanitize_test.cpp.o.d"
  "CMakeFiles/mapit_trace_test.dir/trace/trace_io_test.cpp.o"
  "CMakeFiles/mapit_trace_test.dir/trace/trace_io_test.cpp.o.d"
  "CMakeFiles/mapit_trace_test.dir/trace/trace_test.cpp.o"
  "CMakeFiles/mapit_trace_test.dir/trace/trace_test.cpp.o.d"
  "mapit_trace_test"
  "mapit_trace_test.pdb"
  "mapit_trace_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
