# Empty compiler generated dependencies file for mapit_asdata_test.
# This may be replaced when dependencies are built.
