file(REMOVE_RECURSE
  "CMakeFiles/mapit_asdata_test.dir/asdata/as2org_test.cpp.o"
  "CMakeFiles/mapit_asdata_test.dir/asdata/as2org_test.cpp.o.d"
  "CMakeFiles/mapit_asdata_test.dir/asdata/ixp_test.cpp.o"
  "CMakeFiles/mapit_asdata_test.dir/asdata/ixp_test.cpp.o.d"
  "CMakeFiles/mapit_asdata_test.dir/asdata/relationships_test.cpp.o"
  "CMakeFiles/mapit_asdata_test.dir/asdata/relationships_test.cpp.o.d"
  "mapit_asdata_test"
  "mapit_asdata_test.pdb"
  "mapit_asdata_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_asdata_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
