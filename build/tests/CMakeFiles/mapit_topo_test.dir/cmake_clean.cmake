file(REMOVE_RECURSE
  "CMakeFiles/mapit_topo_test.dir/topo/generator_test.cpp.o"
  "CMakeFiles/mapit_topo_test.dir/topo/generator_test.cpp.o.d"
  "CMakeFiles/mapit_topo_test.dir/topo/truth_io_test.cpp.o"
  "CMakeFiles/mapit_topo_test.dir/topo/truth_io_test.cpp.o.d"
  "mapit_topo_test"
  "mapit_topo_test.pdb"
  "mapit_topo_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_topo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
