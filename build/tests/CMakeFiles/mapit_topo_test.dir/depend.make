# Empty dependencies file for mapit_topo_test.
# This may be replaced when dependencies are built.
