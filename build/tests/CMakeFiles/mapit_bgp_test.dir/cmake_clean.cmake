file(REMOVE_RECURSE
  "CMakeFiles/mapit_bgp_test.dir/bgp/ip2as_test.cpp.o"
  "CMakeFiles/mapit_bgp_test.dir/bgp/ip2as_test.cpp.o.d"
  "CMakeFiles/mapit_bgp_test.dir/bgp/rib_test.cpp.o"
  "CMakeFiles/mapit_bgp_test.dir/bgp/rib_test.cpp.o.d"
  "mapit_bgp_test"
  "mapit_bgp_test.pdb"
  "mapit_bgp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_bgp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
