# Empty dependencies file for mapit_bgp_test.
# This may be replaced when dependencies are built.
