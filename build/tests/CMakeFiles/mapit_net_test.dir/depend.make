# Empty dependencies file for mapit_net_test.
# This may be replaced when dependencies are built.
