file(REMOVE_RECURSE
  "CMakeFiles/mapit_net_test.dir/net/ipv4_test.cpp.o"
  "CMakeFiles/mapit_net_test.dir/net/ipv4_test.cpp.o.d"
  "CMakeFiles/mapit_net_test.dir/net/point_to_point_test.cpp.o"
  "CMakeFiles/mapit_net_test.dir/net/point_to_point_test.cpp.o.d"
  "CMakeFiles/mapit_net_test.dir/net/prefix_test.cpp.o"
  "CMakeFiles/mapit_net_test.dir/net/prefix_test.cpp.o.d"
  "CMakeFiles/mapit_net_test.dir/net/prefix_trie_test.cpp.o"
  "CMakeFiles/mapit_net_test.dir/net/prefix_trie_test.cpp.o.d"
  "CMakeFiles/mapit_net_test.dir/net/special_purpose_test.cpp.o"
  "CMakeFiles/mapit_net_test.dir/net/special_purpose_test.cpp.o.d"
  "mapit_net_test"
  "mapit_net_test.pdb"
  "mapit_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
