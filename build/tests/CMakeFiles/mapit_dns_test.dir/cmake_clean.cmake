file(REMOVE_RECURSE
  "CMakeFiles/mapit_dns_test.dir/dns/hostnames_test.cpp.o"
  "CMakeFiles/mapit_dns_test.dir/dns/hostnames_test.cpp.o.d"
  "mapit_dns_test"
  "mapit_dns_test.pdb"
  "mapit_dns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_dns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
