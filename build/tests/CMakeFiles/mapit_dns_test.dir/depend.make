# Empty dependencies file for mapit_dns_test.
# This may be replaced when dependencies are built.
