# Empty dependencies file for mapit_tracesim_test.
# This may be replaced when dependencies are built.
