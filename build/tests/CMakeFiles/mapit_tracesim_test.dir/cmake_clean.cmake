file(REMOVE_RECURSE
  "CMakeFiles/mapit_tracesim_test.dir/tracesim/artifact_toggle_test.cpp.o"
  "CMakeFiles/mapit_tracesim_test.dir/tracesim/artifact_toggle_test.cpp.o.d"
  "CMakeFiles/mapit_tracesim_test.dir/tracesim/simulator_test.cpp.o"
  "CMakeFiles/mapit_tracesim_test.dir/tracesim/simulator_test.cpp.o.d"
  "mapit_tracesim_test"
  "mapit_tracesim_test.pdb"
  "mapit_tracesim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_tracesim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
