# Empty dependencies file for mapit_eval_test.
# This may be replaced when dependencies are built.
