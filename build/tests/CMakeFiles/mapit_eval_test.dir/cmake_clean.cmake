file(REMOVE_RECURSE
  "CMakeFiles/mapit_eval_test.dir/eval/evaluator_test.cpp.o"
  "CMakeFiles/mapit_eval_test.dir/eval/evaluator_test.cpp.o.d"
  "CMakeFiles/mapit_eval_test.dir/eval/experiment_test.cpp.o"
  "CMakeFiles/mapit_eval_test.dir/eval/experiment_test.cpp.o.d"
  "CMakeFiles/mapit_eval_test.dir/eval/ground_truth_test.cpp.o"
  "CMakeFiles/mapit_eval_test.dir/eval/ground_truth_test.cpp.o.d"
  "mapit_eval_test"
  "mapit_eval_test.pdb"
  "mapit_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
