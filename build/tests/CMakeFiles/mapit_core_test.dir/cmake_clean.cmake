file(REMOVE_RECURSE
  "CMakeFiles/mapit_core_test.dir/core/as_path_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/as_path_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/engine_edge_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/engine_edge_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/engine_mechanism_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/engine_mechanism_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/engine_property_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/engine_property_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/engine_scenario_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/engine_scenario_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/explain_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/explain_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/links_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/links_test.cpp.o.d"
  "CMakeFiles/mapit_core_test.dir/core/result_io_test.cpp.o"
  "CMakeFiles/mapit_core_test.dir/core/result_io_test.cpp.o.d"
  "mapit_core_test"
  "mapit_core_test.pdb"
  "mapit_core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
