# Empty compiler generated dependencies file for mapit_core_test.
# This may be replaced when dependencies are built.
