# Empty compiler generated dependencies file for mapit_baselines_test.
# This may be replaced when dependencies are built.
