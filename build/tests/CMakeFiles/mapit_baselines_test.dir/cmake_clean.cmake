file(REMOVE_RECURSE
  "CMakeFiles/mapit_baselines_test.dir/baselines/bdrmap_test.cpp.o"
  "CMakeFiles/mapit_baselines_test.dir/baselines/bdrmap_test.cpp.o.d"
  "CMakeFiles/mapit_baselines_test.dir/baselines/itdk_test.cpp.o"
  "CMakeFiles/mapit_baselines_test.dir/baselines/itdk_test.cpp.o.d"
  "CMakeFiles/mapit_baselines_test.dir/baselines/simple_test.cpp.o"
  "CMakeFiles/mapit_baselines_test.dir/baselines/simple_test.cpp.o.d"
  "mapit_baselines_test"
  "mapit_baselines_test.pdb"
  "mapit_baselines_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_baselines_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
