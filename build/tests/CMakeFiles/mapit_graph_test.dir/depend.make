# Empty dependencies file for mapit_graph_test.
# This may be replaced when dependencies are built.
