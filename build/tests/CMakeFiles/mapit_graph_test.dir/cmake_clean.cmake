file(REMOVE_RECURSE
  "CMakeFiles/mapit_graph_test.dir/graph/interface_graph_test.cpp.o"
  "CMakeFiles/mapit_graph_test.dir/graph/interface_graph_test.cpp.o.d"
  "CMakeFiles/mapit_graph_test.dir/graph/other_side_test.cpp.o"
  "CMakeFiles/mapit_graph_test.dir/graph/other_side_test.cpp.o.d"
  "mapit_graph_test"
  "mapit_graph_test.pdb"
  "mapit_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mapit_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
