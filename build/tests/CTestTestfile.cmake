# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/mapit_net_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_bgp_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_asdata_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_trace_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_graph_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_core_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_topo_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_route_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_tracesim_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_baselines_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_dns_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_eval_test[1]_include.cmake")
include("/root/repo/build/tests/mapit_integration_test[1]_include.cmake")
add_test([=[cli_end_to_end]=] "/usr/bin/cmake" "-DMAPIT_BIN=/root/repo/build/tools/mapit" "-DWORK_DIR=/root/repo/build/cli_test_work" "-P" "/root/repo/tests/cli/cli_test.cmake")
set_tests_properties([=[cli_end_to_end]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;82;add_test;/root/repo/tests/CMakeLists.txt;0;")
