#include "fault/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>

namespace mapit::fault {

const char* to_string(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kFsync: return "fsync";
    case Op::kFstat: return "fstat";
    case Op::kRename: return "rename";
    case Op::kClose: return "close";
    case Op::kAccept: return "accept4";
    case Op::kSend: return "send";
    case Op::kRecv: return "recv";
    case Op::kCount_: break;
  }
  return "?";
}

int Io::open(const char* path, int flags, ::mode_t mode) {
  return ::open(path, flags, mode);
}

ssize_t Io::read(int fd, void* buffer, std::size_t count) {
  return ::read(fd, buffer, count);
}

ssize_t Io::write(int fd, const void* buffer, std::size_t count) {
  return ::write(fd, buffer, count);
}

int Io::fsync(int fd) { return ::fsync(fd); }

int Io::fstat(int fd, struct ::stat* out) { return ::fstat(fd, out); }

int Io::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int Io::close(int fd) { return ::close(fd); }

int Io::accept4(int fd, ::sockaddr* address, ::socklen_t* length, int flags) {
  return ::accept4(fd, address, length, flags);
}

ssize_t Io::send(int fd, const void* buffer, std::size_t count, int flags) {
  return ::send(fd, buffer, count, flags);
}

ssize_t Io::recv(int fd, void* buffer, std::size_t count, int flags) {
  return ::recv(fd, buffer, count, flags);
}

Io& system_io() {
  static Io instance;
  return instance;
}

}  // namespace mapit::fault
