#include "fault/io.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>

namespace mapit::fault {

const char* to_string(Op op) {
  switch (op) {
    case Op::kOpen: return "open";
    case Op::kRead: return "read";
    case Op::kWrite: return "write";
    case Op::kFsync: return "fsync";
    case Op::kFstat: return "fstat";
    case Op::kFtruncate: return "ftruncate";
    case Op::kRename: return "rename";
    case Op::kClose: return "close";
    case Op::kAccept: return "accept4";
    case Op::kConnect: return "connect";
    case Op::kSend: return "send";
    case Op::kRecv: return "recv";
    case Op::kEpollCreate: return "epoll_create1";
    case Op::kEpollCtl: return "epoll_ctl";
    case Op::kEpollWait: return "epoll_wait";
    case Op::kFork: return "fork";
    case Op::kExecvp: return "execvp";
    case Op::kWaitpid: return "waitpid";
    case Op::kKill: return "kill";
    case Op::kCount_: break;
  }
  return "?";
}

int Io::open(const char* path, int flags, ::mode_t mode) {
  return ::open(path, flags, mode);
}

ssize_t Io::read(int fd, void* buffer, std::size_t count) {
  return ::read(fd, buffer, count);
}

ssize_t Io::write(int fd, const void* buffer, std::size_t count) {
  return ::write(fd, buffer, count);
}

int Io::fsync(int fd) { return ::fsync(fd); }

int Io::fstat(int fd, struct ::stat* out) { return ::fstat(fd, out); }

int Io::ftruncate(int fd, ::off_t length) { return ::ftruncate(fd, length); }

int Io::rename(const char* from, const char* to) {
  return ::rename(from, to);
}

int Io::close(int fd) { return ::close(fd); }

int Io::accept4(int fd, ::sockaddr* address, ::socklen_t* length, int flags) {
  return ::accept4(fd, address, length, flags);
}

int Io::connect(int fd, const ::sockaddr* address, ::socklen_t length) {
  return ::connect(fd, address, length);
}

ssize_t Io::send(int fd, const void* buffer, std::size_t count, int flags) {
  return ::send(fd, buffer, count, flags);
}

ssize_t Io::recv(int fd, void* buffer, std::size_t count, int flags) {
  return ::recv(fd, buffer, count, flags);
}

int Io::epoll_create1(int flags) { return ::epoll_create1(flags); }

int Io::epoll_ctl(int epfd, int op, int fd, struct ::epoll_event* event) {
  return ::epoll_ctl(epfd, op, fd, event);
}

int Io::epoll_wait(int epfd, struct ::epoll_event* events, int max_events,
                   int timeout_ms) {
  return ::epoll_wait(epfd, events, max_events, timeout_ms);
}

::pid_t Io::fork() { return ::fork(); }

int Io::execvp(const char* file, char* const argv[]) {
  return ::execvp(file, argv);
}

::pid_t Io::waitpid(::pid_t pid, int* status, int options) {
  return ::waitpid(pid, status, options);
}

int Io::kill(::pid_t pid, int sig) { return ::kill(pid, sig); }

Io& system_io() {
  static Io instance;
  return instance;
}

}  // namespace mapit::fault
