#include "fault/atomic_file.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "net/error.h"

namespace mapit::fault {

namespace {

[[noreturn]] void fail(const char* what, const std::string& path, int err,
                       Io& io, const std::string* tmp_to_unlink, int fd) {
  if (fd >= 0) io.close(fd);
  // Best-effort cleanup straight at the kernel: unlink is not an injection
  // point (a crashed process cannot clean up either — that case simply
  // leaves the temp file, which is harmless).
  if (tmp_to_unlink != nullptr) ::unlink(tmp_to_unlink->c_str());
  throw Error(std::string("atomic write: ") + what + " " + path + ": " +
              std::strerror(err));
}

}  // namespace

void write_file_atomic(const std::string& path, std::string_view bytes,
                       Io& io) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());

  const int fd = io.open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                         0644);
  if (fd < 0) fail("cannot create", tmp, errno, io, nullptr, -1);

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        io.write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      fail("write to", tmp, errno, io, &tmp, fd);
    }
    if (n == 0) fail("write to", tmp, ENOSPC, io, &tmp, fd);
    written += static_cast<std::size_t>(n);
  }

  // fsync before rename: once the new name is visible it must also be
  // durable, or a power cut could surface a zero-length file at `path`.
  if (io.fsync(fd) != 0) fail("fsync of", tmp, errno, io, &tmp, fd);
  if (io.close(fd) != 0) fail("close of", tmp, errno, io, &tmp, -1);

  if (io.rename(tmp.c_str(), path.c_str()) != 0) {
    fail("rename to", path, errno, io, &tmp, -1);
  }

  // fsync the parent directory so the rename itself survives a crash. From
  // here on the destination already holds the complete new artifact.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int dir_fd = io.open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC,
                             0);
  if (dir_fd < 0) fail("cannot open directory", dir, errno, io, nullptr, -1);
  if (io.fsync(dir_fd) != 0) {
    fail("fsync of directory", dir, errno, io, nullptr, dir_fd);
  }
  if (io.close(dir_fd) != 0) {
    fail("close of directory", dir, errno, io, nullptr, -1);
  }
}

}  // namespace mapit::fault
