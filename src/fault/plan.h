// Deterministic fault injection: a test-only Io that misbehaves on
// schedule.
//
// A FaultPlan counts calls per Op and consults its fault table on every
// call. A fault names an op, a 1-based call index (`nth`), how many
// consecutive calls it covers (`repeat`), and what goes wrong:
//
//   * `inject_errno != 0` — the call fails with -1 and that errno, without
//     touching the kernel (an ENOSPC write writes nothing, a reset send
//     sends nothing — exactly the pessimistic reading callers must assume).
//   * `short_bytes` (read/write/send/recv) — the call goes through but is
//     truncated to at most `short_bytes`, exercising retry loops.
//   * `crash = true` — the call throws InjectedCrash *before* doing
//     anything. Production code never catches InjectedCrash, so it unwinds
//     straight out of the writer like a kill would stop it; the fault-matrix
//     tests then assert on what the filesystem holds.
//
// Unmatched calls pass through to system_io(). All counters are guarded by
// one mutex: plans are shared across the server's accept + connection
// threads in tests, and a microsecond of contention is irrelevant there.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "fault/io.h"

namespace mapit::fault {

/// Thrown by FaultPlan for `crash` faults. Deliberately NOT a mapit::Error:
/// nothing in the library catches it, so it models sudden death at the
/// injection point (everything before the call happened, the call and
/// everything after did not).
class InjectedCrash {
 public:
  explicit InjectedCrash(Op op, std::uint64_t nth) : op_(op), nth_(nth) {}
  [[nodiscard]] Op op() const { return op_; }
  [[nodiscard]] std::uint64_t nth() const { return nth_; }

 private:
  Op op_;
  std::uint64_t nth_;
};

struct Fault {
  Op op = Op::kWrite;
  std::uint64_t nth = 1;        ///< 1-based call index of `op` to hit
  std::uint64_t repeat = 1;     ///< consecutive calls covered (nth..nth+repeat-1)
  int inject_errno = 0;         ///< fail with -1/errno (0 = succeed)
  std::size_t short_bytes = 0;  ///< truncate byte ops to this many bytes
  bool crash = false;           ///< throw InjectedCrash instead of calling
};

class FaultPlan final : public Io {
 public:
  FaultPlan() = default;

  /// Arms a fault. Faults on the same op may not overlap in call range.
  void add(const Fault& fault);

  /// Calls of `op` seen so far (matched or not).
  [[nodiscard]] std::uint64_t calls(Op op) const;

  /// Faults whose call range was fully consumed.
  [[nodiscard]] std::size_t triggered() const;

  /// Resets all call counters (armed faults stay).
  void reset_counters();

  int open(const char* path, int flags, ::mode_t mode) override;
  ssize_t read(int fd, void* buffer, std::size_t count) override;
  ssize_t write(int fd, const void* buffer, std::size_t count) override;
  int fsync(int fd) override;
  int fstat(int fd, struct ::stat* out) override;
  int ftruncate(int fd, ::off_t length) override;
  int rename(const char* from, const char* to) override;
  int close(int fd) override;
  int accept4(int fd, ::sockaddr* address, ::socklen_t* length,
              int flags) override;
  int connect(int fd, const ::sockaddr* address, ::socklen_t length) override;
  ssize_t send(int fd, const void* buffer, std::size_t count,
               int flags) override;
  ssize_t recv(int fd, void* buffer, std::size_t count, int flags) override;
  int epoll_create1(int flags) override;
  int epoll_ctl(int epfd, int op, int fd, struct ::epoll_event* event) override;
  int epoll_wait(int epfd, struct ::epoll_event* events, int max_events,
                 int timeout_ms) override;
  ::pid_t fork() override;
  int execvp(const char* file, char* const argv[]) override;
  ::pid_t waitpid(::pid_t pid, int* status, int options) override;
  int kill(::pid_t pid, int sig) override;

 private:
  struct Armed {
    Fault fault;
    std::uint64_t hits = 0;
  };

  /// Bumps the op counter and returns the matching armed fault, or nullptr.
  /// Throws InjectedCrash for crash faults. Caller handles errno faults and
  /// short-byte truncation (they need the call arguments).
  const Fault* on_call(Op op);

  /// Shared tail of every byte-moving override: consult the plan, then
  /// either fail, truncate, or pass through via `fallthrough`.
  template <typename Passthrough>
  ssize_t byte_op(Op op, std::size_t count, Passthrough fallthrough);

  mutable std::mutex mutex_;
  std::uint64_t counters_[static_cast<std::size_t>(Op::kCount_)] = {};
  std::vector<Armed> armed_;
  std::size_t triggered_ = 0;
};

}  // namespace mapit::fault
