// Crash-safe whole-file replacement.
//
// write_file_atomic writes to `<path>.tmp.<pid>`, fsyncs the file, renames
// it over `path`, then fsyncs the parent directory. The destination
// therefore always holds either the complete old artifact or the complete
// new one — a crash, full disk, or failed fsync at ANY point can tear only
// the temp file, never `path`. The snapshot fault-matrix test pins this by
// crashing at every injected syscall and re-validating the destination.
//
// Failure handling: on an errno failure the temp file is unlinked
// (best-effort) and mapit::Error is thrown naming the syscall and path; an
// InjectedCrash (or a real kill) leaves the temp file behind, exactly like
// a crashed process would — stale `.tmp.<pid>` files are harmless and may
// be deleted at will.
#pragma once

#include <string>
#include <string_view>

#include "fault/io.h"

namespace mapit::fault {

/// Atomically replaces `path` with `bytes` (see file comment). Throws
/// mapit::Error on failure; after a throw `path` is untouched unless the
/// error happened at or after the directory fsync, in which case `path`
/// already holds the complete new content (rename happened) but its
/// durability is not yet guaranteed.
void write_file_atomic(const std::string& path, std::string_view bytes,
                       Io& io = system_io());

}  // namespace mapit::fault
