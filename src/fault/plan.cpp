#include "fault/plan.h"

#include <algorithm>
#include <cerrno>
#include <string>

#include "net/error.h"

namespace mapit::fault {

void FaultPlan::add(const Fault& fault) {
  MAPIT_ENSURE(fault.nth >= 1, "fault plan: nth is 1-based");
  MAPIT_ENSURE(fault.repeat >= 1, "fault plan: repeat must be >= 1");
  MAPIT_ENSURE(!(fault.crash && fault.inject_errno != 0),
               "fault plan: crash and errno are mutually exclusive");
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Armed& existing : armed_) {
    if (existing.fault.op != fault.op) continue;
    const std::uint64_t a_end = existing.fault.nth + existing.fault.repeat;
    const std::uint64_t b_end = fault.nth + fault.repeat;
    MAPIT_ENSURE(fault.nth >= a_end || existing.fault.nth >= b_end,
                 std::string("fault plan: overlapping faults on ") +
                     to_string(fault.op));
  }
  armed_.push_back(Armed{fault, 0});
}

std::uint64_t FaultPlan::calls(Op op) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return counters_[static_cast<std::size_t>(op)];
}

std::size_t FaultPlan::triggered() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return triggered_;
}

void FaultPlan::reset_counters() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::uint64_t& counter : counters_) counter = 0;
  for (Armed& armed : armed_) armed.hits = 0;
}

const Fault* FaultPlan::on_call(Op op) {
  const Fault* matched = nullptr;
  std::uint64_t call = 0;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    call = ++counters_[static_cast<std::size_t>(op)];
    for (Armed& armed : armed_) {
      if (armed.fault.op != op) continue;
      if (call < armed.fault.nth || call >= armed.fault.nth + armed.fault.repeat) {
        continue;
      }
      if (++armed.hits == armed.fault.repeat) ++triggered_;
      matched = &armed.fault;
      break;
    }
  }
  // Throw outside the lock: the test that catches InjectedCrash may query
  // the plan from the same thread in its handler.
  if (matched != nullptr && matched->crash) throw InjectedCrash(op, call);
  return matched;
}

template <typename Passthrough>
ssize_t FaultPlan::byte_op(Op op, std::size_t count, Passthrough fallthrough) {
  const Fault* fault = on_call(op);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  if (fault != nullptr && fault->short_bytes != 0) {
    count = std::min(count, fault->short_bytes);
  }
  return fallthrough(count);
}

int FaultPlan::open(const char* path, int flags, ::mode_t mode) {
  const Fault* fault = on_call(Op::kOpen);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().open(path, flags, mode);
}

ssize_t FaultPlan::read(int fd, void* buffer, std::size_t count) {
  return byte_op(Op::kRead, count, [&](std::size_t n) {
    return system_io().read(fd, buffer, n);
  });
}

ssize_t FaultPlan::write(int fd, const void* buffer, std::size_t count) {
  return byte_op(Op::kWrite, count, [&](std::size_t n) {
    return system_io().write(fd, buffer, n);
  });
}

int FaultPlan::fsync(int fd) {
  const Fault* fault = on_call(Op::kFsync);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().fsync(fd);
}

int FaultPlan::fstat(int fd, struct ::stat* out) {
  const Fault* fault = on_call(Op::kFstat);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().fstat(fd, out);
}

int FaultPlan::ftruncate(int fd, ::off_t length) {
  const Fault* fault = on_call(Op::kFtruncate);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().ftruncate(fd, length);
}

int FaultPlan::rename(const char* from, const char* to) {
  const Fault* fault = on_call(Op::kRename);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().rename(from, to);
}

int FaultPlan::close(int fd) {
  const Fault* fault = on_call(Op::kClose);
  if (fault != nullptr && fault->inject_errno != 0) {
    // The descriptor is still closed for real — a leaked fd would poison
    // every later test in the process — but the caller sees the failure.
    system_io().close(fd);
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().close(fd);
}

int FaultPlan::accept4(int fd, ::sockaddr* address, ::socklen_t* length,
                       int flags) {
  const Fault* fault = on_call(Op::kAccept);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().accept4(fd, address, length, flags);
}

int FaultPlan::connect(int fd, const ::sockaddr* address, ::socklen_t length) {
  const Fault* fault = on_call(Op::kConnect);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().connect(fd, address, length);
}

ssize_t FaultPlan::send(int fd, const void* buffer, std::size_t count,
                        int flags) {
  return byte_op(Op::kSend, count, [&](std::size_t n) {
    return system_io().send(fd, buffer, n, flags);
  });
}

ssize_t FaultPlan::recv(int fd, void* buffer, std::size_t count, int flags) {
  return byte_op(Op::kRecv, count, [&](std::size_t n) {
    return system_io().recv(fd, buffer, n, flags);
  });
}

int FaultPlan::epoll_create1(int flags) {
  const Fault* fault = on_call(Op::kEpollCreate);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().epoll_create1(flags);
}

int FaultPlan::epoll_ctl(int epfd, int op, int fd,
                         struct ::epoll_event* event) {
  const Fault* fault = on_call(Op::kEpollCtl);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().epoll_ctl(epfd, op, fd, event);
}

int FaultPlan::epoll_wait(int epfd, struct ::epoll_event* events,
                          int max_events, int timeout_ms) {
  const Fault* fault = on_call(Op::kEpollWait);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().epoll_wait(epfd, events, max_events, timeout_ms);
}

::pid_t FaultPlan::fork() {
  const Fault* fault = on_call(Op::kFork);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().fork();
}

int FaultPlan::execvp(const char* file, char* const argv[]) {
  const Fault* fault = on_call(Op::kExecvp);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().execvp(file, argv);
}

::pid_t FaultPlan::waitpid(::pid_t pid, int* status, int options) {
  const Fault* fault = on_call(Op::kWaitpid);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().waitpid(pid, status, options);
}

int FaultPlan::kill(::pid_t pid, int sig) {
  const Fault* fault = on_call(Op::kKill);
  if (fault != nullptr && fault->inject_errno != 0) {
    errno = fault->inject_errno;
    return -1;
  }
  return system_io().kill(pid, sig);
}

}  // namespace mapit::fault
