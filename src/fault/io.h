// Injectable syscall boundary for everything that can fail in production.
//
// Every file/socket syscall the artifact writers, the snapshot reader, and
// the query server issue goes through a mapit::fault::Io, so tests can
// substitute a FaultPlan (plan.h) that deterministically injects short
// reads/writes, EINTR, ENOSPC, EMFILE, failed rename/fsync, or connection
// resets at the Nth call — and the failure paths those inject are the exact
// code paths production executes when the kernel says the same thing.
//
// The default implementation (system_io()) is a stateless passthrough to
// the real syscalls; production callers never pay more than one virtual
// call per syscall, which is noise next to the syscall itself.
//
// Contract: every method has the POSIX return convention of the syscall it
// wraps (-1 + errno on failure); implementations must set errno exactly
// like the kernel would so callers can branch on it.
#pragma once

#include <sys/epoll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>

#include <cstddef>

namespace mapit::fault {

/// The operations a FaultPlan can target. kCount_ is a sentinel.
enum class Op {
  kOpen,
  kRead,
  kWrite,
  kFsync,
  kFstat,
  kFtruncate,
  kRename,
  kClose,
  kAccept,
  kConnect,
  kSend,
  kRecv,
  kEpollCreate,
  kEpollCtl,
  kEpollWait,
  kFork,
  kExecvp,
  kWaitpid,
  kKill,
  kCount_,
};

[[nodiscard]] const char* to_string(Op op);

/// Syscall surface. The base class IS the passthrough implementation;
/// FaultPlan overrides selected methods to misbehave on schedule.
class Io {
 public:
  virtual ~Io() = default;

  virtual int open(const char* path, int flags, ::mode_t mode);
  virtual ssize_t read(int fd, void* buffer, std::size_t count);
  virtual ssize_t write(int fd, const void* buffer, std::size_t count);
  virtual int fsync(int fd);
  virtual int fstat(int fd, struct ::stat* out);
  virtual int ftruncate(int fd, ::off_t length);
  virtual int rename(const char* from, const char* to);
  virtual int close(int fd);
  virtual int accept4(int fd, ::sockaddr* address, ::socklen_t* length,
                      int flags);
  virtual int connect(int fd, const ::sockaddr* address, ::socklen_t length);
  virtual ssize_t send(int fd, const void* buffer, std::size_t count,
                       int flags);
  virtual ssize_t recv(int fd, void* buffer, std::size_t count, int flags);
  virtual int epoll_create1(int flags);
  virtual int epoll_ctl(int epfd, int op, int fd, struct ::epoll_event* event);
  virtual int epoll_wait(int epfd, struct ::epoll_event* events,
                         int max_events, int timeout_ms);
  // Process management (the `mapit supervise` tier). Same POSIX contract:
  // fork returns twice, execvp only returns on failure.
  virtual ::pid_t fork();
  virtual int execvp(const char* file, char* const argv[]);
  virtual ::pid_t waitpid(::pid_t pid, int* status, int options);
  virtual int kill(::pid_t pid, int sig);
};

/// The shared passthrough instance production code defaults to.
[[nodiscard]] Io& system_io();

}  // namespace mapit::fault
