#include "core/convergence.h"

#include <algorithm>
#include <utility>

namespace mapit::core {

bool ConvergenceTracker::seen_before(std::uint64_t hash, std::string state) {
  std::vector<std::string>& bucket = buckets_[hash];
  if (std::find(bucket.begin(), bucket.end(), state) != bucket.end()) {
    return true;
  }
  bucket.push_back(std::move(state));
  ++count_;
  return false;
}

}  // namespace mapit::core
