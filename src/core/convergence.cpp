#include "core/convergence.h"

#include <utility>

namespace mapit::core {

bool ConvergenceTracker::seen_before(std::uint64_t hash, std::string state) {
  std::vector<std::size_t>& bucket = buckets_[hash];
  for (const std::size_t index : bucket) {
    if (states_[index] == state) return true;
  }
  bucket.push_back(states_.size());
  states_.push_back(std::move(state));
  return false;
}

}  // namespace mapit::core
