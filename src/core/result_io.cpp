#include "core/result_io.h"

#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "net/error.h"

namespace mapit::core {

namespace {

[[nodiscard]] InferenceKind kind_from(const std::string& text,
                                      std::size_t line_no) {
  if (text == "direct") return InferenceKind::kDirect;
  if (text == "indirect") return InferenceKind::kIndirect;
  if (text == "stub") return InferenceKind::kStub;
  throw ParseError("inferences line " + std::to_string(line_no) +
                   ": unknown kind '" + text + "'");
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

void write_inferences(std::ostream& out,
                      const std::vector<Inference>& inferences) {
  out << "# address|direction|router_asn|other_asn|kind|votes/neighbors\n";
  for (const Inference& inference : inferences) {
    out << inference.half.address.to_string() << '|'
        << graph::suffix(inference.half.direction) << '|'
        << inference.router_as << '|' << inference.other_as << '|'
        << to_string(inference.kind) << '|' << inference.votes << '/'
        << inference.neighbor_count << '\n';
  }
}

std::vector<Inference> read_inferences(std::istream& in) {
  std::vector<Inference> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const std::vector<std::string> fields = split(line, '|');
    if (fields.size() != 6) {
      throw ParseError("inferences line " + std::to_string(line_no) +
                       ": expected 6 fields, got " +
                       std::to_string(fields.size()));
    }
    try {
      Inference inference;
      inference.half.address = net::Ipv4Address::parse_or_throw(fields[0]);
      if (fields[1] == "f") {
        inference.half.direction = graph::Direction::kForward;
      } else if (fields[1] == "b") {
        inference.half.direction = graph::Direction::kBackward;
      } else {
        throw ParseError("bad direction '" + fields[1] + "'");
      }
      inference.router_as = static_cast<asdata::Asn>(std::stoul(fields[2]));
      inference.other_as = static_cast<asdata::Asn>(std::stoul(fields[3]));
      inference.kind = kind_from(fields[4], line_no);
      const std::size_t slash = fields[5].find('/');
      if (slash == std::string::npos) {
        throw ParseError("bad evidence '" + fields[5] + "'");
      }
      inference.votes =
          static_cast<std::uint32_t>(std::stoul(fields[5].substr(0, slash)));
      inference.neighbor_count =
          static_cast<std::uint32_t>(std::stoul(fields[5].substr(slash + 1)));
      out.push_back(inference);
    } catch (const ParseError& e) {
      throw ParseError("inferences line " + std::to_string(line_no) + ": " +
                       e.what());
    } catch (const std::exception&) {
      throw ParseError("inferences line " + std::to_string(line_no) +
                       ": malformed number in '" + line + "'");
    }
  }
  return out;
}

}  // namespace mapit::core
