#include "core/result_io.h"

#include <charconv>
#include <cstdint>
#include <istream>
#include <ostream>
#include <sstream>
#include <string>
#include <system_error>
#include <vector>

#include "fault/atomic_file.h"
#include "net/error.h"

namespace mapit::core {

namespace {

/// Strict decimal parse of the whole string: rejects empty input, leading
/// whitespace, signs, trailing garbage, and out-of-range values — all of
/// which std::stoul silently accepts or mangles (e.g. "-1" wraps, "12abc"
/// stops at the 'a').
template <typename UInt>
[[nodiscard]] UInt parse_uint(const std::string& text, const char* what) {
  UInt value{};
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) {
    throw ParseError(std::string("bad ") + what + " '" + text + "'");
  }
  return value;
}

[[nodiscard]] InferenceKind kind_from(const std::string& text) {
  if (text == "direct") return InferenceKind::kDirect;
  if (text == "indirect") return InferenceKind::kIndirect;
  if (text == "stub") return InferenceKind::kStub;
  // Positional context (line + byte offset) is added by the caller.
  throw ParseError("unknown kind '" + text + "'");
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

void write_inferences(std::ostream& out,
                      const std::vector<Inference>& inferences) {
  out << "# address|direction|router_asn|other_asn|kind|votes/neighbors\n";
  for (const Inference& inference : inferences) {
    out << inference.half.address.to_string() << '|'
        << graph::suffix(inference.half.direction) << '|'
        << inference.router_as << '|' << inference.other_as << '|'
        << to_string(inference.kind) << '|' << inference.votes << '/'
        << inference.neighbor_count << '\n';
  }
}

void write_inferences_file(const std::string& path,
                           const std::vector<Inference>& inferences,
                           fault::Io& io) {
  std::ostringstream buffer;
  write_inferences(buffer, inferences);
  fault::write_file_atomic(path, buffer.view(), io);
}

std::vector<Inference> read_inferences(std::istream& in) {
  std::vector<Inference> out;
  std::string line;
  std::size_t line_no = 0;
  std::size_t line_offset = 0;
  // Line number for humans, byte offset (of the line start, CR included)
  // so a fuzzer crash or corrupt file maps straight to the input bytes.
  const auto where = [&line_no, &line_offset] {
    return "inferences line " + std::to_string(line_no) + " (byte " +
           std::to_string(line_offset) + ")";
  };
  while (std::getline(in, line)) {
    ++line_no;
    const std::size_t next_offset = line_offset + line.size() + 1;
    // Accept files that passed through Windows tooling (CRLF endings) or
    // that gained trailing blank lines in transit.
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty() || line[0] == '#') {
      line_offset = next_offset;
      continue;
    }
    const std::vector<std::string> fields = split(line, '|');
    if (fields.size() != 6) {
      throw ParseError(where() + ": expected 6 fields, got " +
                       std::to_string(fields.size()));
    }
    try {
      Inference inference;
      inference.half.address = net::Ipv4Address::parse_or_throw(fields[0]);
      if (fields[1] == "f") {
        inference.half.direction = graph::Direction::kForward;
      } else if (fields[1] == "b") {
        inference.half.direction = graph::Direction::kBackward;
      } else {
        throw ParseError("bad direction '" + fields[1] + "'");
      }
      inference.router_as =
          parse_uint<asdata::Asn>(fields[2], "router ASN");
      inference.other_as = parse_uint<asdata::Asn>(fields[3], "other ASN");
      inference.kind = kind_from(fields[4]);
      const std::size_t slash = fields[5].find('/');
      if (slash == std::string::npos) {
        throw ParseError("bad evidence '" + fields[5] + "'");
      }
      inference.votes =
          parse_uint<std::uint32_t>(fields[5].substr(0, slash), "votes");
      inference.neighbor_count = parse_uint<std::uint32_t>(
          fields[5].substr(slash + 1), "neighbor count");
      if (inference.votes > inference.neighbor_count) {
        throw ParseError("votes " + std::to_string(inference.votes) +
                         " exceed neighbor count " +
                         std::to_string(inference.neighbor_count));
      }
      out.push_back(inference);
    } catch (const ParseError& e) {
      throw ParseError(where() + ": " + e.what());
    } catch (const std::exception&) {
      throw ParseError(where() + ": malformed number in '" + line + "'");
    }
    line_offset = next_offset;
  }
  return out;
}

}  // namespace mapit::core
