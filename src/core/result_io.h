// Text serialization for MAP-IT inference results.
//
// Format (one inference per line, '#' comments allowed):
//
//   <address>|<f or b>|<router_asn>|<other_asn>|<kind>|<votes>/<neighbors>
//
// e.g. "109.105.98.10|f|11537|2603|direct|3/3".
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "core/inference.h"
#include "fault/io.h"

namespace mapit::core {

/// Writes inferences one per line with a header comment.
void write_inferences(std::ostream& out,
                      const std::vector<Inference>& inferences);

/// Writes inferences to `path` crash-safely (tmp file + fsync + atomic
/// rename, see fault/atomic_file.h): an interrupted run leaves either the
/// previous complete file or the new complete file, never a torn one.
/// Throws mapit::Error on I/O failure. `io` is the injectable syscall
/// boundary.
void write_inferences_file(const std::string& path,
                           const std::vector<Inference>& inferences,
                           fault::Io& io = fault::system_io());

/// Reads inferences written by write_inferences. Throws mapit::ParseError
/// naming the offending line.
[[nodiscard]] std::vector<Inference> read_inferences(std::istream& in);

}  // namespace mapit::core
