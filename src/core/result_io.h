// Text serialization for MAP-IT inference results.
//
// Format (one inference per line, '#' comments allowed):
//
//   <address>|<f or b>|<router_asn>|<other_asn>|<kind>|<votes>/<neighbors>
//
// e.g. "109.105.98.10|f|11537|2603|direct|3/3".
#pragma once

#include <iosfwd>
#include <vector>

#include "core/inference.h"

namespace mapit::core {

/// Writes inferences one per line with a header comment.
void write_inferences(std::ostream& out,
                      const std::vector<Inference>& inferences);

/// Reads inferences written by write_inferences. Throws mapit::ParseError
/// naming the offending line.
[[nodiscard]] std::vector<Inference> read_inferences(std::istream& in);

}  // namespace mapit::core
