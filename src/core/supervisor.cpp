#include "core/supervisor.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "net/error.h"

namespace mapit::core {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::kNone:
      return "none";
    case StopReason::kSignal:
      return "signal";
    case StopReason::kDeadline:
      return "deadline";
    case StopReason::kMemoryBudget:
      return "memory-budget";
    case StopReason::kBoundaryLimit:
      return "boundary-limit";
  }
  return "unknown";
}

std::size_t current_rss_bytes() {
  // /proc/self/statm: size resident shared text lib data dt (pages).
  std::FILE* file = std::fopen("/proc/self/statm", "r");
  if (file == nullptr) return 0;
  unsigned long long size_pages = 0;
  unsigned long long resident_pages = 0;
  const int matched =
      std::fscanf(file, "%llu %llu", &size_pages, &resident_pages);
  std::fclose(file);
  if (matched != 2) return 0;
  const long page = ::sysconf(_SC_PAGESIZE);
  if (page <= 0) return 0;
  return static_cast<std::size_t>(resident_pages) *
         static_cast<std::size_t>(page);
}

// ---------------------------------------------------------------------------
// SignalGuard
// ---------------------------------------------------------------------------

namespace {

// Handler-visible state. File-scope atomics because a signal handler cannot
// touch a `this` pointer safely; the single-instance rule keeps them
// unambiguous.
std::atomic<int> g_signal_received{0};
std::atomic<std::uint64_t> g_hup_count{0};
std::atomic<int> g_wake_fd{-1};
std::atomic<bool> g_guard_exists{false};

extern "C" void mapit_signal_handler(int signal_number) {
  if (signal_number == SIGHUP) {
    // SIGHUP is a nudge, not a stop: count it and wake, but leave the
    // recorded stop signal alone.
    g_hup_count.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Record only the first signal; a second SIGINT while draining should
    // not overwrite the original reason.
    int expected = 0;
    g_signal_received.compare_exchange_strong(expected, signal_number,
                                              std::memory_order_relaxed);
  }
  const int fd = g_wake_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    // The pipe's write end is non-blocking; a full pipe just means waiters
    // already have a pending wake-up. write() is async-signal-safe.
    [[maybe_unused]] const ssize_t rc = ::write(fd, &byte, 1);
  }
}

}  // namespace

SignalGuard::SignalGuard() {
  MAPIT_ENSURE(!g_guard_exists.exchange(true),
               "only one SignalGuard may exist at a time");
  g_signal_received.store(0, std::memory_order_relaxed);
  g_hup_count.store(0, std::memory_order_relaxed);
  int fds[2];
  if (::pipe2(fds, O_CLOEXEC) != 0) {
    g_guard_exists.store(false);
    throw Error(std::string("pipe2 failed: ") + std::strerror(errno));
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  // Only the write end is non-blocking: the handler must never block, but
  // wait() wants a plain blocking read.
  (void)::fcntl(write_fd_, F_SETFL, O_NONBLOCK);
  g_wake_fd.store(write_fd_, std::memory_order_relaxed);

  struct sigaction action {};
  action.sa_handler = &mapit_signal_handler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  (void)::sigaction(SIGTERM, &action, &old_term_);
  (void)::sigaction(SIGINT, &action, &old_int_);
  (void)::sigaction(SIGHUP, &action, &old_hup_);
}

SignalGuard::~SignalGuard() {
  (void)::sigaction(SIGTERM, &old_term_, nullptr);
  (void)::sigaction(SIGINT, &old_int_, nullptr);
  (void)::sigaction(SIGHUP, &old_hup_, nullptr);
  g_wake_fd.store(-1, std::memory_order_relaxed);
  (void)::close(write_fd_);
  (void)::close(read_fd_);
  g_guard_exists.store(false);
}

int SignalGuard::signal_received() {
  return g_signal_received.load(std::memory_order_relaxed);
}

std::uint64_t SignalGuard::hup_count() {
  return g_hup_count.load(std::memory_order_relaxed);
}

int SignalGuard::wait() {
  char byte;
  for (;;) {
    const ssize_t got = ::read(read_fd_, &byte, 1);
    if (got == 1) break;
    if (got < 0 && errno == EINTR) continue;
    break;  // pipe closed or hard error: stop waiting either way
  }
  return signal_received();
}

void SignalGuard::wake() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t rc = ::write(write_fd_, &byte, 1);
}

// ---------------------------------------------------------------------------
// RunSupervisor
// ---------------------------------------------------------------------------

RunSupervisor::RunSupervisor(SupervisorOptions options, SignalGuard* signals)
    : options_(options),
      signals_(signals),
      start_(std::chrono::steady_clock::now()) {
  peak_rss_.store(current_rss_bytes(), std::memory_order_relaxed);
  if (options_.deadline_seconds > 0 || options_.memory_budget_mb > 0) {
    watchdog_ = std::thread([this] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!done_) {
        lock.unlock();
        observe();
        lock.lock();
        cv_.wait_for(lock, std::chrono::milliseconds(100),
                     [this] { return done_; });
      }
    });
  }
}

RunSupervisor::~RunSupervisor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    done_ = true;
  }
  cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
}

double RunSupervisor::elapsed_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void RunSupervisor::observe() {
  const std::size_t rss = current_rss_bytes();
  std::size_t peak = peak_rss_.load(std::memory_order_relaxed);
  while (rss > peak && !peak_rss_.compare_exchange_weak(
                           peak, rss, std::memory_order_relaxed)) {
  }
  StopReason breach = StopReason::kNone;
  if (options_.deadline_seconds > 0 &&
      elapsed_seconds() >= options_.deadline_seconds) {
    breach = StopReason::kDeadline;
  } else if (options_.memory_budget_mb > 0 && rss > 0 &&
             peak_rss_.load(std::memory_order_relaxed) >
                 options_.memory_budget_mb * std::size_t{1024} * 1024) {
    breach = StopReason::kMemoryBudget;
  }
  if (breach != StopReason::kNone) {
    std::uint8_t expected = 0;
    observed_breach_.compare_exchange_strong(
        expected, static_cast<std::uint8_t>(breach),
        std::memory_order_relaxed);
  }
}

void RunSupervisor::note_boundary() { ++boundaries_; }

StopReason RunSupervisor::should_stop() {
  if (stopped_ != StopReason::kNone) return stopped_;

  StopReason reason = StopReason::kNone;
  if (signals_ != nullptr && SignalGuard::signal_received() != 0) {
    reason = StopReason::kSignal;
  }
  if (reason == StopReason::kNone &&
      (options_.deadline_seconds > 0 || options_.memory_budget_mb > 0)) {
    // Fold in a fresh sample so a boundary poll never misses a breach the
    // watchdog has not sampled yet.
    observe();
    reason = static_cast<StopReason>(
        observed_breach_.load(std::memory_order_relaxed));
  }
  if (reason == StopReason::kNone && options_.boundary_limit > 0 &&
      boundaries_ >= options_.boundary_limit) {
    reason = StopReason::kBoundaryLimit;
  }
  stopped_ = reason;
  return reason;
}

}  // namespace mapit::core
