#include "core/links.h"

#include <algorithm>
#include <map>

namespace mapit::core {

std::vector<InterAsLink> aggregate_links(const Result& result,
                                         const graph::InterfaceGraph& graph) {
  // Key each inference by the unordered {address, other-side} pair.
  std::map<std::pair<net::Ipv4Address, net::Ipv4Address>, InterAsLink> links;

  for (const Inference& inference : result.inferences) {
    const net::Ipv4Address address = inference.half.address;
    const net::Ipv4Address other =
        graph.other_sides().other_address(address);
    const auto key = address < other ? std::make_pair(address, other)
                                     : std::make_pair(other, address);
    auto [it, inserted] = links.try_emplace(key);
    InterAsLink& link = it->second;
    if (inserted) {
      link.low = key.first;
      link.high = key.second;
    }
    ++link.supporting_inferences;
    const auto pair = inference.as_pair();
    const bool stronger = link.neighbor_count == 0 ||
                          inference.support() > link.support_ratio();
    if (link.supporting_inferences == 1) {
      std::tie(link.as_a, link.as_b) = pair;
    } else if (pair != std::make_pair(link.as_a, link.as_b)) {
      link.conflicting = true;
      if (stronger) std::tie(link.as_a, link.as_b) = pair;
    }
    if (stronger) {
      link.votes = inference.votes;
      link.neighbor_count = inference.neighbor_count;
    }
    link.via_stub_heuristic |= inference.kind == InferenceKind::kStub;
  }

  std::vector<InterAsLink> out;
  out.reserve(links.size());
  for (auto& [_, link] : links) out.push_back(link);
  return out;  // std::map iteration is already (low, high) ordered
}

}  // namespace mapit::core
