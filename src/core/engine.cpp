#include "core/engine.h"

#include <algorithm>
#include <cstring>
#include <functional>
#include <utility>

#include "core/checkpoint.h"
#include "core/convergence.h"
#include "net/error.h"
#include "net/special_purpose.h"

namespace mapit::core {

namespace {

/// f-threshold test with a tolerance so that f = 0.5 accepts an exact half.
[[nodiscard]] bool meets_fraction(std::size_t count, std::size_t total,
                                  double f) {
  return static_cast<double>(count) + 1e-9 >=
         f * static_cast<double>(total);
}

}  // namespace

Engine::Engine(const graph::InterfaceGraph& graph, const bgp::Ip2As& ip2as,
               const asdata::As2Org& orgs, const asdata::AsRelationships& rels,
               Options options)
    : graph_(graph),
      ip2as_(ip2as),
      orgs_(orgs),
      rels_(rels),
      options_(std::move(options)) {
  MAPIT_ENSURE(options_.f >= 0.0 && options_.f <= 1.0,
               "f must be within [0, 1]");
  MAPIT_ENSURE(options_.max_iterations > 0, "max_iterations must be positive");
  const std::size_t halves = graph_.half_count();
  halves_.resize(halves);
  base_.resize(halves);
  base_group_.resize(halves);
  view_.resize(halves);
  view_group_.resize(halves);
  touched_.assign(halves, 0);
  dirty_flag_.assign(halves, 0);

  const unsigned threads = parallel::resolve_threads(options_.threads);
  if (threads > 1) pool_ = std::make_unique<parallel::ThreadPool>(threads);
  const std::size_t workers = pool_ ? pool_->size() : 1;
  vote_scratch_.resize(workers);
  direct_buffers_.resize(workers);
  demote_buffers_.resize(workers);
}

// ---------------------------------------------------------------------------
// Mapping views
// ---------------------------------------------------------------------------

void Engine::reset_state() {
  std::fill(halves_.begin(), halves_.end(), HalfState{});
  // Base mappings come straight off the prefix trie, once per address (the
  // two halves of an address always share a base mapping).
  const std::size_t halves = halves_.size();
  for (std::size_t id = 0; id < halves; id += 2) {
    const asdata::Asn asn =
        ip2as_.origin(graph_.address_at(static_cast<HalfId>(id)));
    base_[id] = base_[id + 1] = asn;
    const std::uint64_t key =
        asn == asdata::kUnknownAsn ? 0 : group_key(asn);
    base_group_[id] = base_group_[id + 1] = key;
  }
  dirty_.clear();
  work_.clear();
  std::fill(touched_.begin(), touched_.end(), 0);
  std::fill(dirty_flag_.begin(), dirty_flag_.end(), 0);
  stats_ = EngineStats{};
  snapshots_.clear();
  tracker_ = ConvergenceTracker{};
}

asdata::Asn Engine::effective_as(HalfId id) const {
  const HalfState& st = halves_[id];
  if (st.direct_override) return *st.direct_override;
  if (st.indirect_override) return *st.indirect_override;
  return base_[id];
}

void Engine::freeze_view() {
  // Pure per-id transcription of current state into the frozen slabs;
  // workers own disjoint ranges, so the parallel fill is race-free and
  // produces the same bytes as the sequential loop.
  parallel::for_ranges(
      pool_.get(), halves_.size(),
      [this](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t id = begin; id < end; ++id) {
          const HalfState& st = halves_[id];
          if (st.direct_override) {
            view_[id] = *st.direct_override;
            view_group_[id] = group_key(*st.direct_override);
          } else if (st.indirect_override) {
            view_[id] = *st.indirect_override;
            view_group_[id] = group_key(*st.indirect_override);
          } else {
            view_[id] = base_[id];
            view_group_[id] = base_group_[id];
          }
        }
      });
}

// ---------------------------------------------------------------------------
// Counting
// ---------------------------------------------------------------------------

std::uint64_t Engine::group_key(asdata::Asn asn) const {
  return options_.sibling_grouping ? orgs_.group_key(asn)
                                   : (std::uint64_t{1} << 62) | asn;
}

Engine::MajorityResult Engine::count_majority(
    HalfId id, std::vector<VoteGroup>& scratch) const {
  // Group neighbour votes by sibling organization; remember per-ASN counts
  // so the representative is the most frequent sibling (paper §4.4.1).
  // Votes are flat slab reads: the neighbour span already names the
  // opposite-direction half ids, and the frozen view carries both the
  // mapping and its group key. All shared state read here is frozen for
  // the pass; the caller supplies its own scratch, so concurrent counts
  // over disjoint ids never touch the same memory.
  std::size_t live = 0;
  for (HalfId nid : graph_.neighbor_ids(id)) {
    const asdata::Asn asn = view_[nid];
    if (asn == asdata::kUnknownAsn) continue;  // denominator only
    const std::uint64_t key = view_group_[nid];
    VoteGroup* group = nullptr;
    for (std::size_t g = 0; g < live; ++g) {
      if (scratch[g].key == key) {
        group = &scratch[g];
        break;
      }
    }
    if (group == nullptr) {
      if (live == scratch.size()) scratch.emplace_back();
      group = &scratch[live++];
      group->key = key;
      group->count = 0;
      group->members.clear();
    }
    ++group->count;
    bool known = false;
    for (auto& [member, count] : group->members) {
      if (member == asn) {
        ++count;
        known = true;
        break;
      }
    }
    if (!known) group->members.emplace_back(asn, 1);
  }

  MajorityResult best;
  std::size_t runner_up = 0;
  for (std::size_t g = 0; g < live; ++g) {
    const VoteGroup& group = scratch[g];
    // Representative: most frequent member ASN, ties to the lowest ASN.
    asdata::Asn representative = asdata::kUnknownAsn;
    std::size_t rep_count = 0;
    for (const auto& [asn, count] : group.members) {
      if (count > rep_count || (count == rep_count && asn < representative)) {
        representative = asn;
        rep_count = count;
      }
    }
    if (group.count > best.count ||
        (group.count == best.count && representative < best.asn)) {
      runner_up = best.count;
      best.count = group.count;
      best.asn = representative;
    } else if (group.count > runner_up) {
      runner_up = group.count;
    }
  }
  best.strict = best.count > runner_up && best.count > 0;
  return best;
}

std::size_t Engine::group_count(HalfId id, asdata::Asn target) const {
  const std::uint64_t key = group_key(target);
  std::size_t count = 0;
  for (HalfId nid : graph_.neighbor_ids(id)) {
    if (view_[nid] != asdata::kUnknownAsn && view_group_[nid] == key) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Dirty-set propagation
// ---------------------------------------------------------------------------

void Engine::mark_dependents_dirty(HalfId id) {
  for (HalfId dependent : graph_.reverse_neighbor_ids(id)) {
    if (!dirty_flag_[dependent]) {
      dirty_flag_[dependent] = 1;
      dirty_.push_back(dependent);
    }
  }
}

template <typename Fn>
void Engine::mutate_mapping(HalfId id, Fn&& fn) {
  const asdata::Asn before = effective_as(id);
  fn(halves_[id]);
  if (effective_as(id) != before) mark_dependents_dirty(id);
}

void Engine::take_work() {
  work_.clear();
  std::swap(work_, dirty_);
  for (HalfId id : work_) dirty_flag_[id] = 0;
  // Ascending id order equals (address, direction) order, so an
  // incremental pass visits its candidates in the same order a full sweep
  // would — last-writer effects (e.g. two sources propagating an indirect
  // inference onto the same other side) stay identical.
  std::sort(work_.begin(), work_.end());
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

void Engine::clear_suppressions() {
  for (HalfState& st : halves_) st.suppressed = false;
}

void Engine::discard_direct(HalfId id, bool suppress) {
  HalfState& st = halves_[id];
  if (!st.direct) return;
  mutate_mapping(id, [&](HalfState& s) {
    s.direct.reset();
    s.direct_override.reset();
    s.uncertain = false;
    if (suppress) s.suppressed = true;
  });
  // The indirect inference propagated to the other side dies with its
  // source (§4.4.2).
  const HalfId other = graph_.other_side_id(id);
  if (other != graph::kInvalidHalfId && halves_[other].indirect_source == id) {
    discard_indirect(other);
  }
}

void Engine::discard_indirect(HalfId id) {
  mutate_mapping(id, [](HalfState& st) {
    st.indirect_source = graph::kInvalidHalfId;
    st.indirect_override.reset();
  });
}

// ---------------------------------------------------------------------------
// Add step (§4.4)
// ---------------------------------------------------------------------------

void Engine::apply_indirect(HalfId source) {
  if (!options_.update_other_sides) return;
  // IXP LANs are multipoint: the /30-/31 other-side relation does not hold
  // there (footnote 7).
  if (options_.ixp_aware && ip2as_.is_ixp(graph_.address_at(source))) return;
  const HalfState& st = halves_[source];
  if (!st.direct) return;
  const HalfId other = graph_.other_side_id(source);
  if (other == graph::kInvalidHalfId) return;
  if (net::is_special_purpose(graph_.address_at(other))) return;
  const asdata::Asn router = st.direct->router_as;
  touched_[other] = 1;
  mutate_mapping(other, [&](HalfState& ot) {
    ot.indirect_source = source;
    ot.indirect_override = router;
  });
}

std::optional<Engine::DirectProposal> Engine::evaluate_direct(
    HalfId id, std::vector<VoteGroup>& scratch) {
  const auto neighbors = graph_.neighbor_ids(id);
  if (neighbors.size() < 2) return std::nullopt;  // §4.3's two-address floor
  touched_[id] = 1;
  const HalfState& st = halves_[id];
  if (st.direct || st.suppressed) return std::nullopt;

  const MajorityResult majority = count_majority(id, scratch);
  if (!majority.strict) return std::nullopt;
  if (!meets_fraction(majority.count, neighbors.size(), options_.f)) {
    return std::nullopt;
  }
  // "previous IP2AS(h) != AS_N": the half's own mapping, ignoring any
  // indirect override it carries — an indirect inference must not
  // preclude the direct one (§4.4.2, DESIGN.md §5).
  if (group_key(majority.asn) == group_key(base_[id])) return std::nullopt;

  return DirectProposal{id, majority.asn,
                        static_cast<std::uint32_t>(majority.count),
                        static_cast<std::uint32_t>(neighbors.size())};
}

void Engine::commit_direct(const DirectProposal& proposal) {
  mutate_mapping(proposal.id, [&](HalfState& s) {
    s.direct = DirectInference{proposal.asn, base_[proposal.id], false,
                               proposal.votes, proposal.neighbor_count};
    s.direct_override = proposal.asn;
  });
  ++stats_.direct_made;
  apply_indirect(proposal.id);
}

bool Engine::try_direct_inference(HalfId id) {
  const auto proposal = evaluate_direct(id, vote_scratch_[0]);
  if (!proposal) return false;
  commit_direct(*proposal);
  return true;
}

bool Engine::direct_pass(bool full_sweep) {
  bool changed = false;
  if (full_sweep) {
    const std::size_t limit = graph_.record_half_count();
    if (pool_) {
      // Evaluation is a pure function of the frozen view and each half's
      // own pre-pass state, so workers decide disjoint ascending id ranges
      // concurrently. Mutations happen only in the commit loop below, in
      // ascending id order (worker ranges are ascending and each buffer is
      // filled ascending) — the sequential sweep's exact mutation sequence,
      // so last-writer effects, dirty marks, and stats are all identical.
      for (auto& buffer : direct_buffers_) buffer.clear();
      pool_->for_ranges(limit, [this](unsigned worker, std::size_t begin,
                                      std::size_t end) {
        auto& scratch = vote_scratch_[worker];
        auto& buffer = direct_buffers_[worker];
        for (std::size_t id = begin; id < end; ++id) {
          if (const auto proposal =
                  evaluate_direct(static_cast<HalfId>(id), scratch)) {
            buffer.push_back(*proposal);
          }
        }
      });
      for (const auto& buffer : direct_buffers_) {
        for (const DirectProposal& proposal : buffer) {
          commit_direct(proposal);
          changed = true;
        }
      }
    } else {
      for (HalfId id = 0; id < static_cast<HalfId>(limit); ++id) {
        changed |= try_direct_inference(id);
      }
    }
  } else {
    // Only halves whose neighbour mappings changed since their last
    // evaluation can newly clear the majority test; everyone else would
    // reproduce last pass's verdict (the count depends only on the frozen
    // neighbour view).
    for (HalfId id : work_) changed |= try_direct_inference(id);
  }
  return changed;
}

bool Engine::resolve_dual_inferences() {
  // Both halves of the same interface carry direct inferences naming
  // different ASes: a third-party artifact; the forward inference wins
  // (§4.4.3). Interfaces without a base IP2AS mapping are left alone.
  bool changed = false;
  const std::size_t n = graph_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const HalfId fwd = static_cast<HalfId>(2 * i);
    const HalfId bwd = fwd + 1;
    const HalfState& fs = halves_[fwd];
    const HalfState& bs = halves_[bwd];
    if (!fs.direct || !bs.direct) continue;
    if (base_[fwd] == asdata::kUnknownAsn) continue;
    if (group_key(fs.direct->router_as) == group_key(bs.direct->router_as)) {
      continue;  // same AS both ways: load balancing/siblings; keep both
    }
    discard_direct(bwd, /*suppress=*/true);
    ++stats_.duals_resolved;
    changed = true;
  }
  return changed;
}

bool Engine::resolve_inverse_inferences() {
  // A forward inference {AS_N, AS_P} on interface a, and a backward
  // inference {AS_P, AS_N} on a member of a's N_F, cannot both be right
  // (§4.4.4). The forward one is topologically nearer to the monitors and
  // wins — unless the backward IH's other side also carries a direct
  // inference, in which case both are flagged uncertain.
  // Uncertainty is recomputed from scratch each resolution pass, so the
  // stats counter reflects the latest pass, not a running total.
  for (HalfState& st : halves_) st.uncertain = false;
  stats_.uncertain_pairs = 0;

  bool changed = false;
  const std::size_t n = graph_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const HalfId fwd = static_cast<HalfId>(2 * i);
    HalfState& fs = halves_[fwd];
    if (!fs.direct) continue;
    const auto fwd_router = fs.direct->router_as;
    const auto fwd_other = fs.direct->other_as;
    // A forward half's neighbour span is exactly the backward halves of
    // its N_F members.
    for (HalfId nb : graph_.neighbor_ids(fwd)) {
      HalfState& bs = halves_[nb];
      if (!bs.direct) continue;
      const auto& bd = *bs.direct;
      const bool mirrored =
          group_key(bd.router_as) == group_key(fwd_other) &&
          group_key(bd.other_as) == group_key(fwd_router);
      if (!mirrored) continue;

      const HalfId nb_other = graph_.other_side_id(nb);
      const bool other_has_direct = nb_other != graph::kInvalidHalfId &&
                                    halves_[nb_other].direct.has_value();
      if (other_has_direct) {
        // Neither IH is nearer: emit both as uncertain (§4.4.4).
        fs.uncertain = true;
        bs.uncertain = true;
        ++stats_.uncertain_pairs;
      } else {
        discard_direct(nb, /*suppress=*/true);
        ++stats_.inverses_resolved;
        changed = true;
      }
    }
  }
  return changed;
}

void Engine::add_step() {
  clear_suppressions();
  const bool first_step = stats_.iterations == 0;
  bool first_pass = true;
  bool changed = true;
  while (changed) {
    ++stats_.add_passes;
    freeze_view();
    take_work();
    // The first pass of every add step is a full sweep (suppressions were
    // just lifted); later passes only revisit dirtied halves.
    changed = direct_pass(first_pass || !options_.incremental_recount);
    if (first_step && first_pass) snapshot("Direct");
    if (options_.resolve_duals) changed |= resolve_dual_inferences();
    if (first_step && first_pass) snapshot("P2P");
    if (options_.resolve_inverses) changed |= resolve_inverse_inferences();
    if (first_step && first_pass) snapshot("Inverse");
    first_pass = false;
  }
  if (first_step) snapshot("Add");
}

// ---------------------------------------------------------------------------
// Remove step (§4.5)
// ---------------------------------------------------------------------------

void Engine::demote_direct(HalfId id) {
  mutate_mapping(id, [&](HalfState& st) {
    st.direct.reset();
    st.uncertain = false;
    // Retain the mapping as an indirect inference associated with the
    // other side's direct inference (§4.5) — unless the half already
    // carries a live indirect association, which must not be clobbered
    // (it is a genuine propagation from the other side's own inference).
    const bool live_indirect =
        st.indirect_source != graph::kInvalidHalfId &&
        halves_[st.indirect_source].direct.has_value();
    if (!live_indirect) {
      st.indirect_override = st.direct_override;
      st.indirect_source = graph_.other_side_id(id);
    }
    st.direct_override.reset();
  });
  ++stats_.demoted_in_remove_step;
}

bool Engine::lost_support(HalfId id, std::vector<VoteGroup>& scratch) const {
  const HalfState& st = halves_[id];
  if (!st.direct) return false;
  const DirectInference& inference = *st.direct;
  const auto neighbors = graph_.neighbor_ids(id);

  bool supported = false;
  if (inference.from_stub_heuristic) {
    // Stub inferences are produced after the main loop; if one is ever
    // present during a remove step, judge it by its single neighbour.
    supported = !neighbors.empty();
  } else if (options_.remove_rule == RemoveRule::kMajority) {
    supported = 2 * group_count(id, inference.router_as) > neighbors.size();
  } else {
    const MajorityResult majority = count_majority(id, scratch);
    supported = majority.strict &&
                group_key(majority.asn) == group_key(inference.router_as) &&
                meets_fraction(majority.count, neighbors.size(), options_.f);
  }
  return !supported;
}

void Engine::remove_step() {
  bool discarded = true;
  bool first_pass = true;
  while (discarded) {
    discarded = false;
    freeze_view();
    take_work();

    // Pass 1: demote unsupported direct inferences to indirect, retaining
    // their mapping update. After the first (full) sweep, only halves
    // whose neighbour mappings changed can lose support. The support test
    // reads only the frozen view and the half's own state, so the full
    // sweep evaluates on all workers and demotes sequentially in ascending
    // id order — demotion order matters because demote_direct's liveness
    // check reads the indirect source's (possibly just-demoted) state.
    if (first_pass || !options_.incremental_recount) {
      const std::size_t limit = graph_.record_half_count();
      if (pool_) {
        for (auto& buffer : demote_buffers_) buffer.clear();
        pool_->for_ranges(limit, [this](unsigned worker, std::size_t begin,
                                        std::size_t end) {
          auto& scratch = vote_scratch_[worker];
          auto& buffer = demote_buffers_[worker];
          for (std::size_t id = begin; id < end; ++id) {
            if (lost_support(static_cast<HalfId>(id), scratch)) {
              buffer.push_back(static_cast<HalfId>(id));
            }
          }
        });
        for (const auto& buffer : demote_buffers_) {
          for (HalfId id : buffer) demote_direct(id);
        }
      } else {
        for (HalfId id = 0; id < static_cast<HalfId>(limit); ++id) {
          if (lost_support(id, vote_scratch_[0])) demote_direct(id);
        }
      }
    } else {
      for (HalfId id : work_) {
        if (lost_support(id, vote_scratch_[0])) demote_direct(id);
      }
    }
    first_pass = false;

    // Pass 2: discard indirect inferences whose associated direct
    // inference is gone, along with their IP2AS updates.
    const std::size_t halves = halves_.size();
    for (std::size_t id = 0; id < halves; ++id) {
      const HalfState& st = halves_[id];
      if (st.indirect_source == graph::kInvalidHalfId) continue;
      if (halves_[st.indirect_source].direct) continue;
      discard_indirect(static_cast<HalfId>(id));
      ++stats_.removed_in_remove_step;
      discarded = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Stub heuristic (§4.8)
// ---------------------------------------------------------------------------

void Engine::stub_step() {
  if (!options_.stub_heuristic) return;
  freeze_view();
  const std::size_t n = graph_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const HalfId h_f = static_cast<HalfId>(2 * i);
    const HalfId h_b = h_f + 1;
    const auto forward = graph_.neighbor_ids(h_f);
    if (forward.size() != 1) continue;
    const HalfId n_b = forward[0];  // {neighbour, kBackward}

    auto has_inference = [&](HalfId id) {
      const HalfState& st = halves_[id];
      if (st.direct) return true;
      return st.indirect_source != graph::kInvalidHalfId &&
             halves_[st.indirect_source].direct.has_value();
    };
    if (has_inference(h_b) || has_inference(n_b) || has_inference(h_f)) {
      continue;
    }

    const asdata::Asn as_h = view_[h_f];
    const asdata::Asn as_n = view_[n_b];
    if (as_h == asdata::kUnknownAsn || as_n == asdata::kUnknownAsn) continue;
    if (group_key(as_h) == group_key(as_n)) continue;
    if (!rels_.is_stub(as_n)) continue;  // providers are never stubs, which
                                         // also defuses third-party replies
    touched_[h_f] = 1;
    mutate_mapping(h_f, [&](HalfState& st) {
      st.direct = DirectInference{as_n, as_h, /*from_stub_heuristic=*/true,
                                  /*votes=*/1, /*neighbor_count=*/1};
      st.direct_override = as_n;
    });
    ++stats_.stub_inferences;
    apply_indirect(h_f);  // "Mark an indirect inference for h'_b"
  }
}

// ---------------------------------------------------------------------------
// Output assembly
// ---------------------------------------------------------------------------

std::vector<Inference> Engine::collect(bool confident) const {
  std::vector<Inference> out;
  const std::size_t halves = halves_.size();
  for (std::size_t id = 0; id < halves; ++id) {
    const HalfState& st = halves_[id];
    if (st.direct) {
      if (st.uncertain == confident) continue;
      out.push_back(Inference{
          graph_.half_at(static_cast<HalfId>(id)), st.direct->router_as,
          st.direct->other_as,
          st.direct->from_stub_heuristic ? InferenceKind::kStub
                                         : InferenceKind::kDirect,
          st.uncertain, st.direct->votes, st.direct->neighbor_count});
      continue;
    }
    if (st.indirect_source != graph::kInvalidHalfId && confident) {
      const HalfState& source = halves_[st.indirect_source];
      if (!source.direct || source.uncertain) continue;
      // The other side of a link shares its AS pair with the direct
      // inference, with the roles mirrored (§4.4.2).
      out.push_back(Inference{graph_.half_at(static_cast<HalfId>(id)),
                              source.direct->other_as,
                              source.direct->router_as,
                              InferenceKind::kIndirect, false,
                              source.direct->votes,
                              source.direct->neighbor_count});
    }
  }
  // Record-half ids are already in (address, direction) order, but phantom
  // ids are not interleaved by address — sort the combined list.
  std::sort(out.begin(), out.end(),
            [](const Inference& a, const Inference& b) {
              if (a.half.address != b.half.address) {
                return a.half.address < b.half.address;
              }
              return a.half.direction < b.half.direction;
            });
  return out;
}

std::string Engine::state_signature() const {
  // Canonical serialization of everything that determines future evolution
  // (votes/neighbour counts are output-only and deliberately excluded, as
  // is the suppressed flag, which every add step clears before reading).
  // Dense id order makes the encoding canonical. Every touched half is
  // covered, even when its state is currently empty — a half that gained
  // and then lost an inference distinguishes this iteration from one where
  // it was never considered.
  std::string sig;
  auto push32 = [&sig](std::uint32_t value) {
    sig.append(reinterpret_cast<const char*>(&value), sizeof(value));
  };
  const std::size_t halves = halves_.size();
  for (std::size_t id = 0; id < halves; ++id) {
    if (!touched_[id]) continue;
    const HalfState& st = halves_[id];
    std::uint8_t mask = 0;
    if (st.direct) mask |= 0x01;
    if (st.direct && st.direct->from_stub_heuristic) mask |= 0x02;
    if (st.indirect_source != graph::kInvalidHalfId) mask |= 0x04;
    if (st.direct_override) mask |= 0x08;
    if (st.indirect_override) mask |= 0x10;
    if (st.uncertain) mask |= 0x20;
    push32(static_cast<std::uint32_t>(id));
    sig.push_back(static_cast<char>(mask));
    if (st.direct) {
      push32(st.direct->router_as);
      push32(st.direct->other_as);
    }
    if (st.indirect_source != graph::kInvalidHalfId) {
      push32(st.indirect_source);
    }
    if (st.direct_override) push32(*st.direct_override);
    if (st.indirect_override) push32(*st.indirect_override);
  }
  return sig;
}

void Engine::snapshot(const std::string& label) {
  if (!options_.capture_snapshots) return;
  snapshots_.push_back(Snapshot{label, collect(/*confident=*/true)});
}

void Engine::count_divergent_other_sides() {
  // Direct inferences on both endpoints of a link naming different AS
  // pairs (§4.4.3). Counted once per link, keyed by the lower address.
  stats_.divergent_other_sides = 0;
  const auto& records = graph_.interfaces();
  for (std::size_t i = 0; i < records.size(); ++i) {
    const HalfId fwd = static_cast<HalfId>(2 * i);
    const net::Ipv4Address other = records[i].other_side.address;
    if (!(records[i].address < other)) continue;
    if (base_[fwd] == asdata::kUnknownAsn) continue;

    auto pair_of = [&](HalfId first)
        -> std::optional<std::pair<std::uint64_t, std::uint64_t>> {
      for (HalfId id : {first, static_cast<HalfId>(first + 1)}) {
        const HalfState& st = halves_[id];
        if (st.direct) {
          std::uint64_t a = group_key(st.direct->router_as);
          std::uint64_t b = group_key(st.direct->other_as);
          if (b < a) std::swap(a, b);
          return std::make_pair(a, b);
        }
      }
      return std::nullopt;
    };
    const HalfId other_fwd = graph_.other_side_id(fwd) & ~1u;
    const auto mine = pair_of(fwd);
    const auto theirs = pair_of(other_fwd);
    if (mine && theirs && *mine != *theirs) ++stats_.divergent_other_sides;
  }
}

Result Engine::run() {
  // No control callback → the run cannot stop early, so the outcome is
  // always complete.
  return std::move(*run_controlled({}).result);
}

RunOutcome Engine::run_controlled(const RunControl& control) {
  reset_state();

  bool skip_first_add = false;
  if (control.resume_state != nullptr) {
    MAPIT_ENSURE(!options_.capture_snapshots,
                 "cannot resume with capture_snapshots: per-stage snapshots "
                 "from before the checkpoint are not recoverable");
    restore_state(*control.resume_state);
    // A kAfterAddStep checkpoint already ran this iteration's add step; the
    // resumed run re-enters the loop at its remove step. Either way the
    // next step opens with a full sweep, so the (unsaved) dirty set being
    // empty cannot change anything.
    skip_first_add = control.resume_boundary == RunBoundary::kAfterAddStep;
  }

  RunOutcome outcome;
  auto stopped = [&](RunBoundary boundary) {
    outcome.stopped_at = boundary;
    outcome.iterations_done = stats_.iterations;
    return outcome;
  };

  for (int i = stats_.iterations; i < options_.max_iterations; ++i) {
    if (skip_first_add) {
      skip_first_add = false;
    } else {
      add_step();
      if (control.on_boundary &&
          !control.on_boundary(RunBoundary::kAfterAddStep,
                               stats_.iterations)) {
        return stopped(RunBoundary::kAfterAddStep);
      }
    }
    remove_step();
    ++stats_.iterations;
    snapshot("Iter " + std::to_string(stats_.iterations));
    // Convergence = an end-of-remove state repeats (§4.6). The tracker
    // verifies byte equality on every hash hit, so a 64-bit collision
    // cannot fake convergence.
    std::string signature = state_signature();
    const std::uint64_t hash = std::hash<std::string>{}(signature);
    if (tracker_.seen_before(hash, std::move(signature))) {
      stats_.converged = true;
      break;
    }
    if (control.on_boundary &&
        !control.on_boundary(RunBoundary::kAfterIteration,
                             stats_.iterations)) {
      return stopped(RunBoundary::kAfterIteration);
    }
  }
  stub_step();
  snapshot("Stub");
  count_divergent_other_sides();

  Result result;
  result.inferences = collect(/*confident=*/true);
  result.uncertain = collect(/*confident=*/false);
  const std::size_t halves = halves_.size();
  for (std::size_t id = 0; id < halves; ++id) {
    const HalfState& st = halves_[id];
    if (st.direct_override) {
      result.final_mappings.emplace(graph_.half_at(static_cast<HalfId>(id)),
                                    *st.direct_override);
    } else if (st.indirect_override) {
      result.final_mappings.emplace(graph_.half_at(static_cast<HalfId>(id)),
                                    *st.indirect_override);
    }
  }
  result.stats = stats_;
  result.snapshots = std::move(snapshots_);
  outcome.result = std::move(result);
  outcome.iterations_done = stats_.iterations;
  return outcome;
}

// ---------------------------------------------------------------------------
// Resumable state (core/checkpoint.h wraps these blobs in a CRC'd file)
// ---------------------------------------------------------------------------

namespace {

// save_state entry mask bits. Unlike state_signature(), the blob keeps the
// output-only fields (votes, neighbour counts, uncertain, suppressed) so a
// resumed run reproduces inference output byte-for-byte, not merely the
// same future evolution.
constexpr std::uint8_t kMaskDirect = 0x01;
constexpr std::uint8_t kMaskStub = 0x02;
constexpr std::uint8_t kMaskIndirectSource = 0x04;
constexpr std::uint8_t kMaskDirectOverride = 0x08;
constexpr std::uint8_t kMaskIndirectOverride = 0x10;
constexpr std::uint8_t kMaskUncertain = 0x20;
constexpr std::uint8_t kMaskSuppressed = 0x40;
constexpr std::uint8_t kMaskTouched = 0x80;

constexpr std::uint32_t kStateBlobVersion = 1;

void push_u32(std::string& out, std::uint32_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

void push_u64(std::string& out, std::uint64_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// Bounds-checked reader for restore_state; every overrun throws instead of
/// reading out of range.
class BlobCursor {
 public:
  explicit BlobCursor(std::string_view bytes) : bytes_(bytes) {}

  [[nodiscard]] std::uint8_t read_u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[offset_++]);
  }

  [[nodiscard]] std::uint32_t read_u32() {
    need(4);
    std::uint32_t value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(value));
    offset_ += sizeof(value);
    return value;
  }

  [[nodiscard]] std::uint64_t read_u64() {
    need(8);
    std::uint64_t value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(value));
    offset_ += sizeof(value);
    return value;
  }

  [[nodiscard]] std::string read_string(std::uint64_t count) {
    need(count);
    std::string out(bytes_.substr(offset_, count));
    offset_ += count;
    return out;
  }

  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  void need(std::uint64_t count) const {
    if (count > bytes_.size() - offset_) {
      throw CheckpointError("engine state blob truncated");
    }
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

}  // namespace

std::string Engine::save_state() const {
  std::string blob;
  push_u32(blob, kStateBlobVersion);
  push_u64(blob, halves_.size());

  push_u32(blob, static_cast<std::uint32_t>(stats_.iterations));
  push_u32(blob, static_cast<std::uint32_t>(stats_.add_passes));
  push_u64(blob, stats_.direct_made);
  push_u64(blob, stats_.duals_resolved);
  push_u64(blob, stats_.inverses_resolved);
  push_u64(blob, stats_.uncertain_pairs);
  push_u64(blob, stats_.divergent_other_sides);
  push_u64(blob, stats_.demoted_in_remove_step);
  push_u64(blob, stats_.removed_in_remove_step);
  push_u64(blob, stats_.stub_inferences);
  blob.push_back(stats_.converged ? 1 : 0);

  // Sparse per-half entries in ascending id order (canonical). A half is
  // recorded when it ever held state this run; empty-but-touched halves
  // matter because the convergence signature covers exactly the touched
  // set.
  const std::size_t halves = halves_.size();
  std::uint64_t entries = 0;
  auto entry_mask = [this](std::size_t id) {
    const HalfState& st = halves_[id];
    std::uint8_t mask = 0;
    if (st.direct) mask |= kMaskDirect;
    if (st.direct && st.direct->from_stub_heuristic) mask |= kMaskStub;
    if (st.indirect_source != graph::kInvalidHalfId) {
      mask |= kMaskIndirectSource;
    }
    if (st.direct_override) mask |= kMaskDirectOverride;
    if (st.indirect_override) mask |= kMaskIndirectOverride;
    if (st.uncertain) mask |= kMaskUncertain;
    if (st.suppressed) mask |= kMaskSuppressed;
    if (touched_[id]) mask |= kMaskTouched;
    return mask;
  };
  for (std::size_t id = 0; id < halves; ++id) {
    if (entry_mask(id) != 0) ++entries;
  }
  push_u64(blob, entries);
  for (std::size_t id = 0; id < halves; ++id) {
    const std::uint8_t mask = entry_mask(id);
    if (mask == 0) continue;
    const HalfState& st = halves_[id];
    push_u32(blob, static_cast<std::uint32_t>(id));
    blob.push_back(static_cast<char>(mask));
    if (st.direct) {
      push_u32(blob, st.direct->router_as);
      push_u32(blob, st.direct->other_as);
      push_u32(blob, st.direct->votes);
      push_u32(blob, st.direct->neighbor_count);
    }
    if (st.indirect_source != graph::kInvalidHalfId) {
      push_u32(blob, st.indirect_source);
    }
    if (st.direct_override) push_u32(blob, *st.direct_override);
    if (st.indirect_override) push_u32(blob, *st.indirect_override);
  }

  // Convergence tracker, in insertion order; hashes are recomputed at
  // restore time, so the blob never depends on std::hash stability.
  const std::vector<std::string>& states = tracker_.states();
  push_u32(blob, static_cast<std::uint32_t>(states.size()));
  for (const std::string& state : states) {
    push_u64(blob, state.size());
    blob.append(state);
  }
  return blob;
}

void Engine::restore_state(const std::string& blob) {
  BlobCursor cursor(blob);
  const std::uint32_t version = cursor.read_u32();
  if (version != kStateBlobVersion) {
    throw CheckpointError("unsupported engine state version " +
                          std::to_string(version));
  }
  const std::uint64_t half_count = cursor.read_u64();
  if (half_count != halves_.size()) {
    throw CheckpointError(
        "engine state half count does not match this graph (checkpoint is "
        "from different inputs)");
  }

  EngineStats stats;
  stats.iterations = static_cast<int>(cursor.read_u32());
  stats.add_passes = static_cast<int>(cursor.read_u32());
  stats.direct_made = cursor.read_u64();
  stats.duals_resolved = cursor.read_u64();
  stats.inverses_resolved = cursor.read_u64();
  stats.uncertain_pairs = cursor.read_u64();
  stats.divergent_other_sides = cursor.read_u64();
  stats.demoted_in_remove_step = cursor.read_u64();
  stats.removed_in_remove_step = cursor.read_u64();
  stats.stub_inferences = cursor.read_u64();
  stats.converged = cursor.read_u8() != 0;
  if (stats.iterations < 0 || stats.add_passes < 0) {
    throw CheckpointError("engine state counters out of range");
  }

  const std::uint64_t entries = cursor.read_u64();
  std::int64_t previous_id = -1;
  for (std::uint64_t e = 0; e < entries; ++e) {
    const std::uint32_t id = cursor.read_u32();
    if (id >= half_count || static_cast<std::int64_t>(id) <= previous_id) {
      throw CheckpointError("engine state entries malformed (id order)");
    }
    previous_id = id;
    const std::uint8_t mask = cursor.read_u8();
    if ((mask & kMaskStub) && !(mask & kMaskDirect)) {
      throw CheckpointError("engine state entry flags inconsistent");
    }
    HalfState st;
    if (mask & kMaskDirect) {
      DirectInference direct;
      direct.router_as = cursor.read_u32();
      direct.other_as = cursor.read_u32();
      direct.from_stub_heuristic = (mask & kMaskStub) != 0;
      direct.votes = cursor.read_u32();
      direct.neighbor_count = cursor.read_u32();
      st.direct = direct;
    }
    if (mask & kMaskIndirectSource) {
      const std::uint32_t source = cursor.read_u32();
      if (source >= half_count) {
        throw CheckpointError("engine state indirect source out of range");
      }
      st.indirect_source = static_cast<HalfId>(source);
    }
    if (mask & kMaskDirectOverride) st.direct_override = cursor.read_u32();
    if (mask & kMaskIndirectOverride) {
      st.indirect_override = cursor.read_u32();
    }
    st.uncertain = (mask & kMaskUncertain) != 0;
    st.suppressed = (mask & kMaskSuppressed) != 0;
    halves_[id] = st;
    touched_[id] = (mask & kMaskTouched) ? 1 : 0;
  }

  const std::uint32_t tracked = cursor.read_u32();
  ConvergenceTracker tracker;
  for (std::uint32_t t = 0; t < tracked; ++t) {
    const std::uint64_t size = cursor.read_u64();
    std::string state = cursor.read_string(size);
    const std::uint64_t hash = std::hash<std::string>{}(state);
    if (tracker.seen_before(hash, std::move(state))) {
      throw CheckpointError("engine state tracker has duplicate states");
    }
  }
  if (!cursor.exhausted()) {
    throw CheckpointError("engine state blob has trailing bytes");
  }

  // Commit only after the whole blob parsed cleanly (halves_/touched_ are
  // already written, but a throw above aborts the resume entirely — the
  // caller never runs on a half-restored engine).
  stats_ = stats;
  tracker_ = std::move(tracker);
}

const Inference* Result::find(const graph::InterfaceHalf& half) const {
  for (const Inference& inference : inferences) {
    if (inference.half == half) return &inference;
  }
  return nullptr;
}

std::vector<const Inference*> Result::find_address(
    net::Ipv4Address address) const {
  std::vector<const Inference*> out;
  for (const Inference& inference : inferences) {
    if (inference.half.address == address) out.push_back(&inference);
  }
  return out;
}

Result run_mapit(const graph::InterfaceGraph& graph, const bgp::Ip2As& ip2as,
                 const asdata::As2Org& orgs,
                 const asdata::AsRelationships& rels, const Options& options) {
  Engine engine(graph, ip2as, orgs, rels, options);
  return engine.run();
}

}  // namespace mapit::core
