#include "core/engine.h"

#include <algorithm>
#include <unordered_set>

#include "net/error.h"

namespace mapit::core {

namespace {

/// f-threshold test with a tolerance so that f = 0.5 accepts an exact half.
[[nodiscard]] bool meets_fraction(std::size_t count, std::size_t total,
                                  double f) {
  return static_cast<double>(count) + 1e-9 >=
         f * static_cast<double>(total);
}

[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Engine::Engine(const graph::InterfaceGraph& graph, const bgp::Ip2As& ip2as,
               const asdata::As2Org& orgs, const asdata::AsRelationships& rels,
               Options options)
    : graph_(graph),
      ip2as_(ip2as),
      orgs_(orgs),
      rels_(rels),
      options_(std::move(options)) {
  MAPIT_ENSURE(options_.f >= 0.0 && options_.f <= 1.0,
               "f must be within [0, 1]");
  MAPIT_ENSURE(options_.max_iterations > 0, "max_iterations must be positive");
}

// ---------------------------------------------------------------------------
// Mapping views
// ---------------------------------------------------------------------------

asdata::Asn Engine::base_as(net::Ipv4Address address) const {
  if (auto it = base_cache_.find(address); it != base_cache_.end()) {
    return it->second;
  }
  const asdata::Asn asn = ip2as_.origin(address);
  base_cache_.emplace(address, asn);
  return asn;
}

asdata::Asn Engine::current_as(const graph::InterfaceHalf& half) const {
  if (const HalfState* st = state_if_any(half)) {
    if (st->direct_override) return *st->direct_override;
    if (st->indirect_override) return *st->indirect_override;
  }
  return base_as(half.address);
}

Engine::MappingView Engine::freeze_mappings() const {
  MappingView view;
  view.reserve(halves_.size());
  for (const auto& [half, st] : halves_) {
    if (st.direct_override) {
      view.emplace(half, *st.direct_override);
    } else if (st.indirect_override) {
      view.emplace(half, *st.indirect_override);
    }
  }
  return view;
}

asdata::Asn Engine::view_as(const MappingView& view,
                            const graph::InterfaceHalf& half) const {
  if (auto it = view.find(half); it != view.end()) return it->second;
  return base_as(half.address);
}

// ---------------------------------------------------------------------------
// Counting
// ---------------------------------------------------------------------------

std::uint64_t Engine::group_key(asdata::Asn asn) const {
  return options_.sibling_grouping ? orgs_.group_key(asn)
                                   : (std::uint64_t{1} << 62) | asn;
}

Engine::MajorityResult Engine::count_majority(const graph::InterfaceHalf& half,
                                              const MappingView& view) const {
  // Group neighbour votes by sibling organization; remember per-ASN counts
  // so the representative is the most frequent sibling (paper §4.4.1).
  struct Group {
    std::size_t count = 0;
    std::unordered_map<asdata::Asn, std::size_t> members;
  };
  std::unordered_map<std::uint64_t, Group> groups;
  const graph::Direction nd = opposite(half.direction);
  for (net::Ipv4Address neighbor : graph_.neighbors(half)) {
    const asdata::Asn asn = view_as(view, {neighbor, nd});
    if (asn == asdata::kUnknownAsn) continue;  // denominator only
    Group& group = groups[group_key(asn)];
    ++group.count;
    ++group.members[asn];
  }

  MajorityResult best;
  std::size_t runner_up = 0;
  for (const auto& [key, group] : groups) {
    // Representative: most frequent member ASN, ties to the lowest ASN.
    asdata::Asn representative = asdata::kUnknownAsn;
    std::size_t rep_count = 0;
    for (const auto& [asn, count] : group.members) {
      if (count > rep_count || (count == rep_count && asn < representative)) {
        representative = asn;
        rep_count = count;
      }
    }
    if (group.count > best.count ||
        (group.count == best.count && representative < best.asn)) {
      runner_up = best.count;
      best.count = group.count;
      best.asn = representative;
    } else if (group.count > runner_up) {
      runner_up = group.count;
    }
  }
  best.strict = best.count > runner_up && best.count > 0;
  return best;
}

std::size_t Engine::group_count(const graph::InterfaceHalf& half,
                                asdata::Asn target,
                                const MappingView& view) const {
  const std::uint64_t key = group_key(target);
  std::size_t count = 0;
  const graph::Direction nd = opposite(half.direction);
  for (net::Ipv4Address neighbor : graph_.neighbors(half)) {
    const asdata::Asn asn = view_as(view, {neighbor, nd});
    if (asn != asdata::kUnknownAsn && group_key(asn) == key) ++count;
  }
  return count;
}

// ---------------------------------------------------------------------------
// Bookkeeping
// ---------------------------------------------------------------------------

Engine::HalfState& Engine::state(const graph::InterfaceHalf& half) {
  return halves_[half];
}

const Engine::HalfState* Engine::state_if_any(
    const graph::InterfaceHalf& half) const {
  auto it = halves_.find(half);
  return it == halves_.end() ? nullptr : &it->second;
}

void Engine::clear_suppressions() {
  for (auto& [_, st] : halves_) st.suppressed = false;
}

void Engine::discard_direct(const graph::InterfaceHalf& half, bool suppress) {
  auto it = halves_.find(half);
  if (it == halves_.end() || !it->second.direct) return;
  it->second.direct.reset();
  it->second.direct_override.reset();
  it->second.uncertain = false;
  if (suppress) it->second.suppressed = true;
  // The indirect inference propagated to the other side dies with its
  // source (§4.4.2).
  const graph::InterfaceHalf other = graph_.other_side_half(half);
  auto ot = halves_.find(other);
  if (ot != halves_.end() && ot->second.indirect_source == half) {
    discard_indirect(other);
  }
}

void Engine::discard_indirect(const graph::InterfaceHalf& half) {
  auto it = halves_.find(half);
  if (it == halves_.end()) return;
  it->second.indirect_source.reset();
  it->second.indirect_override.reset();
}

// ---------------------------------------------------------------------------
// Add step (§4.4)
// ---------------------------------------------------------------------------

void Engine::apply_indirect(const graph::InterfaceHalf& source) {
  if (!options_.update_other_sides) return;
  // IXP LANs are multipoint: the /30-/31 other-side relation does not hold
  // there (footnote 7).
  if (options_.ixp_aware && ip2as_.is_ixp(source.address)) return;
  const auto& st = halves_.at(source);
  if (!st.direct) return;
  const graph::InterfaceHalf other = graph_.other_side_half(source);
  if (net::is_special_purpose(other.address)) return;
  HalfState& ot = state(other);
  ot.indirect_source = source;
  ot.indirect_override = st.direct->router_as;
}

bool Engine::direct_pass(const MappingView& view) {
  bool changed = false;
  for (const graph::InterfaceRecord& record : graph_.interfaces()) {
    for (graph::Direction direction :
         {graph::Direction::kForward, graph::Direction::kBackward}) {
      const auto& neighbors = record.neighbors(direction);
      if (neighbors.size() < 2) continue;  // §4.3's two-address floor
      const graph::InterfaceHalf half{record.address, direction};
      HalfState& st = state(half);
      if (st.direct || st.suppressed) continue;

      const MajorityResult majority = count_majority(half, view);
      if (!majority.strict) continue;
      if (!meets_fraction(majority.count, neighbors.size(), options_.f)) {
        continue;
      }
      // "previous IP2AS(h) != AS_N": the half's own mapping, ignoring any
      // indirect override it carries — an indirect inference must not
      // preclude the direct one (§4.4.2, DESIGN.md §5).
      const asdata::Asn own = base_as(half.address);
      if (group_key(majority.asn) == group_key(own)) continue;

      st.direct = DirectInference{majority.asn, own, false,
                                  static_cast<std::uint32_t>(majority.count),
                                  static_cast<std::uint32_t>(neighbors.size())};
      st.direct_override = majority.asn;
      ++stats_.direct_made;
      changed = true;
      apply_indirect(half);
    }
  }
  return changed;
}

bool Engine::resolve_dual_inferences() {
  // Both halves of the same interface carry direct inferences naming
  // different ASes: a third-party artifact; the forward inference wins
  // (§4.4.3). Interfaces without a base IP2AS mapping are left alone.
  bool changed = false;
  for (const graph::InterfaceRecord& record : graph_.interfaces()) {
    const graph::InterfaceHalf fwd{record.address, graph::Direction::kForward};
    const graph::InterfaceHalf bwd{record.address, graph::Direction::kBackward};
    const HalfState* fs = state_if_any(fwd);
    const HalfState* bs = state_if_any(bwd);
    if (fs == nullptr || bs == nullptr || !fs->direct || !bs->direct) continue;
    if (base_as(record.address) == asdata::kUnknownAsn) continue;
    if (group_key(fs->direct->router_as) == group_key(bs->direct->router_as)) {
      continue;  // same AS both ways: load balancing/siblings; keep both
    }
    discard_direct(bwd, /*suppress=*/true);
    ++stats_.duals_resolved;
    changed = true;
  }
  return changed;
}

bool Engine::resolve_inverse_inferences() {
  // A forward inference {AS_N, AS_P} on interface a, and a backward
  // inference {AS_P, AS_N} on a member of a's N_F, cannot both be right
  // (§4.4.4). The forward one is topologically nearer to the monitors and
  // wins — unless the backward IH's other side also carries a direct
  // inference, in which case both are flagged uncertain.
  // Uncertainty is recomputed from scratch each resolution pass, so the
  // stats counter reflects the latest pass, not a running total.
  for (auto& [_, st] : halves_) st.uncertain = false;
  stats_.uncertain_pairs = 0;

  bool changed = false;
  for (const graph::InterfaceRecord& record : graph_.interfaces()) {
    const graph::InterfaceHalf fwd{record.address, graph::Direction::kForward};
    const HalfState* fs = state_if_any(fwd);
    if (fs == nullptr || !fs->direct) continue;
    const auto fwd_router = fs->direct->router_as;
    const auto fwd_other = fs->direct->other_as;
    for (net::Ipv4Address neighbor : record.forward) {
      const graph::InterfaceHalf nb{neighbor, graph::Direction::kBackward};
      auto it = halves_.find(nb);
      if (it == halves_.end() || !it->second.direct) continue;
      const auto& bd = *it->second.direct;
      const bool mirrored =
          group_key(bd.router_as) == group_key(fwd_other) &&
          group_key(bd.other_as) == group_key(fwd_router);
      if (!mirrored) continue;

      const graph::InterfaceHalf nb_other = graph_.other_side_half(nb);
      const HalfState* os = state_if_any(nb_other);
      if (os != nullptr && os->direct) {
        // Neither IH is nearer: emit both as uncertain (§4.4.4).
        state(fwd).uncertain = true;
        it->second.uncertain = true;
        ++stats_.uncertain_pairs;
      } else {
        discard_direct(nb, /*suppress=*/true);
        ++stats_.inverses_resolved;
        changed = true;
      }
    }
  }
  return changed;
}

void Engine::add_step() {
  clear_suppressions();
  const bool first_step = stats_.iterations == 0;
  bool first_pass = true;
  bool changed = true;
  while (changed) {
    ++stats_.add_passes;
    const MappingView view = freeze_mappings();
    changed = direct_pass(view);
    if (first_step && first_pass) snapshot("Direct");
    if (options_.resolve_duals) changed |= resolve_dual_inferences();
    if (first_step && first_pass) snapshot("P2P");
    if (options_.resolve_inverses) changed |= resolve_inverse_inferences();
    if (first_step && first_pass) snapshot("Inverse");
    first_pass = false;
  }
  if (first_step) snapshot("Add");
}

// ---------------------------------------------------------------------------
// Remove step (§4.5)
// ---------------------------------------------------------------------------

void Engine::remove_step() {
  bool discarded = true;
  while (discarded) {
    discarded = false;
    const MappingView view = freeze_mappings();

    // Pass 1: demote unsupported direct inferences to indirect, retaining
    // their mapping update.
    for (const graph::InterfaceRecord& record : graph_.interfaces()) {
      for (graph::Direction direction :
           {graph::Direction::kForward, graph::Direction::kBackward}) {
        const graph::InterfaceHalf half{record.address, direction};
        auto it = halves_.find(half);
        if (it == halves_.end() || !it->second.direct) continue;
        const DirectInference inference = *it->second.direct;
        const auto& neighbors = graph_.neighbors(half);

        bool supported = false;
        if (inference.from_stub_heuristic) {
          // Stub inferences are produced after the main loop; if one is ever
          // present during a remove step, judge it by its single neighbour.
          supported = !neighbors.empty();
        } else if (options_.remove_rule == RemoveRule::kMajority) {
          supported = 2 * group_count(half, inference.router_as, view) >
                      neighbors.size();
        } else {
          const MajorityResult majority = count_majority(half, view);
          supported =
              majority.strict &&
              group_key(majority.asn) == group_key(inference.router_as) &&
              meets_fraction(majority.count, neighbors.size(), options_.f);
        }
        if (supported) continue;

        HalfState& st = it->second;
        st.direct.reset();
        st.uncertain = false;
        // Retain the mapping as an indirect inference associated with the
        // other side's direct inference (§4.5).
        st.indirect_override = st.direct_override;
        st.direct_override.reset();
        st.indirect_source = graph_.other_side_half(half);
      }
    }

    // Pass 2: discard indirect inferences whose associated direct
    // inference is gone, along with their IP2AS updates.
    std::vector<graph::InterfaceHalf> to_discard;
    for (const auto& [half, st] : halves_) {
      if (!st.indirect_source) continue;
      const HalfState* source = state_if_any(*st.indirect_source);
      if (source == nullptr || !source->direct) to_discard.push_back(half);
    }
    for (const graph::InterfaceHalf& half : to_discard) {
      discard_indirect(half);
      ++stats_.removed_in_remove_step;
      discarded = true;
    }
  }
}

// ---------------------------------------------------------------------------
// Stub heuristic (§4.8)
// ---------------------------------------------------------------------------

void Engine::stub_step() {
  if (!options_.stub_heuristic) return;
  const MappingView view = freeze_mappings();
  for (const graph::InterfaceRecord& record : graph_.interfaces()) {
    if (record.forward.size() != 1) continue;
    const graph::InterfaceHalf h_f{record.address, graph::Direction::kForward};
    const graph::InterfaceHalf h_b{record.address, graph::Direction::kBackward};
    const net::Ipv4Address neighbor = record.forward.front();
    const graph::InterfaceHalf n_b{neighbor, graph::Direction::kBackward};

    auto has_inference = [&](const graph::InterfaceHalf& half) {
      const HalfState* st = state_if_any(half);
      return st != nullptr &&
             (st->direct ||
              (st->indirect_source &&
               [&] {
                 const HalfState* src = state_if_any(*st->indirect_source);
                 return src != nullptr && src->direct.has_value();
               }()));
    };
    if (has_inference(h_b) || has_inference(n_b) || has_inference(h_f)) {
      continue;
    }

    const asdata::Asn as_h = view_as(view, h_f);
    const asdata::Asn as_n = view_as(view, n_b);
    if (as_h == asdata::kUnknownAsn || as_n == asdata::kUnknownAsn) continue;
    if (group_key(as_h) == group_key(as_n)) continue;
    if (!rels_.is_stub(as_n)) continue;  // providers are never stubs, which
                                         // also defuses third-party replies
    HalfState& st = state(h_f);
    st.direct = DirectInference{as_n, as_h, /*from_stub_heuristic=*/true,
                                /*votes=*/1, /*neighbor_count=*/1};
    st.direct_override = as_n;
    ++stats_.stub_inferences;
    apply_indirect(h_f);  // "Mark an indirect inference for h'_b"
  }
}

// ---------------------------------------------------------------------------
// Output assembly
// ---------------------------------------------------------------------------

std::vector<Inference> Engine::collect(bool confident) const {
  std::vector<Inference> out;
  for (const auto& [half, st] : halves_) {
    if (st.direct) {
      if (st.uncertain == confident) continue;
      out.push_back(Inference{
          half, st.direct->router_as, st.direct->other_as,
          st.direct->from_stub_heuristic ? InferenceKind::kStub
                                         : InferenceKind::kDirect,
          st.uncertain, st.direct->votes, st.direct->neighbor_count});
      continue;
    }
    if (st.indirect_source && confident) {
      const HalfState* source = state_if_any(*st.indirect_source);
      if (source == nullptr || !source->direct || source->uncertain) continue;
      // The other side of a link shares its AS pair with the direct
      // inference, with the roles mirrored (§4.4.2).
      out.push_back(Inference{half, source->direct->other_as,
                              source->direct->router_as,
                              InferenceKind::kIndirect, false,
                              source->direct->votes,
                              source->direct->neighbor_count});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const Inference& a, const Inference& b) {
              if (a.half.address != b.half.address) {
                return a.half.address < b.half.address;
              }
              return a.half.direction < b.half.direction;
            });
  return out;
}

std::uint64_t Engine::state_hash() const {
  std::uint64_t hash = 0x9e3779b97f4a7c15ULL;
  for (const auto& [half, st] : halves_) {
    std::uint64_t entry = std::hash<graph::InterfaceHalf>{}(half);
    if (st.direct) {
      entry = mix(entry ^ (0x11ULL + st.direct->router_as));
      entry = mix(entry ^ (0x23ULL + st.direct->other_as));
      if (st.direct->from_stub_heuristic) entry = mix(entry ^ 0x31ULL);
    }
    if (st.indirect_source) {
      entry = mix(entry ^ std::hash<graph::InterfaceHalf>{}(*st.indirect_source));
    }
    if (st.direct_override) entry = mix(entry ^ (0x47ULL + *st.direct_override));
    if (st.indirect_override) {
      entry = mix(entry ^ (0x53ULL + *st.indirect_override));
    }
    if (st.uncertain) entry = mix(entry ^ 0x61ULL);
    hash ^= entry;  // order-independent combine
  }
  return hash;
}

void Engine::snapshot(const std::string& label) {
  if (!options_.capture_snapshots) return;
  snapshots_.push_back(Snapshot{label, collect(/*confident=*/true)});
}

void Engine::count_divergent_other_sides() {
  // Direct inferences on both endpoints of a link naming different AS
  // pairs (§4.4.3). Counted once per link, keyed by the lower address.
  stats_.divergent_other_sides = 0;
  for (const graph::InterfaceRecord& record : graph_.interfaces()) {
    const net::Ipv4Address other = record.other_side.address;
    if (!(record.address < other)) continue;
    if (base_as(record.address) == asdata::kUnknownAsn) continue;

    auto pair_of = [&](net::Ipv4Address address)
        -> std::optional<std::pair<std::uint64_t, std::uint64_t>> {
      for (graph::Direction d :
           {graph::Direction::kForward, graph::Direction::kBackward}) {
        const HalfState* st = state_if_any({address, d});
        if (st != nullptr && st->direct) {
          std::uint64_t a = group_key(st->direct->router_as);
          std::uint64_t b = group_key(st->direct->other_as);
          if (b < a) std::swap(a, b);
          return std::make_pair(a, b);
        }
      }
      return std::nullopt;
    };
    const auto mine = pair_of(record.address);
    const auto theirs = pair_of(other);
    if (mine && theirs && *mine != *theirs) ++stats_.divergent_other_sides;
  }
}

Result Engine::run() {
  halves_.clear();
  base_cache_.clear();
  stats_ = EngineStats{};
  snapshots_.clear();

  std::unordered_set<std::uint64_t> seen_states;
  for (int i = 0; i < options_.max_iterations; ++i) {
    add_step();
    remove_step();
    ++stats_.iterations;
    snapshot("Iter " + std::to_string(stats_.iterations));
    if (!seen_states.insert(state_hash()).second) {
      stats_.converged = true;
      break;
    }
  }
  stub_step();
  snapshot("Stub");
  count_divergent_other_sides();

  Result result;
  result.inferences = collect(/*confident=*/true);
  result.uncertain = collect(/*confident=*/false);
  result.final_mappings = freeze_mappings();
  result.stats = stats_;
  result.snapshots = std::move(snapshots_);
  return result;
}

const Inference* Result::find(const graph::InterfaceHalf& half) const {
  for (const Inference& inference : inferences) {
    if (inference.half == half) return &inference;
  }
  return nullptr;
}

std::vector<const Inference*> Result::find_address(
    net::Ipv4Address address) const {
  std::vector<const Inference*> out;
  for (const Inference& inference : inferences) {
    if (inference.half.address == address) out.push_back(&inference);
  }
  return out;
}

Result run_mapit(const graph::InterfaceGraph& graph, const bgp::Ip2As& ip2as,
                 const asdata::As2Org& orgs,
                 const asdata::AsRelationships& rels, const Options& options) {
  Engine engine(graph, ip2as, orgs, rels, options);
  return engine.run();
}

}  // namespace mapit::core
