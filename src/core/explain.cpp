#include "core/explain.h"

#include <sstream>

namespace mapit::core {

namespace {

void describe_asn(std::ostream& out, asdata::Asn asn) {
  if (asn == asdata::kUnknownAsn) {
    out << "unannounced";
  } else {
    out << "AS" << asn;
  }
}

void describe_half(std::ostream& out, const Result& result,
                   const graph::InterfaceGraph& graph,
                   const bgp::Ip2As& ip2as, const graph::InterfaceHalf& half) {
  const auto& neighbors = graph.neighbors(half);
  out << half.to_string() << "  ("
      << (half.direction == graph::Direction::kForward
              ? "forward neighbours N_F"
              : "backward neighbours N_B")
      << ", " << neighbors.size() << " unique)\n";

  const graph::Direction nd = opposite(half.direction);
  for (net::Ipv4Address neighbor : neighbors) {
    const graph::InterfaceHalf nh{neighbor, nd};
    out << "    " << nh.to_string() << "  origin ";
    describe_asn(out, ip2as.origin(neighbor));
    if (auto it = result.final_mappings.find(nh);
        it != result.final_mappings.end()) {
      out << ", refined to ";
      describe_asn(out, it->second);
    }
    out << "\n";
  }

  const Inference* confident = result.find(half);
  if (confident != nullptr) {
    out << "    => " << confident->to_string() << "  [" << confident->votes
        << "/" << confident->neighbor_count << " neighbours agree]\n";
    return;
  }
  for (const Inference& inference : result.uncertain) {
    if (inference.half == half) {
      out << "    => UNCERTAIN: " << inference.to_string() << "\n";
      return;
    }
  }
  if (neighbors.size() < 2) {
    out << "    => no inference (fewer than two neighbour addresses, §4.3)\n";
  } else {
    out << "    => no inference (no qualifying foreign-AS majority)\n";
  }
}

}  // namespace

std::string explain(const Result& result, const graph::InterfaceGraph& graph,
                    const bgp::Ip2As& ip2as, net::Ipv4Address address) {
  std::ostringstream out;
  out << "interface " << address.to_string() << "  origin ";
  describe_asn(out, ip2as.origin(address));
  const graph::InterfaceRecord* record = graph.find(address);
  if (record == nullptr) {
    out << "\n  never seen adjacent to another address in the corpus\n";
    return out.str();
  }
  const graph::OtherSide other = record->other_side;
  out << ", other side " << other.address.to_string() << " ("
      << (other.inference == graph::PrefixInference::kSlash30
              ? "/30 assumed"
          : other.inference == graph::PrefixInference::kSlash31Witness
              ? "/31 by witness"
              : "/31, reserved /30 slot")
      << ")\n";
  out << "  ";
  describe_half(out, result, graph, ip2as,
                {address, graph::Direction::kForward});
  out << "  ";
  describe_half(out, result, graph, ip2as,
                {address, graph::Direction::kBackward});
  return out.str();
}

}  // namespace mapit::core
