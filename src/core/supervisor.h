// Run supervision: wall-clock deadlines, RSS memory budgets, and
// SIGTERM/SIGINT handling for long engine runs.
//
// The supervisor never kills anything. The engine polls should_stop()
// between passes (at every RunBoundary) and performs a graceful
// checkpoint-and-exit itself; a monotonic watchdog thread merely observes —
// it samples RSS and the clock a few times a second so a budget breach that
// happens mid-pass is still visible at the next boundary even if the
// process has shrunk back below the budget by then. An external scheduler
// sees the documented exit code (5), requeues, and resumes from the
// checkpoint instead of losing the run.
//
// SignalGuard is the classic self-pipe trick: the handler only writes one
// byte to a non-blocking pipe and records the signal number in an atomic,
// so arbitrary threads can either poll signal_received() (the engine
// boundary path) or block in wait() (the serve drain path) without any
// async-signal-unsafe work in the handler.
#pragma once

#include <signal.h>  // NOLINT: struct sigaction is POSIX, not in <csignal>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>

namespace mapit::core {

/// Why a supervised run stopped early (kNone = keep going).
enum class StopReason : std::uint8_t {
  kNone = 0,
  kSignal,         ///< SIGTERM/SIGINT arrived
  kDeadline,       ///< --deadline wall-clock budget exhausted
  kMemoryBudget,   ///< peak RSS exceeded --memory-budget
  kBoundaryLimit,  ///< internal: stop after N boundaries (tests, ci.sh)
};

[[nodiscard]] const char* to_string(StopReason reason);

/// Current resident set size from /proc/self/statm, in bytes. Returns 0
/// when the file is unavailable (non-Linux), which disables RSS budgets.
[[nodiscard]] std::size_t current_rss_bytes();

/// Installs SIGTERM/SIGINT/SIGHUP handlers for the lifetime of the object
/// and restores the previous handlers on destruction. At most one instance
/// may exist at a time (enforced). All methods are thread-safe.
///
/// SIGHUP is deliberately NOT a stop signal: it only bumps hup_count() and
/// wakes wait()ers, so long-running commands (`serve`, `supervise`) can use
/// it as an operator nudge — force a snapshot re-check, forward to children
/// — while TERM/INT keep their shutdown meaning.
class SignalGuard {
 public:
  SignalGuard();
  ~SignalGuard();
  SignalGuard(const SignalGuard&) = delete;
  SignalGuard& operator=(const SignalGuard&) = delete;

  /// The first stop signal received (SIGTERM/SIGINT), or 0 if none yet.
  /// SIGHUP never shows up here.
  [[nodiscard]] static int signal_received();

  /// Number of SIGHUPs received since the guard was installed. Callers that
  /// care keep their own last-seen value and compare.
  [[nodiscard]] static std::uint64_t hup_count();

  /// Blocks until a signal arrives or wake() is called. Returns
  /// signal_received() at that moment (0 means a plain wake() or a SIGHUP;
  /// check hup_count() to tell the two apart).
  int wait();

  /// Unblocks one wait()er without a signal (e.g. the server exited for
  /// its own reasons and the drain thread should go home).
  void wake();

 private:
  int read_fd_ = -1;
  int write_fd_ = -1;
  struct sigaction old_term_ {};
  struct sigaction old_int_ {};
  struct sigaction old_hup_ {};
};

struct SupervisorOptions {
  /// Wall-clock budget in seconds; 0 = unlimited.
  double deadline_seconds = 0;
  /// Peak-RSS budget in MiB; 0 = unlimited. Ignored where RSS cannot be
  /// read (current_rss_bytes() == 0).
  std::size_t memory_budget_mb = 0;
  /// Stop after this many run boundaries; 0 = unlimited. Used by tests and
  /// the CI kill-at-every-pass matrix to exit deterministically at each
  /// successive boundary.
  int boundary_limit = 0;
};

/// Polled between engine passes; owns the observe-only watchdog thread.
class RunSupervisor {
 public:
  /// `signals` may be null (no signal checking); it must outlive the
  /// supervisor. The watchdog thread starts only when a deadline or memory
  /// budget is configured.
  explicit RunSupervisor(SupervisorOptions options,
                         SignalGuard* signals = nullptr);
  ~RunSupervisor();
  RunSupervisor(const RunSupervisor&) = delete;
  RunSupervisor& operator=(const RunSupervisor&) = delete;

  /// Records one completed run boundary (for boundary_limit).
  void note_boundary();

  /// The supervision verdict right now. Sticky: once a reason other than
  /// kNone is returned, every later call returns the same reason — a run
  /// that decided to stop must not un-decide while checkpointing.
  [[nodiscard]] StopReason should_stop();

  /// Highest RSS observed so far (boundary polls + watchdog samples).
  [[nodiscard]] std::size_t peak_rss_bytes() const {
    return peak_rss_.load(std::memory_order_relaxed);
  }

  /// Seconds since construction.
  [[nodiscard]] double elapsed_seconds() const;

 private:
  void observe();  ///< one watchdog sample: fold RSS/clock into the atomics

  SupervisorOptions options_;
  SignalGuard* signals_;
  std::chrono::steady_clock::time_point start_;
  std::atomic<std::size_t> peak_rss_{0};
  /// Breach the watchdog observed (a StopReason); kNone when healthy.
  std::atomic<std::uint8_t> observed_breach_{0};
  int boundaries_ = 0;
  StopReason stopped_ = StopReason::kNone;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool done_ = false;
  std::thread watchdog_;
};

}  // namespace mapit::core
