// Durable engine checkpoints: versioned, CRC-checked wrappers around
// Engine::save_state(), written crash-safely at run boundaries.
//
// File layout (all integers host-endian; the endianness marker rejects a
// file written on a machine with different byte order):
//
//   offset  size  field
//   0       8     magic "MAPITCKP"
//   8       4     endianness marker 0x0A0B0C0D
//   12      4     format version (kCheckpointVersion)
//   16      8     payload size in bytes
//   24      4     CRC-32 (IEEE) of the payload
//   28      4     reserved (zero)
//   32      ...   payload
//
//   payload := meta (4 x u64: config hash, corpus / RIB / datasets
//              fingerprints) | u8 boundary | u32 iterations
//              | u64 state size | Engine::save_state() blob
//
// Checkpoints are written with fault::write_file_atomic, so the checkpoint
// path always holds either the complete previous checkpoint or the complete
// new one — a crash at any syscall can tear only the temp file (pinned by
// the checkpoint crash-matrix test). Readers validate magic, endianness,
// version, size, and CRC before interpreting a single payload byte, and
// verify_checkpoint_meta compares the recorded config hash and input
// fingerprints against the current invocation — a corrupted, truncated, or
// stale checkpoint is rejected loudly (CheckpointError, CLI exit code 4)
// instead of silently resumed.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "core/engine.h"
#include "fault/io.h"
#include "net/error.h"

namespace mapit::core {

/// A checkpoint file is unusable (corrupt, truncated, wrong version) or
/// does not match the current invocation (config hash or input fingerprint
/// mismatch). The CLI maps this to exit code 4.
class CheckpointError : public Error {
 public:
  using Error::Error;
};

inline constexpr std::uint32_t kCheckpointVersion = 1;

/// Identity of the run a checkpoint belongs to. All four values must match
/// before a resume is allowed; fingerprints are FNV-1a digests of the raw
/// input file bytes, so any edit to the corpus, RIB, or AS datasets between
/// the checkpointed run and the resume is caught.
struct CheckpointMeta {
  std::uint64_t config_hash = 0;
  std::uint64_t corpus_fingerprint = 0;
  std::uint64_t rib_fingerprint = 0;
  /// Combined digest of the optional datasets (relationships, as2org,
  /// IXP prefixes); zero-seeded, so "no datasets" is a stable value.
  std::uint64_t datasets_fingerprint = 0;

  friend bool operator==(const CheckpointMeta&,
                         const CheckpointMeta&) = default;
};

/// Everything needed to resume a run: its identity, the boundary the engine
/// paused at, iterations completed, and the full save_state() blob.
struct Checkpoint {
  CheckpointMeta meta;
  RunBoundary boundary = RunBoundary::kAfterIteration;
  int iterations_done = 0;
  std::string engine_state;
};

/// FNV-1a hash of every Engine option that can change inference output.
/// threads, capture_snapshots, and incremental_recount are deliberately
/// excluded: all three are proven output-invariant (equivalence tests), so
/// a run may legitimately resume with a different thread count.
[[nodiscard]] std::uint64_t config_hash(const Options& options);

/// Folds `bytes` into an FNV-1a digest seeded with `seed` (use
/// kFingerprintSeed to start a fresh digest; chain for multi-file digests).
inline constexpr std::uint64_t kFingerprintSeed = 0xcbf29ce484222325ull;
[[nodiscard]] std::uint64_t fingerprint_bytes(std::uint64_t seed,
                                              std::string_view bytes);

/// FNV-1a digest of a file's raw bytes, chained onto `seed`. Throws
/// mapit::Error (not CheckpointError — it is a load failure, exit code 3)
/// when the file cannot be read.
[[nodiscard]] std::uint64_t fingerprint_file(const std::string& path,
                                             std::uint64_t seed =
                                                 kFingerprintSeed);

/// Canonical checkpoint file inside a --checkpoint-dir.
[[nodiscard]] std::string checkpoint_path(const std::string& dir);

/// Serializes `checkpoint` and atomically replaces `path` with it via
/// fault::write_file_atomic. Throws mapit::Error on I/O failure (the
/// destination then still holds the previous complete checkpoint, if any).
void write_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                      fault::Io& io = fault::system_io());

/// Fully validates an in-memory checkpoint image (header, endianness,
/// version, size, CRC, payload). Throws CheckpointError naming `context`
/// (a path or a synthetic label) when anything is wrong. This is the whole
/// validation path minus file I/O — the fuzz harness drives it directly.
[[nodiscard]] Checkpoint read_checkpoint_bytes(
    std::string_view bytes, const std::string& context = "checkpoint");

/// Reads and fully validates a checkpoint file. Throws CheckpointError when
/// the file is missing, unreadable, truncated, of a foreign endianness or
/// version, fails its CRC, or carries a malformed payload.
[[nodiscard]] Checkpoint read_checkpoint(const std::string& path,
                                         fault::Io& io = fault::system_io());

/// Rejects a resume whose inputs or configuration differ from the
/// checkpointed run's. Throws CheckpointError naming the mismatched field.
void verify_checkpoint_meta(const CheckpointMeta& expected,
                            const CheckpointMeta& recorded);

}  // namespace mapit::core
