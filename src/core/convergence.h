// Convergence detection for the multipass engine (paper §4.6).
//
// The engine stops when an end-of-remove-step state repeats. Comparing
// 64-bit state hashes alone is unsound: a collision — in particular the
// XOR-combined scheme's cancellation of paired equal entries — silently
// fakes convergence and truncates the run. The tracker therefore keeps the
// canonical serialized states, bucketed by hash, and declares a repeat only
// when a previously recorded state compares byte-equal.
//
// States are stored in insertion order so a checkpoint (core/checkpoint.h)
// can serialize the tracker canonically and a resumed run rebuilds it to
// the exact same contents — convergence fires at the same iteration it
// would have in an uninterrupted run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace mapit::core {

class ConvergenceTracker {
 public:
  /// Records (hash, state). Returns true iff a state with the same hash was
  /// recorded before AND compares equal byte-for-byte; a mere hash
  /// collision between distinct states returns false and records the new
  /// state alongside the colliding one.
  bool seen_before(std::uint64_t hash, std::string state);

  /// Distinct states recorded so far.
  [[nodiscard]] std::size_t size() const { return states_.size(); }

  /// Recorded states in insertion order (checkpoint serialization).
  [[nodiscard]] const std::vector<std::string>& states() const {
    return states_;
  }

 private:
  std::vector<std::string> states_;
  /// hash -> indices into states_ (one bucket may hold colliding states).
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets_;
};

}  // namespace mapit::core
