// AS-level traceroute path annotation — the application the paper's §1
// motivates ("more precisely identifying the ASes traversed on a
// traceroute path, with implications for AS-connectivity research and
// network diagnosis").
//
// Naive prefix-based IP2AS assigns each hop its address's origin AS, which
// mislabels one side of every inter-AS link (Fig 1's AS55 -> AS15169
// mistake). MAP-IT's inferences say which *router* an interface actually
// sits on; PathAnnotator uses them to produce corrected per-hop router
// attributions and a deduplicated AS-level path.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/ip2as.h"
#include "core/engine.h"
#include "trace/trace.h"

namespace mapit::core {

/// The AS operating the router an inferred interface sits on, derived
/// from the inference's direction and kind (see docs/ALGORITHM.md):
/// forward direct/stub evidence places the router in the dominating AS;
/// backward evidence keeps it in the address-owning AS; indirect mirrors
/// invert their source. Returns kUnknownAsn when the relevant side is
/// unannounced.
[[nodiscard]] asdata::Asn router_attribution(const Inference& inference);

/// One annotated traceroute hop.
struct AnnotatedHop {
  std::optional<net::Ipv4Address> address;  ///< nullopt for '*'
  asdata::Asn origin = asdata::kUnknownAsn;    ///< prefix-based IP2AS
  asdata::Asn inferred = asdata::kUnknownAsn;  ///< MAP-IT router attribution
  bool border = false;  ///< hop carries an inter-AS link inference
};

struct AnnotatedPath {
  std::vector<AnnotatedHop> hops;
  /// Deduplicated inferred AS sequence (unknown/silent hops skipped).
  std::vector<asdata::Asn> as_path;
  /// The same sequence under naive origin mapping, for comparison.
  std::vector<asdata::Asn> naive_as_path;
};

class PathAnnotator {
 public:
  /// Indexes the result's confident inferences. Both references must
  /// outlive the annotator.
  PathAnnotator(const Result& result, const bgp::Ip2As& ip2as);

  [[nodiscard]] AnnotatedPath annotate(const trace::Trace& trace) const;

  /// Router attribution for a single address (origin when no inference).
  [[nodiscard]] asdata::Asn attribute(net::Ipv4Address address) const;

 private:
  const bgp::Ip2As& ip2as_;
  std::unordered_map<graph::InterfaceHalf, const Inference*> by_half_;
};

}  // namespace mapit::core
