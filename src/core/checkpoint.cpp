#include "core/checkpoint.h"

#include <fcntl.h>

#include <cerrno>
#include <cstring>
#include <fstream>

#include "core/wire.h"
#include "fault/atomic_file.h"

namespace mapit::core {

namespace {

using wire::append_u32;
using wire::append_u64;
using wire::crc32;
using wire::Cursor;

constexpr char kMagic[8] = {'M', 'A', 'P', 'I', 'T', 'C', 'K', 'P'};
constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
constexpr std::size_t kHeaderSize = 32;

[[nodiscard]] std::string serialize_payload(const Checkpoint& checkpoint) {
  std::string payload;
  payload.reserve(4 * 8 + 1 + 4 + 8 + checkpoint.engine_state.size());
  append_u64(payload, checkpoint.meta.config_hash);
  append_u64(payload, checkpoint.meta.corpus_fingerprint);
  append_u64(payload, checkpoint.meta.rib_fingerprint);
  append_u64(payload, checkpoint.meta.datasets_fingerprint);
  payload.push_back(
      static_cast<char>(static_cast<std::uint8_t>(checkpoint.boundary)));
  append_u32(payload, static_cast<std::uint32_t>(checkpoint.iterations_done));
  append_u64(payload, checkpoint.engine_state.size());
  payload.append(checkpoint.engine_state);
  return payload;
}

[[nodiscard]] Checkpoint parse_payload(std::string_view payload) {
  Cursor cursor(payload);
  Checkpoint out;
  out.meta.config_hash = cursor.read_u64();
  out.meta.corpus_fingerprint = cursor.read_u64();
  out.meta.rib_fingerprint = cursor.read_u64();
  out.meta.datasets_fingerprint = cursor.read_u64();
  const std::uint8_t boundary = cursor.read_u8();
  if (boundary > static_cast<std::uint8_t>(RunBoundary::kAfterIteration)) {
    throw CheckpointError("checkpoint names an unknown run boundary");
  }
  out.boundary = static_cast<RunBoundary>(boundary);
  const std::uint32_t iterations = cursor.read_u32();
  if (iterations > static_cast<std::uint32_t>(INT32_MAX)) {
    throw CheckpointError("checkpoint iteration count out of range");
  }
  out.iterations_done = static_cast<int>(iterations);
  const std::uint64_t state_size = cursor.read_u64();
  out.engine_state = std::string(cursor.read_bytes(state_size));
  if (!cursor.exhausted()) {
    throw CheckpointError("checkpoint payload has trailing bytes");
  }
  return out;
}

}  // namespace

std::uint64_t config_hash(const Options& options) {
  // FNV-1a over a canonical encoding of every output-affecting option.
  // Field order is part of the format: changing it (or what is included)
  // requires bumping kCheckpointVersion.
  std::string encoded;
  std::uint64_t f_bits;
  static_assert(sizeof(f_bits) == sizeof(options.f));
  std::memcpy(&f_bits, &options.f, sizeof(f_bits));
  append_u64(encoded, f_bits);
  encoded.push_back(static_cast<char>(options.remove_rule));
  encoded.push_back(static_cast<char>(options.sibling_grouping));
  encoded.push_back(static_cast<char>(options.update_other_sides));
  encoded.push_back(static_cast<char>(options.ixp_aware));
  encoded.push_back(static_cast<char>(options.resolve_duals));
  encoded.push_back(static_cast<char>(options.resolve_inverses));
  encoded.push_back(static_cast<char>(options.stub_heuristic));
  append_u32(encoded, static_cast<std::uint32_t>(options.max_iterations));
  return fingerprint_bytes(kFingerprintSeed, encoded);
}

std::uint64_t fingerprint_bytes(std::uint64_t seed, std::string_view bytes) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::uint64_t fingerprint_file(const std::string& path, std::uint64_t seed) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open for fingerprinting: " + path);
  std::uint64_t hash = seed;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof(buffer)) || in.gcount() > 0) {
    hash = fingerprint_bytes(
        hash, std::string_view(buffer,
                               static_cast<std::size_t>(in.gcount())));
  }
  if (in.bad()) throw Error("read failed while fingerprinting: " + path);
  return hash;
}

std::string checkpoint_path(const std::string& dir) {
  return dir + "/engine.ckpt";
}

void write_checkpoint(const std::string& path, const Checkpoint& checkpoint,
                      fault::Io& io) {
  const std::string payload = serialize_payload(checkpoint);
  std::string bytes;
  bytes.reserve(kHeaderSize + payload.size());
  bytes.append(kMagic, sizeof(kMagic));
  append_u32(bytes, kEndianMarker);
  append_u32(bytes, kCheckpointVersion);
  append_u64(bytes, payload.size());
  append_u32(bytes, crc32(payload));
  append_u32(bytes, 0);  // reserved
  bytes.append(payload);
  fault::write_file_atomic(path, bytes, io);
}

Checkpoint read_checkpoint_bytes(std::string_view bytes,
                                 const std::string& context) {
  if (bytes.size() < kHeaderSize) {
    throw CheckpointError("checkpoint file too small: " + context);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw CheckpointError("bad checkpoint magic: " + context);
  }
  Cursor header(bytes.substr(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
  if (header.read_u32() != kEndianMarker) {
    throw CheckpointError("checkpoint written with foreign endianness: " +
                          context);
  }
  const std::uint32_t version = header.read_u32();
  if (version != kCheckpointVersion) {
    throw CheckpointError("unsupported checkpoint version " +
                          std::to_string(version) + ": " + context);
  }
  const std::uint64_t payload_size = header.read_u64();
  if (payload_size != bytes.size() - kHeaderSize) {
    throw CheckpointError("checkpoint payload size mismatch: " + context);
  }
  const std::uint32_t expected_crc = header.read_u32();
  // Reserved bytes must be zero: the bit-flip rejection matrix covers every
  // header byte, and a version-1 reader that ignored them could silently
  // accept a file some future version relies on them to disambiguate.
  if (header.read_u32() != 0) {
    throw CheckpointError("checkpoint reserved header bytes are nonzero: " +
                          context);
  }
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (crc32(payload) != expected_crc) {
    throw CheckpointError("checkpoint CRC mismatch: " + context);
  }
  return parse_payload(payload);
}

Checkpoint read_checkpoint(const std::string& path, fault::Io& io) {
  const int fd = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    throw CheckpointError("cannot open checkpoint " + path + ": " +
                          std::strerror(errno));
  }
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = io.read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      (void)io.close(fd);
      throw CheckpointError("read failed on checkpoint " + path + ": " +
                            std::strerror(saved));
    }
    if (got == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(got));
  }
  (void)io.close(fd);
  return read_checkpoint_bytes(bytes, path);
}

void verify_checkpoint_meta(const CheckpointMeta& expected,
                            const CheckpointMeta& recorded) {
  if (recorded.config_hash != expected.config_hash) {
    throw CheckpointError(
        "checkpoint was written with different engine options "
        "(config hash mismatch); rerun with the original options or start "
        "fresh");
  }
  if (recorded.corpus_fingerprint != expected.corpus_fingerprint) {
    throw CheckpointError(
        "checkpoint was written against a different trace corpus "
        "(fingerprint mismatch)");
  }
  if (recorded.rib_fingerprint != expected.rib_fingerprint) {
    throw CheckpointError(
        "checkpoint was written against a different RIB "
        "(fingerprint mismatch)");
  }
  if (recorded.datasets_fingerprint != expected.datasets_fingerprint) {
    throw CheckpointError(
        "checkpoint was written against different AS datasets "
        "(fingerprint mismatch)");
  }
}

}  // namespace mapit::core
