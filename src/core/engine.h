// The MAP-IT multipass inference engine (paper §4).
//
// Pipeline position: traces have been sanitized (trace/sanitize.h) and
// folded into an InterfaceGraph (graph/interface_graph.h); an Ip2As
// composite supplies base address-to-AS mappings. The engine then:
//
//   1. repeatedly ADDs inferences — direct neighbour-set-majority
//      inferences (§4.4.1), indirect other-side propagation (§4.4.2),
//      dual-inference and divergent-other-side resolution (§4.4.3), and
//      adjacent-inverse-inference resolution (§4.4.4) — until a full pass
//      makes no change;
//   2. REMOVEs inferences no longer supported by the refined per-half
//      IP2AS mappings (§4.5);
//   3. repeats 1-2 until the end-of-remove state repeats (§4.6);
//   4. finally applies the stub-AS heuristic (§4.8).
//
// All counting during a pass uses the mappings frozen at the end of the
// previous pass, making results independent of visit order (§4.4.5).
//
// State layout: every interface half carries a dense graph::HalfId
// (interface index * 2 + direction); all engine state lives in flat slabs
// indexed by that id, so the hot loops are plain vector reads with no
// hashing. Passes after the first of each add/remove step recount only the
// halves whose neighbour mappings changed (dirty-set propagation through
// the graph's reverse adjacency); the first pass of every step is a full
// sweep, which keeps inference output identical to a full-recount engine.
// See DESIGN.md "Dense engine state" for the invariants.
//
// Threading: the full-sweep first pass of each add/remove step evaluates
// candidates over disjoint HalfId ranges on Options::threads workers —
// counting reads only the frozen view (§4.4.5), so evaluation is pure —
// and commits the collected proposals sequentially in ascending id order.
// Output is byte-identical for every thread count; see DESIGN.md
// "Parallel sweeps".
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/asn.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "core/convergence.h"
#include "core/inference.h"
#include "graph/interface_graph.h"
#include "parallel/thread_pool.h"

namespace mapit::core {

/// Rule used by the remove step to decide whether a direct inference is
/// still supported (DESIGN.md §5: the paper's prose and pseudocode differ).
enum class RemoveRule : std::uint8_t {
  kMajority,  ///< AS_N still accounts for more than half of N (§4.5 prose)
  kAddRule,   ///< the add-step criterion would still fire (Alg 3 comment)
};

struct Options {
  /// Minimum fraction of a neighbour set the dominating AS must reach
  /// (paper's f, §4.4.1; evaluated in §5.3).
  double f = 0.5;
  RemoveRule remove_rule = RemoveRule::kMajority;

  /// Ablation toggles (all true reproduces the paper's algorithm).
  bool sibling_grouping = true;       ///< group sibling ASes when counting
  bool update_other_sides = true;     ///< §4.4.2 indirect propagation
  bool ixp_aware = true;              ///< skip other-side updates in IXP LANs
  bool resolve_duals = true;          ///< §4.4.3 dual-inference fixing
  bool resolve_inverses = true;       ///< §4.4.4 inverse-inference fixing
  bool stub_heuristic = true;         ///< §4.8

  /// Dirty-set incremental recounting: passes after the first of each
  /// add/remove step only revisit halves whose neighbour mappings changed.
  /// Disabling forces a full sweep every pass; the results are identical
  /// (asserted by tests/integration/engine_equivalence_test.cpp) — this
  /// knob exists for that test and for perf ablation.
  bool incremental_recount = true;

  /// Capture per-stage inference snapshots (Fig 7 instrumentation).
  bool capture_snapshots = false;

  /// Safety bound on outer add/remove iterations (the paper's runs
  /// converge in 3).
  int max_iterations = 64;

  /// Worker threads for the full-sweep passes. 0 = one per hardware
  /// thread (the default); 1 = the exact single-threaded code path.
  /// Inference output is byte-identical for every value — the frozen-view
  /// counting of §4.4.5 has no cross-half data dependencies within a pass,
  /// and proposals are committed in ascending id order regardless of which
  /// worker produced them.
  unsigned threads = 0;
};

/// A labelled copy of the confident inference list at one pipeline stage.
struct Snapshot {
  std::string label;
  std::vector<Inference> inferences;
};

struct EngineStats {
  int iterations = 0;             ///< outer add/remove iterations executed
  int add_passes = 0;             ///< total direct-inference sweeps
  std::size_t direct_made = 0;    ///< direct inferences ever added
  std::size_t duals_resolved = 0;
  std::size_t inverses_resolved = 0;
  std::size_t uncertain_pairs = 0;
  std::size_t divergent_other_sides = 0;
  std::size_t demoted_in_remove_step = 0;  ///< direct -> indirect demotions
  std::size_t removed_in_remove_step = 0;  ///< indirect inferences discarded
  std::size_t stub_inferences = 0;
  bool converged = false;         ///< repeated state found within bounds

  friend bool operator==(const EngineStats&, const EngineStats&) = default;
};

/// The places inside Engine::run_controlled where execution may pause: the
/// engine's state at these points fully determines the remainder of the run
/// (the next step always opens with a full sweep, so the pending dirty set
/// is immaterial), which is what makes checkpoint/resume byte-identical.
enum class RunBoundary : std::uint8_t {
  kAfterAddStep = 0,    ///< add step finished; the remove step runs next
  kAfterIteration = 1,  ///< remove step finished, state not yet repeated
};

/// Optional control surface for run_controlled. `on_boundary` is invoked at
/// every RunBoundary with the iterations completed so far; returning false
/// stops the run gracefully (the engine state is still intact, so the
/// caller can save_state() before or inside the callback). `resume_state`
/// restores a save_state() blob before running and continues from
/// `resume_boundary` instead of starting fresh.
struct RunControl {
  std::function<bool(RunBoundary boundary, int iterations_done)> on_boundary;
  const std::string* resume_state = nullptr;
  RunBoundary resume_boundary = RunBoundary::kAfterIteration;
};

struct Result {
  /// High-confidence inter-AS link interface inferences (direct + stub +
  /// surviving indirect), ordered by address then direction.
  std::vector<Inference> inferences;
  /// Uncertain inferences (§4.4.4's unresolvable inverse pairs).
  std::vector<Inference> uncertain;
  /// Final per-half IP2AS overrides at convergence: every interface half
  /// whose mapping the algorithm refined away from the BGP-derived origin.
  std::unordered_map<graph::InterfaceHalf, asdata::Asn> final_mappings;
  EngineStats stats;
  std::vector<Snapshot> snapshots;

  /// Confident inference on the given half, if any.
  [[nodiscard]] const Inference* find(const graph::InterfaceHalf& half) const;
  /// Any confident inference (either half) on the given address.
  [[nodiscard]] std::vector<const Inference*> find_address(
      net::Ipv4Address address) const;
};

/// What run_controlled came back with: a finished Result, or the boundary
/// at which the control callback stopped the run (state saved by the
/// caller; resume via RunControl::resume_state).
struct RunOutcome {
  std::optional<Result> result;  ///< engaged iff the run completed
  RunBoundary stopped_at = RunBoundary::kAfterIteration;
  int iterations_done = 0;
  [[nodiscard]] bool completed() const { return result.has_value(); }
};

class Engine {
 public:
  /// All referenced objects must outlive the engine.
  Engine(const graph::InterfaceGraph& graph, const bgp::Ip2As& ip2as,
         const asdata::As2Org& orgs, const asdata::AsRelationships& rels,
         Options options);

  /// Runs the full algorithm. Idempotent: each call restarts from scratch.
  [[nodiscard]] Result run();

  /// run() with pause/resume control. Checkpoint/resume invariant, pinned
  /// by tests: stopping at any boundary and resuming the saved state in a
  /// fresh engine (any thread count, same everything else) produces
  /// byte-identical inferences, stats, and final mappings to an
  /// uninterrupted run. Resume requires capture_snapshots to be off —
  /// per-stage snapshots from before the checkpoint are not recoverable.
  [[nodiscard]] RunOutcome run_controlled(const RunControl& control);

  /// Complete resumable engine state: per-half slabs, touch flags, stats,
  /// and the convergence tracker's recorded states — unlike
  /// state_signature(), which deliberately drops output-only fields. The
  /// blob is versioned and host-endian; core/checkpoint.h wraps it in a
  /// CRC-checked file with endianness pinned in the header. Only
  /// meaningful at a RunBoundary (inside on_boundary).
  [[nodiscard]] std::string save_state() const;

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  using HalfId = graph::HalfId;

  struct DirectInference {
    asdata::Asn router_as = asdata::kUnknownAsn;  // AS_N
    asdata::Asn other_as = asdata::kUnknownAsn;   // previous IP2AS(h)
    bool from_stub_heuristic = false;
    std::uint32_t votes = 0;           // neighbours voting for AS_N
    std::uint32_t neighbor_count = 0;  // |N| at inference time
  };

  /// Per-half state, one slab entry per graph::HalfId.
  struct HalfState {
    std::optional<DirectInference> direct;
    /// Indirect inference propagated from the direct inference on the other
    /// side (the source half's id, for lifetime coupling); kInvalidHalfId
    /// when absent.
    HalfId indirect_source = graph::kInvalidHalfId;
    std::optional<asdata::Asn> direct_override;
    std::optional<asdata::Asn> indirect_override;
    bool uncertain = false;
    /// Direct inference discarded during this add step; cannot be re-made
    /// until the next add step (§4.4.5 single-inference-per-step rule).
    bool suppressed = false;
  };

  // --- mapping views -------------------------------------------------
  /// The effective mapping of a half right now (overrides, then base).
  [[nodiscard]] asdata::Asn effective_as(HalfId id) const;
  /// Rebuilds view_ / view_group_ from the current state (the per-pass
  /// mapping freeze of §4.4.5).
  void freeze_view();

  // --- counting ------------------------------------------------------
  struct MajorityResult {
    asdata::Asn asn = asdata::kUnknownAsn;  // representative of the group
    std::size_t count = 0;                  // group's vote count
    bool strict = false;                    // strictly more than every other
  };
  /// Vote-group scratch for count_majority: groups in first-seen order,
  /// entries reused across calls to avoid reallocating the member lists.
  /// Each worker owns one instance (vote_scratch_), so counting can run
  /// concurrently over disjoint id ranges.
  struct VoteGroup {
    std::uint64_t key = 0;
    std::size_t count = 0;
    std::vector<std::pair<asdata::Asn, std::size_t>> members;
  };
  [[nodiscard]] MajorityResult count_majority(
      HalfId id, std::vector<VoteGroup>& scratch) const;
  [[nodiscard]] std::size_t group_count(HalfId id, asdata::Asn target) const;
  [[nodiscard]] std::uint64_t group_key(asdata::Asn asn) const;

  // --- dirty-set propagation ------------------------------------------
  /// Enqueues every half whose majority depends on `id` for recount on the
  /// next pass (reverse adjacency walk). Called whenever a half's effective
  /// mapping changes.
  void mark_dependents_dirty(HalfId id);
  /// Wraps a state mutation: records the effective mapping before, runs the
  /// mutation, and marks dependents dirty if the mapping changed.
  template <typename Fn>
  void mutate_mapping(HalfId id, Fn&& fn);
  /// Drains the pending dirty set into work_ (sorted ascending so the
  /// visit order matches a full sweep's) and clears the flags.
  void take_work();

  // --- algorithm steps -------------------------------------------------
  /// A direct inference the add-step evaluation decided to make. Evaluation
  /// (pure: frozen view + the half's own pre-pass state) is separated from
  /// the commit (mutating) so full sweeps can evaluate on many workers and
  /// commit in ascending id order — the sequential sweep's exact mutation
  /// sequence.
  struct DirectProposal {
    HalfId id = graph::kInvalidHalfId;
    asdata::Asn asn = asdata::kUnknownAsn;  // the dominating AS_N
    std::uint32_t votes = 0;
    std::uint32_t neighbor_count = 0;
  };
  /// Decides whether `id` earns a direct inference against the frozen view.
  /// Reads only shared immutable state plus halves_[id]; writes only
  /// touched_[id] — safe to call concurrently over disjoint id ranges.
  [[nodiscard]] std::optional<DirectProposal> evaluate_direct(
      HalfId id, std::vector<VoteGroup>& scratch);
  /// Applies a proposal: records the inference, updates the mapping
  /// overrides, propagates the indirect inference (§4.4.2), marks
  /// dependents dirty, and bumps the stats.
  void commit_direct(const DirectProposal& proposal);
  /// True when the remove step must demote `id`'s direct inference (§4.5).
  /// Pure: frozen view + halves_[id] only.
  [[nodiscard]] bool lost_support(HalfId id,
                                  std::vector<VoteGroup>& scratch) const;
  bool direct_pass(bool full_sweep);
  bool try_direct_inference(HalfId id);
  void apply_indirect(HalfId source);
  bool resolve_dual_inferences();
  void count_divergent_other_sides();
  bool resolve_inverse_inferences();
  void add_step();
  void remove_step();
  void demote_direct(HalfId id);
  void stub_step();
  void discard_direct(HalfId id, bool suppress);
  void discard_indirect(HalfId id);

  // --- bookkeeping -----------------------------------------------------
  /// Canonical serialized engine state (the §4.6 repetition check compares
  /// these byte-for-byte; see core/convergence.h).
  [[nodiscard]] std::string state_signature() const;
  /// Inverse of save_state(). Overwrites halves_/touched_/stats_/tracker_;
  /// throws CheckpointError on any malformed or mismatched blob (wrong
  /// version, half count differing from this graph, out-of-range ids,
  /// truncation, trailing bytes). reset_state() must have run first.
  void restore_state(const std::string& blob);
  [[nodiscard]] std::vector<Inference> collect(bool confident) const;
  void snapshot(const std::string& label);
  void clear_suppressions();
  void reset_state();

  const graph::InterfaceGraph& graph_;
  const bgp::Ip2As& ip2as_;
  const asdata::As2Org& orgs_;
  const asdata::AsRelationships& rels_;
  Options options_;

  // Flat slabs indexed by graph::HalfId.
  std::vector<HalfState> halves_;
  std::vector<asdata::Asn> base_;          ///< base IP2AS, filled once up front
  std::vector<std::uint64_t> base_group_;  ///< sibling group key of base_
  std::vector<asdata::Asn> view_;          ///< frozen effective mapping
  std::vector<std::uint64_t> view_group_;  ///< sibling group key of view_
  /// Halves that ever held engine state this run. The convergence
  /// signature covers exactly these (even when currently empty), so the
  /// repetition check is sensitive to the same states a lazily-populated
  /// map would be.
  std::vector<std::uint8_t> touched_;
  std::vector<std::uint8_t> dirty_flag_;   ///< membership bit for dirty_
  std::vector<HalfId> dirty_;              ///< pending recount candidates
  std::vector<HalfId> work_;               ///< current pass's work list

  /// Worker pool for the full-sweep passes; null when the resolved thread
  /// count is 1 (everything then runs inline on the caller).
  std::unique_ptr<parallel::ThreadPool> pool_;
  /// Per-worker scratch and result buffers, one slot per pool worker
  /// (exactly one when sequential). Sequential code paths use slot 0.
  std::vector<std::vector<VoteGroup>> vote_scratch_;
  std::vector<std::vector<DirectProposal>> direct_buffers_;
  std::vector<std::vector<HalfId>> demote_buffers_;

  EngineStats stats_;
  std::vector<Snapshot> snapshots_;
  /// End-of-remove-step states for the §4.6 repetition check. A member (not
  /// a run() local) so save_state()/restore_state() can carry it across a
  /// checkpoint; run_controlled resets it on entry.
  ConvergenceTracker tracker_;
};

/// Convenience wrapper: construct an Engine and run it.
[[nodiscard]] Result run_mapit(const graph::InterfaceGraph& graph,
                               const bgp::Ip2As& ip2as,
                               const asdata::As2Org& orgs,
                               const asdata::AsRelationships& rels,
                               const Options& options = {});

}  // namespace mapit::core
