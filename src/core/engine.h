// The MAP-IT multipass inference engine (paper §4).
//
// Pipeline position: traces have been sanitized (trace/sanitize.h) and
// folded into an InterfaceGraph (graph/interface_graph.h); an Ip2As
// composite supplies base address-to-AS mappings. The engine then:
//
//   1. repeatedly ADDs inferences — direct neighbour-set-majority
//      inferences (§4.4.1), indirect other-side propagation (§4.4.2),
//      dual-inference and divergent-other-side resolution (§4.4.3), and
//      adjacent-inverse-inference resolution (§4.4.4) — until a full pass
//      makes no change;
//   2. REMOVEs inferences no longer supported by the refined per-half
//      IP2AS mappings (§4.5);
//   3. repeats 1-2 until the end-of-remove state repeats (§4.6);
//   4. finally applies the stub-AS heuristic (§4.8).
//
// All counting during a pass uses the mappings frozen at the end of the
// previous pass, making results independent of visit order (§4.4.5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/asn.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "core/inference.h"
#include "graph/interface_graph.h"

namespace mapit::core {

/// Rule used by the remove step to decide whether a direct inference is
/// still supported (DESIGN.md §5: the paper's prose and pseudocode differ).
enum class RemoveRule : std::uint8_t {
  kMajority,  ///< AS_N still accounts for more than half of N (§4.5 prose)
  kAddRule,   ///< the add-step criterion would still fire (Alg 3 comment)
};

struct Options {
  /// Minimum fraction of a neighbour set the dominating AS must reach
  /// (paper's f, §4.4.1; evaluated in §5.3).
  double f = 0.5;
  RemoveRule remove_rule = RemoveRule::kMajority;

  /// Ablation toggles (all true reproduces the paper's algorithm).
  bool sibling_grouping = true;       ///< group sibling ASes when counting
  bool update_other_sides = true;     ///< §4.4.2 indirect propagation
  bool ixp_aware = true;              ///< skip other-side updates in IXP LANs
  bool resolve_duals = true;          ///< §4.4.3 dual-inference fixing
  bool resolve_inverses = true;       ///< §4.4.4 inverse-inference fixing
  bool stub_heuristic = true;         ///< §4.8

  /// Capture per-stage inference snapshots (Fig 7 instrumentation).
  bool capture_snapshots = false;

  /// Safety bound on outer add/remove iterations (the paper's runs
  /// converge in 3).
  int max_iterations = 64;
};

/// A labelled copy of the confident inference list at one pipeline stage.
struct Snapshot {
  std::string label;
  std::vector<Inference> inferences;
};

struct EngineStats {
  int iterations = 0;             ///< outer add/remove iterations executed
  int add_passes = 0;             ///< total direct-inference sweeps
  std::size_t direct_made = 0;    ///< direct inferences ever added
  std::size_t duals_resolved = 0;
  std::size_t inverses_resolved = 0;
  std::size_t uncertain_pairs = 0;
  std::size_t divergent_other_sides = 0;
  std::size_t removed_in_remove_step = 0;
  std::size_t stub_inferences = 0;
  bool converged = false;         ///< repeated state found within bounds
};

struct Result {
  /// High-confidence inter-AS link interface inferences (direct + stub +
  /// surviving indirect), ordered by address then direction.
  std::vector<Inference> inferences;
  /// Uncertain inferences (§4.4.4's unresolvable inverse pairs).
  std::vector<Inference> uncertain;
  /// Final per-half IP2AS overrides at convergence: every interface half
  /// whose mapping the algorithm refined away from the BGP-derived origin.
  std::unordered_map<graph::InterfaceHalf, asdata::Asn> final_mappings;
  EngineStats stats;
  std::vector<Snapshot> snapshots;

  /// Confident inference on the given half, if any.
  [[nodiscard]] const Inference* find(const graph::InterfaceHalf& half) const;
  /// Any confident inference (either half) on the given address.
  [[nodiscard]] std::vector<const Inference*> find_address(
      net::Ipv4Address address) const;
};

class Engine {
 public:
  /// All referenced objects must outlive the engine.
  Engine(const graph::InterfaceGraph& graph, const bgp::Ip2As& ip2as,
         const asdata::As2Org& orgs, const asdata::AsRelationships& rels,
         Options options);

  /// Runs the full algorithm. Idempotent: each call restarts from scratch.
  [[nodiscard]] Result run();

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  struct DirectInference {
    asdata::Asn router_as = asdata::kUnknownAsn;  // AS_N
    asdata::Asn other_as = asdata::kUnknownAsn;   // previous IP2AS(h)
    bool from_stub_heuristic = false;
    std::uint32_t votes = 0;           // neighbours voting for AS_N
    std::uint32_t neighbor_count = 0;  // |N| at inference time
  };

  struct HalfState {
    std::optional<DirectInference> direct;
    /// Indirect inference propagated from the direct inference on the other
    /// side (stores that source half for lifetime coupling).
    std::optional<graph::InterfaceHalf> indirect_source;
    std::optional<asdata::Asn> direct_override;
    std::optional<asdata::Asn> indirect_override;
    bool uncertain = false;
    /// Direct inference discarded during this add step; cannot be re-made
    /// until the next add step (§4.4.5 single-inference-per-step rule).
    bool suppressed = false;
  };

  // --- mapping views -------------------------------------------------
  [[nodiscard]] asdata::Asn base_as(net::Ipv4Address address) const;
  [[nodiscard]] asdata::Asn current_as(const graph::InterfaceHalf& half) const;
  using MappingView = std::unordered_map<graph::InterfaceHalf, asdata::Asn>;
  [[nodiscard]] MappingView freeze_mappings() const;
  [[nodiscard]] asdata::Asn view_as(const MappingView& view,
                                    const graph::InterfaceHalf& half) const;

  // --- counting ------------------------------------------------------
  struct MajorityResult {
    asdata::Asn asn = asdata::kUnknownAsn;  // representative of the group
    std::size_t count = 0;                  // group's vote count
    bool strict = false;                    // strictly more than every other
  };
  [[nodiscard]] MajorityResult count_majority(
      const graph::InterfaceHalf& half, const MappingView& view) const;
  [[nodiscard]] std::size_t group_count(const graph::InterfaceHalf& half,
                                        asdata::Asn target,
                                        const MappingView& view) const;
  [[nodiscard]] std::uint64_t group_key(asdata::Asn asn) const;

  // --- algorithm steps -------------------------------------------------
  bool direct_pass(const MappingView& view);
  void apply_indirect(const graph::InterfaceHalf& source);
  bool resolve_dual_inferences();
  void count_divergent_other_sides();
  bool resolve_inverse_inferences();
  void add_step();
  void remove_step();
  void stub_step();
  void discard_direct(const graph::InterfaceHalf& half, bool suppress);
  void discard_indirect(const graph::InterfaceHalf& half);

  // --- bookkeeping -----------------------------------------------------
  [[nodiscard]] HalfState& state(const graph::InterfaceHalf& half);
  [[nodiscard]] const HalfState* state_if_any(
      const graph::InterfaceHalf& half) const;
  [[nodiscard]] std::uint64_t state_hash() const;
  [[nodiscard]] std::vector<Inference> collect(bool confident) const;
  void snapshot(const std::string& label);
  void clear_suppressions();

  const graph::InterfaceGraph& graph_;
  const bgp::Ip2As& ip2as_;
  const asdata::As2Org& orgs_;
  const asdata::AsRelationships& rels_;
  Options options_;

  std::unordered_map<graph::InterfaceHalf, HalfState> halves_;
  mutable std::unordered_map<net::Ipv4Address, asdata::Asn> base_cache_;
  EngineStats stats_;
  std::vector<Snapshot> snapshots_;
};

/// Convenience wrapper: construct an Engine and run it.
[[nodiscard]] Result run_mapit(const graph::InterfaceGraph& graph,
                               const bgp::Ip2As& ip2as,
                               const asdata::As2Org& orgs,
                               const asdata::AsRelationships& rels,
                               const Options& options = {});

}  // namespace mapit::core
