#include "core/as_path.h"

namespace mapit::core {

asdata::Asn router_attribution(const Inference& inference) {
  const bool forward =
      inference.half.direction == graph::Direction::kForward;
  const bool indirect = inference.kind == InferenceKind::kIndirect;
  return (forward != indirect) ? inference.router_as : inference.other_as;
}

PathAnnotator::PathAnnotator(const Result& result, const bgp::Ip2As& ip2as)
    : ip2as_(ip2as) {
  by_half_.reserve(result.inferences.size());
  for (const Inference& inference : result.inferences) {
    by_half_.emplace(inference.half, &inference);
  }
}

asdata::Asn PathAnnotator::attribute(net::Ipv4Address address) const {
  // Forward evidence is the stronger router-placement signal (the paper's
  // §3.1 reasoning); fall back to backward, then to the prefix origin.
  for (graph::Direction direction :
       {graph::Direction::kForward, graph::Direction::kBackward}) {
    auto it = by_half_.find({address, direction});
    if (it != by_half_.end()) {
      const asdata::Asn attributed = router_attribution(*it->second);
      if (attributed != asdata::kUnknownAsn) return attributed;
    }
  }
  return ip2as_.origin(address);
}

AnnotatedPath PathAnnotator::annotate(const trace::Trace& trace) const {
  AnnotatedPath out;
  out.hops.reserve(trace.hops.size());
  for (const trace::TraceHop& hop : trace.hops) {
    AnnotatedHop annotated;
    annotated.address = hop.address;
    if (hop.address) {
      annotated.origin = ip2as_.origin(*hop.address);
      annotated.inferred = attribute(*hop.address);
      annotated.border =
          by_half_.contains({*hop.address, graph::Direction::kForward}) ||
          by_half_.contains({*hop.address, graph::Direction::kBackward});
    }
    out.hops.push_back(annotated);

    auto append = [](std::vector<asdata::Asn>& path, asdata::Asn asn) {
      if (asn == asdata::kUnknownAsn) return;
      if (path.empty() || path.back() != asn) path.push_back(asn);
    };
    append(out.as_path, annotated.inferred);
    append(out.naive_as_path, annotated.origin);
  }
  return out;
}

}  // namespace mapit::core
