// Inference records produced by the MAP-IT engine.
#pragma once

#include <iosfwd>
#include <string>

#include "asdata/asn.h"
#include "graph/halves.h"

namespace mapit::core {

/// How an inference was established.
enum class InferenceKind : std::uint8_t {
  kDirect,    ///< neighbour-set majority (paper §4.4.1)
  kIndirect,  ///< propagated to the other side of a direct one (§4.4.2)
  kStub,      ///< low-visibility / NAT stub heuristic (§4.8)
};

[[nodiscard]] const char* to_string(InferenceKind kind);

/// One inter-AS-link interface inference.
///
/// `half` is the interface half on which evidence was observed. The link
/// connects `router_as` (the AS inferred to operate the interface's router,
/// the dominating AS_N of the neighbour set) and `other_as` (the AS the
/// interface's address space belonged to before the inference; kUnknownAsn
/// when the address is unannounced).
struct Inference {
  graph::InterfaceHalf half;
  asdata::Asn router_as = asdata::kUnknownAsn;
  asdata::Asn other_as = asdata::kUnknownAsn;
  InferenceKind kind = InferenceKind::kDirect;
  bool uncertain = false;
  /// Evidence at the moment the inference was made: how many of the
  /// half's neighbours voted for `router_as`, out of how many total.
  /// The paper's §5.7 anecdote ("113 of 141 addresses") is this ratio.
  /// Indirect inferences inherit their source's evidence.
  std::uint32_t votes = 0;
  std::uint32_t neighbor_count = 0;

  /// The unordered AS pair the link connects, low ASN first.
  [[nodiscard]] std::pair<asdata::Asn, asdata::Asn> as_pair() const {
    return router_as <= other_as ? std::make_pair(router_as, other_as)
                                 : std::make_pair(other_as, router_as);
  }

  /// True when the inference names both ASes (no unannounced side).
  [[nodiscard]] bool complete() const {
    return router_as != asdata::kUnknownAsn &&
           other_as != asdata::kUnknownAsn;
  }

  /// Fraction of the neighbour set supporting the inference (0 when no
  /// evidence was recorded, e.g. for stub-heuristic singletons).
  [[nodiscard]] double support() const {
    return neighbor_count == 0
               ? 0.0
               : static_cast<double>(votes) /
                     static_cast<double>(neighbor_count);
  }

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Inference&, const Inference&) = default;
};

std::ostream& operator<<(std::ostream& os, const Inference& inference);

}  // namespace mapit::core
