// Human-readable evidence trails for MAP-IT decisions.
//
// Given a finished Result, explain() reconstructs why an interface did or
// did not receive an inference: both neighbour sets with each member's
// BGP-derived origin and final (refined) mapping, the other-side
// determination, and the inference records. This is the diagnostic view a
// network operator uses to audit a single boundary (the paper's §5.7
// anecdote is exactly such a trail).
#pragma once

#include <string>

#include "bgp/ip2as.h"
#include "core/engine.h"
#include "graph/interface_graph.h"

namespace mapit::core {

/// Formats the evidence trail for `address`. Multi-line, ends with '\n'.
/// Useful even for addresses without inferences (explains the absence).
[[nodiscard]] std::string explain(const Result& result,
                                  const graph::InterfaceGraph& graph,
                                  const bgp::Ip2As& ip2as,
                                  net::Ipv4Address address);

}  // namespace mapit::core
