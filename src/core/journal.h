// Append-only delta journal for streaming ingestion: the durable record of
// every trace line accepted since the base corpus was loaded.
//
// The format extends the PR 5 checkpoint family (same endianness marker,
// same CRC-32, same CheckpointMeta identity block) rather than inventing a
// new one. A journal file is a fixed header followed by CRC-framed records:
//
//   offset  size  field
//   0       8     magic "MAPITJNL"
//   8       4     endianness marker 0x0A0B0C0D
//   12      4     format version (kJournalVersion)
//   16      32    CheckpointMeta (config hash, corpus / RIB / datasets
//                 fingerprints) — the base run this journal extends
//   48      4     CRC-32 (IEEE) of bytes [8, 48)
//   52      4     reserved (zero)
//   56      ...   records
//
//   record := u32 payload size | u32 CRC-32 of payload | u8 type
//             | u8[3] reserved (zero) | payload
//   trace payload  (type 1) := u64 source offset | raw trace line bytes
//   commit payload (type 2) := u64 batch sequence | u64 traces folded total
//                              | u32 published snapshot CRC | u32 reserved
//   remote payload (type 3) := u64 session sequence | u64 sender end offset
//                              | u16 session name length | session name
//                              | u32 line count | (u32 length | line bytes)*
//
// Format version 2 adds the type-3 remote-batch record (the MDP1 transport's
// exactly-once unit: one accepted batch from one sender session, journaled
// atomically with its (session, seq) watermark so a torn tail can never
// leave traces durable without the watermark that dedupes their resend).
// Readers accept versions 1 and 2; writers emit version 2.
//
// Durability contract: the header is created with fault::write_file_atomic
// (the path holds either nothing or a complete header); records are
// appended with O_APPEND and made durable by an explicit sync() at each
// batch watermark. A crash can therefore only truncate the tail record —
// it can never corrupt bytes that were already written. Readers exploit
// exactly that: an incomplete record at end-of-file is a *torn tail*
// (silently truncated on the next open, with the tailer re-reading the
// lost lines from their recorded source offsets), while a complete record
// that fails its CRC, names an unknown type, or carries nonzero reserved
// bytes is real corruption and rejected loudly (JournalError, CLI exit
// code 4). The crash matrix in tests/ingest/ pins this distinction at
// every syscall via fault::FaultPlan.
//
// Only lines that parsed successfully are journaled, so "base corpus +
// journaled lines" is exactly the corpus a cold batch run would load —
// the byte-identical equivalence gate depends on this.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/checkpoint.h"
#include "fault/io.h"

namespace mapit::core {

/// A journal file is unusable (corrupt, truncated header, wrong version)
/// or belongs to a different base run. Subclasses CheckpointError so the
/// CLI's exit-code mapping (4) covers both artifact families.
class JournalError : public CheckpointError {
 public:
  using CheckpointError::CheckpointError;
};

inline constexpr std::uint32_t kJournalVersion = 2;
/// Oldest header version read_journal_bytes still accepts. Version 1
/// journals simply predate the remote-batch record type; every v1 byte
/// sequence parses identically under v2 rules.
inline constexpr std::uint32_t kMinJournalVersion = 1;
inline constexpr std::size_t kJournalHeaderSize = 56;
inline constexpr std::size_t kJournalFrameSize = 12;
/// Sanity cap on a single record payload. Trace lines are bounded far
/// below this; a larger size field means corruption, not data.
inline constexpr std::uint32_t kMaxJournalPayload = 1u << 24;
/// source_offset value for delta lines with no file position (socket).
inline constexpr std::uint64_t kNoSourceOffset = ~0ull;
/// Sanity cap on a remote-batch session name (also enforced by the MDP1
/// handshake, so a journaled name can always round-trip the wire).
inline constexpr std::size_t kMaxJournalSessionName = 256;

/// One journal record. Which fields are meaningful depends on `type`;
/// the factory functions below construct well-formed instances.
struct JournalRecord {
  enum class Type : std::uint8_t { kTrace = 1, kCommit = 2, kRemoteBatch = 3 };

  Type type = Type::kTrace;
  /// kTrace: byte offset of the line in its source file, so a tailer
  /// resuming after a torn tail knows where to re-read from; lines with no
  /// file position (socket deltas) record kNoSourceOffset. The raw
  /// accepted line follows.
  /// kRemoteBatch: the sender's source-file offset after the last line of
  /// the batch — replayed to a reconnecting sender so it resumes reading
  /// exactly where the durable prefix ends.
  std::uint64_t source_offset = 0;
  std::string line;
  /// kCommit: the batch watermark bookkeeping — sequence number, total
  /// traces folded so far, and the CRC of the snapshot published for it.
  /// kRemoteBatch: batch_seq is the per-session monotonic sequence number.
  std::uint64_t batch_seq = 0;
  std::uint64_t traces_total = 0;
  std::uint32_t snapshot_crc = 0;
  /// kRemoteBatch: sender session name plus the accepted trace lines of
  /// the batch, journaled as one atomic record (all-or-nothing under a
  /// torn tail, which is what makes ACK-after-fsync exactly-once).
  std::string session;
  std::vector<std::string> lines;

  [[nodiscard]] static JournalRecord trace(std::uint64_t source_offset,
                                           std::string line);
  [[nodiscard]] static JournalRecord commit(std::uint64_t batch_seq,
                                            std::uint64_t traces_total,
                                            std::uint32_t snapshot_crc);
  [[nodiscard]] static JournalRecord remote_batch(
      std::string session, std::uint64_t seq, std::uint64_t end_offset,
      std::vector<std::string> lines);

  friend bool operator==(const JournalRecord&,
                         const JournalRecord&) = default;
};

/// Result of replaying a journal: the base-run identity, every complete
/// record in append order, and where the durable prefix ends.
struct JournalContents {
  CheckpointMeta meta;
  std::vector<JournalRecord> records;
  /// Size in bytes of the valid prefix (header + complete records).
  std::uint64_t durable_size = kJournalHeaderSize;
  /// True when bytes past durable_size formed an incomplete tail record
  /// (crash mid-append). JournalWriter::open truncates them.
  bool torn_tail = false;
};

[[nodiscard]] std::string serialize_journal_header(const CheckpointMeta& meta);
[[nodiscard]] std::string serialize_journal_record(const JournalRecord& record);

/// Fully validates an in-memory journal image: header, endianness, version,
/// header CRC, then every record frame. Incomplete trailing bytes are
/// reported as a torn tail; everything else wrong throws JournalError
/// naming `context`. This is the whole validation path minus file I/O —
/// the fuzz harness drives it directly.
[[nodiscard]] JournalContents read_journal_bytes(
    std::string_view bytes, const std::string& context = "journal");

/// Reads and validates a journal file. Throws JournalError when the file
/// is missing or unreadable (torn tails do NOT throw — see above).
[[nodiscard]] JournalContents read_journal(const std::string& path,
                                           fault::Io& io = fault::system_io());

/// Appends records to a journal, creating it (header only) when absent.
/// All I/O goes through the injected fault::Io; append() buffers nothing —
/// every record is written through immediately, and sync() is the
/// durability point callers invoke at each batch watermark.
class JournalWriter {
 public:
  /// Opens `path`, creating it with `meta` when absent. An existing file
  /// is replayed (into *replayed when non-null), its identity block is
  /// verified against `meta` (mismatch: JournalError), and a torn tail is
  /// truncated before the writer is positioned at the end.
  [[nodiscard]] static JournalWriter open(const std::string& path,
                                          const CheckpointMeta& meta,
                                          JournalContents* replayed = nullptr,
                                          fault::Io& io = fault::system_io());

  JournalWriter(JournalWriter&& other) noexcept;
  JournalWriter& operator=(JournalWriter&& other) noexcept;
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;
  ~JournalWriter();

  /// Writes one record through to the kernel (not yet durable).
  void append(const JournalRecord& record);

  /// fsyncs everything appended so far — the batch commit point.
  void sync();

  /// Truncates the file back to `size` bytes. The degraded-mode retry path
  /// uses this to discard a batch whose append failed partway (a failed
  /// write can leave a partial frame on disk that size() does not account
  /// for) before re-appending the whole batch. `size` must not exceed
  /// size(). O_APPEND makes the next append land at the new end.
  void rollback_to(std::uint64_t size);

  /// File size after the last append (header + all records).
  [[nodiscard]] std::uint64_t size() const { return size_; }

  void close();

 private:
  JournalWriter(int fd, std::uint64_t size, std::string path, fault::Io& io)
      : fd_(fd), size_(size), path_(std::move(path)), io_(&io) {}

  int fd_ = -1;
  std::uint64_t size_ = 0;
  std::string path_;
  fault::Io* io_ = nullptr;
};

}  // namespace mapit::core
