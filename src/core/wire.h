// Low-level wire helpers shared by the checkpoint/journal artifact family
// (checkpoint.cpp, journal.cpp): host-endian integer append, a
// bounds-checked cursor, and CRC-32.
//
// Internal to core — not part of the public surface. store/ has an
// identical CRC implementation, but core cannot depend on store (store
// depends on core), so the table lives here too — 1 KiB of constants is
// cheaper than a layering cycle.
#pragma once

#include <array>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "core/checkpoint.h"

namespace mapit::core::wire {

inline void append_u16(std::string& out, std::uint16_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

inline void append_u32(std::string& out, std::uint32_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

inline void append_u64(std::string& out, std::uint64_t value) {
  out.append(reinterpret_cast<const char*>(&value), sizeof(value));
}

/// CRC-32 (IEEE 802.3, reflected).
[[nodiscard]] inline const std::array<std::uint32_t, 256>& crc_table() {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  return table;
}

[[nodiscard]] inline std::uint32_t crc32(std::string_view bytes) {
  const auto& table = crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<std::uint8_t>(c)) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

/// Bounds-checked forward reader over a byte buffer; every overrun is a
/// CheckpointError naming `what`, never an out-of-range memory read.
class Cursor {
 public:
  explicit Cursor(std::string_view bytes,
                  std::string what = "checkpoint payload")
      : bytes_(bytes), what_(std::move(what)) {}

  [[nodiscard]] std::uint8_t read_u8() {
    need(1);
    return static_cast<std::uint8_t>(bytes_[offset_++]);
  }

  [[nodiscard]] std::uint16_t read_u16() {
    need(2);
    std::uint16_t value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(value));
    offset_ += sizeof(value);
    return value;
  }

  [[nodiscard]] std::uint32_t read_u32() {
    need(4);
    std::uint32_t value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(value));
    offset_ += sizeof(value);
    return value;
  }

  [[nodiscard]] std::uint64_t read_u64() {
    need(8);
    std::uint64_t value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(value));
    offset_ += sizeof(value);
    return value;
  }

  [[nodiscard]] std::string_view read_bytes(std::uint64_t count) {
    need(count);
    std::string_view out = bytes_.substr(offset_, count);
    offset_ += count;
    return out;
  }

  [[nodiscard]] std::string_view rest() {
    std::string_view out = bytes_.substr(offset_);
    offset_ = bytes_.size();
    return out;
  }

  [[nodiscard]] bool exhausted() const { return offset_ == bytes_.size(); }

 private:
  void need(std::uint64_t count) const {
    if (count > bytes_.size() - offset_) {
      throw CheckpointError(what_ + " truncated");
    }
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
  std::string what_;
};

}  // namespace mapit::core::wire
