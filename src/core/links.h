// Link-level aggregation of MAP-IT inferences.
//
// MAP-IT emits per-interface-half inferences; most consumers (congestion
// studies, facility mapping, diagnostics) want the *links*: one record per
// point-to-point inter-AS link with both interface addresses and the AS
// pair. Aggregation folds the direct inference, its other-side indirect
// mirror, and any independent inference on the far interface into one
// record, keyed by the link's /31-or-/30 pair.
#pragma once

#include <vector>

#include "core/engine.h"
#include "graph/interface_graph.h"

namespace mapit::core {

/// One inferred inter-AS link.
struct InterAsLink {
  /// Lower-numbered interface address of the link prefix.
  net::Ipv4Address low;
  /// Higher-numbered interface address (the inferred other side).
  net::Ipv4Address high;
  /// The connected ASes, lower ASN first (kUnknownAsn possible when one
  /// side's address space is unannounced).
  asdata::Asn as_a = asdata::kUnknownAsn;
  asdata::Asn as_b = asdata::kUnknownAsn;
  /// Number of confident inferences supporting this link (1 when only one
  /// half was inferred, up to 4 when both interfaces were inferred in both
  /// roles).
  std::uint32_t supporting_inferences = 0;
  /// Strongest evidence ratio among the supporting inferences.
  std::uint32_t votes = 0;
  std::uint32_t neighbor_count = 0;
  /// True when any supporting inference came from the stub heuristic.
  bool via_stub_heuristic = false;
  /// True when the supporting inferences disagree on the AS pair (the
  /// §4.4.3 "divergent other sides" situation); `as_a`/`as_b` then carry
  /// the pair of the strongest-evidence inference.
  bool conflicting = false;

  /// Evidence ratio of the strongest supporting inference.
  [[nodiscard]] double support_ratio() const {
    return neighbor_count == 0 ? 0.0
                               : static_cast<double>(votes) /
                                     static_cast<double>(neighbor_count);
  }

  friend bool operator==(const InterAsLink&, const InterAsLink&) = default;
};

/// Aggregates a result's confident inferences into link records, using the
/// graph's other-side relation to pair interfaces. Deterministic: records
/// are sorted by (low, high).
[[nodiscard]] std::vector<InterAsLink> aggregate_links(
    const Result& result, const graph::InterfaceGraph& graph);

}  // namespace mapit::core
