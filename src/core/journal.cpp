#include "core/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "core/wire.h"
#include "fault/atomic_file.h"
#include "net/error.h"

namespace mapit::core {

namespace {

using wire::append_u16;
using wire::append_u32;
using wire::append_u64;
using wire::crc32;
using wire::Cursor;

constexpr char kMagic[8] = {'M', 'A', 'P', 'I', 'T', 'J', 'N', 'L'};
constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
/// Bytes of the header covered by its CRC: everything after the magic up
/// to the CRC field itself.
constexpr std::size_t kHeaderCrcStart = 8;
constexpr std::size_t kHeaderCrcEnd = 48;

[[nodiscard]] std::string read_file_bytes(const std::string& path,
                                          fault::Io& io) {
  const int fd = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    throw JournalError("cannot open journal " + path + ": " +
                       std::strerror(errno));
  }
  std::string bytes;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t got = io.read(fd, buffer, sizeof(buffer));
    if (got < 0) {
      if (errno == EINTR) continue;
      const int saved = errno;
      (void)io.close(fd);
      throw JournalError("read failed on journal " + path + ": " +
                         std::strerror(saved));
    }
    if (got == 0) break;
    bytes.append(buffer, static_cast<std::size_t>(got));
  }
  (void)io.close(fd);
  return bytes;
}

[[nodiscard]] JournalRecord parse_record_payload(std::uint8_t type,
                                                 std::string_view payload,
                                                 const std::string& context) {
  Cursor cursor(payload, "journal record payload");
  JournalRecord out;
  switch (static_cast<JournalRecord::Type>(type)) {
    case JournalRecord::Type::kTrace:
      out.type = JournalRecord::Type::kTrace;
      out.source_offset = cursor.read_u64();
      out.line = std::string(cursor.rest());
      return out;
    case JournalRecord::Type::kCommit:
      out.type = JournalRecord::Type::kCommit;
      out.batch_seq = cursor.read_u64();
      out.traces_total = cursor.read_u64();
      out.snapshot_crc = cursor.read_u32();
      if (cursor.read_u32() != 0) {
        throw JournalError("journal commit record reserved bytes are "
                           "nonzero: " + context);
      }
      if (!cursor.exhausted()) {
        throw JournalError("journal commit record has trailing bytes: " +
                           context);
      }
      return out;
    case JournalRecord::Type::kRemoteBatch: {
      out.type = JournalRecord::Type::kRemoteBatch;
      out.batch_seq = cursor.read_u64();
      out.source_offset = cursor.read_u64();
      const std::size_t name_len = cursor.read_u16();
      if (name_len == 0 || name_len > kMaxJournalSessionName) {
        throw JournalError("journal remote-batch session name length " +
                           std::to_string(name_len) + " out of range: " +
                           context);
      }
      out.session = std::string(cursor.read_bytes(name_len));
      const std::uint32_t count = cursor.read_u32();
      out.lines.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        const std::uint32_t len = cursor.read_u32();
        out.lines.emplace_back(cursor.read_bytes(len));
      }
      if (!cursor.exhausted()) {
        throw JournalError("journal remote-batch record has trailing "
                           "bytes: " + context);
      }
      return out;
    }
  }
  throw JournalError("journal record has unknown type " +
                     std::to_string(type) + ": " + context);
}

/// Verifies the journal's identity block against the current invocation's.
/// Mirrors verify_checkpoint_meta but names the journal in its messages.
void verify_journal_meta(const CheckpointMeta& expected,
                         const CheckpointMeta& recorded,
                         const std::string& path) {
  if (recorded.config_hash != expected.config_hash) {
    throw JournalError("journal " + path +
                       " was written with different engine options "
                       "(config hash mismatch); rerun with the original "
                       "options or start fresh");
  }
  if (recorded.corpus_fingerprint != expected.corpus_fingerprint) {
    throw JournalError("journal " + path +
                       " was written against a different base corpus "
                       "(fingerprint mismatch)");
  }
  if (recorded.rib_fingerprint != expected.rib_fingerprint) {
    throw JournalError("journal " + path +
                       " was written against a different RIB "
                       "(fingerprint mismatch)");
  }
  if (recorded.datasets_fingerprint != expected.datasets_fingerprint) {
    throw JournalError("journal " + path +
                       " was written against different AS datasets "
                       "(fingerprint mismatch)");
  }
}

void write_all(int fd, std::string_view bytes, fault::Io& io,
               const std::string& path) {
  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t got =
        io.write(fd, bytes.data() + written, bytes.size() - written);
    if (got < 0) {
      if (errno == EINTR) continue;
      throw JournalError("append failed on journal " + path + ": " +
                         std::strerror(errno));
    }
    written += static_cast<std::size_t>(got);
  }
}

}  // namespace

JournalRecord JournalRecord::trace(std::uint64_t source_offset,
                                   std::string line) {
  JournalRecord out;
  out.type = Type::kTrace;
  out.source_offset = source_offset;
  out.line = std::move(line);
  return out;
}

JournalRecord JournalRecord::commit(std::uint64_t batch_seq,
                                    std::uint64_t traces_total,
                                    std::uint32_t snapshot_crc) {
  JournalRecord out;
  out.type = Type::kCommit;
  out.batch_seq = batch_seq;
  out.traces_total = traces_total;
  out.snapshot_crc = snapshot_crc;
  return out;
}

JournalRecord JournalRecord::remote_batch(std::string session,
                                          std::uint64_t seq,
                                          std::uint64_t end_offset,
                                          std::vector<std::string> lines) {
  MAPIT_ENSURE(!session.empty() && session.size() <= kMaxJournalSessionName,
               "remote-batch session name length out of range");
  JournalRecord out;
  out.type = Type::kRemoteBatch;
  out.batch_seq = seq;
  out.source_offset = end_offset;
  out.session = std::move(session);
  out.lines = std::move(lines);
  return out;
}

std::string serialize_journal_header(const CheckpointMeta& meta) {
  std::string out;
  out.reserve(kJournalHeaderSize);
  out.append(kMagic, sizeof(kMagic));
  append_u32(out, kEndianMarker);
  append_u32(out, kJournalVersion);
  append_u64(out, meta.config_hash);
  append_u64(out, meta.corpus_fingerprint);
  append_u64(out, meta.rib_fingerprint);
  append_u64(out, meta.datasets_fingerprint);
  append_u32(out, crc32(std::string_view(out).substr(
                      kHeaderCrcStart, kHeaderCrcEnd - kHeaderCrcStart)));
  append_u32(out, 0);  // reserved
  return out;
}

std::string serialize_journal_record(const JournalRecord& record) {
  std::string payload;
  switch (record.type) {
    case JournalRecord::Type::kTrace:
      payload.reserve(8 + record.line.size());
      append_u64(payload, record.source_offset);
      payload.append(record.line);
      break;
    case JournalRecord::Type::kCommit:
      payload.reserve(24);
      append_u64(payload, record.batch_seq);
      append_u64(payload, record.traces_total);
      append_u32(payload, record.snapshot_crc);
      append_u32(payload, 0);  // reserved
      break;
    case JournalRecord::Type::kRemoteBatch:
      append_u64(payload, record.batch_seq);
      append_u64(payload, record.source_offset);
      append_u16(payload, static_cast<std::uint16_t>(record.session.size()));
      payload.append(record.session);
      append_u32(payload, static_cast<std::uint32_t>(record.lines.size()));
      for (const std::string& line : record.lines) {
        append_u32(payload, static_cast<std::uint32_t>(line.size()));
        payload.append(line);
      }
      break;
  }
  std::string out;
  out.reserve(kJournalFrameSize + payload.size());
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u32(out, crc32(payload));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(record.type)));
  out.append(3, '\0');  // reserved
  out.append(payload);
  return out;
}

JournalContents read_journal_bytes(std::string_view bytes,
                                   const std::string& context) {
  if (bytes.size() < kJournalHeaderSize) {
    throw JournalError("journal file too small: " + context);
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    throw JournalError("bad journal magic: " + context);
  }
  Cursor header(bytes.substr(sizeof(kMagic),
                             kJournalHeaderSize - sizeof(kMagic)),
                "journal header");
  if (header.read_u32() != kEndianMarker) {
    throw JournalError("journal written with foreign endianness: " + context);
  }
  const std::uint32_t version = header.read_u32();
  if (version < kMinJournalVersion || version > kJournalVersion) {
    throw JournalError("unsupported journal version " +
                       std::to_string(version) + ": " + context);
  }
  JournalContents out;
  out.meta.config_hash = header.read_u64();
  out.meta.corpus_fingerprint = header.read_u64();
  out.meta.rib_fingerprint = header.read_u64();
  out.meta.datasets_fingerprint = header.read_u64();
  const std::uint32_t expected_header_crc = header.read_u32();
  if (header.read_u32() != 0) {
    throw JournalError("journal reserved header bytes are nonzero: " +
                       context);
  }
  const std::uint32_t actual_header_crc = crc32(
      bytes.substr(kHeaderCrcStart, kHeaderCrcEnd - kHeaderCrcStart));
  if (actual_header_crc != expected_header_crc) {
    throw JournalError("journal header CRC mismatch: " + context);
  }

  // Record frames. An incomplete frame can only be the tail (appends never
  // rewrite earlier bytes), so "not enough bytes left" is a torn tail, not
  // corruption — but a *complete* frame with a bad CRC, bad type, or
  // nonzero reserved bytes is corruption and rejected.
  std::size_t offset = kJournalHeaderSize;
  while (offset < bytes.size()) {
    const std::size_t remaining = bytes.size() - offset;
    if (remaining < kJournalFrameSize) {
      out.torn_tail = true;
      break;
    }
    Cursor frame(bytes.substr(offset, kJournalFrameSize), "journal frame");
    const std::uint32_t payload_size = frame.read_u32();
    const std::uint32_t expected_crc = frame.read_u32();
    const std::uint8_t type = frame.read_u8();
    const bool reserved_zero = frame.read_u8() == 0 &&
                               frame.read_u8() == 0 && frame.read_u8() == 0;
    if (payload_size > kMaxJournalPayload) {
      throw JournalError("journal record payload size " +
                         std::to_string(payload_size) +
                         " exceeds sanity cap: " + context);
    }
    if (remaining - kJournalFrameSize < payload_size) {
      out.torn_tail = true;
      break;
    }
    if (!reserved_zero) {
      throw JournalError("journal record reserved bytes are nonzero: " +
                         context);
    }
    const std::string_view payload =
        bytes.substr(offset + kJournalFrameSize, payload_size);
    if (crc32(payload) != expected_crc) {
      throw JournalError("journal record CRC mismatch: " + context);
    }
    out.records.push_back(parse_record_payload(type, payload, context));
    offset += kJournalFrameSize + payload_size;
  }
  out.durable_size = offset;
  return out;
}

JournalContents read_journal(const std::string& path, fault::Io& io) {
  return read_journal_bytes(read_file_bytes(path, io), path);
}

JournalWriter JournalWriter::open(const std::string& path,
                                  const CheckpointMeta& meta,
                                  JournalContents* replayed, fault::Io& io) {
  // Probe for an existing journal; create one atomically when absent, so
  // the path never holds a partial header (a crash during creation leaves
  // either nothing or a complete header — pinned by the crash matrix).
  {
    const int probe = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
    if (probe < 0) {
      if (errno != ENOENT) {
        throw JournalError("cannot open journal " + path + ": " +
                           std::strerror(errno));
      }
      fault::write_file_atomic(path, serialize_journal_header(meta), io);
    } else {
      (void)io.close(probe);
    }
  }

  JournalContents contents = read_journal(path, io);
  verify_journal_meta(meta, contents.meta, path);

  // O_APPEND: every write lands at the current end of file, so truncating
  // a torn tail below needs no seek (the Io surface has none).
  const int fd = io.open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC, 0);
  if (fd < 0) {
    throw JournalError("cannot open journal " + path + " for append: " +
                       std::strerror(errno));
  }
  if (contents.torn_tail) {
    if (io.ftruncate(fd, static_cast<::off_t>(contents.durable_size)) != 0) {
      const int saved = errno;
      (void)io.close(fd);
      throw JournalError("cannot truncate torn tail of journal " + path +
                         ": " + std::strerror(saved));
    }
    contents.torn_tail = false;
  }
  const std::uint64_t size = contents.durable_size;
  if (replayed != nullptr) *replayed = std::move(contents);
  return JournalWriter(fd, size, path, io);
}

JournalWriter::JournalWriter(JournalWriter&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      size_(other.size_),
      path_(std::move(other.path_)),
      io_(other.io_) {}

JournalWriter& JournalWriter::operator=(JournalWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) (void)io_->close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    size_ = other.size_;
    path_ = std::move(other.path_);
    io_ = other.io_;
  }
  return *this;
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) (void)io_->close(fd_);
}

void JournalWriter::append(const JournalRecord& record) {
  const std::string bytes = serialize_journal_record(record);
  write_all(fd_, bytes, *io_, path_);
  size_ += bytes.size();
}

void JournalWriter::sync() {
  if (io_->fsync(fd_) != 0) {
    throw JournalError("fsync failed on journal " + path_ + ": " +
                       std::strerror(errno));
  }
}

void JournalWriter::rollback_to(std::uint64_t size) {
  MAPIT_ENSURE(size >= kJournalHeaderSize && size <= size_,
               "journal rollback target out of range");
  if (io_->ftruncate(fd_, static_cast<::off_t>(size)) != 0) {
    throw JournalError("cannot roll back journal " + path_ + ": " +
                       std::strerror(errno));
  }
  size_ = size;
}

void JournalWriter::close() {
  if (fd_ < 0) return;
  if (io_->close(fd_) != 0) {
    fd_ = -1;
    throw JournalError("close failed on journal " + path_ + ": " +
                       std::strerror(errno));
  }
  fd_ = -1;
}

}  // namespace mapit::core
