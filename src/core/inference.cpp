#include "core/inference.h"

#include <ostream>

namespace mapit::core {

const char* to_string(InferenceKind kind) {
  switch (kind) {
    case InferenceKind::kDirect: return "direct";
    case InferenceKind::kIndirect: return "indirect";
    case InferenceKind::kStub: return "stub";
  }
  return "?";
}

std::string Inference::to_string() const {
  std::string out = half.to_string();
  out += ": AS";
  out += std::to_string(router_as);
  out += " <-> AS";
  out += std::to_string(other_as);
  out += " (";
  out += core::to_string(kind);
  if (uncertain) out += ", uncertain";
  out += ")";
  return out;
}

std::ostream& operator<<(std::ostream& os, const Inference& inference) {
  return os << inference.to_string();
}

}  // namespace mapit::core
