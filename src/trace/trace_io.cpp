#include "trace/trace_io.h"

#include <istream>
#include <optional>
#include <ostream>
#include <utility>
#include <vector>

#include "net/error.h"
#include "net/parse.h"
#include "parallel/thread_pool.h"

namespace mapit::trace {

namespace {

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

[[noreturn]] void fail(std::string_view context, std::string_view detail) {
  throw ParseError(std::string(context) + ": " + std::string(detail));
}

TraceHop parse_hop(std::string_view token, std::uint8_t ttl,
                   std::string_view context) {
  TraceHop hop;
  hop.probe_ttl = ttl;
  if (token == "*") return hop;
  std::string_view addr_text = token;
  const std::size_t at = token.find('@');
  if (at != std::string_view::npos) {
    addr_text = token.substr(0, at);
    const std::string_view quoted_text = token.substr(at + 1);
    if (quoted_text.empty() || quoted_text.size() > 3) {
      fail(context, "bad quoted TTL in hop '" + std::string(token) + "'");
    }
    unsigned value = 0;
    for (char c : quoted_text) {
      if (c < '0' || c > '9') {
        fail(context, "bad quoted TTL in hop '" + std::string(token) + "'");
      }
      value = value * 10 + static_cast<unsigned>(c - '0');
    }
    if (value > 255) {
      fail(context, "quoted TTL out of range in hop '" + std::string(token) + "'");
    }
    hop.quoted_ttl = static_cast<std::uint8_t>(value);
  }
  const auto address = net::Ipv4Address::parse(addr_text);
  if (!address) {
    fail(context, "bad address in hop '" + std::string(token) + "'");
  }
  hop.address = *address;
  return hop;
}

}  // namespace

std::string format_trace(const Trace& trace) {
  std::string out = std::to_string(trace.monitor);
  out.push_back('|');
  out += trace.destination.to_string();
  out.push_back('|');
  bool first = true;
  for (const TraceHop& hop : trace.hops) {
    if (!first) out.push_back(' ');
    first = false;
    if (!hop.address) {
      out.push_back('*');
      continue;
    }
    out += hop.address->to_string();
    if (hop.quoted_ttl) {
      out.push_back('@');
      out += std::to_string(*hop.quoted_ttl);
    }
  }
  return out;
}

Trace parse_trace(std::string_view line, std::string_view context) {
  const auto fields = split(line, '|');
  if (fields.size() != 3) {
    fail(context, "expected 'monitor|destination|hops'");
  }
  Trace trace;
  const auto monitor = net::parse_uint<MonitorId>(fields[0]);
  if (!monitor) {
    fail(context, "bad monitor id '" + std::string(fields[0]) + "'");
  }
  trace.monitor = *monitor;
  const auto destination = net::Ipv4Address::parse(fields[1]);
  if (!destination) {
    fail(context, "bad destination '" + std::string(fields[1]) + "'");
  }
  trace.destination = *destination;
  std::uint8_t ttl = 0;
  if (!fields[2].empty()) {
    for (std::string_view token : split(fields[2], ' ')) {
      if (token.empty()) continue;
      if (ttl == 255) fail(context, "more than 255 hops");
      ++ttl;
      trace.hops.push_back(parse_hop(token, ttl, context));
    }
  }
  return trace;
}

void write_corpus(std::ostream& out, const TraceCorpus& corpus) {
  out << "# mapit trace corpus v1: monitor|destination|hop hop ...\n";
  for (const Trace& trace : corpus.traces()) {
    out << format_trace(trace) << '\n';
  }
}

TraceCorpus read_corpus(std::istream& in, unsigned threads,
                        LoadReport* report) {
  // Slurp the payload lines first: parsing dominates the I/O, and
  // line-indexed result slots make the parallel parse's trace order
  // identical to the sequential reader's.
  std::vector<std::string> lines;
  std::vector<std::size_t> line_numbers;
  std::vector<std::size_t> line_offsets;
  std::string line;
  std::size_t line_no = 0;
  std::size_t offset = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // getline consumes the line plus exactly one '\n', so the next line
    // starts size()+1 bytes later (exact even for CRLF input — the '\r'
    // stays in `line` and is counted).
    const std::size_t line_start = offset;
    offset += line.size() + 1;
    if (line.empty() || line[0] == '#') continue;
    lines.push_back(std::move(line));
    line_numbers.push_back(line_no);
    line_offsets.push_back(line_start);
  }

  std::vector<Trace> traces(lines.size());
  // Lenient mode: per-slot error strings instead of exceptions. Slots keep
  // file order, so merging them afterwards yields the sequential reader's
  // LoadReport for any thread count.
  std::vector<std::string> errors(report != nullptr ? lines.size() : 0);
  const unsigned resolved = parallel::resolve_threads(threads);
  std::optional<parallel::ThreadPool> pool;
  if (resolved > 1 && lines.size() > 1) pool.emplace(resolved);
  // On a malformed corpus in strict mode the lowest-indexed failing
  // worker's exception is rethrown; worker ranges ascend and each stops at
  // its first bad line, so that is exactly the error the sequential reader
  // reports.
  parallel::for_ranges(
      pool ? &*pool : nullptr, lines.size(),
      [&](unsigned, std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          // Line number for humans, byte offset so a fuzzer crash (or any
          // tool holding the raw bytes) maps straight to the input.
          const std::string context =
              "trace line " + std::to_string(line_numbers[i]) + " (byte " +
              std::to_string(line_offsets[i]) + ")";
          if (report == nullptr) {
            traces[i] = parse_trace(lines[i], context);
            continue;
          }
          try {
            traces[i] = parse_trace(lines[i], context);
          } catch (const ParseError& e) {
            errors[i] = e.what();
          }
        }
      });
  if (report == nullptr) return TraceCorpus(std::move(traces));

  std::vector<Trace> kept;
  kept.reserve(traces.size());
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (errors[i].empty()) {
      kept.push_back(std::move(traces[i]));
    } else {
      report->record(line_numbers[i], line_offsets[i], std::move(errors[i]));
    }
  }
  report->add_loaded(kept.size());
  return TraceCorpus(std::move(kept));
}

}  // namespace mapit::trace
