#include "trace/sanitize.h"

namespace mapit::trace {

Trace strip_ttl0_hops(const Trace& trace, std::size_t* removed) {
  Trace out;
  out.monitor = trace.monitor;
  out.destination = trace.destination;
  out.hops.reserve(trace.hops.size());
  for (const TraceHop& hop : trace.hops) {
    if (hop.address && hop.quoted_ttl && *hop.quoted_ttl == 0) {
      if (removed != nullptr) ++*removed;
      continue;
    }
    out.hops.push_back(hop);
  }
  return out;
}

SanitizeResult sanitize(const TraceCorpus& corpus) {
  SanitizeResult result;
  result.stats.input_traces = corpus.size();
  result.stats.input_addresses = corpus.distinct_addresses().size();

  for (const Trace& trace : corpus.traces()) {
    Trace cleaned = strip_ttl0_hops(trace, &result.stats.removed_ttl0_hops);
    if (cleaned.has_interface_cycle()) {
      ++result.stats.discarded_traces;
      continue;
    }
    result.clean.add(std::move(cleaned));
  }

  result.stats.retained_addresses =
      result.clean.distinct_addresses().size();
  return result;
}

}  // namespace mapit::trace
