#include "trace/sanitize.h"

#include <optional>
#include <utility>
#include <vector>

#include "parallel/thread_pool.h"

namespace mapit::trace {

Trace strip_ttl0_hops(const Trace& trace, std::size_t* removed) {
  Trace out;
  out.monitor = trace.monitor;
  out.destination = trace.destination;
  out.hops.reserve(trace.hops.size());
  for (const TraceHop& hop : trace.hops) {
    if (hop.address && hop.quoted_ttl && *hop.quoted_ttl == 0) {
      if (removed != nullptr) ++*removed;
      continue;
    }
    out.hops.push_back(hop);
  }
  return out;
}

SanitizeResult sanitize(const TraceCorpus& corpus, unsigned threads) {
  SanitizeResult result;
  result.stats.input_traces = corpus.size();
  result.stats.input_addresses = corpus.distinct_addresses().size();

  const std::vector<Trace>& traces = corpus.traces();
  const unsigned resolved = parallel::resolve_threads(threads);
  if (resolved > 1 && traces.size() > 1) {
    // Per-trace sanitization is independent: workers clean disjoint chunks
    // into index-addressed slots (nullopt = discarded for a cycle) and
    // count stripped hops per worker. The sequential fold below then
    // preserves corpus order and sums the counters — identical output and
    // stats to the single-threaded loop.
    parallel::ThreadPool pool(resolved);
    std::vector<std::optional<Trace>> cleaned(traces.size());
    std::vector<std::size_t> removed_hops(pool.size(), 0);
    pool.for_ranges(traces.size(), [&](unsigned worker, std::size_t begin,
                                       std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        Trace clean = strip_ttl0_hops(traces[i], &removed_hops[worker]);
        if (!clean.has_interface_cycle()) cleaned[i] = std::move(clean);
      }
    });
    for (std::size_t removed : removed_hops) {
      result.stats.removed_ttl0_hops += removed;
    }
    for (std::optional<Trace>& clean : cleaned) {
      if (clean) {
        result.clean.add(std::move(*clean));
      } else {
        ++result.stats.discarded_traces;
      }
    }
  } else {
    for (const Trace& trace : traces) {
      Trace cleaned = strip_ttl0_hops(trace, &result.stats.removed_ttl0_hops);
      if (cleaned.has_interface_cycle()) {
        ++result.stats.discarded_traces;
        continue;
      }
      result.clean.add(std::move(cleaned));
    }
  }

  result.stats.retained_addresses =
      result.clean.distinct_addresses().size();
  return result;
}

}  // namespace mapit::trace
