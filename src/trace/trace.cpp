#include "trace/trace.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

namespace mapit::trace {

std::size_t Trace::responsive_hops() const {
  return static_cast<std::size_t>(
      std::count_if(hops.begin(), hops.end(),
                    [](const TraceHop& hop) { return hop.address.has_value(); }));
}

bool Trace::has_interface_cycle() const {
  // For each responsive hop, remember the index of its previous occurrence;
  // a cycle needs a *different* address strictly between the two.
  std::unordered_map<net::Ipv4Address, std::size_t> last_seen;
  std::vector<net::Ipv4Address> responsive;
  responsive.reserve(hops.size());
  for (const TraceHop& hop : hops) {
    if (hop.address) responsive.push_back(*hop.address);
  }
  for (std::size_t i = 0; i < responsive.size(); ++i) {
    auto it = last_seen.find(responsive[i]);
    if (it != last_seen.end()) {
      for (std::size_t j = it->second + 1; j < i; ++j) {
        if (responsive[j] != responsive[i]) return true;
      }
    }
    last_seen[responsive[i]] = i;
  }
  return false;
}

std::vector<net::Ipv4Address> TraceCorpus::distinct_addresses() const {
  std::unordered_set<net::Ipv4Address> seen;
  for (const Trace& trace : traces_) {
    for (const TraceHop& hop : trace.hops) {
      if (hop.address) seen.insert(*hop.address);
    }
  }
  std::vector<net::Ipv4Address> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<net::Ipv4Address> TraceCorpus::adjacent_addresses() const {
  std::unordered_set<net::Ipv4Address> seen;
  for (const Trace& trace : traces_) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const TraceHop& a = trace.hops[i];
      const TraceHop& b = trace.hops[i + 1];
      if (a.address && b.address &&
          b.probe_ttl == a.probe_ttl + 1) {
        seen.insert(*a.address);
        seen.insert(*b.address);
      }
    }
  }
  std::vector<net::Ipv4Address> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mapit::trace
