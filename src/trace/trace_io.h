// Text serialization for traceroute corpora.
//
// Line format (one trace per line, '#' comments and blank lines allowed):
//
//   <monitor_id>|<destination>|<hop> <hop> ...
//
// where each hop is one of
//   *                unresponsive hop
//   A.B.C.D          response, no quoted TTL recorded
//   A.B.C.D@Q        response with quoted TTL Q (0..255)
//
// Hops are listed in probe-TTL order starting at TTL 1; a '*' keeps the TTL
// counter advancing, matching how traceroute output is read.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "net/load_report.h"
#include "trace/trace.h"

namespace mapit::trace {

/// Serializes one trace to its line representation (no trailing newline).
[[nodiscard]] std::string format_trace(const Trace& trace);

/// Parses one line. Throws mapit::ParseError with `context` on failure.
[[nodiscard]] Trace parse_trace(std::string_view line,
                                std::string_view context = "trace");

/// Writes the whole corpus, one trace per line, with a header comment.
void write_corpus(std::ostream& out, const TraceCorpus& corpus);

/// Reads a corpus written by write_corpus (or hand-authored in the same
/// format).
///
/// Strict mode (`report == nullptr`, the default) throws mapit::ParseError
/// naming the first offending line. Lenient mode (`report != nullptr`)
/// quarantines instead: malformed lines are skipped and counted into
/// `*report` (line numbers ascending), and every well-formed line loads.
///
/// `threads` workers parse line chunks concurrently (0 = one per hardware
/// thread, 1 = the sequential reader). The result is byte-identical for
/// every thread count: traces keep file order, the strict-mode error is
/// the one the sequential reader would hit first (workers own ascending
/// line ranges and stop at their first failure), and the lenient-mode
/// LoadReport is the sequential reader's report exactly.
[[nodiscard]] TraceCorpus read_corpus(std::istream& in, unsigned threads = 1,
                                      LoadReport* report = nullptr);

}  // namespace mapit::trace
