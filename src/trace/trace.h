// Traceroute data model.
//
// A trace is the sequence of hop responses for one (monitor, destination)
// probe run. Only the fields MAP-IT consumes are modelled: the responding
// address (or silence), the probe TTL, and the quoted TTL from the ICMP
// time-exceeded payload, which exposes the TTL=1-forwarding router bug the
// sanitizer filters (paper §4.1).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/ipv4.h"

namespace mapit::trace {

/// Identifier of the monitor (vantage point) that ran a trace.
using MonitorId = std::uint32_t;

/// One hop of a traceroute.
struct TraceHop {
  /// Responding interface address; nullopt for an unresponsive hop ('*').
  std::optional<net::Ipv4Address> address;
  /// TTL of the probe that elicited this hop (1-based).
  std::uint8_t probe_ttl = 0;
  /// TTL quoted in the ICMP time-exceeded payload, when the reply carried
  /// one. A quoted TTL of 0 identifies probes forwarded with TTL=1 by a
  /// buggy upstream router (paper §4.1).
  std::optional<std::uint8_t> quoted_ttl;

  friend bool operator==(const TraceHop&, const TraceHop&) = default;
};

/// A single traceroute: monitor, destination, and hop responses in probe
/// TTL order.
struct Trace {
  MonitorId monitor = 0;
  net::Ipv4Address destination;
  std::vector<TraceHop> hops;

  friend bool operator==(const Trace&, const Trace&) = default;

  /// Count of hops that carried a response.
  [[nodiscard]] std::size_t responsive_hops() const;

  /// True when the same address appears twice separated by at least one
  /// *different* responsive address — the cycle definition of Viger et al.
  /// adopted by the paper (§4.1 footnote 5). Immediately repeated addresses
  /// (e.g. a router answering two TTLs) are not cycles.
  [[nodiscard]] bool has_interface_cycle() const;
};

/// An ordered collection of traces with corpus-level accessors.
class TraceCorpus {
 public:
  TraceCorpus() = default;
  explicit TraceCorpus(std::vector<Trace> traces)
      : traces_(std::move(traces)) {}

  void add(Trace trace) { traces_.push_back(std::move(trace)); }

  [[nodiscard]] const std::vector<Trace>& traces() const { return traces_; }
  [[nodiscard]] std::vector<Trace>& traces() { return traces_; }
  [[nodiscard]] std::size_t size() const { return traces_.size(); }
  [[nodiscard]] bool empty() const { return traces_.empty(); }

  /// Every distinct responding address across all traces (sorted). The
  /// other-side heuristic (§4.2) uses this set *including* traces the
  /// sanitizer later discards.
  [[nodiscard]] std::vector<net::Ipv4Address> distinct_addresses() const;

  /// Distinct addresses that respond adjacent (consecutive probe TTLs) to at
  /// least one other responding address — the population MAP-IT can reason
  /// about (paper §5 reports 4,992,879 of 6,565,421 for Ark).
  [[nodiscard]] std::vector<net::Ipv4Address> adjacent_addresses() const;

 private:
  std::vector<Trace> traces_;
};

}  // namespace mapit::trace
