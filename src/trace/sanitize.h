// Trace sanitization (paper §4.1).
//
// Two defenses against traceroute artifacts before any inference is drawn:
//   1. Hops whose ICMP reply quotes TTL 0 are removed (a buggy upstream
//      router forwarded the probe with TTL=1 instead of answering); the
//      rest of the trace is retained.
//   2. Traces containing an interface cycle — the same address twice,
//      separated by at least one different address — are discarded wholesale
//      (per-packet load balancing / transient route changes).
//
// The paper reports discarding 2.7% of Ark traces while retaining 89.1% of
// distinct addresses; SanitizeStats exposes the same ratios.
#pragma once

#include <cstddef>

#include "trace/trace.h"

namespace mapit::trace {

struct SanitizeStats {
  std::size_t input_traces = 0;
  std::size_t discarded_traces = 0;     ///< dropped for interface cycles
  std::size_t removed_ttl0_hops = 0;    ///< hops stripped for quoted TTL 0
  std::size_t input_addresses = 0;      ///< distinct addresses before
  std::size_t retained_addresses = 0;   ///< distinct addresses after

  [[nodiscard]] double discard_fraction() const {
    return input_traces == 0 ? 0.0
                             : static_cast<double>(discarded_traces) /
                                   static_cast<double>(input_traces);
  }
  [[nodiscard]] double address_retention() const {
    return input_addresses == 0 ? 1.0
                                : static_cast<double>(retained_addresses) /
                                      static_cast<double>(input_addresses);
  }
};

struct SanitizeResult {
  TraceCorpus clean;
  SanitizeStats stats;
};

/// Returns a copy of `hops`-stripped, cycle-free traces plus statistics.
/// TTL-0 hop removal happens *before* the cycle check, mirroring the paper's
/// step order ("After sanitizing a trace, we attempt to identify if load
/// balancing or a transient routing change occurred").
///
/// Each trace is sanitized independently, so `threads` workers process
/// trace chunks concurrently (0 = one per hardware thread, 1 = the
/// sequential path). Retained traces keep corpus order and per-worker hop
/// counters are summed, so the result is identical for every thread count.
[[nodiscard]] SanitizeResult sanitize(const TraceCorpus& corpus,
                                      unsigned threads = 1);

/// Removes quoted-TTL-0 hops from one trace, preserving the other hops.
[[nodiscard]] Trace strip_ttl0_hops(const Trace& trace,
                                    std::size_t* removed = nullptr);

}  // namespace mapit::trace
