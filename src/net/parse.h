// Strict number parsing shared by every text parser (trace corpus, RIB,
// inference files, CLI flags).
//
// The std::sto* family is the wrong tool for input validation: it silently
// accepts trailing garbage ("123abc" -> 123), leading whitespace and signs
// ("-1" wraps to a huge unsigned), and reports failures with raw
// std::invalid_argument/std::out_of_range — exceptions outside the
// mapit::Error hierarchy that escape parser boundaries and turn fuzzer
// findings into uncaught-exception aborts. These helpers parse the WHOLE
// string or fail, and fail by returning nullopt so each call site can
// attach its own positional context (line and byte offset).
#pragma once

#include <charconv>
#include <optional>
#include <string_view>
#include <system_error>

namespace mapit::net {

/// Strict decimal parse of the entire string into an unsigned integer
/// type: rejects empty input, whitespace, signs, trailing bytes, and
/// out-of-range values.
template <typename UInt>
[[nodiscard]] std::optional<UInt> parse_uint(std::string_view text) {
  static_assert(static_cast<UInt>(-1) > UInt{0},
                "parse_uint is for unsigned types");
  UInt value{};
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc{} || ptr != last || text.empty()) return std::nullopt;
  return value;
}

}  // namespace mapit::net
