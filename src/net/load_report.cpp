#include "net/load_report.h"

#include <utility>

namespace mapit {

void LoadReport::record(std::size_t line_no, std::size_t byte_offset,
                        std::string error) {
  ++skipped_;
  if (offenders_.size() < kMaxDetailed) {
    offenders_.push_back(Offender{line_no, byte_offset, std::move(error)});
  }
}

std::string LoadReport::summary(const std::string& what) const {
  if (skipped_ == 0) return {};
  std::string out = what + ": skipped " + std::to_string(skipped_) + " of " +
                    std::to_string(loaded_ + skipped_) +
                    " lines as malformed\n";
  for (const Offender& offender : offenders_) {
    out += "  line " + std::to_string(offender.line_no) + " (byte " +
           std::to_string(offender.byte_offset) + "): " + offender.error +
           "\n";
  }
  if (skipped_ > offenders_.size()) {
    out += "  ... and " + std::to_string(skipped_ - offenders_.size()) +
           " more\n";
  }
  return out;
}

}  // namespace mapit
