#include "net/ipv4.h"

#include <array>
#include <ostream>

#include "net/error.h"

namespace mapit::net {

std::optional<Ipv4Address> Ipv4Address::parse(std::string_view text) {
  std::array<std::uint32_t, 4> octets{};
  std::size_t pos = 0;
  for (int i = 0; i < 4; ++i) {
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      return std::nullopt;
    }
    std::uint32_t value = 0;
    std::size_t digits = 0;
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
      value = value * 10 + static_cast<std::uint32_t>(text[pos] - '0');
      ++digits;
      ++pos;
      if (digits > 3 || value > 255) return std::nullopt;
    }
    octets[static_cast<std::size_t>(i)] = value;
    if (i < 3) {
      if (pos >= text.size() || text[pos] != '.') return std::nullopt;
      ++pos;
    }
  }
  if (pos != text.size()) return std::nullopt;
  return Ipv4Address((octets[0] << 24) | (octets[1] << 16) | (octets[2] << 8) |
                     octets[3]);
}

Ipv4Address Ipv4Address::parse_or_throw(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw ParseError("invalid IPv4 address: '" + std::string(text) + "'");
  }
  return *parsed;
}

std::string Ipv4Address::to_string() const {
  std::string out;
  out.reserve(15);
  for (int i = 0; i < 4; ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(octet(i));
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, Ipv4Address addr) {
  return os << addr.to_string();
}

}  // namespace mapit::net
