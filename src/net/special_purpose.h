// RFC 6890 special-purpose address registry.
//
// MAP-IT excludes private/shared/special addresses from neighbour sets and
// never draws inferences on them (paper §3.1 footnote 2, §4.3). This class
// answers "is this address special-purpose?" via the same LPM trie used for
// BGP lookups.
#pragma once

#include <string_view>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace mapit::net {

/// Registry of special-purpose (non-globally-routable or reserved) space.
class SpecialPurposeRegistry {
 public:
  /// Builds the registry with the RFC 6890 table (plus multicast and
  /// class E, which likewise never belong in a traceroute neighbour set).
  SpecialPurposeRegistry();

  /// True when `address` falls inside any special-purpose block.
  [[nodiscard]] bool is_special(Ipv4Address address) const {
    return trie_.longest_match(address) != nullptr;
  }

  /// The registered block containing `address`, if any, with its RFC name.
  struct Entry {
    Prefix prefix;
    std::string_view name;
  };
  [[nodiscard]] const Entry* lookup(Ipv4Address address) const {
    return trie_.longest_match(address);
  }

  /// All registered blocks.
  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }

  /// Shared process-wide instance (immutable after construction).
  [[nodiscard]] static const SpecialPurposeRegistry& instance();

 private:
  std::vector<Entry> entries_;
  PrefixTrie<Entry> trie_;
};

/// Convenience wrapper over SpecialPurposeRegistry::instance().
[[nodiscard]] bool is_special_purpose(Ipv4Address address);

}  // namespace mapit::net
