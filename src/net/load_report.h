// Quarantine accounting for lenient ingestion.
//
// Real traceroute and BGP corpora are dirty: truncated lines, mixed
// formats, transfer damage. Strict loading (the default) throws on the
// first malformed line; lenient loading skips and counts it into a
// LoadReport instead, so one bad line cannot abort a million-line run.
// Loaders take a `LoadReport*`: nullptr selects strict mode, non-null
// selects lenient mode with this object accumulating the damage.
//
// Determinism: offenders are recorded in ascending line order regardless
// of how many threads parsed the file — a lenient parallel load produces
// the same LoadReport as a sequential one (pinned by the lenient-load
// integration tests).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mapit {

class LoadReport {
 public:
  /// A skipped line: its 1-based line number, the byte offset where the
  /// line starts in the input stream, and the parse error. The offset is
  /// structured (not just embedded in the error text) so tools holding the
  /// raw bytes — delta tailers, fuzzer triage — can seek straight to the
  /// offender.
  struct Offender {
    std::size_t line_no = 0;
    std::size_t byte_offset = 0;
    std::string error;
  };

  /// Offender details kept (beyond this, lines are only counted).
  static constexpr std::size_t kMaxDetailed = 10;

  /// Records one skipped line. Must be called in ascending line order.
  void record(std::size_t line_no, std::size_t byte_offset, std::string error);

  /// Lines skipped in total (detailed or not).
  [[nodiscard]] std::size_t skipped() const { return skipped_; }

  /// Lines successfully loaded (maintained by the loader).
  [[nodiscard]] std::size_t loaded() const { return loaded_; }
  void add_loaded(std::size_t n) { loaded_ += n; }

  /// The first kMaxDetailed offenders, ascending by line number.
  [[nodiscard]] const std::vector<Offender>& offenders() const {
    return offenders_;
  }

  /// Human-readable summary for stderr, e.g.
  ///   "traces: skipped 3 of 120 malformed lines
  ///      line 7 (byte 212): trace line 7: bad destination 'x'
  ///      ..."
  /// Empty string when nothing was skipped.
  [[nodiscard]] std::string summary(const std::string& what) const;

 private:
  std::size_t skipped_ = 0;
  std::size_t loaded_ = 0;
  std::vector<Offender> offenders_;
};

}  // namespace mapit
