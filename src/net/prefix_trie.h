// Binary (Patricia-style, one bit per level) trie keyed by IPv4 prefixes,
// supporting exact insert/lookup and longest-prefix-match queries.
//
// This is the substrate for every IP-to-AS mapping in the library: BGP RIB
// lookups, the Team-Cymru-style fallback layer, IXP prefix sets, and the
// RFC 6890 special-purpose registry all sit on top of it.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace mapit::net {

/// A map from Prefix to T with longest-prefix-match lookup by address.
///
/// Inserting the same prefix twice overwrites the old value (the last writer
/// wins), mirroring how successive RIB entries supersede one another.
template <typename T>
class PrefixTrie {
 public:
  PrefixTrie() : root_(std::make_unique<Node>()) {}

  /// Number of prefixes stored.
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  /// Inserts or overwrites the value at `prefix`.
  void insert(const Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    if (!node->value) ++size_;
    node->value = std::move(value);
  }

  /// Inserts only if the prefix is absent; returns true when inserted.
  bool insert_if_absent(const Prefix& prefix, T value) {
    Node* node = descend_create(prefix);
    if (node->value) return false;
    node->value = std::move(value);
    ++size_;
    return true;
  }

  /// Exact-match lookup.
  [[nodiscard]] const T* find(const Prefix& prefix) const {
    const Node* node = root_.get();
    std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      node = child_of(node, bit_at(bits, depth));
      if (node == nullptr) return nullptr;
    }
    return node->value ? &*node->value : nullptr;
  }

  /// Longest-prefix match: the value of the most specific stored prefix
  /// containing `address`, or nullptr if none.
  [[nodiscard]] const T* longest_match(Ipv4Address address) const {
    auto hit = longest_match_entry(address);
    return hit ? hit->second : nullptr;
  }

  /// Longest-prefix match returning both the matched prefix and value.
  [[nodiscard]] std::optional<std::pair<Prefix, const T*>> longest_match_entry(
      Ipv4Address address) const {
    const Node* node = root_.get();
    const T* best = nullptr;
    int best_len = -1;
    std::uint32_t bits = address.value();
    for (int depth = 0; depth <= 32; ++depth) {
      if (node->value) {
        best = &*node->value;
        best_len = depth;
      }
      if (depth == 32) break;
      node = child_of(node, bit_at(bits, depth));
      if (node == nullptr) break;
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Prefix(address, best_len), best);
  }

  /// Visits every (prefix, value) pair in lexicographic prefix order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    walk(root_.get(), 0u, 0, fn);
  }

  /// All stored prefixes, lexicographically ordered.
  [[nodiscard]] std::vector<Prefix> prefixes() const {
    std::vector<Prefix> out;
    out.reserve(size_);
    for_each([&](const Prefix& p, const T&) { out.push_back(p); });
    return out;
  }

 private:
  struct Node {
    std::optional<T> value;
    std::unique_ptr<Node> zero;
    std::unique_ptr<Node> one;
  };

  static constexpr bool bit_at(std::uint32_t bits, int depth) {
    return ((bits >> (31 - depth)) & 1u) != 0;
  }

  static const Node* child_of(const Node* node, bool bit) {
    return bit ? node->one.get() : node->zero.get();
  }

  Node* descend_create(const Prefix& prefix) {
    Node* node = root_.get();
    std::uint32_t bits = prefix.network().value();
    for (int depth = 0; depth < prefix.length(); ++depth) {
      std::unique_ptr<Node>& next = bit_at(bits, depth) ? node->one : node->zero;
      if (!next) next = std::make_unique<Node>();
      node = next.get();
    }
    return node;
  }

  template <typename Fn>
  static void walk(const Node* node, std::uint32_t bits, int depth, Fn& fn) {
    if (node->value) fn(Prefix(Ipv4Address(bits), depth), *node->value);
    if (depth == 32) return;
    if (node->zero) walk(node->zero.get(), bits, depth + 1, fn);
    if (node->one) {
      walk(node->one.get(), bits | (1u << (31 - depth)), depth + 1, fn);
    }
  }

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

}  // namespace mapit::net
