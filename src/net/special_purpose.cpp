#include "net/special_purpose.h"

namespace mapit::net {

namespace {

struct RawEntry {
  std::string_view text;
  std::string_view name;
};

// RFC 6890 table 1 plus multicast (RFC 5771) and reserved class E.
constexpr RawEntry kRawEntries[] = {
    {"0.0.0.0/8", "this host on this network"},
    {"10.0.0.0/8", "private-use"},
    {"100.64.0.0/10", "shared address space (CGN)"},
    {"127.0.0.0/8", "loopback"},
    {"169.254.0.0/16", "link local"},
    {"172.16.0.0/12", "private-use"},
    {"192.0.0.0/24", "IETF protocol assignments"},
    {"192.0.2.0/24", "documentation (TEST-NET-1)"},
    {"192.88.99.0/24", "6to4 relay anycast"},
    {"192.168.0.0/16", "private-use"},
    {"198.18.0.0/15", "benchmarking"},
    {"198.51.100.0/24", "documentation (TEST-NET-2)"},
    {"203.0.113.0/24", "documentation (TEST-NET-3)"},
    {"224.0.0.0/4", "multicast"},
    {"240.0.0.0/4", "reserved (class E)"},
    {"255.255.255.255/32", "limited broadcast"},
};

}  // namespace

SpecialPurposeRegistry::SpecialPurposeRegistry() {
  entries_.reserve(std::size(kRawEntries));
  for (const RawEntry& raw : kRawEntries) {
    Entry entry{Prefix::parse_or_throw(raw.text), raw.name};
    entries_.push_back(entry);
    trie_.insert(entry.prefix, entry);
  }
}

const SpecialPurposeRegistry& SpecialPurposeRegistry::instance() {
  static const SpecialPurposeRegistry registry;
  return registry;
}

bool is_special_purpose(Ipv4Address address) {
  return SpecialPurposeRegistry::instance().is_special(address);
}

}  // namespace mapit::net
