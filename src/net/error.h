// Common error types for the mapit library.
//
// All recoverable failures (malformed input files, out-of-range values) are
// reported with exceptions derived from mapit::Error, so callers can catch a
// single base type at a pipeline boundary.
#pragma once

#include <stdexcept>
#include <string>

namespace mapit {

/// Base class of every exception thrown by the mapit library.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Malformed textual input (addresses, prefixes, dataset files).
class ParseError : public Error {
 public:
  using Error::Error;
};

/// A caller violated a documented API precondition.
class InvariantError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void fail_invariant(const std::string& what) {
  throw InvariantError(what);
}
}  // namespace detail

/// Checks a documented precondition; throws InvariantError on failure.
#define MAPIT_ENSURE(cond, msg)                                     \
  do {                                                              \
    if (!(cond)) ::mapit::detail::fail_invariant(msg);              \
  } while (false)

}  // namespace mapit
