// IPv4 prefix (CIDR block) value type.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

#include "net/ipv4.h"

namespace mapit::net {

/// An IPv4 CIDR prefix. Always stored canonically: host bits are zero.
class Prefix {
 public:
  /// 0.0.0.0/0.
  constexpr Prefix() = default;

  /// Builds a prefix from any address inside it; host bits are masked off.
  /// Precondition: length <= 32 (checked).
  Prefix(Ipv4Address address, int length);

  [[nodiscard]] constexpr Ipv4Address network() const { return network_; }
  [[nodiscard]] constexpr int length() const { return length_; }

  /// Network mask as a host-order integer (e.g. /24 -> 0xFFFFFF00).
  [[nodiscard]] constexpr std::uint32_t mask() const { return mask_for(length_); }

  /// First address of the block (== network()).
  [[nodiscard]] constexpr Ipv4Address first() const { return network_; }

  /// Last address of the block (broadcast for lengths < 31).
  [[nodiscard]] constexpr Ipv4Address last() const {
    return Ipv4Address(network_.value() | ~mask());
  }

  /// Number of addresses covered; 2^(32-length) (as 64-bit to allow /0).
  [[nodiscard]] constexpr std::uint64_t size() const {
    return std::uint64_t{1} << (32 - length_);
  }

  [[nodiscard]] constexpr bool contains(Ipv4Address address) const {
    return (address.value() & mask()) == network_.value();
  }

  /// True when `other` is fully inside this prefix (or equal).
  [[nodiscard]] constexpr bool contains(const Prefix& other) const {
    return other.length_ >= length_ && contains(other.network_);
  }

  /// Parses "a.b.c.d/len". Returns nullopt on syntax errors or len > 32.
  /// Host bits set in the text are tolerated and masked off, matching the
  /// permissive behaviour of BGP dump tooling.
  [[nodiscard]] static std::optional<Prefix> parse(std::string_view text);

  /// Like parse() but throws mapit::ParseError with context on failure.
  [[nodiscard]] static Prefix parse_or_throw(std::string_view text);

  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(const Prefix&, const Prefix&) = default;

 private:
  [[nodiscard]] static constexpr std::uint32_t mask_for(int length) {
    return length == 0 ? 0u : ~std::uint32_t{0} << (32 - length);
  }

  Ipv4Address network_;
  int length_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Prefix& prefix);

}  // namespace mapit::net

template <>
struct std::hash<mapit::net::Prefix> {
  std::size_t operator()(const mapit::net::Prefix& p) const noexcept {
    std::uint64_t x =
        (std::uint64_t{p.network().value()} << 6) ^ std::uint64_t(p.length());
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
