// IPv4 address value type.
//
// Addresses are stored in host byte order so that arithmetic (prefix masks,
// /31 sibling computation) is plain integer math. Conversion to and from
// dotted-quad text lives here as well.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>

namespace mapit::net {

/// An IPv4 address. A small, trivially copyable value type.
class Ipv4Address {
 public:
  /// Zero address (0.0.0.0).
  constexpr Ipv4Address() = default;

  /// Constructs from a host-byte-order 32-bit value.
  constexpr explicit Ipv4Address(std::uint32_t value) : value_(value) {}

  /// Constructs from four octets, most significant first.
  constexpr Ipv4Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                        std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  /// Host-byte-order integer value.
  [[nodiscard]] constexpr std::uint32_t value() const { return value_; }

  /// Octet `i` (0 = most significant). Precondition: i < 4.
  [[nodiscard]] constexpr std::uint8_t octet(int i) const {
    return static_cast<std::uint8_t>(value_ >> (8 * (3 - i)));
  }

  /// Parses dotted-quad text ("198.71.46.180"). Returns nullopt on any
  /// syntax error (extra characters, octet overflow, missing octets).
  [[nodiscard]] static std::optional<Ipv4Address> parse(std::string_view text);

  /// Like parse() but throws mapit::ParseError with context on failure.
  [[nodiscard]] static Ipv4Address parse_or_throw(std::string_view text);

  /// Dotted-quad representation.
  [[nodiscard]] std::string to_string() const;

  friend constexpr auto operator<=>(Ipv4Address, Ipv4Address) = default;

 private:
  std::uint32_t value_ = 0;
};

std::ostream& operator<<(std::ostream& os, Ipv4Address addr);

}  // namespace mapit::net

template <>
struct std::hash<mapit::net::Ipv4Address> {
  std::size_t operator()(mapit::net::Ipv4Address a) const noexcept {
    // Splitmix-style avalanche so consecutive addresses spread across
    // unordered_map buckets.
    std::uint64_t x = a.value();
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(x ^ (x >> 31));
  }
};
