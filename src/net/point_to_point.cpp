#include "net/point_to_point.h"

// Currently header-only logic; this translation unit anchors the target and
// provides a home for future non-inline helpers.
