// Point-to-point (/30 and /31) addressing helpers.
//
// The two endpoints of a layer-3 point-to-point link are addressed from the
// same /30 or /31 prefix (RFC 3021, paper §3). These helpers compute the
// candidate "other side" of an address under each convention; the full
// dataset-driven disambiguation heuristic (paper §4.2) lives in
// graph/other_side.h.
#pragma once

#include <optional>

#include "net/ipv4.h"
#include "net/prefix.h"

namespace mapit::net {

/// The /31 sibling of `address` (the only other address in its /31).
[[nodiscard]] constexpr Ipv4Address slash31_other_side(Ipv4Address address) {
  return Ipv4Address(address.value() ^ 1u);
}

/// True when `address` is a usable host address in its /30 block
/// (i.e. not the all-zeroes network or all-ones broadcast address).
[[nodiscard]] constexpr bool is_slash30_host(Ipv4Address address) {
  const std::uint32_t low2 = address.value() & 0x3u;
  return low2 == 1u || low2 == 2u;
}

/// The /30 partner host of `address`: .1 <-> .2 within its /30 block.
/// Returns nullopt when `address` is not a /30 host address.
[[nodiscard]] constexpr std::optional<Ipv4Address> slash30_other_side(
    Ipv4Address address) {
  if (!is_slash30_host(address)) return std::nullopt;
  return Ipv4Address(address.value() ^ 3u);
}

/// The address that would be reserved (network or broadcast) in the /30
/// containing `address`, on the same side as its /31 sibling. Seeing this
/// address in a dataset proves `address` is numbered from a /31 (paper §4.2).
[[nodiscard]] constexpr Ipv4Address slash30_reserved_witness(
    Ipv4Address address) {
  // The /31 sibling of a /30 host address is reserved exactly when the pair
  // (sibling's low two bits) is 00 or 11.
  return slash31_other_side(address);
}

/// The /30 block containing `address`.
[[nodiscard]] inline Prefix slash30_block(Ipv4Address address) {
  return Prefix(address, 30);
}

/// The /31 block containing `address`.
[[nodiscard]] inline Prefix slash31_block(Ipv4Address address) {
  return Prefix(address, 31);
}

}  // namespace mapit::net
