#include "net/prefix.h"

#include <ostream>

#include "net/error.h"

namespace mapit::net {

Prefix::Prefix(Ipv4Address address, int length) : length_(length) {
  MAPIT_ENSURE(length >= 0 && length <= 32, "prefix length out of range");
  network_ = Ipv4Address(address.value() & mask_for(length));
}

std::optional<Prefix> Prefix::parse(std::string_view text) {
  auto slash = text.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  auto address = Ipv4Address::parse(text.substr(0, slash));
  if (!address) return std::nullopt;
  std::string_view len_text = text.substr(slash + 1);
  if (len_text.empty() || len_text.size() > 2) return std::nullopt;
  int length = 0;
  for (char c : len_text) {
    if (c < '0' || c > '9') return std::nullopt;
    length = length * 10 + (c - '0');
  }
  if (length > 32) return std::nullopt;
  return Prefix(*address, length);
}

Prefix Prefix::parse_or_throw(std::string_view text) {
  auto parsed = parse(text);
  if (!parsed) {
    throw ParseError("invalid IPv4 prefix: '" + std::string(text) + "'");
  }
  return *parsed;
}

std::string Prefix::to_string() const {
  return network_.to_string() + "/" + std::to_string(length_);
}

std::ostream& operator<<(std::ostream& os, const Prefix& prefix) {
  return os << prefix.to_string();
}

}  // namespace mapit::net
