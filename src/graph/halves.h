// Interface halves (paper §3.2).
//
// MAP-IT reasons about each interface in the forward and backward direction
// independently, because only one direction is expected to expose the AS
// switch of a point-to-point inter-AS link. An InterfaceHalf names one such
// (address, direction) view.
#pragma once

#include <functional>
#include <string>

#include "net/ipv4.h"

namespace mapit::graph {

enum class Direction : std::uint8_t {
  kForward,   ///< the half that sees the forward neighbour set N_F
  kBackward,  ///< the half that sees the backward neighbour set N_B
};

[[nodiscard]] constexpr Direction opposite(Direction d) {
  return d == Direction::kForward ? Direction::kBackward : Direction::kForward;
}

[[nodiscard]] constexpr char suffix(Direction d) {
  return d == Direction::kForward ? 'f' : 'b';
}

/// One directional view of an interface address.
struct InterfaceHalf {
  net::Ipv4Address address;
  Direction direction = Direction::kForward;

  friend constexpr auto operator<=>(const InterfaceHalf&,
                                    const InterfaceHalf&) = default;

  /// "198.71.46.180_f" — the paper's notation.
  [[nodiscard]] std::string to_string() const {
    return address.to_string() + '_' + suffix(direction);
  }
};

[[nodiscard]] constexpr InterfaceHalf forward_half(net::Ipv4Address a) {
  return {a, Direction::kForward};
}
[[nodiscard]] constexpr InterfaceHalf backward_half(net::Ipv4Address a) {
  return {a, Direction::kBackward};
}

}  // namespace mapit::graph

template <>
struct std::hash<mapit::graph::InterfaceHalf> {
  std::size_t operator()(const mapit::graph::InterfaceHalf& h) const noexcept {
    const std::size_t base = std::hash<mapit::net::Ipv4Address>{}(h.address);
    return h.direction == mapit::graph::Direction::kForward
               ? base
               : base ^ 0x9e3779b97f4a7c15ULL;
  }
};
