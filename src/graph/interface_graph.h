// Interface-level graph: neighbour sets per interface (paper §3, §4.3)
// plus the other-side relation.
//
// For every interface address the graph stores the set of unique addresses
// seen exactly one hop before it (N_B) and after it (N_F) across all
// sanitized traces. Null hops break adjacency; private/shared/special
// addresses are excluded both as subjects and as neighbours; an address is
// never its own neighbour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/halves.h"
#include "graph/other_side.h"
#include "net/ipv4.h"
#include "trace/trace.h"

namespace mapit::graph {

/// Dense contiguous identifier for an interface half.
///
/// Layout: `interface index * 2 + direction` with kForward = 0 and
/// kBackward = 1, so the id order equals (address, direction) order for
/// record halves. Interface indices [0, size()) are the graph's records in
/// address order; indices [size(), size() + phantom_count()) are "phantom"
/// addresses — other-side addresses of records that never appeared as an
/// interface themselves. Phantoms have empty neighbour sets but still need
/// state slots in the engine (indirect inferences land on them).
using HalfId = std::uint32_t;
inline constexpr HalfId kInvalidHalfId = 0xffffffffu;

[[nodiscard]] constexpr std::uint32_t direction_bit(Direction d) {
  return d == Direction::kForward ? 0u : 1u;
}

/// Per-interface record.
struct InterfaceRecord {
  net::Ipv4Address address;
  std::vector<net::Ipv4Address> forward;   ///< N_F, sorted unique
  std::vector<net::Ipv4Address> backward;  ///< N_B, sorted unique
  OtherSide other_side;

  [[nodiscard]] const std::vector<net::Ipv4Address>& neighbors(
      Direction d) const {
    return d == Direction::kForward ? forward : backward;
  }
};

/// Corpus-level statistics mirroring §4.3's reported numbers.
struct GraphStats {
  std::size_t interfaces = 0;             ///< addresses with any neighbour
  std::size_t forward_multi = 0;          ///< |N_F| > 1
  std::size_t backward_multi = 0;         ///< |N_B| > 1
  std::size_t both_directions_overlap = 0;///< same address in N_F and N_B
  double slash31_fraction = 0.0;          ///< §4.2's 40.4% statistic

  [[nodiscard]] double overlap_fraction() const {
    return interfaces == 0 ? 0.0
                           : static_cast<double>(both_directions_overlap) /
                                 static_cast<double>(interfaces);
  }
};

class InterfaceGraph {
 public:
  /// Builds the graph from sanitized traces. `all_addresses` must be the
  /// address population of the *unsanitized* corpus (the §4.2 heuristic
  /// deliberately uses discarded traces too); pass the sanitized corpus's
  /// own addresses when the original corpus is unavailable.
  ///
  /// `threads` workers build the dense layout (neighbour-id spans, reverse
  /// adjacency, other-side ids) over disjoint index ranges (0 = one per
  /// hardware thread, 1 = fully sequential). The layout is byte-identical
  /// for every thread count: span contents are position-addressed from the
  /// offset table, and the reverse adjacency keeps its ascending-source
  /// order via per-worker histogram offsets.
  InterfaceGraph(const trace::TraceCorpus& sanitized,
                 std::span<const net::Ipv4Address> all_addresses,
                 unsigned threads = 1);

  /// Incrementally folds a batch of sanitized delta traces into the graph.
  /// `all_addresses` must be the *merged* unsanitized address population
  /// (base + every delta so far) — the §4.2 other-side heuristic is
  /// rebuilt over it, because new witnesses can flip existing records'
  /// /30-vs-/31 decisions.
  ///
  /// Postcondition (pinned by the ingest equivalence tests): the folded
  /// graph is indistinguishable — records, neighbour sets, other sides,
  /// phantom order, every HalfId — from a cold-built graph over the
  /// concatenated corpus, for any fold batching and any thread count.
  void fold(const trace::TraceCorpus& sanitized_delta,
            std::span<const net::Ipv4Address> all_addresses,
            unsigned threads = 1);

  /// The record for `address`, or nullptr when the address never appeared
  /// adjacent to another address.
  [[nodiscard]] const InterfaceRecord* find(net::Ipv4Address address) const;

  /// Neighbour set of one interface half (empty if unknown address).
  [[nodiscard]] const std::vector<net::Ipv4Address>& neighbors(
      const InterfaceHalf& half) const;

  /// The other-side half of `half`: the opposite-direction view of the
  /// interface on the far end of the link prefix (paper §3.2).
  [[nodiscard]] InterfaceHalf other_side_half(const InterfaceHalf& half) const;

  /// All interface records, ordered by address.
  [[nodiscard]] const std::vector<InterfaceRecord>& interfaces() const {
    return records_;
  }

  [[nodiscard]] const OtherSideMap& other_sides() const { return other_sides_; }

  [[nodiscard]] GraphStats stats() const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }

  // --- dense half-ID layout --------------------------------------------
  // Engine hot loops index flat slabs with these ids instead of hashing
  // InterfaceHalf keys (see DESIGN.md "Dense engine state").

  /// Number of phantom (other-side-only) addresses.
  [[nodiscard]] std::size_t phantom_count() const { return phantoms_.size(); }

  /// Total half ids: 2 * (records + phantoms). Valid ids are [0, half_count()).
  [[nodiscard]] std::size_t half_count() const {
    return (records_.size() + phantoms_.size()) * 2;
  }

  /// Half ids below this belong to records (addresses with neighbours).
  [[nodiscard]] std::size_t record_half_count() const {
    return records_.size() * 2;
  }

  /// The id of `half`, or kInvalidHalfId when its address is neither a
  /// record nor a phantom.
  [[nodiscard]] HalfId half_id(const InterfaceHalf& half) const;

  /// Inverse of half_id. `id` must be valid.
  [[nodiscard]] InterfaceHalf half_at(HalfId id) const;

  [[nodiscard]] net::Ipv4Address address_at(HalfId id) const;

  /// Ids of the opposite-direction halves whose votes decide this half's
  /// majority: for half {a, d}, the halves {n, opposite(d)} for every
  /// n in neighbors({a, d}). Parallel to neighbors(half) order. Empty for
  /// phantom halves.
  [[nodiscard]] std::span<const HalfId> neighbor_ids(HalfId id) const;

  /// Reverse adjacency: every half h with `id` in neighbor_ids(h) — i.e.
  /// the halves whose majority counts must be recomputed when this half's
  /// effective mapping changes. Sorted ascending.
  [[nodiscard]] std::span<const HalfId> reverse_neighbor_ids(HalfId id) const;

  /// Id of other_side_half(half_at(id)); kInvalidHalfId when the other-side
  /// address is outside the id universe (possible only for phantom halves).
  [[nodiscard]] HalfId other_side_id(HalfId id) const { return other_ids_[id]; }

 private:
  void accumulate(const trace::TraceCorpus& sanitized);
  void finalize(unsigned threads);
  void build_dense_layout(unsigned threads);

  std::vector<InterfaceRecord> records_;                       // sorted by address
  std::unordered_map<net::Ipv4Address, std::size_t> index_;
  OtherSideMap other_sides_;

  // Dense layout (built once at construction).
  std::vector<net::Ipv4Address> phantoms_;  // discovery order
  std::unordered_map<net::Ipv4Address, std::size_t> phantom_index_;
  std::vector<HalfId> neighbor_ids_;             // flattened spans
  std::vector<std::uint32_t> neighbor_offsets_;  // size half_count() + 1
  std::vector<HalfId> reverse_ids_;              // flattened spans
  std::vector<std::uint32_t> reverse_offsets_;   // size half_count() + 1
  std::vector<HalfId> other_ids_;                // per half id
};

}  // namespace mapit::graph
