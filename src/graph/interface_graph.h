// Interface-level graph: neighbour sets per interface (paper §3, §4.3)
// plus the other-side relation.
//
// For every interface address the graph stores the set of unique addresses
// seen exactly one hop before it (N_B) and after it (N_F) across all
// sanitized traces. Null hops break adjacency; private/shared/special
// addresses are excluded both as subjects and as neighbours; an address is
// never its own neighbour.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "graph/halves.h"
#include "graph/other_side.h"
#include "net/ipv4.h"
#include "trace/trace.h"

namespace mapit::graph {

/// Per-interface record.
struct InterfaceRecord {
  net::Ipv4Address address;
  std::vector<net::Ipv4Address> forward;   ///< N_F, sorted unique
  std::vector<net::Ipv4Address> backward;  ///< N_B, sorted unique
  OtherSide other_side;

  [[nodiscard]] const std::vector<net::Ipv4Address>& neighbors(
      Direction d) const {
    return d == Direction::kForward ? forward : backward;
  }
};

/// Corpus-level statistics mirroring §4.3's reported numbers.
struct GraphStats {
  std::size_t interfaces = 0;             ///< addresses with any neighbour
  std::size_t forward_multi = 0;          ///< |N_F| > 1
  std::size_t backward_multi = 0;         ///< |N_B| > 1
  std::size_t both_directions_overlap = 0;///< same address in N_F and N_B
  double slash31_fraction = 0.0;          ///< §4.2's 40.4% statistic

  [[nodiscard]] double overlap_fraction() const {
    return interfaces == 0 ? 0.0
                           : static_cast<double>(both_directions_overlap) /
                                 static_cast<double>(interfaces);
  }
};

class InterfaceGraph {
 public:
  /// Builds the graph from sanitized traces. `all_addresses` must be the
  /// address population of the *unsanitized* corpus (the §4.2 heuristic
  /// deliberately uses discarded traces too); pass the sanitized corpus's
  /// own addresses when the original corpus is unavailable.
  InterfaceGraph(const trace::TraceCorpus& sanitized,
                 std::span<const net::Ipv4Address> all_addresses);

  /// The record for `address`, or nullptr when the address never appeared
  /// adjacent to another address.
  [[nodiscard]] const InterfaceRecord* find(net::Ipv4Address address) const;

  /// Neighbour set of one interface half (empty if unknown address).
  [[nodiscard]] const std::vector<net::Ipv4Address>& neighbors(
      const InterfaceHalf& half) const;

  /// The other-side half of `half`: the opposite-direction view of the
  /// interface on the far end of the link prefix (paper §3.2).
  [[nodiscard]] InterfaceHalf other_side_half(const InterfaceHalf& half) const;

  /// All interface records, ordered by address.
  [[nodiscard]] const std::vector<InterfaceRecord>& interfaces() const {
    return records_;
  }

  [[nodiscard]] const OtherSideMap& other_sides() const { return other_sides_; }

  [[nodiscard]] GraphStats stats() const;

  [[nodiscard]] std::size_t size() const { return records_.size(); }

 private:
  std::vector<InterfaceRecord> records_;                       // sorted by address
  std::unordered_map<net::Ipv4Address, std::size_t> index_;
  OtherSideMap other_sides_;
};

}  // namespace mapit::graph
