// Other-side determination heuristic (paper §4.2).
//
// Point-to-point links are numbered from /30 or /31 prefixes. For every
// address seen in the dataset (including traces the sanitizer discards) the
// heuristic decides which prefix length applies and therefore which address
// sits on the far end of the link:
//
//   * addresses that are reserved in their /30 (low bits 00 or 11) can only
//     be /31-numbered -> other side is the /31 sibling;
//   * valid /30 host addresses are /31-numbered iff some *different*
//     address in the dataset occupies a reserved slot of their /30;
//     otherwise they are assumed /30-numbered -> other side is the /30
//     partner host.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>

#include "net/ipv4.h"

namespace mapit::graph {

/// How an interface's point-to-point prefix length was decided.
enum class PrefixInference : std::uint8_t {
  kSlash31Reserved,  ///< address is reserved in its /30, must be /31
  kSlash31Witness,   ///< a reserved /30 slot was seen in the dataset
  kSlash30,          ///< default assumption
};

struct OtherSide {
  net::Ipv4Address address;       ///< far end of the link prefix
  PrefixInference inference = PrefixInference::kSlash30;

  [[nodiscard]] bool is_slash31() const {
    return inference != PrefixInference::kSlash30;
  }
};

/// Immutable map from every dataset address to its inferred other side.
class OtherSideMap {
 public:
  /// Builds the map from all addresses seen in any trace.
  explicit OtherSideMap(std::span<const net::Ipv4Address> addresses);

  /// The other side of `address`. Addresses not in the build set still get
  /// a deterministic answer (computed against the build set's witnesses).
  [[nodiscard]] OtherSide other_side(net::Ipv4Address address) const;

  /// Shorthand for other_side().address.
  [[nodiscard]] net::Ipv4Address other_address(net::Ipv4Address a) const {
    return other_side(a).address;
  }

  /// Fraction of build-set addresses inferred to be /31-numbered (the paper
  /// reports 40.4% on Ark).
  [[nodiscard]] double slash31_fraction() const;

  [[nodiscard]] std::size_t size() const { return decisions_.size(); }

 private:
  [[nodiscard]] OtherSide decide(net::Ipv4Address address) const;

  std::unordered_set<net::Ipv4Address> seen_;
  std::unordered_map<net::Ipv4Address, OtherSide> decisions_;
};

}  // namespace mapit::graph
