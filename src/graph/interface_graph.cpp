#include "graph/interface_graph.h"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "net/error.h"
#include "net/special_purpose.h"
#include "parallel/thread_pool.h"

namespace mapit::graph {

namespace {

const std::vector<net::Ipv4Address>& empty_neighbors() {
  static const std::vector<net::Ipv4Address> empty;
  return empty;
}

void sort_unique(std::vector<net::Ipv4Address>& addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
}

}  // namespace

InterfaceGraph::InterfaceGraph(const trace::TraceCorpus& sanitized,
                               std::span<const net::Ipv4Address> all_addresses,
                               unsigned threads)
    : other_sides_(all_addresses) {
  accumulate(sanitized);
  finalize(threads);
}

void InterfaceGraph::fold(const trace::TraceCorpus& sanitized_delta,
                          std::span<const net::Ipv4Address> all_addresses,
                          unsigned threads) {
  // The §4.2 other-side heuristic is population-sensitive: a delta address
  // can flip an *existing* record's /30-vs-/31 decision by witnessing the
  // other half of its prefix. Rebuild the map over the merged population
  // before recomputing every record's other side in finalize().
  other_sides_ = OtherSideMap(all_addresses);
  accumulate(sanitized_delta);
  // finalize() re-sorts/uniques every neighbour set, so appending the
  // delta's raw contributions to the already-deduplicated base sets yields
  // exactly the union a cold build over base+delta would gather — and the
  // dense layout is rebuilt from scratch through the same code path, so
  // phantom discovery order (hence every HalfId) matches the cold build.
  phantoms_.clear();
  phantom_index_.clear();
  finalize(threads);
}

void InterfaceGraph::accumulate(const trace::TraceCorpus& sanitized) {
  // Gather raw adjacency lists keyed by address. index_ doubles as the
  // gather index: existing entries point at their (sorted) record, new
  // addresses append; finalize() restores the sorted invariant.
  auto record_for = [&](net::Ipv4Address address) -> InterfaceRecord& {
    auto [it, inserted] = index_.emplace(address, records_.size());
    if (inserted) {
      records_.push_back(InterfaceRecord{address, {}, {}, {}});
    }
    return records_[it->second];
  };

  for (const trace::Trace& trace : sanitized.traces()) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const trace::TraceHop& a = trace.hops[i];
      const trace::TraceHop& b = trace.hops[i + 1];
      if (!a.address || !b.address) continue;           // null hops break adjacency
      if (b.probe_ttl != a.probe_ttl + 1) continue;     // must be one hop apart
      if (*a.address == *b.address) continue;           // never own neighbour
      if (net::is_special_purpose(*a.address) ||
          net::is_special_purpose(*b.address)) {
        continue;  // private/shared addresses excluded from Ns (§4.3)
      }
      record_for(*a.address).forward.push_back(*b.address);
      record_for(*b.address).backward.push_back(*a.address);
    }
  }
}

void InterfaceGraph::finalize(unsigned threads) {
  for (InterfaceRecord& record : records_) {
    sort_unique(record.forward);
    sort_unique(record.backward);
    record.other_side = other_sides_.other_side(record.address);
  }

  std::sort(records_.begin(), records_.end(),
            [](const InterfaceRecord& x, const InterfaceRecord& y) {
              return x.address < y.address;
            });
  index_.clear();
  index_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_.emplace(records_[i].address, i);
  }

  build_dense_layout(threads);
}

void InterfaceGraph::build_dense_layout(unsigned threads) {
  const std::size_t n = records_.size();

  const unsigned resolved = parallel::resolve_threads(threads);
  std::optional<parallel::ThreadPool> pool_storage;
  if (resolved > 1 && n > 1) pool_storage.emplace(resolved);
  parallel::ThreadPool* pool = pool_storage ? &*pool_storage : nullptr;

  // Phantom addresses: other sides of records that are not records
  // themselves. Discovered in record (address) order, so ids are stable
  // (sequential: insertion order defines the ids).
  for (const InterfaceRecord& record : records_) {
    const net::Ipv4Address os = record.other_side.address;
    if (index_.contains(os) || phantom_index_.contains(os)) continue;
    phantom_index_.emplace(os, n + phantoms_.size());
    phantoms_.push_back(os);
  }

  const std::size_t halves = half_count();

  // Neighbour half-ID spans. Only record halves have neighbours; a
  // neighbour address always has a record of its own (both endpoints of
  // every adjacency were materialized during construction). The offset
  // table is a sequential prefix sum; the span fill is per-record
  // independent (every record's write positions come straight off the
  // offsets), so workers fill disjoint ascending chunks.
  neighbor_offsets_.assign(halves + 1, 0);
  std::size_t total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    neighbor_offsets_[2 * i] = static_cast<std::uint32_t>(total);
    total += records_[i].forward.size();
    neighbor_offsets_[2 * i + 1] = static_cast<std::uint32_t>(total);
    total += records_[i].backward.size();
  }
  for (std::size_t id = 2 * n; id <= halves; ++id) {
    neighbor_offsets_[id] = static_cast<std::uint32_t>(total);
  }
  neighbor_ids_.resize(total);
  parallel::for_ranges(pool, n, [&](unsigned, std::size_t begin,
                                    std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      std::size_t cursor = neighbor_offsets_[2 * i];
      for (Direction d : {Direction::kForward, Direction::kBackward}) {
        const std::uint32_t bit = direction_bit(opposite(d));
        for (net::Ipv4Address neighbor : records_[i].neighbors(d)) {
          const auto it = index_.find(neighbor);
          MAPIT_ENSURE(it != index_.end(),
                       "interface graph neighbour without a record");
          neighbor_ids_[cursor++] =
              static_cast<HalfId>(2 * it->second + bit);
        }
      }
    }
  });

  // Reverse adjacency via counting sort: reverse_ids_ holds, for each half
  // g, the halves h whose neighbour span contains g (sorted: sources are
  // visited in ascending id order).
  reverse_ids_.resize(neighbor_ids_.size());
  reverse_offsets_.assign(halves + 1, 0);
  if (pool != nullptr) {
    // Parallel counting sort in two passes over disjoint ascending source
    // ranges. Workers first histogram their own range; the sequential
    // combine then gives worker w its start cursor per target —
    // reverse_offsets_[t] plus everything lower-ranked workers scatter
    // there — so the scatter pass is race-free and keeps each target span
    // in ascending source order, byte-identical to the sequential sort.
    const unsigned workers = pool->size();
    std::vector<std::vector<std::uint32_t>> cursors(
        workers, std::vector<std::uint32_t>(halves, 0));
    pool->for_ranges(halves, [&](unsigned worker, std::size_t begin,
                                 std::size_t end) {
      auto& counts = cursors[worker];
      for (std::size_t k = neighbor_offsets_[begin];
           k < neighbor_offsets_[end]; ++k) {
        ++counts[neighbor_ids_[k]];
      }
    });
    for (std::size_t t = 0; t < halves; ++t) {
      std::uint32_t sum = 0;
      for (unsigned w = 0; w < workers; ++w) sum += cursors[w][t];
      reverse_offsets_[t + 1] = sum;
    }
    for (std::size_t id = 1; id <= halves; ++id) {
      reverse_offsets_[id] += reverse_offsets_[id - 1];
    }
    for (std::size_t t = 0; t < halves; ++t) {
      std::uint32_t cursor = reverse_offsets_[t];
      for (unsigned w = 0; w < workers; ++w) {
        const std::uint32_t count = cursors[w][t];
        cursors[w][t] = cursor;
        cursor += count;
      }
    }
    pool->for_ranges(halves, [&](unsigned worker, std::size_t begin,
                                 std::size_t end) {
      auto& fill = cursors[worker];
      for (std::size_t h = begin; h < end; ++h) {
        for (std::size_t k = neighbor_offsets_[h];
             k < neighbor_offsets_[h + 1]; ++k) {
          reverse_ids_[fill[neighbor_ids_[k]]++] = static_cast<HalfId>(h);
        }
      }
    });
  } else {
    for (HalfId target : neighbor_ids_) ++reverse_offsets_[target + 1];
    for (std::size_t id = 1; id <= halves; ++id) {
      reverse_offsets_[id] += reverse_offsets_[id - 1];
    }
    std::vector<std::uint32_t> fill(reverse_offsets_.begin(),
                                    reverse_offsets_.end() - 1);
    for (std::size_t h = 0; h < halves; ++h) {
      for (std::size_t k = neighbor_offsets_[h]; k < neighbor_offsets_[h + 1];
           ++k) {
        reverse_ids_[fill[neighbor_ids_[k]]++] = static_cast<HalfId>(h);
      }
    }
  }

  // Other-side ids. Record halves always resolve (their other-side address
  // is a record or a phantom by construction); a phantom's own other side
  // may fall outside the universe. Per-id independent lookups.
  other_ids_.assign(halves, kInvalidHalfId);
  parallel::for_ranges(pool, halves, [&](unsigned, std::size_t begin,
                                         std::size_t end) {
    for (std::size_t id = begin; id < end; ++id) {
      const InterfaceHalf half = half_at(static_cast<HalfId>(id));
      other_ids_[id] = half_id(other_side_half(half));
    }
  });
}

HalfId InterfaceGraph::half_id(const InterfaceHalf& half) const {
  std::size_t index;
  if (auto it = index_.find(half.address); it != index_.end()) {
    index = it->second;
  } else if (auto pt = phantom_index_.find(half.address);
             pt != phantom_index_.end()) {
    index = pt->second;
  } else {
    return kInvalidHalfId;
  }
  return static_cast<HalfId>(2 * index + direction_bit(half.direction));
}

InterfaceHalf InterfaceGraph::half_at(HalfId id) const {
  return {address_at(id),
          (id & 1u) == 0 ? Direction::kForward : Direction::kBackward};
}

net::Ipv4Address InterfaceGraph::address_at(HalfId id) const {
  const std::size_t index = id / 2;
  return index < records_.size() ? records_[index].address
                                 : phantoms_[index - records_.size()];
}

std::span<const HalfId> InterfaceGraph::neighbor_ids(HalfId id) const {
  return {neighbor_ids_.data() + neighbor_offsets_[id],
          neighbor_ids_.data() + neighbor_offsets_[id + 1]};
}

std::span<const HalfId> InterfaceGraph::reverse_neighbor_ids(HalfId id) const {
  return {reverse_ids_.data() + reverse_offsets_[id],
          reverse_ids_.data() + reverse_offsets_[id + 1]};
}

const InterfaceRecord* InterfaceGraph::find(net::Ipv4Address address) const {
  auto it = index_.find(address);
  return it == index_.end() ? nullptr : &records_[it->second];
}

const std::vector<net::Ipv4Address>& InterfaceGraph::neighbors(
    const InterfaceHalf& half) const {
  const InterfaceRecord* record = find(half.address);
  if (record == nullptr) return empty_neighbors();
  return record->neighbors(half.direction);
}

InterfaceHalf InterfaceGraph::other_side_half(const InterfaceHalf& half) const {
  return {other_sides_.other_address(half.address),
          opposite(half.direction)};
}

GraphStats InterfaceGraph::stats() const {
  GraphStats stats;
  stats.interfaces = records_.size();
  stats.slash31_fraction = other_sides_.slash31_fraction();
  for (const InterfaceRecord& record : records_) {
    if (record.forward.size() > 1) ++stats.forward_multi;
    if (record.backward.size() > 1) ++stats.backward_multi;
    // Sorted-set intersection test for the §3.2 footnote-3 statistic.
    auto f = record.forward.begin();
    auto b = record.backward.begin();
    bool overlap = false;
    while (f != record.forward.end() && b != record.backward.end()) {
      if (*f == *b) {
        overlap = true;
        break;
      }
      if (*f < *b) {
        ++f;
      } else {
        ++b;
      }
    }
    if (overlap) ++stats.both_directions_overlap;
  }
  return stats;
}

}  // namespace mapit::graph
