#include "graph/interface_graph.h"

#include <algorithm>
#include <unordered_set>

#include "net/special_purpose.h"

namespace mapit::graph {

namespace {

const std::vector<net::Ipv4Address>& empty_neighbors() {
  static const std::vector<net::Ipv4Address> empty;
  return empty;
}

void sort_unique(std::vector<net::Ipv4Address>& addresses) {
  std::sort(addresses.begin(), addresses.end());
  addresses.erase(std::unique(addresses.begin(), addresses.end()),
                  addresses.end());
}

}  // namespace

InterfaceGraph::InterfaceGraph(const trace::TraceCorpus& sanitized,
                               std::span<const net::Ipv4Address> all_addresses)
    : other_sides_(all_addresses) {
  // Gather raw adjacency lists keyed by address.
  std::unordered_map<net::Ipv4Address, std::size_t> index;
  auto record_for = [&](net::Ipv4Address address) -> InterfaceRecord& {
    auto [it, inserted] = index.emplace(address, records_.size());
    if (inserted) {
      records_.push_back(InterfaceRecord{address, {}, {}, {}});
    }
    return records_[it->second];
  };

  for (const trace::Trace& trace : sanitized.traces()) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const trace::TraceHop& a = trace.hops[i];
      const trace::TraceHop& b = trace.hops[i + 1];
      if (!a.address || !b.address) continue;           // null hops break adjacency
      if (b.probe_ttl != a.probe_ttl + 1) continue;     // must be one hop apart
      if (*a.address == *b.address) continue;           // never own neighbour
      if (net::is_special_purpose(*a.address) ||
          net::is_special_purpose(*b.address)) {
        continue;  // private/shared addresses excluded from Ns (§4.3)
      }
      record_for(*a.address).forward.push_back(*b.address);
      record_for(*b.address).backward.push_back(*a.address);
    }
  }

  for (InterfaceRecord& record : records_) {
    sort_unique(record.forward);
    sort_unique(record.backward);
    record.other_side = other_sides_.other_side(record.address);
  }

  std::sort(records_.begin(), records_.end(),
            [](const InterfaceRecord& x, const InterfaceRecord& y) {
              return x.address < y.address;
            });
  index_.reserve(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    index_.emplace(records_[i].address, i);
  }
}

const InterfaceRecord* InterfaceGraph::find(net::Ipv4Address address) const {
  auto it = index_.find(address);
  return it == index_.end() ? nullptr : &records_[it->second];
}

const std::vector<net::Ipv4Address>& InterfaceGraph::neighbors(
    const InterfaceHalf& half) const {
  const InterfaceRecord* record = find(half.address);
  if (record == nullptr) return empty_neighbors();
  return record->neighbors(half.direction);
}

InterfaceHalf InterfaceGraph::other_side_half(const InterfaceHalf& half) const {
  return {other_sides_.other_address(half.address),
          opposite(half.direction)};
}

GraphStats InterfaceGraph::stats() const {
  GraphStats stats;
  stats.interfaces = records_.size();
  stats.slash31_fraction = other_sides_.slash31_fraction();
  for (const InterfaceRecord& record : records_) {
    if (record.forward.size() > 1) ++stats.forward_multi;
    if (record.backward.size() > 1) ++stats.backward_multi;
    // Sorted-set intersection test for the §3.2 footnote-3 statistic.
    auto f = record.forward.begin();
    auto b = record.backward.begin();
    bool overlap = false;
    while (f != record.forward.end() && b != record.backward.end()) {
      if (*f == *b) {
        overlap = true;
        break;
      }
      if (*f < *b) {
        ++f;
      } else {
        ++b;
      }
    }
    if (overlap) ++stats.both_directions_overlap;
  }
  return stats;
}

}  // namespace mapit::graph
