#include "graph/other_side.h"

#include "net/point_to_point.h"

namespace mapit::graph {

OtherSideMap::OtherSideMap(std::span<const net::Ipv4Address> addresses) {
  seen_.reserve(addresses.size());
  for (net::Ipv4Address address : addresses) seen_.insert(address);
  decisions_.reserve(addresses.size());
  for (net::Ipv4Address address : addresses) {
    decisions_.emplace(address, decide(address));
  }
}

OtherSide OtherSideMap::decide(net::Ipv4Address address) const {
  if (!net::is_slash30_host(address)) {
    // Reserved in its /30: can only be a /31-numbered endpoint.
    return {net::slash31_other_side(address), PrefixInference::kSlash31Reserved};
  }
  // Valid /30 host. If any *different* address occupying a reserved slot of
  // this /30 was seen, the block must be split into /31s.
  const std::uint32_t base = address.value() & ~0x3u;
  const net::Ipv4Address reserved_low(base);
  const net::Ipv4Address reserved_high(base | 0x3u);
  if (seen_.contains(reserved_low) || seen_.contains(reserved_high)) {
    return {net::slash31_other_side(address), PrefixInference::kSlash31Witness};
  }
  return {*net::slash30_other_side(address), PrefixInference::kSlash30};
}

OtherSide OtherSideMap::other_side(net::Ipv4Address address) const {
  if (auto it = decisions_.find(address); it != decisions_.end()) {
    return it->second;
  }
  return decide(address);
}

double OtherSideMap::slash31_fraction() const {
  if (decisions_.empty()) return 0.0;
  std::size_t slash31 = 0;
  for (const auto& [_, decision] : decisions_) {
    if (decision.is_slash31()) ++slash31;
  }
  return static_cast<double>(slash31) / static_cast<double>(decisions_.size());
}

}  // namespace mapit::graph
