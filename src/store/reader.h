// Zero-copy snapshot reader.
//
// `open` mmaps the artifact read-only, validates the header (magic, byte
// order, version, size) and the section table (bounds, alignment, record
// granularity), and checks the payload CRC before exposing anything — a
// truncated, bit-flipped, or wrong-version artifact is rejected with a
// SnapshotError diagnostic and never dereferenced as records. After open,
// every section is available as a typed std::span pointing straight into
// the mapping: no per-record allocation or copying, and lookups are plain
// binary searches over the mapped bytes.
//
// Lifetime rules: the spans (and any pointers derived from them) are valid
// exactly as long as the SnapshotReader that produced them — the mapping is
// unmapped in the destructor. The mapping is immutable (PROT_READ,
// MAP_PRIVATE), so any number of threads may read through one reader with
// no synchronization; see DESIGN.md §8.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fault/io.h"
#include "store/format.h"

namespace mapit::store {

class SnapshotReader {
 public:
  /// Maps and validates the artifact at `path`. Throws SnapshotError on any
  /// validation failure and mapit::Error when the file cannot be opened.
  /// `io` is the syscall boundary for open/fstat/close (the mapping itself
  /// is not injectable); tests drive EMFILE and friends through it.
  [[nodiscard]] static SnapshotReader open(
      const std::string& path, fault::Io& io = fault::system_io());

  /// Validates an in-memory artifact (copied into owned, aligned storage).
  /// Same checks as open; used by tests to probe corrupt images cheaply.
  [[nodiscard]] static SnapshotReader from_bytes(std::string_view bytes);

  SnapshotReader(SnapshotReader&& other) noexcept;
  SnapshotReader& operator=(SnapshotReader&& other) noexcept;
  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;
  ~SnapshotReader();

  [[nodiscard]] std::span<const InferenceRecord> inferences() const {
    return inferences_;
  }
  [[nodiscard]] std::span<const LinkRecord> links() const { return links_; }
  [[nodiscard]] std::span<const PrefixRecord> bgp_prefixes() const {
    return bgp_prefixes_;
  }
  [[nodiscard]] std::span<const PrefixRecord> fallback_prefixes() const {
    return fallback_prefixes_;
  }
  [[nodiscard]] std::span<const MappingRecord> mappings() const {
    return mappings_;
  }

  [[nodiscard]] std::uint64_t size_bytes() const { return size_; }
  [[nodiscard]] std::uint32_t payload_crc32() const { return crc_; }
  [[nodiscard]] std::uint32_t version() const { return version_; }

 private:
  SnapshotReader() = default;

  /// Parses + validates `data_`/`size_`, populating the spans. Throws
  /// SnapshotError; the caller owns cleanup of the backing storage.
  void validate();

  const std::byte* data_ = nullptr;
  std::uint64_t size_ = 0;
  /// Non-null when the bytes are mmap'd (owned mapping to munmap).
  void* mapping_ = nullptr;
  /// Backing storage for from_bytes (8-byte aligned).
  std::vector<std::uint64_t> owned_;

  std::span<const InferenceRecord> inferences_;
  std::span<const LinkRecord> links_;
  std::span<const PrefixRecord> bgp_prefixes_;
  std::span<const PrefixRecord> fallback_prefixes_;
  std::span<const MappingRecord> mappings_;
  std::uint32_t crc_ = 0;
  std::uint32_t version_ = 0;
};

}  // namespace mapit::store
