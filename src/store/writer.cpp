#include "store/writer.h"

#include <algorithm>
#include <cstring>
#include <tuple>

#include "fault/atomic_file.h"
#include "net/error.h"

namespace mapit::store {

namespace {

template <typename T>
void append_raw(std::string& out, const T& value) {
  static_assert(std::is_trivially_copyable_v<T>);
  out.append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename Record, typename KeyFn>
void ensure_strictly_sorted(const std::vector<Record>& records, KeyFn key,
                            const char* what) {
  for (std::size_t i = 1; i < records.size(); ++i) {
    MAPIT_ENSURE(key(records[i - 1]) < key(records[i]),
                 std::string("snapshot writer: ") + what +
                     " not strictly sorted at index " + std::to_string(i));
  }
}

constexpr auto inference_key = [](const InferenceRecord& r) {
  return std::make_tuple(r.address, r.direction);
};
constexpr auto link_key = [](const LinkRecord& r) {
  return std::make_tuple(r.as_a, r.as_b, r.low, r.high);
};
constexpr auto prefix_key = [](const PrefixRecord& r) {
  return std::make_tuple(r.network, r.length);
};
constexpr auto mapping_key = [](const MappingRecord& r) {
  return std::make_tuple(r.address, r.direction);
};

[[nodiscard]] std::vector<PrefixRecord> prefix_records(
    const std::vector<std::pair<net::Prefix, asdata::Asn>>& entries) {
  std::vector<PrefixRecord> out;
  out.reserve(entries.size());
  for (const auto& [prefix, asn] : entries) out.push_back(to_record(prefix, asn));
  std::sort(out.begin(), out.end(), [](const PrefixRecord& a,
                                       const PrefixRecord& b) {
    return prefix_key(a) < prefix_key(b);
  });
  return out;
}

}  // namespace

InferenceRecord to_record(const core::Inference& inference) {
  InferenceRecord record{};
  record.address = inference.half.address.value();
  record.direction =
      static_cast<std::uint8_t>(graph::direction_bit(inference.half.direction));
  record.kind = static_cast<std::uint8_t>(inference.kind);
  record.flags = inference.uncertain ? kInferenceUncertain : 0;
  record.router_as = inference.router_as;
  record.other_as = inference.other_as;
  record.votes = inference.votes;
  record.neighbor_count = inference.neighbor_count;
  return record;
}

LinkRecord to_record(const core::InterAsLink& link) {
  LinkRecord record{};
  record.low = link.low.value();
  record.high = link.high.value();
  record.as_a = link.as_a;
  record.as_b = link.as_b;
  record.supporting_inferences = link.supporting_inferences;
  record.votes = link.votes;
  record.neighbor_count = link.neighbor_count;
  record.flags = static_cast<std::uint8_t>(
      (link.via_stub_heuristic ? kLinkViaStub : 0) |
      (link.conflicting ? kLinkConflicting : 0));
  return record;
}

PrefixRecord to_record(const net::Prefix& prefix, asdata::Asn asn) {
  PrefixRecord record{};
  record.network = prefix.network().value();
  record.asn = asn;
  record.length = static_cast<std::uint8_t>(prefix.length());
  return record;
}

SnapshotData make_snapshot_data(const core::Result& result,
                                const graph::InterfaceGraph& graph,
                                const bgp::Ip2As& ip2as) {
  SnapshotData data;

  data.inferences.reserve(result.inferences.size() + result.uncertain.size());
  for (const core::Inference& inference : result.inferences) {
    data.inferences.push_back(to_record(inference));
  }
  for (const core::Inference& inference : result.uncertain) {
    InferenceRecord record = to_record(inference);
    record.flags |= kInferenceUncertain;
    data.inferences.push_back(record);
  }
  std::sort(data.inferences.begin(), data.inferences.end(),
            [](const InferenceRecord& a, const InferenceRecord& b) {
              return inference_key(a) < inference_key(b);
            });

  for (const core::InterAsLink& link : core::aggregate_links(result, graph)) {
    data.links.push_back(to_record(link));
  }
  std::sort(data.links.begin(), data.links.end(),
            [](const LinkRecord& a, const LinkRecord& b) {
              return link_key(a) < link_key(b);
            });

  data.bgp_prefixes = prefix_records(ip2as.bgp_entries());
  data.fallback_prefixes = prefix_records(ip2as.fallback_entries());

  data.mappings.reserve(result.final_mappings.size());
  for (const auto& [half, asn] : result.final_mappings) {
    MappingRecord record{};
    record.address = half.address.value();
    record.asn = asn;
    record.direction =
        static_cast<std::uint8_t>(graph::direction_bit(half.direction));
    data.mappings.push_back(record);
  }
  std::sort(data.mappings.begin(), data.mappings.end(),
            [](const MappingRecord& a, const MappingRecord& b) {
              return mapping_key(a) < mapping_key(b);
            });
  return data;
}

std::string serialize_snapshot(const SnapshotData& data) {
  ensure_strictly_sorted(data.inferences, inference_key, "inference section");
  ensure_strictly_sorted(data.links, link_key, "link section");
  ensure_strictly_sorted(data.bgp_prefixes, prefix_key, "BGP prefix section");
  ensure_strictly_sorted(data.fallback_prefixes, prefix_key,
                         "fallback prefix section");
  ensure_strictly_sorted(data.mappings, mapping_key, "mapping section");

  struct SectionPlan {
    SectionId id;
    const char* bytes;
    std::uint64_t size;
    std::uint64_t record_count;
  };
  const auto plan_of = [](SectionId id, const auto& records) {
    using Record = typename std::decay_t<decltype(records)>::value_type;
    return SectionPlan{id, reinterpret_cast<const char*>(records.data()),
                       records.size() * sizeof(Record), records.size()};
  };
  const SectionPlan plans[] = {
      plan_of(SectionId::kInferences, data.inferences),
      plan_of(SectionId::kLinks, data.links),
      plan_of(SectionId::kBgpPrefixes, data.bgp_prefixes),
      plan_of(SectionId::kFallbackPrefixes, data.fallback_prefixes),
      plan_of(SectionId::kMappings, data.mappings),
  };
  constexpr std::uint32_t kSectionCount = 5;

  std::string out;
  out.resize(sizeof(SnapshotHeader), '\0');

  // Section table, with offsets computed as if writing the payloads in
  // order, each padded up to kSectionAlign.
  std::uint64_t cursor =
      sizeof(SnapshotHeader) + kSectionCount * sizeof(SectionEntry);
  for (const SectionPlan& plan : plans) {
    cursor = (cursor + kSectionAlign - 1) / kSectionAlign * kSectionAlign;
    SectionEntry entry{};
    entry.id = static_cast<std::uint32_t>(plan.id);
    entry.offset = cursor;
    entry.size = plan.size;
    entry.record_count = plan.record_count;
    append_raw(out, entry);
    cursor += plan.size;
  }
  for (const SectionPlan& plan : plans) {
    out.resize((out.size() + kSectionAlign - 1) / kSectionAlign *
                   kSectionAlign,
               '\0');
    if (plan.size != 0) out.append(plan.bytes, plan.size);
  }

  SnapshotHeader header{};
  std::memcpy(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic));
  header.endian = kEndianMarker;
  header.version = kSnapshotVersion;
  header.file_size = out.size();
  header.section_count = kSectionCount;
  header.payload_crc32 = crc32(out.data() + sizeof(SnapshotHeader),
                               out.size() - sizeof(SnapshotHeader));
  std::memcpy(out.data(), &header, sizeof(header));
  return out;
}

WriteInfo write_snapshot_file(const SnapshotData& data,
                              const std::string& path, fault::Io& io) {
  const std::string bytes = serialize_snapshot(data);
  fault::write_file_atomic(path, bytes, io);
  WriteInfo info;
  info.bytes = bytes.size();
  std::memcpy(&info.payload_crc32,
              bytes.data() + offsetof(SnapshotHeader, payload_crc32),
              sizeof(info.payload_crc32));
  return info;
}

}  // namespace mapit::store
