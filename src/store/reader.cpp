#include "store/reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace mapit::store {

namespace {

[[noreturn]] void reject(const std::string& what) {
  throw SnapshotError("snapshot: " + what);
}

/// Reads a record type out of the image by offset. memcpy keeps this free
/// of alignment assumptions for the header/section table (section payloads
/// are separately guaranteed kSectionAlign-aligned for in-place spans).
template <typename T>
T read_at(const std::byte* data, std::uint64_t offset) {
  T value;
  std::memcpy(&value, data + offset, sizeof(T));
  return value;
}

}  // namespace

SnapshotReader SnapshotReader::open(const std::string& path, fault::Io& io) {
  const int fd = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    throw Error("snapshot: cannot open " + path + ": " +
                std::strerror(errno));
  }
  struct stat st {};
  if (io.fstat(fd, &st) != 0) {
    const int err = errno;
    io.close(fd);
    throw Error("snapshot: cannot stat " + path + ": " + std::strerror(err));
  }
  const auto size = static_cast<std::uint64_t>(st.st_size);
  if (size < sizeof(SnapshotHeader)) {
    io.close(fd);
    reject(path + ": file smaller than header (" + std::to_string(size) +
           " bytes)");
  }
  void* mapping =
      ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  const int map_err = errno;
  io.close(fd);
  if (mapping == MAP_FAILED) {
    throw Error("snapshot: mmap of " + path + " failed: " +
                std::strerror(map_err));
  }

  SnapshotReader reader;
  reader.mapping_ = mapping;
  reader.data_ = static_cast<const std::byte*>(mapping);
  reader.size_ = size;
  reader.validate();  // on throw, reader's destructor unmaps
  return reader;
}

SnapshotReader SnapshotReader::from_bytes(std::string_view bytes) {
  SnapshotReader reader;
  reader.owned_.resize((bytes.size() + 7) / 8);
  if (!bytes.empty()) {
    std::memcpy(reader.owned_.data(), bytes.data(), bytes.size());
  }
  reader.data_ = reinterpret_cast<const std::byte*>(reader.owned_.data());
  reader.size_ = bytes.size();
  if (reader.size_ < sizeof(SnapshotHeader)) {
    reject("image smaller than header (" + std::to_string(reader.size_) +
           " bytes)");
  }
  reader.validate();
  return reader;
}

SnapshotReader::SnapshotReader(SnapshotReader&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapping_(std::exchange(other.mapping_, nullptr)),
      owned_(std::move(other.owned_)),
      inferences_(std::exchange(other.inferences_, {})),
      links_(std::exchange(other.links_, {})),
      bgp_prefixes_(std::exchange(other.bgp_prefixes_, {})),
      fallback_prefixes_(std::exchange(other.fallback_prefixes_, {})),
      mappings_(std::exchange(other.mappings_, {})),
      crc_(other.crc_),
      version_(other.version_) {}

SnapshotReader& SnapshotReader::operator=(SnapshotReader&& other) noexcept {
  if (this != &other) {
    if (mapping_ != nullptr) ::munmap(mapping_, size_);
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    mapping_ = std::exchange(other.mapping_, nullptr);
    owned_ = std::move(other.owned_);
    inferences_ = std::exchange(other.inferences_, {});
    links_ = std::exchange(other.links_, {});
    bgp_prefixes_ = std::exchange(other.bgp_prefixes_, {});
    fallback_prefixes_ = std::exchange(other.fallback_prefixes_, {});
    mappings_ = std::exchange(other.mappings_, {});
    crc_ = other.crc_;
    version_ = other.version_;
  }
  return *this;
}

SnapshotReader::~SnapshotReader() {
  if (mapping_ != nullptr) ::munmap(mapping_, size_);
}

void SnapshotReader::validate() {
  const auto header = read_at<SnapshotHeader>(data_, 0);
  if (std::memcmp(header.magic, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    reject("bad magic (not a MAP-IT snapshot)");
  }
  if (header.endian != kEndianMarker) {
    reject("byte-order mismatch (artifact written on a host with different "
           "endianness)");
  }
  if (header.version != kSnapshotVersion) {
    reject("unsupported version " + std::to_string(header.version) +
           " (this reader understands version " +
           std::to_string(kSnapshotVersion) + ")");
  }
  if (header.file_size != size_) {
    reject("size mismatch: header says " + std::to_string(header.file_size) +
           " bytes, file has " + std::to_string(size_) +
           " (truncated or padded artifact)");
  }
  version_ = header.version;

  const std::uint64_t table_offset = sizeof(SnapshotHeader);
  const std::uint64_t table_size =
      std::uint64_t{header.section_count} * sizeof(SectionEntry);
  if (table_offset + table_size > size_) {
    reject("section table out of bounds (" +
           std::to_string(header.section_count) + " sections)");
  }

  // CRC first: nothing past the header is interpreted until the payload is
  // known intact, so a bit flip can never steer record parsing.
  const std::uint32_t crc =
      crc32(data_ + table_offset, size_ - table_offset);
  if (crc != header.payload_crc32) {
    reject("payload CRC mismatch (artifact is corrupted)");
  }
  crc_ = header.payload_crc32;

  bool seen[5] = {};
  for (std::uint32_t i = 0; i < header.section_count; ++i) {
    const auto entry = read_at<SectionEntry>(
        data_, table_offset + std::uint64_t{i} * sizeof(SectionEntry));
    const std::string label = "section " + std::to_string(i);
    if (entry.offset % kSectionAlign != 0) {
      reject(label + ": misaligned offset " + std::to_string(entry.offset));
    }
    if (entry.offset < table_offset + table_size ||
        entry.offset > size_ || size_ - entry.offset < entry.size) {
      reject(label + ": payload out of bounds");
    }

    const auto set_span = [&]<typename Record>(std::span<const Record>& out,
                                               bool& seen_flag) {
      if (seen_flag) reject(label + ": duplicate section id");
      seen_flag = true;
      if (entry.size != entry.record_count * sizeof(Record)) {
        reject(label + ": size " + std::to_string(entry.size) +
               " does not hold " + std::to_string(entry.record_count) +
               " records of " + std::to_string(sizeof(Record)) + " bytes");
      }
      out = std::span<const Record>(
          reinterpret_cast<const Record*>(data_ + entry.offset),
          entry.record_count);
    };
    switch (static_cast<SectionId>(entry.id)) {
      case SectionId::kInferences:
        set_span(inferences_, seen[0]);
        break;
      case SectionId::kLinks:
        set_span(links_, seen[1]);
        break;
      case SectionId::kBgpPrefixes:
        set_span(bgp_prefixes_, seen[2]);
        break;
      case SectionId::kFallbackPrefixes:
        set_span(fallback_prefixes_, seen[3]);
        break;
      case SectionId::kMappings:
        set_span(mappings_, seen[4]);
        break;
      default:
        reject(label + ": unknown section id " + std::to_string(entry.id));
    }
  }
  for (bool s : seen) {
    if (!s) reject("missing section (artifact incomplete)");
  }
}

}  // namespace mapit::store
