// On-disk snapshot format shared by the writer and the mmap reader.
//
// A snapshot is a single little-endian binary artifact serving a finished
// MAP-IT run: the per-half inference records, the aggregated inter-AS link
// table, the flattened IP2AS prefix layers, and the engine's final per-half
// mapping overrides. Layout:
//
//   SnapshotHeader                (48 bytes, at offset 0)
//   SectionEntry[section_count]   (32 bytes each, immediately after)
//   ...8-byte-aligned section payloads, in section-table order...
//
// Every section is a sorted flat array of one fixed-size record type, so a
// reader can binary-search the mmap'd bytes directly — no per-record
// allocation or parsing on load. `payload_crc32` covers every byte after
// the header (section table included); any bit flip past the header is
// detected before a record is ever dereferenced.
//
// Versioning: `kSnapshotVersion` bumps on any layout change; readers reject
// other versions outright (no in-place migration — snapshots are cheap to
// rebuild from a run). `endian` pins the byte order: the format is
// little-endian, and a reader on a mismatched host refuses the file instead
// of silently transposing fields. Reserved fields are written as zero and
// ignored on read.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

#include "net/error.h"

namespace mapit::store {

/// A snapshot artifact that cannot be loaded: truncated, corrupted (CRC
/// mismatch), wrong magic/version, or structurally inconsistent. Every
/// rejection carries a diagnostic naming the first violated invariant.
class SnapshotError : public Error {
 public:
  using Error::Error;
};

inline constexpr char kSnapshotMagic[8] = {'M', 'A', 'P', 'I',
                                           'T', 'S', 'N', 'P'};
inline constexpr std::uint32_t kSnapshotVersion = 1;
/// Written natively by the writer; reads as 0x0A0B0C0D only on a host with
/// the same (little-endian) byte order.
inline constexpr std::uint32_t kEndianMarker = 0x0A0B0C0Du;
/// Every section payload starts on an 8-byte boundary so records may be
/// accessed through typed pointers into the mapping.
inline constexpr std::size_t kSectionAlign = 8;

struct SnapshotHeader {
  char magic[8];
  std::uint32_t endian;
  std::uint32_t version;
  std::uint64_t file_size;      ///< total artifact size in bytes
  std::uint32_t section_count;
  std::uint32_t payload_crc32;  ///< CRC-32 of bytes [sizeof(header), file_size)
  std::uint64_t reserved[2];
};
static_assert(sizeof(SnapshotHeader) == 48);

/// Section identifiers (FourCC-style little-endian constants).
enum class SectionId : std::uint32_t {
  kInferences = 0x52464E49u,   ///< "INFR": InferenceRecord[], (address, dir)
  kLinks = 0x4B4E494Cu,        ///< "LINK": LinkRecord[], (as_a, as_b, low, high)
  kBgpPrefixes = 0x42584650u,  ///< "PFXB": PrefixRecord[], (network, length)
  kFallbackPrefixes = 0x46584650u,  ///< "PFXF": PrefixRecord[], same order
  kMappings = 0x5350414Du,     ///< "MAPS": MappingRecord[], (address, dir)
};

struct SectionEntry {
  std::uint32_t id;            ///< SectionId value
  std::uint32_t reserved;
  std::uint64_t offset;        ///< absolute file offset, kSectionAlign-aligned
  std::uint64_t size;          ///< payload bytes (record_count * record size)
  std::uint64_t record_count;
};
static_assert(sizeof(SectionEntry) == 32);

// ---------------------------------------------------------------------------
// Record types. All fields are fixed-width with explicit padding, 4-byte
// aligned, trivially copyable, and hold host-order integers (the endianness
// marker guarantees host order == file order). Addresses are the library's
// host-order IPv4 values; directions use graph::direction_bit encoding
// (forward = 0, backward = 1); kinds use core::InferenceKind's underlying
// values.
// ---------------------------------------------------------------------------

/// Inference flag bits.
inline constexpr std::uint8_t kInferenceUncertain = 0x01;

/// One per-interface-half inference, sorted by (address, direction).
struct InferenceRecord {
  std::uint32_t address;
  std::uint8_t direction;
  std::uint8_t kind;
  std::uint8_t flags;
  std::uint8_t reserved;
  std::uint32_t router_as;
  std::uint32_t other_as;
  std::uint32_t votes;
  std::uint32_t neighbor_count;
};
static_assert(sizeof(InferenceRecord) == 24);

/// Link flag bits.
inline constexpr std::uint8_t kLinkViaStub = 0x01;
inline constexpr std::uint8_t kLinkConflicting = 0x02;

/// One aggregated inter-AS link, sorted by (as_a, as_b, low, high) with
/// as_a <= as_b, so per-AS-pair enumeration is an equal_range.
struct LinkRecord {
  std::uint32_t low;   ///< lower interface address of the link prefix
  std::uint32_t high;  ///< inferred other-side address
  std::uint32_t as_a;  ///< lower ASN of the pair
  std::uint32_t as_b;
  std::uint32_t supporting_inferences;
  std::uint32_t votes;
  std::uint32_t neighbor_count;
  std::uint8_t flags;
  std::uint8_t reserved[3];
};
static_assert(sizeof(LinkRecord) == 32);

/// One IP2AS prefix, sorted by (network, length): the flat binary-search
/// equivalent of a net::PrefixTrie layer.
struct PrefixRecord {
  std::uint32_t network;  ///< host bits zero
  std::uint32_t asn;
  std::uint8_t length;    ///< 0..32
  std::uint8_t reserved[3];
};
static_assert(sizeof(PrefixRecord) == 12);

/// One final per-half IP2AS override, sorted by (address, direction).
struct MappingRecord {
  std::uint32_t address;
  std::uint32_t asn;
  std::uint8_t direction;
  std::uint8_t reserved[3];
};
static_assert(sizeof(MappingRecord) == 12);

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum every snapshot
/// pins its payload with. `seed` chains incremental updates:
/// crc32(b, crc32(a)) == crc32(a + b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

}  // namespace mapit::store
