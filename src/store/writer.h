// Snapshot writer: turns a finished MAP-IT run into the binary artifact
// described in store/format.h.
//
// The writer is deliberately decoupled from the engine: it consumes a
// SnapshotData value (plain sorted vectors), which `make_snapshot_data`
// assembles from a core::Result + interface graph + Ip2As composite. Tests
// construct SnapshotData directly to exercise the format without running
// the pipeline.
//
// Determinism: serialization depends only on the record values — reserved
// bytes are zeroed, sections are emitted in a fixed order, and alignment
// padding is zero-filled — so identical runs produce byte-identical
// artifacts (the CI snapshot smoke pins the CRC of the standard run).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "asdata/asn.h"
#include "bgp/ip2as.h"
#include "fault/io.h"
#include "core/engine.h"
#include "core/links.h"
#include "graph/interface_graph.h"
#include "net/prefix.h"
#include "store/format.h"

namespace mapit::store {

/// Everything a snapshot serializes, already in section order. All vectors
/// must be sorted as documented in format.h; write_snapshot enforces this.
struct SnapshotData {
  std::vector<InferenceRecord> inferences;
  std::vector<LinkRecord> links;
  std::vector<PrefixRecord> bgp_prefixes;
  std::vector<PrefixRecord> fallback_prefixes;
  std::vector<MappingRecord> mappings;
};

/// Assembles SnapshotData from a run: confident + uncertain inferences
/// (flagged), aggregated links, the Ip2As composite's BGP and fallback
/// prefix layers, and the engine's final per-half mapping overrides.
[[nodiscard]] SnapshotData make_snapshot_data(const core::Result& result,
                                              const graph::InterfaceGraph& graph,
                                              const bgp::Ip2As& ip2as);

/// Record-level conversions (also used by tests and the query engine's
/// answer formatting).
[[nodiscard]] InferenceRecord to_record(const core::Inference& inference);
[[nodiscard]] LinkRecord to_record(const core::InterAsLink& link);
[[nodiscard]] PrefixRecord to_record(const net::Prefix& prefix,
                                     asdata::Asn asn);

/// Serializes the snapshot to bytes. Throws mapit::InvariantError when a
/// section violates its documented sort order.
[[nodiscard]] std::string serialize_snapshot(const SnapshotData& data);

struct WriteInfo {
  std::uint64_t bytes = 0;
  std::uint32_t payload_crc32 = 0;
};

/// Serializes and writes the artifact to `path` crash-safely: the bytes go
/// to `<path>.tmp.<pid>`, are fsynced, and are renamed into place (see
/// fault/atomic_file.h) — a crash or I/O failure at any point leaves
/// `path` holding either the complete old artifact or the complete new
/// one, never a torn file. Throws mapit::Error when any step fails.
/// `io` is the syscall boundary; tests inject faults through it.
WriteInfo write_snapshot_file(const SnapshotData& data,
                              const std::string& path,
                              fault::Io& io = fault::system_io());

}  // namespace mapit::store
