// Per-AS ground truth, in the two flavours the paper verifies against.
//
// Exact (§5.1.1, Internet2): the designated AS's complete interface
// inventory — every internal interface and every inter-AS link with the
// connected AS, always correct.
//
// Approximate (§5.1.2, Level3/TeliaSonera DNS hostnames): the same
// inventory filtered through a hostname-coverage model — some interfaces
// have no usable hostname (dropped from the dataset entirely), and a small
// fraction of inter-AS tags are stale, recording the wrong connected AS
// (which inflates false positives, as the paper notes).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asdata/asn.h"
#include "net/ipv4.h"
#include "topo/internet.h"

namespace mapit::eval {

/// One inter-AS link of the target AS, as recorded in the dataset.
struct LinkTruth {
  net::Ipv4Address addr_a;  ///< interface on the target-side router
  net::Ipv4Address addr_b;  ///< interface on the connected AS's router
  asdata::Asn remote = asdata::kUnknownAsn;  ///< true connected AS
  /// Connected AS as the dataset records it (differs from `remote` when the
  /// hostname tag is stale).
  asdata::Asn recorded_remote = asdata::kUnknownAsn;
  bool via_ixp = false;
};

class AsGroundTruth {
 public:
  /// Complete, error-free inventory for `target`.
  [[nodiscard]] static AsGroundTruth exact(const topo::Internet& net,
                                           asdata::Asn target);

  /// Hostname-derived inventory: each interface is covered with probability
  /// `coverage`; covered inter-AS tags are stale (wrong remote AS) with
  /// probability `stale_prob`. Deterministic given `seed`.
  [[nodiscard]] static AsGroundTruth approximate(const topo::Internet& net,
                                                 asdata::Asn target,
                                                 double coverage,
                                                 double stale_prob,
                                                 std::uint64_t seed);

  /// Assembles a dataset from externally derived parts (e.g. the dns
  /// module's hostname-parsing pathway, §5.1.2).
  [[nodiscard]] static AsGroundTruth from_parts(
      asdata::Asn target, bool exact, std::vector<LinkTruth> links,
      std::unordered_set<net::Ipv4Address> internal);

  [[nodiscard]] asdata::Asn target() const { return target_; }
  [[nodiscard]] bool is_exact() const { return exact_; }

  /// Inter-AS links of the target recorded in the dataset.
  [[nodiscard]] const std::vector<LinkTruth>& links() const { return links_; }

  /// Internal interface addresses of the target recorded in the dataset.
  [[nodiscard]] const std::unordered_set<net::Ipv4Address>& internal() const {
    return internal_;
  }

  /// Index of the link owning `address`, or nullptr.
  [[nodiscard]] const std::size_t* link_of(net::Ipv4Address address) const {
    auto it = link_by_address_.find(address);
    return it == link_by_address_.end() ? nullptr : &it->second;
  }

 private:
  static AsGroundTruth build(const topo::Internet& net, asdata::Asn target,
                             bool exact, double coverage, double stale_prob,
                             std::uint64_t seed);

  asdata::Asn target_ = asdata::kUnknownAsn;
  bool exact_ = true;
  std::vector<LinkTruth> links_;
  std::unordered_set<net::Ipv4Address> internal_;
  std::unordered_map<net::Ipv4Address, std::size_t> link_by_address_;
};

}  // namespace mapit::eval
