#include "eval/diff_sweep.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "baselines/claims.h"
#include "baselines/simple.h"
#include "core/checkpoint.h"
#include "eval/experiment.h"
#include "fault/atomic_file.h"
#include "net/error.h"

namespace mapit::eval {

namespace {

constexpr char kStateMagic[] = "mapit-diff-sweep-state-v1";

// Artifact probabilities at rate 1.0 — the config-sweep test's
// artifact_storm regime; rate 0.0 is its clean-room simulation half.
constexpr double kMaxLbProb = 0.08;
constexpr double kMaxFlapProb = 0.08;
constexpr double kMaxLossProb = 0.05;

/// Shortest round-trippable decimal for a rate (17 significant digits
/// reparse to the same double; trailing-zero trimming keeps 0.5 as "0.5").
[[nodiscard]] std::string format_rate(double rate) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", rate);
  double reparsed = 0;
  for (int precision = 1; precision <= 16; ++precision) {
    char candidate[32];
    std::snprintf(candidate, sizeof(candidate), "%.*g", precision, rate);
    std::sscanf(candidate, "%lf", &reparsed);
    if (reparsed == rate) return candidate;
  }
  return buffer;
}

[[nodiscard]] DiffSweepCell run_cell(double rate, std::uint64_t seed,
                                     unsigned threads) {
  ExperimentConfig config = ExperimentConfig::small();
  // Mirror `mapit simulate`'s seed derivation so a sweep seed corresponds
  // to the same synthetic world the CLI writes to disk.
  config.topology.seed = seed;
  config.simulation.seed = seed ^ 0xFEEDu;
  config.dataset_seed = seed ^ 0xBEEFu;
  config.simulation.per_packet_lb_prob = rate * kMaxLbProb;
  config.simulation.route_flap_prob = rate * kMaxFlapProb;
  config.simulation.hop_loss_prob = rate * kMaxLossProb;

  const auto experiment = Experiment::build(config);
  core::Options options;
  options.f = 0.5;
  options.threads = threads;
  const core::Result result = experiment->run_mapit(options);
  const AsGroundTruth truth =
      experiment->ground_truth(topo::Generator::rne_asn());
  const Evaluator& evaluator = experiment->evaluator();

  DiffSweepCell cell;
  cell.rate = rate;
  cell.seed = seed;
  cell.mapit =
      evaluator.verify(truth, baselines::claims_from_result(result)).total;
  cell.simple =
      evaluator
          .verify(truth, baselines::simple_heuristic(experiment->corpus(),
                                                     experiment->ip2as()))
          .total;
  cell.convention =
      evaluator
          .verify(truth, baselines::convention_heuristic(
                             experiment->corpus(), experiment->ip2as(),
                             experiment->relationships()))
          .total;
  cell.converged = result.stats.converged;
  cell.iterations = result.stats.iterations;
  cell.inferences = result.inferences.size();
  return cell;
}

void append_metrics(std::ostream& out, const Metrics& m) {
  out << m.tp << ' ' << m.fp << ' ' << m.fn;
}

[[nodiscard]] std::string encode_state(std::uint64_t fingerprint,
                                       const std::vector<DiffSweepCell>& done) {
  std::ostringstream out;
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  out << kStateMagic << ' ' << hex << '\n';
  for (const DiffSweepCell& cell : done) {
    out << format_rate(cell.rate) << ' ' << cell.seed << ' ';
    append_metrics(out, cell.mapit);
    out << ' ';
    append_metrics(out, cell.simple);
    out << ' ';
    append_metrics(out, cell.convention);
    out << ' ' << (cell.converged ? 1 : 0) << ' ' << cell.iterations << ' '
        << cell.inferences << '\n';
  }
  return out.str();
}

/// Loads completed cells from a state file. Returns empty when the file is
/// absent or belongs to a different grid (stale state is discarded, never
/// misapplied); throws mapit::Error on a syntactically damaged file.
[[nodiscard]] std::vector<DiffSweepCell> load_state(
    const std::string& path, std::uint64_t fingerprint) {
  std::ifstream in(path);
  if (!in) return {};
  std::string magic;
  std::string fp_hex;
  if (!(in >> magic >> fp_hex) || magic != kStateMagic) {
    throw Error("diff-sweep state file is damaged: " + path);
  }
  char expected[17];
  std::snprintf(expected, sizeof(expected), "%016llx",
                static_cast<unsigned long long>(fingerprint));
  if (fp_hex != expected) return {};  // different grid: start fresh
  std::vector<DiffSweepCell> done;
  DiffSweepCell cell;
  int converged = 0;
  while (in >> cell.rate >> cell.seed >> cell.mapit.tp >> cell.mapit.fp >>
         cell.mapit.fn >> cell.simple.tp >> cell.simple.fp >> cell.simple.fn >>
         cell.convention.tp >> cell.convention.fp >> cell.convention.fn >>
         converged >> cell.iterations >> cell.inferences) {
    cell.converged = converged != 0;
    done.push_back(cell);
  }
  if (!in.eof()) {
    throw Error("diff-sweep state file has a malformed cell line: " + path);
  }
  return done;
}

void json_metrics(std::ostream& out, const char* name, const Metrics& m) {
  out << "\"" << name << "\": {\"tp\": " << m.tp << ", \"fp\": " << m.fp
      << ", \"fn\": " << m.fn << "}";
}

}  // namespace

std::uint64_t grid_fingerprint(const DiffSweepOptions& options) {
  // Canonical encoding: rates and seeds in sweep order. The artifact-rate
  // scale factors are part of the grid identity — changing what rate 1.0
  // means must invalidate old state files.
  std::ostringstream encoded;
  encoded << "rates:";
  for (const double rate : options.rates) encoded << format_rate(rate) << ',';
  encoded << ";seeds:";
  for (const std::uint64_t seed : options.seeds) encoded << seed << ',';
  encoded << ";max:" << format_rate(kMaxLbProb) << ','
          << format_rate(kMaxFlapProb) << ',' << format_rate(kMaxLossProb);
  return core::fingerprint_bytes(core::kFingerprintSeed, encoded.str());
}

DiffSweepReport run_diff_sweep(const DiffSweepOptions& options) {
  if (options.rates.empty() || options.seeds.empty()) {
    throw Error("diff sweep needs at least one rate and one seed");
  }
  for (const double rate : options.rates) {
    if (!(rate >= 0.0) || !(rate <= 1.0)) {
      throw Error("diff-sweep rate out of [0, 1]: " + format_rate(rate));
    }
  }
  const std::uint64_t fingerprint = grid_fingerprint(options);
  std::vector<DiffSweepCell> done;
  if (!options.state_path.empty()) {
    done = load_state(options.state_path, fingerprint);
  }
  const auto completed = [&done](double rate, std::uint64_t seed) {
    return std::any_of(done.begin(), done.end(),
                       [&](const DiffSweepCell& cell) {
                         return cell.rate == rate && cell.seed == seed;
                       });
  };

  const std::size_t total = options.rates.size() * options.seeds.size();
  std::size_t index = 0;
  for (const double rate : options.rates) {
    for (const std::uint64_t seed : options.seeds) {
      ++index;
      if (completed(rate, seed)) {
        if (options.progress != nullptr) {
          *options.progress << "cell " << index << "/" << total << " rate="
                            << format_rate(rate) << " seed=" << seed
                            << ": resumed from state\n";
        }
        continue;
      }
      const auto start = std::chrono::steady_clock::now();
      done.push_back(run_cell(rate, seed, options.threads));
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start);
      if (options.progress != nullptr) {
        const DiffSweepCell& cell = done.back();
        *options.progress << "cell " << index << "/" << total << " rate="
                          << format_rate(rate) << " seed=" << seed
                          << ": mapit " << cell.mapit.tp << "/"
                          << cell.mapit.fp << "/" << cell.mapit.fn
                          << " simple " << cell.simple.tp << "/"
                          << cell.simple.fp << "/" << cell.simple.fn
                          << " convention " << cell.convention.tp << "/"
                          << cell.convention.fp << "/" << cell.convention.fn
                          << " (" << elapsed.count() << " ms)\n";
      }
      if (!options.state_path.empty()) {
        // Atomic rewrite after every cell: a kill leaves either the state
        // before this cell or after it, never a torn file.
        fault::write_file_atomic(options.state_path,
                                 encode_state(fingerprint, done));
      }
    }
  }

  DiffSweepReport report;
  report.cells = std::move(done);
  std::sort(report.cells.begin(), report.cells.end(),
            [](const DiffSweepCell& a, const DiffSweepCell& b) {
              return a.rate != b.rate ? a.rate < b.rate : a.seed < b.seed;
            });
  return report;
}

std::string format_diff_sweep_json(const DiffSweepReport& report) {
  std::ostringstream out;
  out << "{\n  \"format\": \"mapit-diff-sweep-v1\",\n  \"scale\": \"small\","
      << "\n  \"cells\": [\n";
  for (std::size_t i = 0; i < report.cells.size(); ++i) {
    const DiffSweepCell& cell = report.cells[i];
    out << "    {\"rate\": " << format_rate(cell.rate)
        << ", \"seed\": " << cell.seed << ", ";
    json_metrics(out, "mapit", cell.mapit);
    out << ", ";
    json_metrics(out, "simple", cell.simple);
    out << ", ";
    json_metrics(out, "convention", cell.convention);
    out << ", \"converged\": " << (cell.converged ? "true" : "false")
        << ", \"iterations\": " << cell.iterations
        << ", \"inferences\": " << cell.inferences << "}"
        << (i + 1 < report.cells.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.str();
}

DiffSweepReport parse_diff_sweep_json(std::istream& in,
                                      const std::string& context) {
  DiffSweepReport report;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find("\"rate\"") == std::string::npos) continue;
    DiffSweepCell cell;
    unsigned long long seed = 0;
    std::size_t m[9] = {};
    char converged_text[8] = {};
    int iterations = 0;
    unsigned long long inferences = 0;
    const int matched = std::sscanf(
        line.c_str(),
        " {\"rate\": %lf, \"seed\": %llu,"
        " \"mapit\": {\"tp\": %zu, \"fp\": %zu, \"fn\": %zu},"
        " \"simple\": {\"tp\": %zu, \"fp\": %zu, \"fn\": %zu},"
        " \"convention\": {\"tp\": %zu, \"fp\": %zu, \"fn\": %zu},"
        " \"converged\": %7[a-z], \"iterations\": %d,"
        " \"inferences\": %llu",
        &cell.rate, &seed, &m[0], &m[1], &m[2], &m[3], &m[4], &m[5], &m[6],
        &m[7], &m[8], converged_text, &iterations, &inferences);
    if (matched != 14) {
      throw Error("malformed diff-sweep cell line in " + context + ": " +
                  line);
    }
    cell.seed = seed;
    cell.mapit = Metrics{m[0], m[1], m[2]};
    cell.simple = Metrics{m[3], m[4], m[5]};
    cell.convention = Metrics{m[6], m[7], m[8]};
    cell.converged = std::string_view(converged_text) == "true";
    cell.iterations = iterations;
    cell.inferences = inferences;
    report.cells.push_back(cell);
  }
  return report;
}

std::vector<std::string> diff_sweep_drift(const DiffSweepReport& baseline,
                                          const DiffSweepReport& fresh) {
  std::vector<std::string> drift;
  const auto describe = [](const DiffSweepCell& cell) {
    std::ostringstream out;
    out << "rate=" << format_rate(cell.rate) << " seed=" << cell.seed;
    return out.str();
  };
  for (const DiffSweepCell& want : baseline.cells) {
    const auto it = std::find_if(fresh.cells.begin(), fresh.cells.end(),
                                 [&](const DiffSweepCell& cell) {
                                   return cell.rate == want.rate &&
                                          cell.seed == want.seed;
                                 });
    if (it == fresh.cells.end()) {
      drift.push_back("missing cell " + describe(want));
      continue;
    }
    if (*it != want) {
      std::ostringstream out;
      const auto diff_metrics = [&out](const char* name, const Metrics& a,
                                       const Metrics& b) {
        if (a.tp != b.tp || a.fp != b.fp || a.fn != b.fn) {
          out << ' ' << name << ' ' << a.tp << '/' << a.fp << '/' << a.fn
              << "->" << b.tp << '/' << b.fp << '/' << b.fn;
        }
      };
      out << "cell " << describe(want) << " drifted:";
      diff_metrics("mapit", want.mapit, it->mapit);
      diff_metrics("simple", want.simple, it->simple);
      diff_metrics("convention", want.convention, it->convention);
      if (want.converged != it->converged) out << " converged changed";
      if (want.iterations != it->iterations) {
        out << " iterations " << want.iterations << "->" << it->iterations;
      }
      if (want.inferences != it->inferences) {
        out << " inferences " << want.inferences << "->" << it->inferences;
      }
      drift.push_back(out.str());
    }
  }
  for (const DiffSweepCell& cell : fresh.cells) {
    const bool known = std::any_of(baseline.cells.begin(),
                                   baseline.cells.end(),
                                   [&](const DiffSweepCell& want) {
                                     return cell.rate == want.rate &&
                                            cell.seed == want.seed;
                                   });
    if (!known) drift.push_back("unexpected extra cell " + describe(cell));
  }
  return drift;
}

}  // namespace mapit::eval
