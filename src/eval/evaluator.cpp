#include "eval/evaluator.h"

#include <algorithm>

namespace mapit::eval {

Evaluator::Evaluator(const topo::Internet& net,
                     const graph::InterfaceGraph& graph)
    : net_(net), graph_(graph) {
  for (const topo::AsInfo& info : net.ases()) {
    for (const net::Prefix& prefix : info.announced) {
      true_origins_.insert(prefix, info.asn);
    }
    if (info.unannounced) true_origins_.insert(*info.unannounced, info.asn);
  }
}

asdata::Asn Evaluator::true_origin(net::Ipv4Address address) const {
  const asdata::Asn* asn = true_origins_.longest_match(address);
  return asn == nullptr ? asdata::kUnknownAsn : *asn;
}

bool Evaluator::pair_matches(asdata::Asn claim_a, asdata::Asn claim_b,
                             asdata::Asn truth_a, asdata::Asn truth_b) const {
  const auto& orgs = net_.true_orgs();
  const std::uint64_t ca = orgs.group_key(claim_a);
  const std::uint64_t cb = orgs.group_key(claim_b);
  const std::uint64_t ta = orgs.group_key(truth_a);
  const std::uint64_t tb = orgs.group_key(truth_b);
  return (ca == ta && cb == tb) || (ca == tb && cb == ta);
}

bool Evaluator::involves(asdata::Asn asn, asdata::Asn target) const {
  return net_.true_orgs().are_siblings(asn, target);
}

asdata::LinkClass Evaluator::classify(asdata::Asn a, asdata::Asn b) const {
  return net_.true_relationships().classify_link(a, b, net_.true_orgs());
}

bool Evaluator::link_eligible(const AsGroundTruth& truth,
                              const LinkTruth& link) const {
  // §5.2: the interface or its other side must appear in the traces...
  const graph::InterfaceRecord* ra = graph_.find(link.addr_a);
  const graph::InterfaceRecord* rb = graph_.find(link.addr_b);
  if (ra == nullptr && rb == nullptr) return false;
  // ...and evidence of the connected AS must have been observable: the link
  // is numbered from the connected AS, or some address of the connected AS
  // was seen adjacent to the link.
  const asdata::Asn remote = link.remote;
  if (involves(true_origin(link.addr_a), remote) ||
      involves(true_origin(link.addr_b), remote)) {
    return true;
  }
  for (const graph::InterfaceRecord* record : {ra, rb}) {
    if (record == nullptr) continue;
    for (const auto& neighbors : {record->forward, record->backward}) {
      for (net::Ipv4Address neighbor : neighbors) {
        if (involves(true_origin(neighbor), remote)) return true;
      }
    }
  }
  (void)truth;
  return false;
}

Verification Evaluator::verify(const AsGroundTruth& truth,
                               const baselines::Claims& claims) const {
  Verification out;
  const asdata::Asn target = truth.target();
  std::vector<bool> link_correct(truth.links().size(), false);

  // --- score claims ----------------------------------------------------
  for (const baselines::Claim& claim : claims) {
    const bool involves_target =
        involves(claim.a, target) || involves(claim.b, target);
    const asdata::Asn other = involves(claim.a, target) ? claim.b : claim.a;

    if (const std::size_t* index = truth.link_of(claim.address)) {
      const LinkTruth& link = truth.links()[*index];
      if (involves_target &&
          pair_matches(claim.a, claim.b, target, link.recorded_remote)) {
        link_correct[*index] = true;
      } else {
        out.false_positives.push_back(claim);
        out.by_class[involves_target ? classify(target, other)
                                     : classify(claim.a, claim.b)]
            .fp++;
      }
      continue;
    }

    if (truth.internal().contains(claim.address)) {
      // Inference on an internal interface is always an error (§5.2).
      out.false_positives.push_back(claim);
      out.by_class[involves_target ? classify(target, other)
                                   : classify(claim.a, claim.b)]
          .fp++;
      continue;
    }

    if (!involves_target) continue;  // outside this verification's scope

    if (truth.is_exact()) {
      // Exact inventory: a target-involving claim on an address the dataset
      // does not know is an error.
      out.false_positives.push_back(claim);
      out.by_class[classify(target, other)].fp++;
      continue;
    }

    // Approximate dataset: only claims adjacent to a known link with the
    // same pair are verifiable errors (§5.2); others cannot be judged.
    const graph::InterfaceRecord* record = graph_.find(claim.address);
    if (record == nullptr) continue;
    bool adjacent_error = false;
    for (const auto& neighbors : {record->forward, record->backward}) {
      for (net::Ipv4Address neighbor : neighbors) {
        const std::size_t* index = truth.link_of(neighbor);
        if (index == nullptr) continue;
        const LinkTruth& link = truth.links()[*index];
        if (pair_matches(claim.a, claim.b, target, link.recorded_remote)) {
          adjacent_error = true;
          break;
        }
      }
      if (adjacent_error) break;
    }
    if (adjacent_error) {
      out.false_positives.push_back(claim);
      out.by_class[classify(target, other)].fp++;
    }
  }

  // --- score links (TP / FN) --------------------------------------------
  for (std::size_t i = 0; i < truth.links().size(); ++i) {
    const LinkTruth& link = truth.links()[i];
    const asdata::LinkClass cls = classify(target, link.remote);
    if (link_correct[i]) {
      out.by_class[cls].tp++;
    } else if (link_eligible(truth, link)) {
      out.by_class[cls].fn++;
      out.false_negatives.push_back(link);
    }
  }

  for (const auto& [_, metrics] : out.by_class) out.total += metrics;
  return out;
}

}  // namespace mapit::eval
