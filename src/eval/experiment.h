// End-to-end experiment harness.
//
// Wires the whole reproduction pipeline together: synthetic Internet ->
// valley-free routing -> traceroute campaign -> sanitization -> interface
// graph -> (MAP-IT | baselines) -> verification. Every bench binary and
// most integration tests run through this type, so one seed fully
// determines an experiment.
#pragma once

#include <array>
#include <memory>

#include "asdata/as2org.h"
#include "asdata/ixp.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "bgp/rib.h"
#include "core/engine.h"
#include "eval/evaluator.h"
#include "eval/ground_truth.h"
#include "graph/interface_graph.h"
#include "route/as_routing.h"
#include "route/forwarder.h"
#include "topo/generator.h"
#include "topo/internet.h"
#include "trace/sanitize.h"
#include "tracesim/simulator.h"

namespace mapit::eval {

struct ExperimentConfig {
  topo::GeneratorConfig topology;
  tracesim::SimulatorConfig simulation;
  topo::DatasetNoise noise;
  /// Seed for dataset exports (RIB visibility, sibling dropout, ...).
  std::uint64_t dataset_seed = 99;
  /// Approximate-ground-truth hostname model (§5.1.2).
  double hostname_coverage = 0.9;
  double hostname_stale_prob = 0.01;

  /// A laptop-fast configuration used by integration tests.
  [[nodiscard]] static ExperimentConfig small();
  /// The default bench configuration (paper-scale shape, minutes not hours).
  [[nodiscard]] static ExperimentConfig standard();
};

/// Owns every pipeline stage. Not movable: later stages hold references
/// into earlier ones.
class Experiment {
 public:
  /// Runs generation, routing, the traceroute campaign, sanitization, and
  /// graph construction. Everything downstream (MAP-IT, baselines,
  /// verification) is on-demand.
  [[nodiscard]] static std::unique_ptr<Experiment> build(
      const ExperimentConfig& config);

  Experiment(const Experiment&) = delete;
  Experiment& operator=(const Experiment&) = delete;

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] const topo::Internet& internet() const { return internet_; }
  [[nodiscard]] const asdata::As2Org& orgs() const { return orgs_; }
  [[nodiscard]] const asdata::AsRelationships& relationships() const {
    return rels_;
  }
  [[nodiscard]] const asdata::IxpRegistry& ixps() const { return ixps_; }
  [[nodiscard]] const bgp::Ip2As& ip2as() const { return *ip2as_; }
  [[nodiscard]] const trace::TraceCorpus& raw_corpus() const { return raw_; }
  [[nodiscard]] const trace::TraceCorpus& corpus() const {
    return sanitized_.clean;
  }
  [[nodiscard]] const trace::SanitizeStats& sanitize_stats() const {
    return sanitized_.stats;
  }
  [[nodiscard]] const tracesim::SimulatorStats& simulator_stats() const {
    return sim_stats_;
  }
  [[nodiscard]] const graph::InterfaceGraph& graph() const { return *graph_; }
  [[nodiscard]] const Evaluator& evaluator() const { return *evaluator_; }

  /// Runs MAP-IT over the experiment's graph with the given options.
  [[nodiscard]] core::Result run_mapit(const core::Options& options = {}) const;

  /// Ground truth for one of the designated evaluation ASes. The R&E AS
  /// gets the exact inventory; the tier-1s get the hostname-derived one.
  [[nodiscard]] AsGroundTruth ground_truth(asdata::Asn target) const;

  /// Designated evaluation ASes: {R&E "I2", tier-1 "L3", tier-1 "TS"}.
  [[nodiscard]] static std::array<asdata::Asn, 3> evaluation_targets();

 private:
  explicit Experiment(const ExperimentConfig& config);

  ExperimentConfig config_;
  topo::Internet internet_;
  asdata::As2Org orgs_;
  asdata::AsRelationships rels_;
  asdata::IxpRegistry ixps_;
  bgp::Rib rib_;
  std::unique_ptr<bgp::Ip2As> ip2as_;
  std::unique_ptr<route::AsRouting> routing_;
  std::unique_ptr<route::Forwarder> forwarder_;
  trace::TraceCorpus raw_;
  tracesim::SimulatorStats sim_stats_;
  trace::SanitizeResult sanitized_;
  std::unique_ptr<graph::InterfaceGraph> graph_;
  std::unique_ptr<Evaluator> evaluator_;
};

}  // namespace mapit::eval
