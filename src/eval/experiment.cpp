#include "eval/experiment.h"

namespace mapit::eval {

ExperimentConfig ExperimentConfig::small() {
  ExperimentConfig config;
  config.topology.tier1_count = 4;
  config.topology.transit_count = 30;
  config.topology.stub_count = 150;
  config.topology.rne_customer_count = 20;
  config.simulation.monitor_count = 12;
  config.simulation.destinations_per_prefix = 2;
  return config;
}

ExperimentConfig ExperimentConfig::standard() {
  ExperimentConfig config;
  config.topology.tier1_count = 8;
  config.topology.transit_count = 100;
  config.topology.stub_count = 900;
  config.topology.rne_customer_count = 60;
  config.simulation.monitor_count = 40;
  config.simulation.destinations_per_prefix = 2;
  return config;
}

Experiment::Experiment(const ExperimentConfig& config)
    : config_(config),
      internet_(topo::Generator(config.topology).generate()) {}

std::unique_ptr<Experiment> Experiment::build(const ExperimentConfig& config) {
  // Not make_unique: the constructor is private.
  std::unique_ptr<Experiment> e(new Experiment(config));

  e->orgs_ = e->internet_.export_as2org(config.noise, config.dataset_seed);
  e->rels_ =
      e->internet_.export_relationships(config.noise, config.dataset_seed);
  e->ixps_ = e->internet_.export_ixps(config.noise, config.dataset_seed);
  e->rib_ = e->internet_.export_rib(config.noise, config.dataset_seed);
  e->ip2as_ = std::make_unique<bgp::Ip2As>(
      e->rib_,
      e->internet_.export_fallback(config.noise, config.dataset_seed),
      &e->ixps_);

  e->routing_ =
      std::make_unique<route::AsRouting>(e->internet_.true_relationships());
  e->forwarder_ = std::make_unique<route::Forwarder>(e->internet_, *e->routing_);

  tracesim::TracerouteSimulator simulator(e->internet_, *e->forwarder_,
                                          config.simulation);
  e->raw_ = simulator.run_campaign(&e->sim_stats_);
  e->sanitized_ = trace::sanitize(e->raw_);

  // §4.2: the other-side heuristic sees every address, even those in
  // discarded traces.
  const std::vector<net::Ipv4Address> all_addresses =
      e->raw_.distinct_addresses();
  e->graph_ = std::make_unique<graph::InterfaceGraph>(e->sanitized_.clean,
                                                      all_addresses);
  e->evaluator_ = std::make_unique<Evaluator>(e->internet_, *e->graph_);
  return e;
}

core::Result Experiment::run_mapit(const core::Options& options) const {
  return core::run_mapit(*graph_, *ip2as_, orgs_, rels_, options);
}

AsGroundTruth Experiment::ground_truth(asdata::Asn target) const {
  if (target == topo::Generator::rne_asn()) {
    return AsGroundTruth::exact(internet_, target);
  }
  return AsGroundTruth::approximate(internet_, target,
                                    config_.hostname_coverage,
                                    config_.hostname_stale_prob,
                                    config_.dataset_seed);
}

std::array<asdata::Asn, 3> Experiment::evaluation_targets() {
  return {topo::Generator::rne_asn(), topo::Generator::tier1_a(),
          topo::Generator::tier1_b()};
}

}  // namespace mapit::eval
