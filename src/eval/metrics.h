// Precision/recall accounting (paper §5.2).
#pragma once

#include <cstddef>

namespace mapit::eval {

struct Metrics {
  std::size_t tp = 0;  ///< ground-truth links correctly identified
  std::size_t fp = 0;  ///< incorrect inferences
  std::size_t fn = 0;  ///< eligible links the algorithm missed

  [[nodiscard]] double precision() const {
    const std::size_t denom = tp + fp;
    return denom == 0 ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(denom);
  }
  [[nodiscard]] double recall() const {
    const std::size_t denom = tp + fn;
    return denom == 0 ? 1.0
                      : static_cast<double>(tp) / static_cast<double>(denom);
  }

  Metrics& operator+=(const Metrics& other) {
    tp += other.tp;
    fp += other.fp;
    fn += other.fn;
    return *this;
  }

  friend bool operator==(const Metrics&, const Metrics&) = default;
};

}  // namespace mapit::eval
