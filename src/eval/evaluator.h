// Verification of inter-AS link claims against per-AS ground truth,
// implementing the paper's §5.2 accounting:
//
//   correct   — a dataset link with a claim on either of its interface
//               addresses naming the right AS pair (sibling-aware);
//   missing   — a dataset link that was *eligible* (an endpoint appears in
//               the traces, and either the link is numbered from the
//               connected AS or an address of the connected AS is seen
//               adjacent to it) with no correct claim;
//   error     — a claim on an internal interface; a claim on a dataset link
//               naming the wrong pair; for exact ground truth, any claim
//               involving the target on an address outside the dataset; for
//               approximate ground truth, a claim naming a dataset link's
//               pair made on an interface adjacent to that link.
#pragma once

#include <map>
#include <vector>

#include "asdata/relationships.h"
#include "baselines/claims.h"
#include "eval/ground_truth.h"
#include "eval/metrics.h"
#include "graph/interface_graph.h"
#include "net/prefix_trie.h"
#include "topo/internet.h"

namespace mapit::eval {

struct Verification {
  Metrics total;
  /// Table 1 breakdown keyed by the relationship class of the link/claim.
  std::map<asdata::LinkClass, Metrics> by_class;
  /// Details for inspection and debugging.
  baselines::Claims false_positives;
  std::vector<LinkTruth> false_negatives;
};

class Evaluator {
 public:
  /// `net` supplies physical truth (true origins, relationships, siblings);
  /// `graph` supplies what the traces exposed. Both must outlive the
  /// evaluator.
  Evaluator(const topo::Internet& net, const graph::InterfaceGraph& graph);

  [[nodiscard]] Verification verify(const AsGroundTruth& truth,
                                    const baselines::Claims& claims) const;

 private:
  [[nodiscard]] bool pair_matches(asdata::Asn claim_a, asdata::Asn claim_b,
                                  asdata::Asn truth_a,
                                  asdata::Asn truth_b) const;
  [[nodiscard]] bool involves(asdata::Asn asn, asdata::Asn target) const;
  [[nodiscard]] asdata::Asn true_origin(net::Ipv4Address address) const;
  [[nodiscard]] bool link_eligible(const AsGroundTruth& truth,
                                   const LinkTruth& link) const;
  [[nodiscard]] asdata::LinkClass classify(asdata::Asn a, asdata::Asn b) const;

  const topo::Internet& net_;
  const graph::InterfaceGraph& graph_;
  net::PrefixTrie<asdata::Asn> true_origins_;
};

}  // namespace mapit::eval
