// Differential baseline sweep: MAP-IT vs the paper's §5.6 heuristics
// across an artifact-rate × seed grid of synthetic experiments.
//
// Each grid cell builds one Experiment (small scale), scales the three
// traceroute artifact probabilities by the cell's rate — rate 0 is the
// clean-room regime, rate 1 the artifact-storm regime of the config-sweep
// test — runs MAP-IT plus the Simple and Convention baselines over the
// SAME corpus, and verifies all three against the exact R&E ground truth.
// The result is a machine-readable report whose integer fields (tp/fp/fn
// per engine, iteration counts, inference counts) are bit-deterministic
// for a given grid: the pipeline is seeded end to end and MAP-IT's output
// is thread-count- and compiler-invariant (pinned by the equivalence
// tests), so CI can diff a fresh report against the committed
// DIFF_sweep.json exactly — any disagreement is real engine/baseline
// drift, not noise.
//
// Resumability rides the PR 5 checkpoint primitives: the sweep state file
// opens with a fingerprint of the grid (core::fingerprint_bytes over a
// canonical encoding of rates and seeds) and carries one line per
// completed cell; it is rewritten through fault::write_file_atomic after
// every cell, so a killed sweep resumes at the first unfinished cell and
// a state file from a *different* grid is discarded, never misapplied.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "eval/metrics.h"

namespace mapit::eval {

struct DiffSweepCell {
  double rate = 0.0;        ///< artifact-rate multiplier in [0, 1]
  std::uint64_t seed = 0;   ///< experiment seed (topology/simulation/datasets)
  Metrics mapit;            ///< MAP-IT claims vs exact R&E truth
  Metrics simple;           ///< Simple heuristic on the same corpus
  Metrics convention;       ///< Convention heuristic on the same corpus
  bool converged = false;   ///< MAP-IT reached a repeated state
  int iterations = 0;       ///< outer add/remove iterations
  std::uint64_t inferences = 0;  ///< confident MAP-IT inferences

  friend bool operator==(const DiffSweepCell&,
                         const DiffSweepCell&) = default;
};

struct DiffSweepOptions {
  std::vector<double> rates{0.0, 0.5, 1.0};
  std::vector<std::uint64_t> seeds{7, 9};
  /// Path of the resumable state file; empty disables resume.
  std::string state_path;
  /// Engine worker threads (0 = one per core; output-invariant).
  unsigned threads = 1;
  /// Per-cell progress lines (cell coordinates + timings); may be null.
  std::ostream* progress = nullptr;
};

struct DiffSweepReport {
  std::vector<DiffSweepCell> cells;  ///< sorted by (rate, seed)
};

/// Identity of the sweep grid; the state-file header pins it so resumes
/// can never mix cells from different grids.
[[nodiscard]] std::uint64_t grid_fingerprint(const DiffSweepOptions& options);

/// Runs every cell of the grid (resuming completed cells from
/// `options.state_path` when it exists and matches the grid) and returns
/// the full report. Throws mapit::Error on unusable state files.
[[nodiscard]] DiffSweepReport run_diff_sweep(const DiffSweepOptions& options);

/// Serializes the report as pretty-printed JSON (stable field order, LF
/// line endings) — the format of the committed DIFF_sweep.json.
[[nodiscard]] std::string format_diff_sweep_json(const DiffSweepReport& report);

/// Parses exactly the rigid one-cell-per-line JSON format_diff_sweep_json
/// emits (the committed DIFF_sweep.json). Throws mapit::Error naming
/// `context` on any malformed cell line.
[[nodiscard]] DiffSweepReport parse_diff_sweep_json(std::istream& in,
                                                    const std::string& context);

/// Compares two reports cell by cell on every integer field. Returns
/// human-readable drift descriptions; empty means exact agreement.
[[nodiscard]] std::vector<std::string> diff_sweep_drift(
    const DiffSweepReport& baseline, const DiffSweepReport& fresh);

}  // namespace mapit::eval
