#include "eval/ground_truth.h"

#include <random>

#include "net/error.h"

namespace mapit::eval {

AsGroundTruth AsGroundTruth::exact(const topo::Internet& net,
                                   asdata::Asn target) {
  return build(net, target, /*exact=*/true, 1.0, 0.0, 0);
}

AsGroundTruth AsGroundTruth::approximate(const topo::Internet& net,
                                         asdata::Asn target, double coverage,
                                         double stale_prob,
                                         std::uint64_t seed) {
  return build(net, target, /*exact=*/false, coverage, stale_prob, seed);
}

AsGroundTruth AsGroundTruth::from_parts(
    asdata::Asn target, bool exact, std::vector<LinkTruth> links,
    std::unordered_set<net::Ipv4Address> internal) {
  AsGroundTruth gt;
  gt.target_ = target;
  gt.exact_ = exact;
  gt.links_ = std::move(links);
  gt.internal_ = std::move(internal);
  for (std::size_t i = 0; i < gt.links_.size(); ++i) {
    gt.link_by_address_.emplace(gt.links_[i].addr_a, i);
    gt.link_by_address_.emplace(gt.links_[i].addr_b, i);
  }
  return gt;
}

AsGroundTruth AsGroundTruth::build(const topo::Internet& net,
                                   asdata::Asn target, bool exact,
                                   double coverage, double stale_prob,
                                   std::uint64_t seed) {
  MAPIT_ENSURE(coverage >= 0.0 && coverage <= 1.0, "coverage out of range");
  MAPIT_ENSURE(stale_prob >= 0.0 && stale_prob <= 1.0,
               "stale_prob out of range");
  AsGroundTruth gt;
  gt.target_ = target;
  gt.exact_ = exact;
  std::mt19937_64 rng(seed ^ (std::uint64_t{target} << 20) ^ 0x67ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> as_pick(0, net.ases().size() - 1);

  for (const topo::TrueLink& link : net.true_links()) {
    if (link.as_a != target && link.as_b != target) continue;
    if (!exact && coin(rng) >= coverage) continue;  // no usable hostname
    LinkTruth truth;
    if (link.as_a == target) {
      truth.addr_a = link.addr_a;
      truth.addr_b = link.addr_b;
      truth.remote = link.as_b;
    } else {
      truth.addr_a = link.addr_b;
      truth.addr_b = link.addr_a;
      truth.remote = link.as_a;
    }
    truth.via_ixp = link.via_ixp;
    truth.recorded_remote = truth.remote;
    if (!exact && coin(rng) < stale_prob) {
      // Stale hostname tag: the recorded neighbour is some other network.
      asdata::Asn wrong = truth.remote;
      while (wrong == truth.remote || wrong == target) {
        wrong = net.ases()[as_pick(rng)].asn;
      }
      truth.recorded_remote = wrong;
    }
    const std::size_t index = gt.links_.size();
    gt.links_.push_back(truth);
    gt.link_by_address_.emplace(truth.addr_a, index);
    gt.link_by_address_.emplace(truth.addr_b, index);
  }

  for (const topo::Link& link : net.links()) {
    if (link.inter_as) continue;
    if (net.router(link.a).owner != target) continue;
    for (net::Ipv4Address address : {link.addr_a, link.addr_b}) {
      if (!exact && coin(rng) >= coverage) continue;
      gt.internal_.insert(address);
    }
  }
  return gt;
}

}  // namespace mapit::eval
