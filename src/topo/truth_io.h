// Text serialization for ground-truth inter-AS links.
//
// Format (one link per line, '#' comments allowed):
//
//   <addr_a>|<addr_b>|<as_a>|<as_b>[|ixp]
//
// where addr_a sits on the as_a router and the optional trailing "ixp"
// marks links established across an IXP peering LAN.
#pragma once

#include <iosfwd>
#include <vector>

#include "topo/types.h"

namespace mapit::topo {

/// Writes the links with a header comment.
void write_true_links(std::ostream& out, const std::vector<TrueLink>& links);

/// Reads links written by write_true_links (link ids are not persisted and
/// read back as kNoLink). Throws mapit::ParseError naming the line.
[[nodiscard]] std::vector<TrueLink> read_true_links(std::istream& in);

}  // namespace mapit::topo
