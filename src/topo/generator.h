// Synthetic Internet generator.
//
// Produces an Internet with the structural and addressing properties the
// paper's inference problem depends on (see DESIGN.md §2's substitution
// table): a tier-1 clique, transit ISPs, stub edge networks, sibling
// organizations, IXP peering LANs, /30-/31 point-to-point numbering with
// both provider- and customer-space conventions, unannounced infrastructure
// space, and per-router behaviour flags for the traceroute simulator.
//
// Three ASes are designated for evaluation, mirroring the paper's §5.1:
//   * rne_asn()    — an Internet2-like R&E transit AS whose transit links
//                    are often numbered from customer space;
//   * tier1_a/b()  — two Level3/TeliaSonera-like tier-1 providers.
#pragma once

#include <cstdint>

#include "topo/internet.h"

namespace mapit::topo {

struct GeneratorConfig {
  std::uint64_t seed = 42;

  // --- population -----------------------------------------------------
  int tier1_count = 8;
  int transit_count = 100;
  int stub_count = 900;
  int ixp_count = 4;

  // --- intra-AS router topology ----------------------------------------
  int tier1_routers = 10;
  int transit_routers_min = 3;
  int transit_routers_max = 6;
  double extra_chord_prob = 0.4;  ///< chance of each ring chord

  // --- inter-AS connectivity -------------------------------------------
  int transit_providers_min = 1;
  int transit_providers_max = 3;
  double transit_peer_prob = 0.02;   ///< pairwise peering between transits
  int stub_providers_min = 1;
  int stub_providers_max = 3;
  double stub_multihome_prob = 0.35; ///< chance a stub takes >1 provider
  double peering_via_ixp_prob = 0.5; ///< peerings that ride an IXP LAN
  int rne_customer_count = 60;       ///< stubs homed to the R&E AS

  // --- addressing -------------------------------------------------------
  double slash31_prob = 0.4;                      ///< §4.2's 40.4%
  double transit_from_customer_space_prob = 0.1;  ///< convention violation
  double rne_customer_space_prob = 0.7;           ///< I2-style convention
  double unannounced_as_prob = 0.05;  ///< AS keeps unannounced infra space
  double unannounced_link_prob = 0.5; ///< internal links using that space

  // --- behaviour flags for the simulator --------------------------------
  double nat_stub_prob = 0.12;
  double silent_border_as_prob = 0.02;
  double buggy_router_prob = 0.01;
  double egress_reply_router_prob = 0.05;
  double router_silent_prob = 0.02;
  double sibling_org_prob = 0.08;  ///< transit ASes grouped into orgs
};

class Generator {
 public:
  explicit Generator(GeneratorConfig config) : config_(config) {}

  /// Builds the Internet. Deterministic for a given config.
  [[nodiscard]] Internet generate() const;

  /// ASN of the designated R&E (Internet2-like) transit AS.
  [[nodiscard]] static constexpr asdata::Asn rne_asn() { return 1000; }
  /// ASNs of the two designated tier-1 (Level3/TeliaSonera-like) ASes.
  [[nodiscard]] static constexpr asdata::Asn tier1_a() { return 100; }
  [[nodiscard]] static constexpr asdata::Asn tier1_b() { return 101; }

 private:
  GeneratorConfig config_;
};

}  // namespace mapit::topo
