#include "topo/truth_io.h"

#include <istream>
#include <ostream>
#include <string>

#include "net/error.h"

namespace mapit::topo {

void write_true_links(std::ostream& out, const std::vector<TrueLink>& links) {
  out << "# addr_a|addr_b|as_a|as_b[|ixp]\n";
  for (const TrueLink& link : links) {
    out << link.addr_a.to_string() << '|' << link.addr_b.to_string() << '|'
        << link.as_a << '|' << link.as_b;
    if (link.via_ixp) out << "|ixp";
    out << '\n';
  }
}

std::vector<TrueLink> read_true_links(std::istream& in) {
  std::vector<TrueLink> out;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
      const std::size_t pos = line.find('|', start);
      if (pos == std::string::npos) {
        fields.push_back(line.substr(start));
        break;
      }
      fields.push_back(line.substr(start, pos - start));
      start = pos + 1;
    }
    if (fields.size() != 4 && fields.size() != 5) {
      throw ParseError("truth line " + std::to_string(line_no) +
                       ": expected 4 or 5 fields, got " +
                       std::to_string(fields.size()));
    }
    try {
      TrueLink link;
      link.addr_a = net::Ipv4Address::parse_or_throw(fields[0]);
      link.addr_b = net::Ipv4Address::parse_or_throw(fields[1]);
      link.as_a = static_cast<asdata::Asn>(std::stoul(fields[2]));
      link.as_b = static_cast<asdata::Asn>(std::stoul(fields[3]));
      if (fields.size() == 5) {
        if (fields[4] != "ixp") {
          throw ParseError("unknown flag '" + fields[4] + "'");
        }
        link.via_ixp = true;
      }
      out.push_back(link);
    } catch (const ParseError& e) {
      throw ParseError("truth line " + std::to_string(line_no) + ": " +
                       e.what());
    } catch (const std::exception&) {
      throw ParseError("truth line " + std::to_string(line_no) +
                       ": malformed number in '" + line + "'");
    }
  }
  return out;
}

}  // namespace mapit::topo
