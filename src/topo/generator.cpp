#include "topo/generator.h"

#include <algorithm>
#include <optional>
#include <random>
#include <unordered_map>

#include "net/error.h"

namespace mapit::topo {

namespace {

// Address-space layout (all public, far from RFC 6890 blocks):
//   tier-1 ASes:  /14 blocks from 11.0.0.0
//   transit ASes: /16 blocks from 20.0.0.0
//   stub ASes:    /20 blocks from 40.0.0.0
//   unannounced:  /20 blocks from 150.0.0.0
//   IXP LANs:     /24 blocks at 195.1.X.0
constexpr std::uint32_t kTier1Base = 0x0B000000;        // 11.0.0.0
constexpr std::uint32_t kTransitBase = 0x14000000;      // 20.0.0.0
constexpr std::uint32_t kStubBase = 0x28000000;         // 40.0.0.0
constexpr std::uint32_t kUnannouncedBase = 0x96000000;  // 150.0.0.0
constexpr std::uint32_t kIxpBase = 0xC3010000;          // 195.1.0.0

/// Sequential allocator of /30 and /31 point-to-point blocks inside one
/// prefix. /31 requests pack two to a /30 (exercising the §4.2 witness
/// logic); /30 requests use the middle host addresses.
class P2pAllocator {
 public:
  P2pAllocator() = default;
  P2pAllocator(std::uint32_t begin, std::uint32_t end)
      : cursor_((begin + 3u) & ~3u), end_(end) {}

  struct Pair {
    net::Ipv4Address near;
    net::Ipv4Address far;
    bool slash31 = false;
  };

  [[nodiscard]] Pair allocate(bool slash31) {
    if (slash31) {
      if (pending31_) {
        const std::uint32_t base = *pending31_;
        pending31_.reset();
        return {net::Ipv4Address(base), net::Ipv4Address(base + 1), true};
      }
      const std::uint32_t base = take_block();
      pending31_ = base + 2;
      return {net::Ipv4Address(base), net::Ipv4Address(base + 1), true};
    }
    const std::uint32_t base = take_block();
    return {net::Ipv4Address(base + 1), net::Ipv4Address(base + 2), false};
  }

 private:
  [[nodiscard]] std::uint32_t take_block() {
    MAPIT_ENSURE(cursor_ + 4 <= end_, "p2p address pool exhausted");
    const std::uint32_t base = cursor_;
    cursor_ += 4;
    return base;
  }

  std::uint32_t cursor_ = 0;
  std::uint32_t end_ = 0;
  std::optional<std::uint32_t> pending31_;
};

struct BuildContext {
  std::unordered_map<asdata::Asn, P2pAllocator> own_space;
  std::unordered_map<asdata::Asn, P2pAllocator> unannounced_space;
  std::vector<std::uint32_t> ixp_cursor;  // next free offset per IXP LAN
  std::unordered_map<asdata::Asn, std::vector<std::uint32_t>> ixp_membership;
};

}  // namespace

Internet Generator::generate() const {
  const GeneratorConfig& cfg = config_;
  MAPIT_ENSURE(cfg.tier1_count >= 2, "need at least two tier-1 ASes");
  MAPIT_ENSURE(cfg.transit_count >= 1, "need at least one transit AS");
  MAPIT_ENSURE(cfg.rne_customer_count <= cfg.stub_count,
               "more R&E customers than stubs");

  Internet net;
  BuildContext ctx;
  std::mt19937_64 rng(cfg.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // ---- 1. AS population with address space --------------------------------
  auto add_as = [&](asdata::Asn asn, AsTier tier, net::Prefix prefix) {
    AsInfo info;
    info.asn = asn;
    info.tier = tier;
    info.announced.push_back(prefix);
    net.as_index_.emplace(asn, net.ases_.size());
    net.ases_.push_back(std::move(info));
    // Infrastructure links are numbered from the upper half of the block.
    const std::uint32_t begin = prefix.network().value() +
                                static_cast<std::uint32_t>(prefix.size() / 2);
    const std::uint32_t end =
        prefix.network().value() + static_cast<std::uint32_t>(prefix.size());
    ctx.own_space.emplace(asn, P2pAllocator(begin, end));
  };

  for (int i = 0; i < cfg.tier1_count; ++i) {
    const auto base = kTier1Base + static_cast<std::uint32_t>(i) * (1u << 18);
    add_as(tier1_a() + static_cast<asdata::Asn>(i), AsTier::kTier1,
           net::Prefix(net::Ipv4Address(base), 14));
  }
  for (int i = 0; i < cfg.transit_count; ++i) {
    const auto base = kTransitBase + static_cast<std::uint32_t>(i) * (1u << 16);
    add_as(rne_asn() + static_cast<asdata::Asn>(i), AsTier::kTransit,
           net::Prefix(net::Ipv4Address(base), 16));
  }
  for (int i = 0; i < cfg.stub_count; ++i) {
    const auto base = kStubBase + static_cast<std::uint32_t>(i) * (1u << 12);
    add_as(10000 + static_cast<asdata::Asn>(i), AsTier::kStub,
           net::Prefix(net::Ipv4Address(base), 20));
  }

  // Unannounced infrastructure space for a sample of non-stub ASes.
  {
    std::uint32_t next_unannounced = kUnannouncedBase;
    for (AsInfo& info : net.ases_) {
      if (info.tier == AsTier::kStub) continue;
      if (coin(rng) >= cfg.unannounced_as_prob) continue;
      info.unannounced = net::Prefix(net::Ipv4Address(next_unannounced), 20);
      ctx.unannounced_space.emplace(
          info.asn, P2pAllocator(next_unannounced, next_unannounced + (1u << 12)));
      next_unannounced += 1u << 12;
    }
  }

  // ---- 2. Sibling organizations -------------------------------------------
  {
    asdata::OrgId next_org = 500;
    for (int i = 0; i + 1 < cfg.transit_count; ++i) {
      AsInfo& a = net.ases_[static_cast<std::size_t>(cfg.tier1_count + i)];
      AsInfo& b = net.ases_[static_cast<std::size_t>(cfg.tier1_count + i + 1)];
      if (a.org != asdata::kNoOrg || b.org != asdata::kNoOrg) continue;
      if (a.asn == rne_asn() || b.asn == rne_asn()) continue;
      if (coin(rng) < cfg.sibling_org_prob) {
        a.org = next_org;
        b.org = next_org;
        net.true_orgs_.assign(a.asn, next_org);
        net.true_orgs_.assign(b.asn, next_org);
        ++next_org;
      }
    }
  }

  // ---- 3. Business relationships ------------------------------------------
  auto& rels = net.true_relationships_;
  for (int i = 0; i < cfg.tier1_count; ++i) {
    for (int j = i + 1; j < cfg.tier1_count; ++j) {
      rels.add_peering(tier1_a() + static_cast<asdata::Asn>(i),
                       tier1_a() + static_cast<asdata::Asn>(j));
    }
  }

  auto pick = [&](const std::vector<asdata::Asn>& from) {
    std::uniform_int_distribution<std::size_t> dist(0, from.size() - 1);
    return from[dist(rng)];
  };

  std::vector<asdata::Asn> tier1s;
  for (int i = 0; i < cfg.tier1_count; ++i) {
    tier1s.push_back(tier1_a() + static_cast<asdata::Asn>(i));
  }

  for (int i = 0; i < cfg.transit_count; ++i) {
    const asdata::Asn asn = rne_asn() + static_cast<asdata::Asn>(i);
    std::uniform_int_distribution<int> count_dist(cfg.transit_providers_min,
                                                  cfg.transit_providers_max);
    const int providers = (asn == rne_asn()) ? 2 : count_dist(rng);
    std::vector<asdata::Asn> earlier_transits;
    for (int j = 0; j < i; ++j) {
      earlier_transits.push_back(rne_asn() + static_cast<asdata::Asn>(j));
    }
    for (int p = 0; p < providers; ++p) {
      const bool from_tier1 =
          earlier_transits.empty() || asn == rne_asn() || coin(rng) < 0.6;
      const asdata::Asn provider =
          from_tier1 ? pick(tier1s) : pick(earlier_transits);
      if (provider != asn &&
          rels.relationship(provider, asn) == asdata::Relationship::kNone &&
          !net.true_orgs_.are_siblings(provider, asn)) {
        rels.add_transit(provider, asn);
      }
    }
  }
  // Ensure the designated tier-1s are well represented as transit providers.
  for (int i = 0; i < cfg.transit_count; i += 4) {
    const asdata::Asn asn = rne_asn() + static_cast<asdata::Asn>(i);
    const asdata::Asn provider = (i % 8 == 0) ? tier1_a() : tier1_b();
    if (rels.relationship(provider, asn) == asdata::Relationship::kNone) {
      rels.add_transit(provider, asn);
    }
  }

  for (int i = 0; i < cfg.transit_count; ++i) {
    for (int j = i + 1; j < cfg.transit_count; ++j) {
      const asdata::Asn a = rne_asn() + static_cast<asdata::Asn>(i);
      const asdata::Asn b = rne_asn() + static_cast<asdata::Asn>(j);
      if (coin(rng) < cfg.transit_peer_prob &&
          rels.relationship(a, b) == asdata::Relationship::kNone &&
          !net.true_orgs_.are_siblings(a, b)) {
        rels.add_peering(a, b);
      }
    }
  }
  // The R&E network peers with the designated tier-1s (paper Fig 2 flavour:
  // Internet2 exchanges traffic with large commodity providers) and with
  // many other networks — Internet2's link population is dominated by
  // peerings with regional/R&E networks (Table 1: 125 of 164 links).
  for (asdata::Asn t1 : {tier1_a(), tier1_b()}) {
    if (rels.relationship(rne_asn(), t1) == asdata::Relationship::kNone) {
      rels.add_peering(rne_asn(), t1);
    }
  }
  for (int i = 3; i < cfg.transit_count; i += 5) {
    const asdata::Asn peer = rne_asn() + static_cast<asdata::Asn>(i);
    if (rels.relationship(rne_asn(), peer) == asdata::Relationship::kNone &&
        !net.true_orgs_.are_siblings(rne_asn(), peer)) {
      rels.add_peering(rne_asn(), peer);
    }
  }

  std::vector<asdata::Asn> transits;
  for (int i = 0; i < cfg.transit_count; ++i) {
    transits.push_back(rne_asn() + static_cast<asdata::Asn>(i));
  }

  for (int i = 0; i < cfg.stub_count; ++i) {
    const asdata::Asn asn = 10000 + static_cast<asdata::Asn>(i);
    int providers = 1;
    if (coin(rng) < cfg.stub_multihome_prob) {
      std::uniform_int_distribution<int> extra(1, cfg.stub_providers_max - 1);
      providers += extra(rng);
    }
    if (i < cfg.rne_customer_count) {
      rels.add_transit(rne_asn(), asn);
      --providers;
    }
    for (int p = 0; p < providers; ++p) {
      const asdata::Asn provider = coin(rng) < 0.85 ? pick(transits) : pick(tier1s);
      if (rels.relationship(provider, asn) == asdata::Relationship::kNone) {
        rels.add_transit(provider, asn);
      }
    }
  }

  // ---- 4. IXPs --------------------------------------------------------------
  for (int i = 0; i < cfg.ixp_count; ++i) {
    const auto base = kIxpBase + static_cast<std::uint32_t>(i) * (1u << 8);
    net.ixp_lans_.emplace_back(net::Prefix(net::Ipv4Address(base), 24),
                               static_cast<std::uint32_t>(i + 1));
    ctx.ixp_cursor.push_back(1);  // .0 is the network address
  }
  for (const AsInfo& info : net.ases_) {
    if (info.tier == AsTier::kStub) continue;
    for (int i = 0; i < cfg.ixp_count; ++i) {
      if (coin(rng) < 0.4) {
        ctx.ixp_membership[info.asn].push_back(static_cast<std::uint32_t>(i));
      }
    }
  }

  // ---- 5. Routers and intra-AS links ---------------------------------------
  auto add_router = [&](AsInfo& info) {
    Router router;
    router.id = static_cast<RouterId>(net.routers_.size());
    router.owner = info.asn;
    router.buggy_ttl_forwarder = coin(rng) < cfg.buggy_router_prob;
    router.replies_with_egress = coin(rng) < cfg.egress_reply_router_prob;
    router.reply_probability = coin(rng) < cfg.router_silent_prob ? 0.0 : 1.0;
    info.routers.push_back(router.id);
    net.routers_.push_back(router);
    return router.id;
  };

  auto add_link = [&](RouterId ra, RouterId rb, net::Ipv4Address aa,
                      net::Ipv4Address ab, int plen, bool inter_as,
                      LinkAddressing addressing, std::uint32_t ixp) {
    Link link;
    link.id = static_cast<LinkId>(net.links_.size());
    link.a = ra;
    link.b = rb;
    link.addr_a = aa;
    link.addr_b = ab;
    link.prefix_length = plen;
    link.inter_as = inter_as;
    link.addressing = addressing;
    link.ixp = ixp;
    net.routers_[ra].links.push_back(link.id);
    net.routers_[rb].links.push_back(link.id);
    if (inter_as) {
      net.routers_[ra].border = true;
      net.routers_[rb].border = true;
    }
    net.address_router_.emplace(aa, ra);
    net.address_router_.emplace(ab, rb);
    net.address_link_.emplace(aa, link.id);
    net.address_link_.emplace(ab, link.id);
    net.links_.push_back(link);
    return link.id;
  };

  for (AsInfo& info : net.ases_) {
    const bool rne_customer =
        rels.providers_of(info.asn).contains(rne_asn());
    int router_count = 1;
    if (info.tier == AsTier::kTier1) {
      router_count = cfg.tier1_routers;
    } else if (info.asn == rne_asn()) {
      // The designated R&E network has an Internet2-scale backbone: many
      // core routers mean many distinct ingress interfaces ahead of each
      // border, which is what gives its links rich neighbour sets.
      router_count = std::max(8, cfg.transit_routers_max);
    } else if (info.tier == AsTier::kTransit) {
      std::uniform_int_distribution<int> dist(cfg.transit_routers_min,
                                              cfg.transit_routers_max);
      router_count = dist(rng);
    } else if (rne_customer) {
      // University campuses: routed internal networks behind the border
      // (the paper's Fig 5 inverse-inference scenario needs these).
      router_count = 2 + (coin(rng) < 0.5 ? 1 : 0);
    } else if (coin(rng) < 0.25) {
      router_count = 2;
    }
    for (int r = 0; r < router_count; ++r) add_router(info);

    // Ring plus random chords; internal links numbered from own space (or
    // unannounced infrastructure space when the AS has some).
    const auto& routers = info.routers;
    auto internal_pair = [&]() -> P2pAllocator::Pair {
      const bool slash31 = coin(rng) < cfg.slash31_prob;
      auto un = ctx.unannounced_space.find(info.asn);
      if (un != ctx.unannounced_space.end() &&
          coin(rng) < cfg.unannounced_link_prob) {
        return un->second.allocate(slash31);
      }
      return ctx.own_space.at(info.asn).allocate(slash31);
    };
    if (routers.size() > 1) {
      for (std::size_t r = 0; r < routers.size(); ++r) {
        const RouterId ra = routers[r];
        const RouterId rb = routers[(r + 1) % routers.size()];
        if (routers.size() == 2 && r == 1) break;  // avoid duplicate pair
        const auto pair = internal_pair();
        add_link(ra, rb, pair.near, pair.far, pair.slash31 ? 31 : 30, false,
                 LinkAddressing::kFromA, 0);
      }
      for (std::size_t r = 0; r + 2 < routers.size(); ++r) {
        if (coin(rng) < cfg.extra_chord_prob) {
          const auto pair = internal_pair();
          add_link(routers[r], routers[r + 2], pair.near, pair.far,
                   pair.slash31 ? 31 : 30, false, LinkAddressing::kFromA, 0);
        }
      }
    }

    // Stub behaviour flags. Customers of the R&E network are modelled as
    // universities: visible routed campuses, never NAT'd (this is also why
    // the paper's Internet2 verification sees no adjacent-beyond-the-link
    // errors, unlike the tier-1s).
    if (info.tier == AsTier::kStub) {
      if (!rne_customer && coin(rng) < cfg.nat_stub_prob) {
        info.nat_stub = true;
        // The NAT address is a host inside the stub's announced block.
        info.nat_address = net::Ipv4Address(
            info.announced.front().network().value() + 10);
      }
    } else if (coin(rng) < cfg.silent_border_as_prob) {
      info.border_replies_disabled = true;
    }
  }

  // ---- 6. Inter-AS links ----------------------------------------------------
  auto random_router = [&](const AsInfo& info) {
    std::uniform_int_distribution<std::size_t> dist(0, info.routers.size() - 1);
    return info.routers[dist(rng)];
  };

  auto common_ixp = [&](asdata::Asn a,
                        asdata::Asn b) -> std::optional<std::uint32_t> {
    auto ia = ctx.ixp_membership.find(a);
    auto ib = ctx.ixp_membership.find(b);
    if (ia == ctx.ixp_membership.end() || ib == ctx.ixp_membership.end()) {
      return std::nullopt;
    }
    for (std::uint32_t x : ia->second) {
      for (std::uint32_t y : ib->second) {
        if (x == y) return x;
      }
    }
    return std::nullopt;
  };

  auto connect = [&](asdata::Asn as_a, asdata::Asn as_b, bool transit_link) {
    // as_a is the provider for transit links.
    AsInfo& info_a = net.ases_[net.as_index_.at(as_a)];
    AsInfo& info_b = net.ases_[net.as_index_.at(as_b)];
    const RouterId ra = random_router(info_a);
    const RouterId rb = random_router(info_b);

    LinkAddressing addressing = LinkAddressing::kFromA;
    std::uint32_t ixp_id = 0;
    if (!transit_link) {
      const auto ixp = common_ixp(as_a, as_b);
      if (ixp && coin(rng) < cfg.peering_via_ixp_prob &&
          ctx.ixp_cursor[*ixp] + 2 < 255) {
        addressing = LinkAddressing::kIxp;
        ixp_id = *ixp + 1;
        const std::uint32_t lan =
            net.ixp_lans_[*ixp].first.network().value();
        const std::uint32_t offset = ctx.ixp_cursor[*ixp];
        ctx.ixp_cursor[*ixp] += 2;
        const LinkId id = add_link(ra, rb, net::Ipv4Address(lan + offset),
                                   net::Ipv4Address(lan + offset + 1), 24,
                                   true, addressing, ixp_id);
        net.true_links_.push_back(TrueLink{id, net.links_[id].addr_a,
                                           net.links_[id].addr_b, as_a, as_b,
                                           true});
        return;
      }
      // Direct peering: numbered from either side.
      addressing = coin(rng) < 0.5 ? LinkAddressing::kFromA
                                   : LinkAddressing::kFromB;
    } else {
      // Transit: provider space by convention, with violations; the R&E
      // network prefers customer space (paper §3, §5.6).
      const double customer_space_prob = (as_a == rne_asn())
                                             ? cfg.rne_customer_space_prob
                                             : cfg.transit_from_customer_space_prob;
      addressing = coin(rng) < customer_space_prob ? LinkAddressing::kFromB
                                                   : LinkAddressing::kFromA;
    }

    const asdata::Asn space_owner =
        addressing == LinkAddressing::kFromA ? as_a : as_b;
    const bool slash31 = coin(rng) < cfg.slash31_prob;
    const auto pair = ctx.own_space.at(space_owner).allocate(slash31);
    // `pair.near` goes to the space owner's router.
    const bool owner_is_a = addressing == LinkAddressing::kFromA;
    const net::Ipv4Address aa = owner_is_a ? pair.near : pair.far;
    const net::Ipv4Address ab = owner_is_a ? pair.far : pair.near;
    const LinkId id =
        add_link(ra, rb, aa, ab, slash31 ? 31 : 30, true, addressing, 0);
    net.true_links_.push_back(TrueLink{id, aa, ab, as_a, as_b, false});
  };

  // Deterministic creation order: the relationship sets are unordered, so
  // sort the edge lists before drawing from the RNG.
  for (asdata::Asn asn : rels.all_ases()) {
    std::vector<asdata::Asn> customers(rels.customers_of(asn).begin(),
                                       rels.customers_of(asn).end());
    std::sort(customers.begin(), customers.end());
    for (asdata::Asn customer : customers) {
      connect(asn, customer, /*transit_link=*/true);
      // Customers often interconnect with their provider at several points
      // (universities on an R&E backbone almost always do). Parallel links
      // give the forwarding plane equal-preference diversity (per-packet
      // load balancing, route flaps) and expose several provider-space
      // ingresses on customer border routers — the raw material of the
      // paper's Fig 5 inverse-inference errors.
      const bool customer_is_stub =
          net.as_info(customer).tier == AsTier::kStub;
      const double second_link_prob =
          !customer_is_stub ? 0.35 : (asn == rne_asn() ? 0.8 : 0.25);
      if (coin(rng) < second_link_prob) {
        connect(asn, customer, /*transit_link=*/true);
      }
    }
    std::vector<asdata::Asn> peers(rels.peers_of(asn).begin(),
                                   rels.peers_of(asn).end());
    std::sort(peers.begin(), peers.end());
    for (asdata::Asn peer : peers) {
      if (asn < peer) {
        connect(asn, peer, /*transit_link=*/false);
        if (coin(rng) < 0.25) connect(asn, peer, /*transit_link=*/false);
      }
    }
  }

  return net;
}

}  // namespace mapit::topo
