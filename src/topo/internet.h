// The synthetic Internet: ASes, routers, links, addressing, ground truth,
// and exporters for every external dataset the paper consumes.
#pragma once

#include <random>
#include <unordered_map>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/ixp.h"
#include "asdata/relationships.h"
#include "bgp/rib.h"
#include "net/prefix_trie.h"
#include "topo/types.h"

namespace mapit::topo {

/// Options controlling how imperfect the exported datasets are, mirroring
/// the noise sources the paper describes for the real ones.
struct DatasetNoise {
  /// Number of simulated route collectors.
  int collectors = 8;
  /// Probability that a given collector sees a given announced prefix.
  double collector_visibility = 0.9;
  /// Probability an announced prefix is missing from *all* collectors but
  /// present in the Team-Cymru-style fallback table.
  double fallback_only = 0.02;
  /// Probability a true sibling pair is absent from the AS2ORG export
  /// (WHOIS incompleteness, §4.9).
  double missing_sibling = 0.1;
  /// Probability a true relationship edge is absent from the export.
  double missing_relationship = 0.02;
  /// Probability an IXP LAN prefix is absent from the export (stale
  /// PeeringDB/PCH data, §5).
  double missing_ixp_prefix = 0.05;
};

class Internet {
 public:
  [[nodiscard]] const std::vector<AsInfo>& ases() const { return ases_; }
  [[nodiscard]] const std::vector<Router>& routers() const { return routers_; }
  [[nodiscard]] const std::vector<Link>& links() const { return links_; }

  [[nodiscard]] const AsInfo& as_info(asdata::Asn asn) const;
  [[nodiscard]] bool has_as(asdata::Asn asn) const {
    return as_index_.contains(asn);
  }
  [[nodiscard]] const Router& router(RouterId id) const { return routers_[id]; }
  [[nodiscard]] const Link& link(LinkId id) const { return links_[id]; }

  /// The router owning the interface `address`, or kNoRouter.
  [[nodiscard]] RouterId router_of_address(net::Ipv4Address address) const;
  /// The link carrying `address`, or kNoLink.
  [[nodiscard]] LinkId link_of_address(net::Ipv4Address address) const;

  /// Ground truth: every inter-AS link with its interface addresses.
  [[nodiscard]] const std::vector<TrueLink>& true_links() const {
    return true_links_;
  }

  /// True business relationships (complete, error-free).
  [[nodiscard]] const asdata::AsRelationships& true_relationships() const {
    return true_relationships_;
  }
  /// True sibling organizations (complete).
  [[nodiscard]] const asdata::As2Org& true_orgs() const { return true_orgs_; }

  /// All IXP LAN prefixes with their IXP ids.
  [[nodiscard]] const std::vector<std::pair<net::Prefix, std::uint32_t>>&
  ixp_lans() const {
    return ixp_lans_;
  }

  // --- dataset exporters (each deterministic given `seed`) -------------

  /// Multi-collector RIB with per-collector visibility gaps.
  [[nodiscard]] bgp::Rib export_rib(const DatasetNoise& noise,
                                    std::uint64_t seed) const;

  /// Fallback (Team-Cymru-style) table covering the prefixes export_rib
  /// hid from all collectors, given the same noise/seed.
  [[nodiscard]] net::PrefixTrie<asdata::Asn> export_fallback(
      const DatasetNoise& noise, std::uint64_t seed) const;

  /// AS relationship file with dropout noise.
  [[nodiscard]] asdata::AsRelationships export_relationships(
      const DatasetNoise& noise, std::uint64_t seed) const;

  /// AS2ORG-style sibling data with dropout noise.
  [[nodiscard]] asdata::As2Org export_as2org(const DatasetNoise& noise,
                                             std::uint64_t seed) const;

  /// IXP prefix list with dropout noise.
  [[nodiscard]] asdata::IxpRegistry export_ixps(const DatasetNoise& noise,
                                                std::uint64_t seed) const;

  /// Destination addresses suitable for probing: `per_prefix` host
  /// addresses sampled inside every announced prefix (deterministic).
  [[nodiscard]] std::vector<net::Ipv4Address> probe_destinations(
      int per_prefix, std::uint64_t seed) const;

 private:
  friend class Generator;

  std::vector<AsInfo> ases_;
  std::vector<Router> routers_;
  std::vector<Link> links_;
  std::vector<TrueLink> true_links_;
  std::unordered_map<asdata::Asn, std::size_t> as_index_;
  std::unordered_map<net::Ipv4Address, RouterId> address_router_;
  std::unordered_map<net::Ipv4Address, LinkId> address_link_;
  asdata::AsRelationships true_relationships_;
  asdata::As2Org true_orgs_;
  std::vector<std::pair<net::Prefix, std::uint32_t>> ixp_lans_;
};

}  // namespace mapit::topo
