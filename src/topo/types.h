// Value types shared by the synthetic Internet substrate.
//
// The generator builds a router-level Internet with realistic addressing so
// that the traceroute simulator can exercise every behaviour the paper's
// Ark corpus exhibits: links numbered from either endpoint's space, /30 and
// /31 prefixes, IXP LANs, sibling organizations, unannounced infrastructure,
// silent and NAT'd networks.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/asn.h"
#include "net/ipv4.h"
#include "net/prefix.h"

namespace mapit::topo {

using RouterId = std::uint32_t;
using LinkId = std::uint32_t;
inline constexpr RouterId kNoRouter = ~RouterId{0};
inline constexpr LinkId kNoLink = ~LinkId{0};

/// Role of an AS in the synthetic hierarchy.
enum class AsTier : std::uint8_t {
  kTier1,    ///< clique of peers at the top, global customer cones
  kTransit,  ///< regional/national ISPs: customers of tier-1s/transits
  kStub,     ///< edge networks with no customers
};

[[nodiscard]] const char* to_string(AsTier tier);

/// Per-AS metadata.
struct AsInfo {
  asdata::Asn asn = asdata::kUnknownAsn;
  AsTier tier = AsTier::kStub;
  asdata::OrgId org = asdata::kNoOrg;  ///< sibling organization, if any

  /// Announced address space (first entry is the primary block).
  std::vector<net::Prefix> announced;
  /// Infrastructure space used on links but never announced in BGP.
  std::optional<net::Prefix> unannounced;

  /// Routers of this AS (indices into Internet::routers()).
  std::vector<RouterId> routers;

  /// Behaviour flags consumed by the traceroute simulator.
  bool border_replies_disabled = false;  ///< border routers never answer
  bool nat_stub = false;                 ///< replies always use one NAT addr
  /// NAT address for nat_stub networks.
  std::optional<net::Ipv4Address> nat_address;
};

/// One router. Routers belong to exactly one AS.
struct Router {
  RouterId id = kNoRouter;
  asdata::Asn owner = asdata::kUnknownAsn;
  /// Links incident to this router (indices into Internet::links()).
  std::vector<LinkId> links;
  /// True when the router terminates at least one inter-AS link.
  bool border = false;
  /// Simulator behaviour (set by the generator).
  bool buggy_ttl_forwarder = false;  ///< forwards TTL=1 instead of replying
  bool replies_with_egress = false;  ///< sources replies from reply-path egress
  double reply_probability = 1.0;    ///< per-probe response likelihood
};

/// How an inter-AS link was provisioned.
enum class LinkAddressing : std::uint8_t {
  kFromA,  ///< numbered from endpoint A's address space
  kFromB,  ///< numbered from endpoint B's address space
  kIxp,    ///< numbered from an IXP peering LAN (multipoint)
};

/// A layer-3 link between two routers, with its interface addresses.
/// `addr_a` lives on router `a`; `addr_b` on router `b`.
struct Link {
  LinkId id = kNoLink;
  RouterId a = kNoRouter;
  RouterId b = kNoRouter;
  net::Ipv4Address addr_a;
  net::Ipv4Address addr_b;
  /// 30 or 31 for point-to-point links; 24 for IXP LAN segments.
  int prefix_length = 30;
  bool inter_as = false;
  LinkAddressing addressing = LinkAddressing::kFromA;
  /// IXP id when addressing == kIxp.
  std::uint32_t ixp = 0;

  [[nodiscard]] RouterId other_router(RouterId r) const {
    return r == a ? b : a;
  }
  [[nodiscard]] net::Ipv4Address address_on(RouterId r) const {
    return r == a ? addr_a : addr_b;
  }
  [[nodiscard]] net::Ipv4Address address_facing(RouterId r) const {
    return r == a ? addr_b : addr_a;
  }
};

/// Ground-truth record for one inter-AS link (exported for evaluation).
struct TrueLink {
  LinkId link = kNoLink;
  net::Ipv4Address addr_a;  ///< interface on the AS-a router
  net::Ipv4Address addr_b;  ///< interface on the AS-b router
  asdata::Asn as_a = asdata::kUnknownAsn;
  asdata::Asn as_b = asdata::kUnknownAsn;
  bool via_ixp = false;
};

}  // namespace mapit::topo
