#include "topo/internet.h"

#include <algorithm>

#include "net/error.h"

namespace mapit::topo {

const char* to_string(AsTier tier) {
  switch (tier) {
    case AsTier::kTier1: return "tier1";
    case AsTier::kTransit: return "transit";
    case AsTier::kStub: return "stub";
  }
  return "?";
}

const AsInfo& Internet::as_info(asdata::Asn asn) const {
  auto it = as_index_.find(asn);
  MAPIT_ENSURE(it != as_index_.end(), "unknown ASN in as_info()");
  return ases_[it->second];
}

RouterId Internet::router_of_address(net::Ipv4Address address) const {
  auto it = address_router_.find(address);
  return it == address_router_.end() ? kNoRouter : it->second;
}

LinkId Internet::link_of_address(net::Ipv4Address address) const {
  auto it = address_link_.find(address);
  return it == address_link_.end() ? kNoLink : it->second;
}

bgp::Rib Internet::export_rib(const DatasetNoise& noise,
                              std::uint64_t seed) const {
  std::mt19937_64 rng(seed ^ 0xA11CE5ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  bgp::Rib rib;
  std::vector<bgp::CollectorId> collectors;
  collectors.reserve(static_cast<std::size_t>(noise.collectors));
  for (int i = 0; i < noise.collectors; ++i) {
    collectors.push_back(rib.add_collector("rc" + std::to_string(i)));
  }
  for (const AsInfo& info : ases_) {
    for (const net::Prefix& prefix : info.announced) {
      if (coin(rng) < noise.fallback_only) continue;  // hidden everywhere
      bool seen = false;
      for (bgp::CollectorId collector : collectors) {
        if (coin(rng) < noise.collector_visibility) {
          rib.add_announcement(collector, prefix, info.asn);
          seen = true;
        }
      }
      if (!seen && !collectors.empty()) {
        // Guarantee at least one collector carries it, so "fallback_only"
        // is the only mechanism that hides announced space from BGP.
        rib.add_announcement(collectors.front(), prefix, info.asn);
      }
    }
  }
  return rib;
}

net::PrefixTrie<asdata::Asn> Internet::export_fallback(
    const DatasetNoise& noise, std::uint64_t seed) const {
  // Replays the same coin flips as export_rib so the fallback table covers
  // exactly the prefixes hidden from all collectors.
  std::mt19937_64 rng(seed ^ 0xA11CE5ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  net::PrefixTrie<asdata::Asn> fallback;
  for (const AsInfo& info : ases_) {
    for (const net::Prefix& prefix : info.announced) {
      if (coin(rng) < noise.fallback_only) {
        fallback.insert(prefix, info.asn);
        continue;
      }
      for (int i = 0; i < noise.collectors; ++i) coin(rng);
    }
  }
  return fallback;
}

asdata::AsRelationships Internet::export_relationships(
    const DatasetNoise& noise, std::uint64_t seed) const {
  std::mt19937_64 rng(seed ^ 0x4E1A71ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  asdata::AsRelationships out;
  for (asdata::Asn provider : true_relationships_.all_ases()) {
    for (asdata::Asn customer : true_relationships_.customers_of(provider)) {
      if (coin(rng) < noise.missing_relationship) continue;
      out.add_transit(provider, customer);
    }
    for (asdata::Asn peer : true_relationships_.peers_of(provider)) {
      if (provider < peer && coin(rng) >= noise.missing_relationship) {
        out.add_peering(provider, peer);
      }
    }
  }
  return out;
}

asdata::As2Org Internet::export_as2org(const DatasetNoise& noise,
                                       std::uint64_t seed) const {
  std::mt19937_64 rng(seed ^ 0x51B1ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  asdata::As2Org out;
  for (const AsInfo& info : ases_) {
    if (info.org == asdata::kNoOrg) continue;
    if (coin(rng) < noise.missing_sibling) continue;
    out.assign(info.asn, info.org);
  }
  return out;
}

asdata::IxpRegistry Internet::export_ixps(const DatasetNoise& noise,
                                          std::uint64_t seed) const {
  std::mt19937_64 rng(seed ^ 0x1A9ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  asdata::IxpRegistry out;
  for (const auto& [prefix, ixp] : ixp_lans_) {
    if (coin(rng) < noise.missing_ixp_prefix) continue;
    out.add_prefix(prefix, ixp);
  }
  return out;
}

std::vector<net::Ipv4Address> Internet::probe_destinations(
    int per_prefix, std::uint64_t seed) const {
  MAPIT_ENSURE(per_prefix > 0, "per_prefix must be positive");
  std::mt19937_64 rng(seed ^ 0xDE57ULL);
  std::vector<net::Ipv4Address> out;
  for (const AsInfo& info : ases_) {
    for (const net::Prefix& prefix : info.announced) {
      std::uniform_int_distribution<std::uint64_t> offset(
          0, prefix.size() - 1);
      for (int i = 0; i < per_prefix; ++i) {
        const auto value = prefix.network().value() +
                           static_cast<std::uint32_t>(offset(rng));
        out.push_back(net::Ipv4Address(value));
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace mapit::topo
