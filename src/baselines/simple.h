// The Simple and Convention heuristics (paper §5.6).
//
// Simple: scan each trace for adjacent addresses in different ASes and
// claim the first address in the new AS as the inter-AS link interface.
//
// Convention: like Simple, but when the AS relationship dataset says one
// side transits for the other, claim the address in the *provider's* space
// instead (transit links are conventionally numbered from provider space);
// otherwise fall back to Simple.
#pragma once

#include "asdata/relationships.h"
#include "baselines/claims.h"
#include "bgp/ip2as.h"
#include "trace/trace.h"

namespace mapit::baselines {

[[nodiscard]] Claims simple_heuristic(const trace::TraceCorpus& corpus,
                                      const bgp::Ip2As& ip2as);

[[nodiscard]] Claims convention_heuristic(
    const trace::TraceCorpus& corpus, const bgp::Ip2As& ip2as,
    const asdata::AsRelationships& relationships);

}  // namespace mapit::baselines
