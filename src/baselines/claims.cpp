#include "baselines/claims.h"

#include <algorithm>

namespace mapit::baselines {

Claim make_claim(net::Ipv4Address address, asdata::Asn x, asdata::Asn y) {
  return x <= y ? Claim{address, x, y} : Claim{address, y, x};
}

void normalize(Claims& claims) {
  std::sort(claims.begin(), claims.end());
  claims.erase(std::unique(claims.begin(), claims.end()), claims.end());
}

Claims claims_from_result(const core::Result& result) {
  // Direct and stub inferences only: an inference names the link, and the
  // evaluator credits a link when either endpoint is claimed (§5.2), so the
  // propagated other-side (indirect) records add no coverage — but they
  // would add errors whenever the §4.2 other-side heuristic guessed wrong.
  Claims claims;
  claims.reserve(result.inferences.size());
  for (const core::Inference& inference : result.inferences) {
    if (!inference.complete()) continue;
    if (inference.kind == core::InferenceKind::kIndirect) continue;
    claims.push_back(make_claim(inference.half.address, inference.router_as,
                                inference.other_as));
  }
  normalize(claims);
  return claims;
}

}  // namespace mapit::baselines
