// bdrmap-lite: a simplified implementation of the border-mapping approach
// of Luckie et al. ("bdrmap: Inference of Borders Between IP Networks",
// IMC 2016) — the contemporaneous system the paper names as future-work
// comparison (§6).
//
// bdrmap infers the borders of ONE network: the network hosting the
// vantage points. Probing outward from inside, it finds the last hop
// mapped to the host network and decides whether the following hop is a
// genuine neighbour using AS relationships and customer-cone evidence.
// This restriction is the key contrast with MAP-IT (§2: "MAP-IT, unlike
// bdrmap, tries to identify inter-AS link interfaces between all connected
// ASes seen in traceroute results, not just for directly connected
// networks").
//
// Simplifications relative to full bdrmap: no targeted follow-up probing
// (we are passive, like MAP-IT), no alias resolution, and a reduced
// heuristic ladder; the retained core is last-hop detection + the
// relationship/customer-cone filters that give bdrmap its precision.
#pragma once

#include "asdata/as2org.h"
#include "asdata/relationships.h"
#include "baselines/claims.h"
#include "bgp/ip2as.h"
#include "trace/trace.h"

namespace mapit::baselines {

struct BdrmapConfig {
  /// Minimum number of distinct (monitor, destination-AS) observations of
  /// a candidate border before it is believed (defends against
  /// third-party addresses, as bdrmap's heuristics do).
  std::size_t min_observations = 2;
  /// Require the probe destination's origin AS to be reachable through the
  /// candidate neighbour (equal to it, in its customer cone, or unknown) —
  /// bdrmap's cone-consistency test.
  bool require_cone_consistency = true;
};

/// Infers the borders of `host_network` from traces launched by its own
/// monitors (`host_monitors` lists the trace::MonitorId values inside it).
/// Returns claims on both visible interfaces of each accepted border.
[[nodiscard]] Claims bdrmap_lite(const trace::TraceCorpus& corpus,
                                 const std::vector<trace::MonitorId>& host_monitors,
                                 asdata::Asn host_network,
                                 const bgp::Ip2As& ip2as,
                                 const asdata::AsRelationships& relationships,
                                 const asdata::As2Org& orgs,
                                 const BdrmapConfig& config = {});

}  // namespace mapit::baselines
