#include "baselines/simple.h"

namespace mapit::baselines {

namespace {

template <typename PairFn>
Claims scan_adjacent(const trace::TraceCorpus& corpus, const bgp::Ip2As& ip2as,
                     PairFn&& emit) {
  Claims claims;
  for (const trace::Trace& trace : corpus.traces()) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const trace::TraceHop& h1 = trace.hops[i];
      const trace::TraceHop& h2 = trace.hops[i + 1];
      if (!h1.address || !h2.address) continue;
      if (h2.probe_ttl != h1.probe_ttl + 1) continue;
      const asdata::Asn as1 = ip2as.origin(*h1.address);
      const asdata::Asn as2 = ip2as.origin(*h2.address);
      if (as1 == asdata::kUnknownAsn || as2 == asdata::kUnknownAsn) continue;
      if (as1 == as2) continue;
      emit(claims, *h1.address, as1, *h2.address, as2);
    }
  }
  normalize(claims);
  return claims;
}

}  // namespace

Claims simple_heuristic(const trace::TraceCorpus& corpus,
                        const bgp::Ip2As& ip2as) {
  return scan_adjacent(
      corpus, ip2as,
      [](Claims& claims, net::Ipv4Address, asdata::Asn as1,
         net::Ipv4Address addr2, asdata::Asn as2) {
        // First address in the new AS is assumed to be the link interface.
        claims.push_back(make_claim(addr2, as1, as2));
      });
}

Claims convention_heuristic(const trace::TraceCorpus& corpus,
                            const bgp::Ip2As& ip2as,
                            const asdata::AsRelationships& relationships) {
  return scan_adjacent(
      corpus, ip2as,
      [&relationships](Claims& claims, net::Ipv4Address addr1,
                       asdata::Asn as1, net::Ipv4Address addr2,
                       asdata::Asn as2) {
        const asdata::Relationship rel = relationships.relationship(as1, as2);
        if (rel == asdata::Relationship::kProvider) {
          // Transit link numbered from the provider (as1): the address in
          // provider space is the boundary interface.
          claims.push_back(make_claim(addr1, as1, as2));
        } else if (rel == asdata::Relationship::kCustomer) {
          claims.push_back(make_claim(addr2, as1, as2));
        } else {
          // No known transit relationship: fall back to Simple.
          claims.push_back(make_claim(addr2, as1, as2));
        }
      });
}

}  // namespace mapit::baselines
