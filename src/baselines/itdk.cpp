#include "baselines/itdk.h"

#include <algorithm>
#include <map>
#include <random>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mapit::baselines {

namespace {

/// Disjoint-set over cluster indices for the false-merge phase.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

Claims itdk_router_graph(const trace::TraceCorpus& corpus,
                         const topo::Internet& net, const bgp::Ip2As& ip2as,
                         const AliasConfig& config) {
  std::mt19937_64 rng(config.seed);
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  // 1. Alias resolution simulation: each observed address lands either in
  //    its true router's main cluster or in its own singleton (split).
  const std::vector<net::Ipv4Address> addresses = corpus.distinct_addresses();
  std::unordered_map<net::Ipv4Address, std::size_t> cluster_of;
  std::map<topo::RouterId, std::size_t> main_cluster;
  std::size_t clusters = 0;
  for (net::Ipv4Address address : addresses) {
    const topo::RouterId router = net.router_of_address(address);
    if (router == topo::kNoRouter || coin(rng) < config.split_prob) {
      cluster_of[address] = clusters++;
      continue;
    }
    auto [it, inserted] = main_cluster.emplace(router, clusters);
    if (inserted) ++clusters;
    cluster_of[address] = it->second;
  }

  // 2. False merges: trace-adjacent cluster pairs occasionally collapse
  //    (kapar's analytical merging goes wrong across router boundaries).
  UnionFind uf(clusters);
  std::unordered_set<std::uint64_t> considered;
  for (const trace::Trace& trace : corpus.traces()) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& h1 = trace.hops[i];
      const auto& h2 = trace.hops[i + 1];
      if (!h1.address || !h2.address) continue;
      if (h2.probe_ttl != h1.probe_ttl + 1) continue;
      const std::size_t c1 = cluster_of.at(*h1.address);
      const std::size_t c2 = cluster_of.at(*h2.address);
      if (c1 == c2) continue;
      const std::uint64_t key = (std::uint64_t{static_cast<std::uint32_t>(
                                     std::min(c1, c2))}
                                 << 32) |
                                std::uint64_t{static_cast<std::uint32_t>(
                                    std::max(c1, c2))};
      if (!considered.insert(key).second) continue;  // one flip per pair
      if (coin(rng) < config.false_merge_prob) uf.merge(c1, c2);
    }
  }

  // 3. Router-to-AS election: majority origin of member addresses, ties to
  //    the lowest ASN (the Huffaker et al. style assignment, §2).
  std::unordered_map<std::size_t, std::map<asdata::Asn, std::size_t>> votes;
  for (net::Ipv4Address address : addresses) {
    const asdata::Asn asn = ip2as.origin(address);
    if (asn == asdata::kUnknownAsn) continue;
    ++votes[uf.find(cluster_of.at(address))][asn];
  }
  std::unordered_map<std::size_t, asdata::Asn> node_as;
  for (const auto& [node, ballot] : votes) {
    asdata::Asn best = asdata::kUnknownAsn;
    std::size_t best_votes = 0;
    for (const auto& [asn, count] : ballot) {
      if (count > best_votes) {  // std::map ascending: ties keep lowest ASN
        best_votes = count;
        best = asn;
      }
    }
    node_as.emplace(node, best);
  }

  // 4. Inter-AS links: every trace adjacency between routers assigned to
  //    different ASes claims the far-side interface.
  Claims claims;
  for (const trace::Trace& trace : corpus.traces()) {
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const auto& h1 = trace.hops[i];
      const auto& h2 = trace.hops[i + 1];
      if (!h1.address || !h2.address) continue;
      if (h2.probe_ttl != h1.probe_ttl + 1) continue;
      const std::size_t n1 = uf.find(cluster_of.at(*h1.address));
      const std::size_t n2 = uf.find(cluster_of.at(*h2.address));
      if (n1 == n2) continue;
      auto a1 = node_as.find(n1);
      auto a2 = node_as.find(n2);
      if (a1 == node_as.end() || a2 == node_as.end()) continue;
      if (a1->second == a2->second) continue;
      claims.push_back(make_claim(*h2.address, a1->second, a2->second));
    }
  }
  normalize(claims);
  return claims;
}

}  // namespace mapit::baselines
