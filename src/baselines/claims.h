// Common output currency for inter-AS link interface inference engines.
//
// Every engine — MAP-IT, the Simple and Convention heuristics, and the
// ITDK-style router-graph approaches — reduces to a set of claims
// "interface <address> is used on an inter-AS link connecting <a> and <b>",
// which the evaluator scores against ground truth.
#pragma once

#include <vector>

#include "asdata/asn.h"
#include "core/engine.h"
#include "net/ipv4.h"

namespace mapit::baselines {

/// One inter-AS link interface claim. The AS pair is stored normalized
/// (a <= b).
struct Claim {
  net::Ipv4Address address;
  asdata::Asn a = asdata::kUnknownAsn;
  asdata::Asn b = asdata::kUnknownAsn;

  friend auto operator<=>(const Claim&, const Claim&) = default;
};

using Claims = std::vector<Claim>;

/// Builds a normalized claim (swaps the pair into order).
[[nodiscard]] Claim make_claim(net::Ipv4Address address, asdata::Asn x,
                               asdata::Asn y);

/// Sorts and deduplicates a claim set in place.
void normalize(Claims& claims);

/// Converts a MAP-IT result into claims: confident inferences whose AS pair
/// is fully known (unannounced-sided inferences carry no testable pair).
[[nodiscard]] Claims claims_from_result(const core::Result& result);

}  // namespace mapit::baselines
