#include "baselines/bdrmap_lite.h"

#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "net/point_to_point.h"

namespace mapit::baselines {

namespace {

/// Memoized customer-cone membership: is `asn` inside `root`'s cone?
class CustomerCone {
 public:
  explicit CustomerCone(const asdata::AsRelationships& relationships)
      : rels_(relationships) {}

  [[nodiscard]] bool contains(asdata::Asn root, asdata::Asn asn) {
    if (root == asn) return true;
    return cone_of(root).contains(asn);
  }

 private:
  const std::unordered_set<asdata::Asn>& cone_of(asdata::Asn root) {
    auto it = cache_.find(root);
    if (it != cache_.end()) return it->second;
    std::unordered_set<asdata::Asn> cone;
    std::vector<asdata::Asn> stack{root};
    cone.insert(root);
    while (!stack.empty()) {
      const asdata::Asn current = stack.back();
      stack.pop_back();
      for (asdata::Asn customer : rels_.customers_of(current)) {
        if (cone.insert(customer).second) stack.push_back(customer);
      }
    }
    return cache_.emplace(root, std::move(cone)).first->second;
  }

  const asdata::AsRelationships& rels_;
  std::unordered_map<asdata::Asn, std::unordered_set<asdata::Asn>> cache_;
};

struct Candidate {
  net::Ipv4Address last_in;    // last interface mapped to the host network
  net::Ipv4Address first_out;  // first interface beyond it
  asdata::Asn neighbor;

  friend auto operator<=>(const Candidate&, const Candidate&) = default;
};

}  // namespace

Claims bdrmap_lite(const trace::TraceCorpus& corpus,
                   const std::vector<trace::MonitorId>& host_monitors,
                   asdata::Asn host_network, const bgp::Ip2As& ip2as,
                   const asdata::AsRelationships& relationships,
                   const asdata::As2Org& orgs, const BdrmapConfig& config) {
  const std::unordered_set<trace::MonitorId> monitors(host_monitors.begin(),
                                                      host_monitors.end());
  CustomerCone cone(relationships);

  // Candidate -> distinct (monitor, destination) observations.
  std::map<Candidate,
           std::set<std::pair<trace::MonitorId, net::Ipv4Address>>>
      observations;
  // For every host-space address: the distinct successors seen after it,
  // split into host-space and per-foreign-AS buckets. This is the passive
  // stand-in for bdrmap's alias resolution of the far router: a host-space
  // ingress whose successors fan out into several addresses of a single
  // foreign AS sits on that neighbour's router (host-named border link).
  struct Successors {
    std::unordered_set<net::Ipv4Address> host;
    std::unordered_map<asdata::Asn, std::unordered_set<net::Ipv4Address>>
        foreign;
  };
  std::unordered_map<net::Ipv4Address, Successors> successors;

  for (const trace::Trace& trace : corpus.traces()) {
    if (!monitors.contains(trace.monitor)) continue;
    const asdata::Asn dest_as = ip2as.origin(trace.destination);

    // Walk outward: find every host->foreign transition on consecutive
    // responsive hops (bdrmap's last-hop detection; there can be more than
    // one when a path re-enters the host network, each is a candidate).
    for (std::size_t i = 0; i + 1 < trace.hops.size(); ++i) {
      const trace::TraceHop& a = trace.hops[i];
      const trace::TraceHop& b = trace.hops[i + 1];
      if (!a.address || !b.address) continue;
      if (b.probe_ttl != a.probe_ttl + 1) continue;
      const asdata::Asn as_a = ip2as.origin(*a.address);
      const asdata::Asn as_b = ip2as.origin(*b.address);
      if (!orgs.are_siblings(as_a, host_network)) continue;
      if (orgs.are_siblings(as_b, host_network)) {
        successors[*a.address].host.insert(*b.address);
        continue;
      }
      if (as_b == asdata::kUnknownAsn) continue;
      successors[*a.address].foreign[as_b].insert(*b.address);

      // Cone consistency (bdrmap's defence against third-party addresses):
      // the probe's destination must plausibly route through this
      // neighbour. Providers announce everything; customers and peers only
      // their customer cones.
      if (config.require_cone_consistency &&
          dest_as != asdata::kUnknownAsn &&
          relationships.relationship(host_network, as_b) !=
              asdata::Relationship::kCustomer) {  // as_b is not our provider
        if (!cone.contains(as_b, dest_as)) continue;
      }

      observations[Candidate{*a.address, *b.address, as_b}].emplace(
          trace.monitor, trace.destination);
    }
  }

  // Interface-level reading of bdrmap's router-level borders. For each
  // accepted transition point (last host-space address):
  //  (a) a transition straddling one /30 names both link interfaces;
  //  (b) a host-space address that never precedes other host-space
  //      addresses but fans into >=2 foreign successors sits on the
  //      *neighbour's* router — the host-named-link case; the border
  //      interface is that address itself, and the neighbour is the AS
  //      owning most of its successors (the passive stand-in for bdrmap's
  //      alias resolution of the far router);
  //  (c) otherwise the address is host-internal and each far address heads
  //      its own (neighbour-named) border link.
  std::map<net::Ipv4Address, std::vector<const Candidate*>> by_near;
  for (const auto& [candidate, seen] : observations) {
    if (seen.size() < config.min_observations) continue;
    by_near[candidate.last_in].push_back(&candidate);
  }

  Claims claims;
  for (const auto& [near, candidates] : by_near) {
    bool straddles = false;
    for (const Candidate* candidate : candidates) {
      if (net::slash30_block(candidate->last_in) ==
          net::slash30_block(candidate->first_out)) {
        claims.push_back(
            make_claim(candidate->last_in, host_network, candidate->neighbor));
        claims.push_back(make_claim(candidate->first_out, host_network,
                                    candidate->neighbor));
        straddles = true;
      }
    }
    if (straddles) continue;

    const auto it = successors.find(near);
    if (it != successors.end()) {
      std::size_t fanout = 0;
      asdata::Asn majority = asdata::kUnknownAsn;
      std::size_t majority_count = 0;
      for (const auto& [asn, addrs] : it->second.foreign) {
        fanout += addrs.size();
        if (addrs.size() > majority_count ||
            (addrs.size() == majority_count && asn < majority)) {
          majority = asn;
          majority_count = addrs.size();
        }
      }
      // Host-space successors mostly rule out the far-router reading, but
      // load-balancing and route-flap artifacts can fabricate a few; allow
      // them as a small minority (bdrmap's real heuristics are similarly
      // tolerant of noise).
      if (fanout >= 2 && majority != asdata::kUnknownAsn &&
          it->second.host.size() * 3 <= fanout &&
          majority_count * 2 > fanout) {
        claims.push_back(make_claim(near, host_network, majority));
        continue;
      }
    }
    for (const Candidate* candidate : candidates) {
      claims.push_back(
          make_claim(candidate->first_out, host_network, candidate->neighbor));
    }
  }
  normalize(claims);
  return claims;
}

}  // namespace mapit::baselines
