// ITDK-style router-graph inference (paper §5.6).
//
// CAIDA's ITDK derives inter-AS links from alias-resolved router graphs:
// interfaces are clustered into routers (MIDAR conservatively; kapar much
// more aggressively), routers are assigned to ASes by interface-origin
// election, and links between routers in different ASes become inter-AS
// link claims.
//
// We do not have the probing machinery, so alias resolution is *simulated*
// against the synthetic ground truth with calibrated error rates:
//   * `split_prob`   — an interface is missed and left as a singleton
//                      (incomplete alias resolution; dominant MIDAR error);
//   * `false_merge_prob` — two trace-adjacent clusters are wrongly merged
//                      (dominant kapar error).
// This reproduces the *failure modes* that make router graphs imprecise at
// AS boundaries (§5.6: 43-67% precision), which is what the comparison in
// Fig 8 measures.
#pragma once

#include <cstdint>

#include "baselines/claims.h"
#include "bgp/ip2as.h"
#include "topo/internet.h"
#include "trace/trace.h"

namespace mapit::baselines {

struct AliasConfig {
  std::uint64_t seed = 13;
  double split_prob = 0.45;
  double false_merge_prob = 0.02;

  /// MIDAR-like: high-confidence merges only -> many splits, few bad merges.
  [[nodiscard]] static AliasConfig midar(std::uint64_t seed = 13) {
    return AliasConfig{seed, 0.45, 0.02};
  }
  /// kapar-like: analytical inference on top -> fewer splits, more bad merges.
  [[nodiscard]] static AliasConfig kapar(std::uint64_t seed = 13) {
    return AliasConfig{seed, 0.15, 0.12};
  }
};

/// Runs the ITDK-style pipeline over `corpus`: simulate alias resolution
/// for all observed addresses (using `net` as physical truth), elect
/// router-to-AS assignments with `ip2as`, and claim the far-side interface
/// of every inter-AS router adjacency.
[[nodiscard]] Claims itdk_router_graph(const trace::TraceCorpus& corpus,
                                       const topo::Internet& net,
                                       const bgp::Ip2As& ip2as,
                                       const AliasConfig& config);

}  // namespace mapit::baselines
