#include "tracesim/simulator.h"

#include <algorithm>
#include <limits>

#include "net/error.h"

namespace mapit::tracesim {

namespace {

[[nodiscard]] std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

TracerouteSimulator::TracerouteSimulator(const topo::Internet& net,
                                         const route::Forwarder& forwarder,
                                         SimulatorConfig config)
    : net_(net), forwarder_(forwarder), config_(config) {
  MAPIT_ENSURE(config_.monitor_count > 0, "need at least one monitor");
  // Deterministic placement: walk transit then stub ASes with a fixed
  // stride so monitors spread across the hierarchy (like Ark's mix of
  // academic and commodity vantage points). The designated R&E AS hosts
  // the first monitor, mirroring §5.1's "only one [verified network] has a
  // monitor".
  std::vector<const topo::AsInfo*> candidates;
  for (const topo::AsInfo& info : net_.ases()) {
    if (info.tier == topo::AsTier::kTransit && !info.nat_stub) {
      candidates.push_back(&info);
    }
  }
  for (const topo::AsInfo& info : net_.ases()) {
    if (info.tier == topo::AsTier::kStub && !info.nat_stub) {
      candidates.push_back(&info);
    }
  }
  MAPIT_ENSURE(!candidates.empty(), "no monitor-capable ASes");
  const std::size_t stride =
      std::max<std::size_t>(1, candidates.size() /
                                   static_cast<std::size_t>(config_.monitor_count));
  for (int i = 0;
       i < config_.monitor_count &&
       static_cast<std::size_t>(i) * stride < candidates.size();
       ++i) {
    const topo::AsInfo* info = candidates[static_cast<std::size_t>(i) * stride];
    Monitor monitor;
    monitor.id = static_cast<trace::MonitorId>(i);
    monitor.asn = info->asn;
    monitor.source_router = info->routers.front();
    monitors_.push_back(monitor);
  }
}

net::Ipv4Address TracerouteSimulator::router_address(
    topo::RouterId router) const {
  // Stable "router address": the lowest interface address assigned to it.
  net::Ipv4Address best(std::numeric_limits<std::uint32_t>::max());
  for (topo::LinkId id : net_.router(router).links) {
    const net::Ipv4Address address = net_.link(id).address_on(router);
    best = std::min(best, address);
  }
  return best;
}

net::Ipv4Address TracerouteSimulator::reply_egress_address(
    topo::RouterId router, const Monitor& monitor) const {
  // The router sources its ICMP reply from the egress interface of the
  // path *back to the monitor* — the third-party-address mechanism (Fig 4).
  const net::Ipv4Address monitor_address =
      router_address(monitor.source_router);
  const std::vector<route::RouterHop> reply =
      forwarder_.path(router, monitor_address, /*variant=*/0);
  if (reply.size() < 2 || reply[1].in_link == topo::kNoLink) {
    return router_address(router);
  }
  return net_.link(reply[1].in_link).address_on(router);
}

std::vector<route::RouterHop> TracerouteSimulator::hop_sequence(
    topo::RouterId source, net::Ipv4Address destination, std::mt19937_64& rng,
    SimulatorStats* stats) const {
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  const std::vector<route::RouterHop> primary =
      forwarder_.path(source, destination, /*variant=*/0);
  if (primary.empty()) return {};

  if (coin(rng) < config_.per_packet_lb_prob) {
    // Per-packet load balancing: each probe may take either of two
    // equal-preference forwarding decisions, so the reported hop at a given
    // TTL alternates between the two paths.
    const std::vector<route::RouterHop> alternate =
        forwarder_.path(source, destination, /*variant=*/1);
    if (!alternate.empty() && alternate != primary) {
      if (stats != nullptr) ++stats->lb_traces;
      std::vector<route::RouterHop> mixed;
      const std::size_t length = std::max(primary.size(), alternate.size());
      for (std::size_t i = 0; i < length; ++i) {
        const auto& pick = coin(rng) < 0.5 ? primary : alternate;
        if (i < pick.size()) {
          mixed.push_back(pick[i]);
        } else {
          const auto& other = &pick == &primary ? alternate : primary;
          if (i < other.size()) mixed.push_back(other[i]);
        }
      }
      return mixed;
    }
  }

  if (coin(rng) < config_.route_flap_prob && primary.size() > 2) {
    // Transient route change: the route shifts to a different egress
    // tie-break mid-trace; later probes follow the new path from their TTL
    // onward, which can repeat earlier routers (interface cycles).
    const std::vector<route::RouterHop> after =
        forwarder_.path(source, destination, /*variant=*/2);
    if (!after.empty() && after != primary) {
      if (stats != nullptr) ++stats->flapped_traces;
      std::uniform_int_distribution<std::size_t> cut_dist(1,
                                                          primary.size() - 1);
      const std::size_t cut = cut_dist(rng);
      std::vector<route::RouterHop> spliced(primary.begin(),
                                            primary.begin() +
                                                static_cast<std::ptrdiff_t>(cut));
      // Resume on the new path two hops *earlier* than the cut so a router
      // already reported can reappear with a different hop between — an
      // interface cycle, matching how flaps pollute real traces.
      const std::size_t resume = cut >= 2 ? cut - 2 : cut;
      for (std::size_t i = std::min(resume, after.size()); i < after.size();
           ++i) {
        spliced.push_back(after[i]);
      }
      return spliced;
    }
  }

  return primary;
}

trace::Trace TracerouteSimulator::probe(const Monitor& monitor,
                                        net::Ipv4Address destination,
                                        SimulatorStats* stats) const {
  std::mt19937_64 rng(mix(config_.seed ^ mix(monitor.id + 1) ^
                          mix(destination.value())));
  std::uniform_real_distribution<double> coin(0.0, 1.0);

  trace::Trace out;
  out.monitor = monitor.id;
  out.destination = destination;

  const std::vector<route::RouterHop> hops =
      hop_sequence(monitor.source_router, destination, rng, stats);
  if (hops.empty()) return out;

  const std::size_t limit =
      std::min<std::size_t>(hops.size(), config_.max_ttl);
  for (std::size_t i = 0; i < limit; ++i) {
    const route::RouterHop& hop = hops[i];
    const topo::Router& router = net_.router(hop.router);
    const topo::AsInfo& owner = net_.as_info(router.owner);
    trace::TraceHop th;
    th.probe_ttl = static_cast<std::uint8_t>(i + 1);

    // Buggy routers forward TTL=1 probes; the *next* router answers,
    // quoting TTL 0 (§4.1).
    if (router.buggy_ttl_forwarder) {
      if (i + 1 < hops.size()) {
        const route::RouterHop& next = hops[i + 1];
        const topo::Router& next_router = net_.router(next.router);
        th.address = next.in_link != topo::kNoLink
                         ? net_.link(next.in_link).address_on(next.router)
                         : router_address(next.router);
        // NAT stubs mask even these replies.
        const topo::AsInfo& next_owner = net_.as_info(next_router.owner);
        if (next_owner.nat_stub && next_owner.nat_address) {
          th.address = *next_owner.nat_address;
        }
        th.quoted_ttl = 0;
      }
      out.hops.push_back(th);
      continue;
    }

    // Silent cases.
    const bool silenced_border = owner.border_replies_disabled && router.border;
    if (silenced_border || coin(rng) >= router.reply_probability ||
        coin(rng) < config_.hop_loss_prob) {
      out.hops.push_back(th);  // '*'
      continue;
    }

    if (owner.nat_stub && owner.nat_address) {
      th.address = *owner.nat_address;
      th.quoted_ttl = 1;
      out.hops.push_back(th);
      continue;
    }

    if (router.replies_with_egress) {
      th.address = reply_egress_address(hop.router, monitor);
    } else if (hop.in_link != topo::kNoLink) {
      th.address = net_.link(hop.in_link).address_on(hop.router);
    } else {
      th.address = router_address(hop.router);
    }
    th.quoted_ttl = 1;
    out.hops.push_back(th);
  }

  // Destination echo reply. A host behind a NAT'd stub answers from the
  // stub's NAT address, not its internal one.
  if (limit == hops.size() && coin(rng) < config_.dest_reply_prob) {
    trace::TraceHop th;
    th.probe_ttl = static_cast<std::uint8_t>(limit + 1);
    th.address = destination;
    const asdata::Asn dest_as = forwarder_.true_origin(destination);
    if (dest_as != asdata::kUnknownAsn) {
      const topo::AsInfo& owner = net_.as_info(dest_as);
      if (owner.nat_stub && owner.nat_address) th.address = *owner.nat_address;
    }
    out.hops.push_back(th);
  }
  return out;
}

trace::TraceCorpus TracerouteSimulator::run_campaign(
    SimulatorStats* stats) const {
  SimulatorStats local;
  trace::TraceCorpus corpus;
  const std::vector<net::Ipv4Address> destinations =
      net_.probe_destinations(config_.destinations_per_prefix,
                              config_.seed ^ 0xD05ULL);
  for (const Monitor& monitor : monitors_) {
    for (net::Ipv4Address destination : destinations) {
      trace::Trace t = probe(monitor, destination, &local);
      if (t.hops.empty()) {
        ++local.unreachable;
        continue;
      }
      ++local.traces;
      corpus.add(std::move(t));
    }
  }
  if (stats != nullptr) *stats = local;
  return corpus;
}

}  // namespace mapit::tracesim
