// Traceroute campaign simulator.
//
// Emits a trace corpus over the synthetic Internet with every artifact
// class the paper's sanitizer and algorithm must survive (§4.1, §4.7):
//
//   * unresponsive hops and fully silent routers,
//   * ASes whose border routers never answer,
//   * NAT'd stub networks answering with a single address,
//   * routers replying with the egress interface of the *reply* path
//     (third-party addresses, Fig 4),
//   * buggy routers forwarding TTL=1 probes (next hop quotes TTL 0),
//   * per-packet load balancing (hops drawn from two equal-cost paths),
//   * transient route changes (path splice mid-trace).
//
// Every trace is deterministic given (config seed, monitor, destination).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "route/forwarder.h"
#include "topo/internet.h"
#include "trace/trace.h"

namespace mapit::tracesim {

struct SimulatorConfig {
  std::uint64_t seed = 7;
  /// Number of monitors (vantage points), spread over transits and stubs.
  int monitor_count = 25;
  /// Destinations sampled per announced prefix (Ark probes every /24; we
  /// scale down proportionally).
  int destinations_per_prefix = 2;
  /// Probability the destination itself answers as the final hop.
  double dest_reply_prob = 0.35;
  /// Per-hop random loss on top of router behaviour flags.
  double hop_loss_prob = 0.01;
  /// Probability a trace crosses a per-packet load balancer (hops mixed
  /// from two equal-cost path variants).
  double per_packet_lb_prob = 0.015;
  /// Probability of a transient route change mid-trace.
  double route_flap_prob = 0.03;
  std::uint8_t max_ttl = 30;
};

struct Monitor {
  trace::MonitorId id = 0;
  asdata::Asn asn = asdata::kUnknownAsn;
  topo::RouterId source_router = topo::kNoRouter;
};

struct SimulatorStats {
  std::size_t traces = 0;
  std::size_t unreachable = 0;  ///< (monitor, destination) pairs with no path
  std::size_t lb_traces = 0;
  std::size_t flapped_traces = 0;
};

class TracerouteSimulator {
 public:
  /// Both references must outlive the simulator.
  TracerouteSimulator(const topo::Internet& net,
                      const route::Forwarder& forwarder,
                      SimulatorConfig config);

  /// Monitor placement chosen at construction (deterministic).
  [[nodiscard]] const std::vector<Monitor>& monitors() const {
    return monitors_;
  }

  /// Runs the full campaign: every monitor probes every sampled
  /// destination.
  [[nodiscard]] trace::TraceCorpus run_campaign(SimulatorStats* stats = nullptr) const;

  /// Simulates a single traceroute. When `stats` is given, artifact
  /// counters (load-balanced / flapped traces) are accumulated into it.
  [[nodiscard]] trace::Trace probe(const Monitor& monitor,
                                   net::Ipv4Address destination,
                                   SimulatorStats* stats = nullptr) const;

 private:
  [[nodiscard]] net::Ipv4Address router_address(topo::RouterId router) const;
  [[nodiscard]] net::Ipv4Address reply_egress_address(
      topo::RouterId router, const Monitor& monitor) const;
  [[nodiscard]] std::vector<route::RouterHop> hop_sequence(
      topo::RouterId source, net::Ipv4Address destination,
      std::mt19937_64& rng, SimulatorStats* stats) const;

  const topo::Internet& net_;
  const route::Forwarder& forwarder_;
  SimulatorConfig config_;
  std::vector<Monitor> monitors_;
};

}  // namespace mapit::tracesim
