// DNS hostname substrate (paper §5.1.2).
//
// The paper's Level3/TeliaSonera ground truth is built by resolving the
// hostnames of interfaces seen in traces and manually interpreting their
// tags: external tags name the connected network
// ("cogent-ic-309423-den-bl.c.telia.net"), internal tags name router roles
// ("ae-41-41.ebr1.berlin1.level3.net"), and some hostnames are missing,
// ambiguous, or stale.
//
// This module reproduces that pathway end to end: a synthesizer that
// assigns hostnames to a target AS's interfaces (with coverage, staleness
// and ambiguity noise), a parser that classifies hostnames and extracts
// the peer tag, and a ground-truth builder that mirrors the paper's manual
// dataset-construction process.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "asdata/asn.h"
#include "eval/ground_truth.h"
#include "net/ipv4.h"
#include "topo/internet.h"

namespace mapit::dns {

struct HostnameConfig {
  /// Probability an interface has a resolvable hostname at all.
  double coverage = 0.9;
  /// Probability an external tag names the wrong network (stale after an
  /// acquisition or re-provisioning; inflates false positives, §5.1.2).
  double stale_prob = 0.01;
  /// Probability a hostname carries no interpretable tag (the paper
  /// removes such interfaces from its dataset).
  double ambiguous_prob = 0.04;
  std::uint64_t seed = 99;
};

/// The network label used in synthesized hostnames ("as11537").
[[nodiscard]] std::string as_label(asdata::Asn asn);

/// Parses an "asNNN" label back to its ASN; nullopt for anything else.
[[nodiscard]] std::optional<asdata::Asn> parse_as_label(std::string_view text);

/// Classification of one hostname.
enum class TagKind : std::uint8_t {
  kExternal,   ///< carries an interconnection tag naming a peer network
  kInternal,   ///< router/bundle naming with no interconnection tag
  kAmbiguous,  ///< no interpretable tag (dropped from datasets)
};

struct ParsedHostname {
  TagKind kind = TagKind::kAmbiguous;
  /// For kExternal: the peer network's label ("as10044").
  std::string peer_label;
  /// The peer label resolved to an ASN, when it parses.
  std::optional<asdata::Asn> peer_asn;
  /// The owning network's label (the second-level domain's first token).
  std::string owner_label;
};

/// Classifies a hostname and extracts its tags. Pure function; handles
/// arbitrary inputs (anything unrecognizable is kAmbiguous).
[[nodiscard]] ParsedHostname parse_hostname(std::string_view hostname);

/// Synthesizes hostnames for every interface on the target AS's routers
/// plus the far-side interfaces of its inter-AS links — the address
/// population the paper resolves for its verification datasets.
class HostnameOracle {
 public:
  HostnameOracle(const topo::Internet& net, asdata::Asn target,
                 const HostnameConfig& config);

  /// The hostname for `address`, or nullptr when unresolvable.
  [[nodiscard]] const std::string* lookup(net::Ipv4Address address) const;

  [[nodiscard]] const std::unordered_map<net::Ipv4Address, std::string>&
  hostnames() const {
    return hostnames_;
  }

  [[nodiscard]] asdata::Asn target() const { return target_; }

 private:
  asdata::Asn target_;
  std::unordered_map<net::Ipv4Address, std::string> hostnames_;
};

/// Builds the §5.1.2-style verification dataset by *parsing* the oracle's
/// hostnames, mirroring the paper's manual process: a link enters the
/// dataset when the hostname of either endpoint carries an interpretable
/// external tag; an interface is recorded internal when its hostname and
/// its other side's hostname both lack external tags; everything
/// ambiguous or unresolved is dropped.
[[nodiscard]] eval::AsGroundTruth ground_truth_from_hostnames(
    const topo::Internet& net, const HostnameOracle& oracle);

}  // namespace mapit::dns
