#include "dns/hostnames.h"

#include <array>
#include <random>
#include <vector>

#include "net/error.h"

namespace mapit::dns {

namespace {

constexpr std::array<std::string_view, 16> kCities = {
    "newy", "chic", "wash", "atla", "hous", "kans", "salt", "seat",
    "losa", "denv", "dall", "mia",  "bost", "phil", "clev", "minn"};

std::string_view city_of(topo::RouterId router) {
  return kCities[router % kCities.size()];
}

std::vector<std::string_view> split(std::string_view text, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.push_back(text.substr(start));
      return out;
    }
    out.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

std::string as_label(asdata::Asn asn) { return "as" + std::to_string(asn); }

std::optional<asdata::Asn> parse_as_label(std::string_view text) {
  if (text.size() < 3 || text.substr(0, 2) != "as") return std::nullopt;
  asdata::Asn value = 0;
  for (char c : text.substr(2)) {
    if (c < '0' || c > '9') return std::nullopt;
    value = value * 10 + static_cast<asdata::Asn>(c - '0');
  }
  return value == asdata::kUnknownAsn ? std::nullopt
                                      : std::optional<asdata::Asn>(value);
}

ParsedHostname parse_hostname(std::string_view hostname) {
  ParsedHostname parsed;
  const std::vector<std::string_view> labels = split(hostname, '.');
  // Expect "<role>.<city>.<owner>.net" (4 labels). Anything else is noise.
  if (labels.size() < 3) return parsed;
  parsed.owner_label = std::string(labels[labels.size() - 2]);

  const std::string_view role = labels.front();
  // External tag: "<peer>-ic-<id>" ("-ic-" is the interconnection marker,
  // telia.net style).
  if (const std::size_t marker = role.find("-ic-");
      marker != std::string_view::npos && marker > 0) {
    parsed.kind = TagKind::kExternal;
    parsed.peer_label = std::string(role.substr(0, marker));
    parsed.peer_asn = parse_as_label(parsed.peer_label);
    return parsed;
  }
  // Internal tag: aggregated-ethernet bundle naming, level3.net style
  // ("ae-41-41.ebr1...").
  if (role.substr(0, 3) == "ae-" || role.substr(0, 3) == "xe-") {
    parsed.kind = TagKind::kInternal;
    return parsed;
  }
  // Everything else (dialup pools, bare gateways) is uninterpretable.
  parsed.kind = TagKind::kAmbiguous;
  return parsed;
}

HostnameOracle::HostnameOracle(const topo::Internet& net, asdata::Asn target,
                               const HostnameConfig& config)
    : target_(target) {
  MAPIT_ENSURE(config.coverage >= 0.0 && config.coverage <= 1.0,
               "coverage out of range");
  std::mt19937_64 rng(config.seed ^ (std::uint64_t{target} << 18) ^ 0xD45ULL);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> as_pick(0, net.ases().size() - 1);

  auto synthesize = [&](net::Ipv4Address address) {
    if (hostnames_.contains(address)) return;
    if (coin(rng) >= config.coverage) return;  // unresolvable
    const topo::RouterId router = net.router_of_address(address);
    const topo::LinkId link_id = net.link_of_address(address);
    if (router == topo::kNoRouter || link_id == topo::kNoLink) return;
    const topo::Link& link = net.link(link_id);
    const asdata::Asn owner = net.router(router).owner;
    const std::string owner_label = as_label(owner);
    const std::string city(city_of(router));

    if (coin(rng) < config.ambiguous_prob) {
      hostnames_.emplace(address, "gw" + std::to_string(link_id) + "." +
                                      city + "." + owner_label + ".net");
      return;
    }
    if (link.inter_as) {
      asdata::Asn peer =
          net.router(link.other_router(router)).owner;
      if (coin(rng) < config.stale_prob) {
        // Stale tag: the hostname still names a previous peer.
        asdata::Asn wrong = peer;
        while (wrong == peer || wrong == owner) {
          wrong = net.ases()[as_pick(rng)].asn;
        }
        peer = wrong;
      }
      hostnames_.emplace(address, as_label(peer) + "-ic-" +
                                      std::to_string(link_id) + "." + city +
                                      "." + owner_label + ".net");
      return;
    }
    hostnames_.emplace(address,
                       "ae-" + std::to_string(link_id % 64) + "-" +
                           std::to_string(router % 16) + ".cr" +
                           std::to_string(router % 8) + "." + city + "." +
                           owner_label + ".net");
  };

  // The population the paper resolves: every interface on the target's
  // routers plus the far side of its inter-AS links.
  for (const topo::Link& link : net.links()) {
    const bool a_is_target = net.router(link.a).owner == target;
    const bool b_is_target = net.router(link.b).owner == target;
    if (a_is_target || b_is_target) {
      synthesize(link.addr_a);
      synthesize(link.addr_b);
    }
  }
}

const std::string* HostnameOracle::lookup(net::Ipv4Address address) const {
  auto it = hostnames_.find(address);
  return it == hostnames_.end() ? nullptr : &it->second;
}

eval::AsGroundTruth ground_truth_from_hostnames(const topo::Internet& net,
                                                const HostnameOracle& oracle) {
  const asdata::Asn target = oracle.target();
  std::vector<eval::LinkTruth> links;
  std::unordered_set<net::Ipv4Address> internal;

  for (const topo::TrueLink& link : net.true_links()) {
    if (link.as_a != target && link.as_b != target) continue;
    const bool target_is_a = link.as_a == target;
    const net::Ipv4Address near = target_is_a ? link.addr_a : link.addr_b;
    const net::Ipv4Address far = target_is_a ? link.addr_b : link.addr_a;
    const asdata::Asn remote = target_is_a ? link.as_b : link.as_a;

    // Interpret the near-side hostname first (it is in the target's zone);
    // fall back to the far side, whose owner label names the peer.
    std::optional<asdata::Asn> recorded;
    if (const std::string* hostname = oracle.lookup(near)) {
      const ParsedHostname parsed = parse_hostname(*hostname);
      if (parsed.kind == TagKind::kExternal && parsed.peer_asn) {
        recorded = parsed.peer_asn;
      } else if (parsed.kind == TagKind::kAmbiguous) {
        continue;  // the paper drops uninterpretable interfaces
      }
    }
    if (!recorded) {
      if (const std::string* hostname = oracle.lookup(far)) {
        const ParsedHostname parsed = parse_hostname(*hostname);
        if (parsed.kind == TagKind::kExternal) {
          recorded = parse_as_label(parsed.owner_label);
        }
      }
    }
    if (!recorded) continue;  // no usable tag on either side

    eval::LinkTruth truth;
    truth.addr_a = near;
    truth.addr_b = far;
    truth.remote = remote;
    truth.recorded_remote = *recorded;
    truth.via_ixp = link.via_ixp;
    links.push_back(truth);
  }

  // Internal interfaces: both the hostname and its link partner's hostname
  // must lack an external tag (§5.1.2's two-sided rule).
  for (const topo::Link& link : net.links()) {
    if (link.inter_as) continue;
    if (net.router(link.a).owner != target) continue;
    for (const auto& [address, partner] :
         {std::pair{link.addr_a, link.addr_b},
          std::pair{link.addr_b, link.addr_a}}) {
      const std::string* own = oracle.lookup(address);
      if (own == nullptr) continue;
      const ParsedHostname own_parsed = parse_hostname(*own);
      if (own_parsed.kind != TagKind::kInternal) continue;
      const std::string* partner_hostname = oracle.lookup(partner);
      if (partner_hostname != nullptr &&
          parse_hostname(*partner_hostname).kind == TagKind::kExternal) {
        continue;
      }
      internal.insert(address);
    }
  }

  return eval::AsGroundTruth::from_parts(target, /*exact=*/false,
                                         std::move(links),
                                         std::move(internal));
}

}  // namespace mapit::dns
