#include "query/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string>

#include "net/error.h"

namespace mapit::query {

namespace {

[[nodiscard]] bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

LineServer::LineServer(const QueryEngine& engine, std::uint16_t port)
    : engine_(engine) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    throw Error(std::string("serve: socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("serve: cannot bind 127.0.0.1:" + std::to_string(port) +
                ": " + std::strerror(err));
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) != 0 ||
      ::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(std::string("serve: listen: ") + std::strerror(err));
  }
  port_ = ntohs(addr.sin_port);
}

LineServer::~LineServer() { stop(); }

void LineServer::serve_forever() { accept_loop(); }

void LineServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void LineServer::accept_loop() {
  accept_active_.store(true);
  while (!stopping_.load()) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener shut down (stop()) or fatal error
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
  accept_active_.store(false);
}

void LineServer::handle_connection(int fd) {
  std::string pending;
  std::string responses;
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n <= 0) break;
    pending.append(buffer, static_cast<std::size_t>(n));

    // Answer every complete line in this chunk with one send.
    responses.clear();
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line(pending.data() + start, newline - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = newline + 1;
      if (line.empty()) continue;  // blank keep-alive lines get no answer
      responses += engine_.answer(line);
      responses += '\n';
    }
    pending.erase(0, start);
    if (!responses.empty() && !send_all(fd, responses)) break;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    connection_fds_.erase(std::remove(connection_fds_.begin(),
                                      connection_fds_.end(), fd),
                          connection_fds_.end());
  }
  ::close(fd);
}

void LineServer::stop() {
  // Serialize stop() callers (tests stop explicitly, the destructor stops
  // again); the second caller finds everything joined and does nothing.
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  // Wake the accept loop with shutdown only: the fd must stay open (and
  // listen_fd_ unmodified) until the loop has been joined, or the loop's
  // accept4 could race the close and land on a recycled descriptor.
  if (!stopping_.exchange(true) && listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Unblock every connection's recv; each handler closes its own fd after
    // removing itself from the list, so only shutdown (never close) here.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();

  // A serve_forever() caller cannot be joined; leave the listener open for
  // the destructor's stop() (which runs after serve_forever returned).
  if (listen_fd_ >= 0 && !accept_active_.load()) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

}  // namespace mapit::query
