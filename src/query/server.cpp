#include "query/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "net/error.h"
#include "query/hub.h"

namespace mapit::query {

namespace {

[[nodiscard]] bool send_all(fault::Io& io, int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    // MSG_NOSIGNAL: a client that disconnected mid-batch must surface as
    // EPIPE on this call, never as a process-killing SIGPIPE.
    const ssize_t n = io.send(fd, bytes.data() + sent, bytes.size() - sent,
                              MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

namespace detail {

/// Out of fds (EMFILE/ENFILE), kernel memory pressure (ENOBUFS/ENOMEM), or
/// a connection that died in the backlog (ECONNABORTED, EPROTO). A serve
/// loop that exits on any of these turns one load spike into an outage.
bool transient_accept_error(int err) {
  return err == EMFILE || err == ENFILE || err == ENOBUFS || err == ENOMEM ||
         err == ECONNABORTED || err == EPROTO || err == EAGAIN ||
         err == EWOULDBLOCK;
}

int bind_listener(const ServerOptions& options, bool nonblocking,
                  std::uint16_t* port_out) {
  const int type =
      SOCK_STREAM | SOCK_CLOEXEC | (nonblocking ? SOCK_NONBLOCK : 0);
  const int fd = ::socket(AF_INET, type, 0);
  if (fd < 0) {
    throw Error(std::string("serve: socket: ") + std::strerror(errno));
  }
  const auto fail = [fd](const std::string& what) -> int {
    const int err = errno;
    ::close(fd);
    throw Error("serve: " + what + ": " + std::strerror(err));
  };
  const int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return fail("setsockopt(SO_REUSEADDR)");
  }
  if (options.reuse_port &&
      ::setsockopt(fd, SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) != 0) {
    return fail("setsockopt(SO_REUSEPORT)");
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options.port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return fail("cannot bind 127.0.0.1:" + std::to_string(options.port));
  }
  socklen_t addr_len = sizeof(addr);
  const int backlog = options.backlog > 0 ? options.backlog : SOMAXCONN;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0 ||
      ::listen(fd, backlog) != 0) {
    return fail("listen");
  }
  *port_out = ntohs(addr.sin_port);
  return fd;
}

}  // namespace detail

std::string format_health(const QueryEngine& engine, std::uint64_t generation,
                          std::uint64_t swaps,
                          std::chrono::steady_clock::time_point started,
                          std::size_t connections, std::uint64_t refused,
                          std::uint64_t accept_retries, std::uint64_t shed,
                          const std::string& last_swap_error) {
  char crc_hex[9];
  std::snprintf(crc_hex, sizeof(crc_hex), "%08x",
                engine.reader().payload_crc32());
  const auto uptime = std::chrono::duration_cast<std::chrono::seconds>(
                          std::chrono::steady_clock::now() - started)
                          .count();
  std::string out = "OK crc32=";
  out += crc_hex;
  out += " uptime=" + std::to_string(uptime);
  out += " connections=" + std::to_string(connections);
  out += " inferences=" + std::to_string(engine.reader().inferences().size());
  out += " refused=" + std::to_string(refused);
  out += " accept_retries=" + std::to_string(accept_retries);
  out += " version=" + std::to_string(engine.reader().version());
  out += " generation=" + std::to_string(generation);
  out += " swaps=" + std::to_string(swaps);
  out += " shed=" + std::to_string(shed);
  // "never swapped" (none) and "swap failing" (the message) must be
  // distinguishable to the supervisor's probe. One token, key=value safe.
  out += " last_swap_error=";
  if (last_swap_error.empty()) {
    out += "none";
  } else {
    for (const char c : last_swap_error) {
      out += (c == ' ' || c == '\n' || c == '\r' || c == '\t') ? '_' : c;
    }
  }
  return out;
}

LineServer::LineServer(const QueryEngine& engine, const ServerOptions& options)
    : engine_(&engine),
      options_(options),
      io_(options.io != nullptr ? options.io : &fault::system_io()),
      started_(std::chrono::steady_clock::now()) {
  listen_fd_ = detail::bind_listener(options, /*nonblocking=*/false, &port_);
}

LineServer::LineServer(const QueryEngine& engine, std::uint16_t port)
    : LineServer(engine, ServerOptions{.port = port}) {}

LineServer::LineServer(SnapshotHub& hub, const ServerOptions& options)
    : hub_(&hub),
      options_(options),
      io_(options.io != nullptr ? options.io : &fault::system_io()),
      started_(std::chrono::steady_clock::now()) {
  listen_fd_ = detail::bind_listener(options, /*nonblocking=*/false, &port_);
}

LineServer::~LineServer() { stop(); }

void LineServer::serve_forever() { accept_loop(); }

void LineServer::start() {
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void LineServer::close_listener_locked() {
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void LineServer::accept_loop() {
  {
    const std::lock_guard<std::mutex> lock(listener_mutex_);
    accept_active_ = true;
  }
  std::chrono::milliseconds backoff{0};
  while (!stopping_.load()) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(listener_mutex_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) break;  // stop() already closed a never-started loop
    const int fd = io_->accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (stopping_.load()) break;
      if (err == EINTR) continue;
      if (detail::transient_accept_error(err)) {
        // Capped exponential backoff, interruptible by stop(): an EMFILE
        // burst slows accepts down, it never ends the serve loop.
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        backoff = backoff.count() == 0
                      ? std::chrono::milliseconds{1}
                      : std::min(backoff * 2, options_.max_accept_backoff);
        std::unique_lock<std::mutex> lock(listener_mutex_);
        accept_cv_.wait_for(lock, backoff, [&] { return stopping_.load(); });
        continue;
      }
      break;  // listener shut down or unrecoverable (EBADF, EINVAL)
    }
    backoff = std::chrono::milliseconds{0};
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load(std::memory_order_relaxed)) {
      ::close(fd);
      break;
    }
    if (connection_fds_.size() >= options_.max_connections) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      (void)send_all(*io_, fd, detail::kCapacityRefusal);
      ::close(fd);
      continue;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
  {
    const std::lock_guard<std::mutex> lock(listener_mutex_);
    // When stop() triggered the exit it cannot close the fd itself — this
    // thread may still have been inside accept4 on it, and a close would
    // race a recycled descriptor. Closing here, after the last accept4
    // returned, is safe for every exit path (including a serve_forever()
    // caller stop() can never join).
    if (stopping_.load()) close_listener_locked();
    accept_active_ = false;
  }
  accept_cv_.notify_all();
}

void LineServer::handle_connection(int fd) {
  const auto socket_timeout = [fd](int option, std::chrono::milliseconds ms) {
    timeval tv{};
    tv.tv_sec = static_cast<time_t>(ms.count() / 1000);
    tv.tv_usec = static_cast<suseconds_t>(ms.count() % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv));
  };
  if (options_.idle_timeout.count() > 0) {
    socket_timeout(SO_RCVTIMEO, options_.idle_timeout);
  }
  // A peer that stops *reading* must be bounded too: without SO_SNDTIMEO a
  // full socket buffer parks this thread in send() forever — stop() cannot
  // interrupt it and graceful drain stalls behind one hostile client.
  const std::chrono::milliseconds send_budget =
      options_.send_timeout.count() > 0 ? options_.send_timeout
                                        : options_.idle_timeout;
  if (send_budget.count() > 0) {
    socket_timeout(SO_SNDTIMEO, send_budget);
  }
  std::string pending;
  std::string responses;
  bool discarding = false;  // inside an oversized line, already answered
  char buffer[64 * 1024];
  while (true) {
    const ssize_t n = io_->recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;  // idle
    if (n <= 0) break;  // EOF or connection error
    std::string_view chunk(buffer, static_cast<std::size_t>(n));
    if (discarding) {
      const std::size_t newline = chunk.find('\n');
      if (newline == std::string_view::npos) continue;  // still mid-line
      chunk.remove_prefix(newline + 1);
      discarding = false;
    }
    pending.append(chunk);

    // Pin exactly one snapshot generation for this whole read batch: every
    // answer below (including HEALTH) comes from it, so a concurrent
    // republish can never tear a pipelined batch. The pin drops at the end
    // of the iteration, letting a retired generation unmap promptly.
    std::shared_ptr<const LoadedSnapshot> pin;
    const QueryEngine* engine = engine_;
    std::uint64_t generation = 1;
    if (hub_ != nullptr) {
      pin = hub_->current();
      engine = &pin->engine;
      generation = pin->generation;
    }

    // Answer every complete line in this chunk with one send.
    responses.clear();
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string_view line(pending.data() + start, newline - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      start = newline + 1;
      if (line.empty()) continue;  // blank keep-alive lines get no answer
      if (line.size() > options_.max_line_bytes) {
        responses += "ERR request line exceeds " +
                     std::to_string(options_.max_line_bytes) + " bytes";
      } else if (line == "HEALTH") {
        // Server-level readiness probe; answered here because the engine
        // knows nothing about connections or uptime.
        responses += health_line(*engine, generation);
      } else {
        responses += engine->answer(line);
      }
      responses += '\n';
    }
    pending.erase(0, start);
    // An incomplete line past the bound is answered and discarded NOW —
    // the buffer must stay bounded no matter how much the client streams
    // without a newline.
    if (pending.size() > options_.max_line_bytes) {
      responses += "ERR request line exceeds " +
                   std::to_string(options_.max_line_bytes) + " bytes\n";
      pending.clear();
      pending.shrink_to_fit();
      discarding = true;
    }
    if (!responses.empty()) {
      // Load shedding: if this batch's answers would push the server past
      // its aggregate in-flight budget, refuse the whole batch and close —
      // a bounded "try elsewhere" beats queueing unboundedly behind slow
      // readers. Checked before the bytes are owed, so shed connections
      // never contribute to the pressure they are shed for.
      const std::size_t budget = options_.max_inflight_bytes;
      if (budget > 0) {
        const std::size_t inflight =
            inflight_bytes_.load(std::memory_order_relaxed);
        if (inflight + responses.size() > budget) {
          shed_.fetch_add(1, std::memory_order_relaxed);
          (void)send_all(*io_, fd, detail::kOverloadRefusal);
          break;
        }
      }
      inflight_bytes_.fetch_add(responses.size(), std::memory_order_relaxed);
      const bool sent = send_all(*io_, fd, responses);
      inflight_bytes_.fetch_sub(responses.size(), std::memory_order_relaxed);
      if (!sent) break;
    }
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    connection_fds_.erase(std::remove(connection_fds_.begin(),
                                      connection_fds_.end(), fd),
                          connection_fds_.end());
  }
  ::close(fd);
}

std::size_t LineServer::active_connections() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return connection_fds_.size();
}

std::string LineServer::health_line(const QueryEngine& engine,
                                    std::uint64_t generation) const {
  return format_health(engine, generation,
                       hub_ != nullptr ? hub_->swap_count() : 0, started_,
                       active_connections(), refused_connections(),
                       accept_retries(), shed_connections(),
                       hub_ != nullptr ? hub_->last_error() : std::string());
}

void LineServer::stop() {
  // Serialize stop() callers (tests stop explicitly, the destructor stops
  // again); the second caller finds everything joined and does nothing.
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  if (!stopping_.exchange(true)) {
    const std::lock_guard<std::mutex> lock(listener_mutex_);
    // Wake the accept loop with shutdown only: the loop closes the fd
    // itself once it is certainly outside accept4 (see accept_loop).
    // Unconditional even when the loop is not (yet) running — shutdown on
    // an idle listener is harmless, and a start() whose thread has not
    // reached accept4 yet must still find the listener dead.
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  accept_cv_.notify_all();  // interrupt a backoff sleep immediately
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    // A serve_forever() caller runs the loop on a thread stop() cannot
    // join; wait for the loop to report exit, then close the listener if
    // the loop never ran (constructed but never served).
    std::unique_lock<std::mutex> lock(listener_mutex_);
    accept_cv_.wait(lock, [&] { return !accept_active_; });
    close_listener_locked();
  }

  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Graceful drain: half-close the read side only, so every handler sees
    // EOF after its current batch, flushes the answers it owes, and closes
    // its own fd. SHUT_RDWR here would tear answers out from under
    // in-flight batches.
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RD);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();
}

}  // namespace mapit::query
