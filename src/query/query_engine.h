// Read side of the snapshot store: typed lookups plus the line protocol
// shared by `mapit query` (batch over stdin) and `mapit serve` (TCP).
//
// A QueryEngine wraps a SnapshotReader and answers everything with binary
// searches over the mmap'd sections — it owns no per-record state, so
// construction is O(prefix records) (one pass to collect the set of prefix
// lengths present) and any number of threads may query one engine
// concurrently with no locking: all reads go to the immutable mapping.
//
// Longest-prefix match over the flat prefix sections reproduces
// net::PrefixTrie::longest_match_entry answer-for-answer (asserted on a
// randomized corpus by tests/query/query_engine_test.cpp): for each stored
// prefix length, most-specific first, the masked probe address is binary
// searched in the (network, length)-sorted span; the first hit wins.
//
// Line protocol (one query per line, exactly one answer line per query):
//
//   lookup <addr> <f|b>     inference on that half, result_io line format
//                           ("<addr>|<dir>|<router>|<other>|<kind>|<v>/<n>");
//                           uncertain inferences get an "uncertain|" prefix;
//                           "MISS" when the half has no inference
//   addr <addr>             all confident inferences on the address,
//                           ';'-joined result_io lines, or "MISS"
//   ip2as <addr>            base LPM: "<prefix>|<asn>|<bgp|fallback>",
//                           or "unannounced"
//   ip2as <addr> <f|b>      the run's final refined mapping for that half:
//                           "<asn>|final" when the engine overrode the base
//                           mapping, else "<asn>|base"
//   links <asn> <asn>       inter-AS links of the (unordered) pair:
//                           "<count>[ <low>-<high>]..."
//   stats                   one-line "key=value ..." summary of the artifact
//
// Malformed queries answer "ERR <reason>" — the connection/batch keeps
// going, so one bad line cannot poison a pipelined stream.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <utility>

#include "asdata/asn.h"
#include "graph/halves.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "store/reader.h"

namespace mapit::query {

class QueryEngine {
 public:
  /// `reader` must outlive the engine (the engine reads through its spans).
  explicit QueryEngine(const store::SnapshotReader& reader);

  /// Exact interface-half lookup; nullptr when absent.
  [[nodiscard]] const store::InferenceRecord* lookup(
      net::Ipv4Address address, graph::Direction direction) const;

  /// Both halves of an address: the (possibly empty) contiguous run of
  /// inference records with that address.
  [[nodiscard]] std::span<const store::InferenceRecord> lookup_address(
      net::Ipv4Address address) const;

  /// Longest-prefix match over one prefix layer, trie-equivalent.
  [[nodiscard]] static std::optional<std::pair<net::Prefix, asdata::Asn>>
  longest_match(std::span<const store::PrefixRecord> prefixes,
                std::uint64_t lengths_mask, net::Ipv4Address address);

  struct Ip2AsAnswer {
    asdata::Asn asn = asdata::kUnknownAsn;
    std::optional<net::Prefix> prefix;
    bool from_fallback = false;
    [[nodiscard]] bool announced() const { return prefix.has_value(); }
  };
  /// Base mapping: BGP layer first, then fallback (Ip2As layering).
  [[nodiscard]] Ip2AsAnswer ip2as(net::Ipv4Address address) const;

  /// Final refined per-half mapping: the engine's convergence override when
  /// one exists, else the base LPM origin. `.second` is true on override.
  [[nodiscard]] std::pair<asdata::Asn, bool> final_mapping(
      net::Ipv4Address address, graph::Direction direction) const;

  /// All links connecting the unordered AS pair {a, b}.
  [[nodiscard]] std::span<const store::LinkRecord> links_between(
      asdata::Asn a, asdata::Asn b) const;

  /// Answers one protocol line (without trailing newline).
  [[nodiscard]] std::string answer(std::string_view query) const;

  [[nodiscard]] const store::SnapshotReader& reader() const { return reader_; }

 private:
  const store::SnapshotReader& reader_;
  /// Bit L set when any prefix of length L exists in the section (bits
  /// 0..32); bounds the LPM probe to lengths actually present.
  std::uint64_t bgp_lengths_ = 0;
  std::uint64_t fallback_lengths_ = 0;
};

/// Formats one inference record as the core/result_io line (identical to
/// core::write_inferences output for the equivalent Inference).
[[nodiscard]] std::string format_inference(const store::InferenceRecord& r);

}  // namespace mapit::query
