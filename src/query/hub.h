// Live snapshot hot-swap for the query servers.
//
// `mapit ingest` republishes the snapshot file by atomic rename, so the
// path always names either the old or the new complete file — never a torn
// one. A SnapshotHub watches that path: refresh() cheaply stats it, and
// when the identity (inode/size/mtime) changed, opens + fully validates
// the new file and swaps it in as a new *generation*.
//
// Readers never block and never see a mix: a server pins the current
// generation once per read batch (one shared_ptr copy under a mutex) and
// answers the whole batch from it, so every answer in a batch comes from
// exactly one generation (pinned by the TSan hot-swap test). The old
// generation's mmap is retired only when the last in-flight batch drops
// its pin — connections survive a swap untouched.
//
// A refresh that fails validation (half-copied file, version skew, CRC
// damage) is counted and ignored: the hub keeps serving the previous
// generation, because a bad publish must degrade to staleness, not to an
// outage.
#pragma once

#include <sys/stat.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "fault/io.h"
#include "query/query_engine.h"
#include "store/reader.h"

namespace mapit::query {

/// One loaded snapshot generation: the mmap'd reader, the engine answering
/// over it, and the generation counter HEALTH reports. Heap-held and
/// immovable — `engine` holds a reference to `reader`, which member order
/// keeps valid for the object's whole life.
struct LoadedSnapshot {
  store::SnapshotReader reader;
  QueryEngine engine;
  std::uint64_t generation;

  LoadedSnapshot(store::SnapshotReader reader_in, std::uint64_t generation_in)
      : reader(std::move(reader_in)), engine(reader), generation(generation_in) {}

  LoadedSnapshot(const LoadedSnapshot&) = delete;
  LoadedSnapshot& operator=(const LoadedSnapshot&) = delete;
};

class SnapshotHub {
 public:
  /// Opens and validates the snapshot at `path` as generation 1. Throws
  /// store::SnapshotError when the initial load fails — a server must not
  /// come up empty.
  explicit SnapshotHub(std::string path, fault::Io& io = fault::system_io());

  /// The generation currently served. Callers hold the returned pin for
  /// exactly one read batch: long enough for batch-internal consistency,
  /// short enough that an old generation retires promptly after a swap.
  [[nodiscard]] std::shared_ptr<const LoadedSnapshot> current() const;

  /// Checks the path for a republished snapshot and swaps it in. Returns
  /// true when a new generation went live. Cheap when nothing changed (one
  /// open + fstat); safe to call from a poll thread while servers answer.
  bool refresh();

  /// Successful swaps so far (the initial load is not a swap).
  [[nodiscard]] std::uint64_t swap_count() const {
    return swaps_.load(std::memory_order_relaxed);
  }

  /// Refreshes that found a changed file but failed to validate it.
  [[nodiscard]] std::uint64_t failed_refreshes() const {
    return failed_.load(std::memory_order_relaxed);
  }

  /// The most recent refresh failure message, or "" when every refresh so
  /// far succeeded. Never cleared by a later success: HEALTH consumers see
  /// `swaps=` advance past the error and know the hub recovered, while the
  /// message itself distinguishes "never swapped" from "swap failing".
  [[nodiscard]] std::string last_error() const;

  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  struct FileIdentity {
    ::dev_t dev = 0;
    ::ino_t ino = 0;
    ::off_t size = 0;
    ::timespec mtim = {0, 0};

    friend bool operator==(const FileIdentity& a, const FileIdentity& b) {
      return a.dev == b.dev && a.ino == b.ino && a.size == b.size &&
             a.mtim.tv_sec == b.mtim.tv_sec &&
             a.mtim.tv_nsec == b.mtim.tv_nsec;
    }
  };

  /// stats `path_`; false (and counts a failure) when it cannot.
  bool stat_path(FileIdentity* out);

  std::string path_;
  fault::Io* io_;

  mutable std::mutex mutex_;  ///< guards current_ and identity_
  std::shared_ptr<const LoadedSnapshot> current_;
  FileIdentity identity_;
  std::uint64_t next_generation_ = 2;

  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> failed_{0};

  mutable std::mutex error_mutex_;  ///< guards last_error_
  std::string last_error_;
};

}  // namespace mapit::query
