// Blocking TCP line-protocol server over a QueryEngine.
//
// Protocol: clients send QueryEngine protocol lines ('\n'-terminated, CRLF
// tolerated); the server answers each non-empty line with exactly one
// answer line, in order, so clients may pipeline arbitrarily deep batches.
// Answers for all complete lines in one read are written with a single
// send, which is what sustains 100k+ queries/sec over loopback (see
// bench/perf_query_report.cpp).
//
// Concurrency: one thread per connection. Every connection thread shares
// the one QueryEngine — the snapshot mapping is immutable and the engine
// holds no mutable state, so there is no locking anywhere on the query
// path. Server bookkeeping (the live-connection list) is mutex-protected;
// it is touched only on connect/disconnect.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "query/query_engine.h"

namespace mapit::query {

class LineServer {
 public:
  /// Binds and listens on 127.0.0.1:`port` (0 picks an ephemeral port, see
  /// port()). Throws mapit::Error when the socket cannot be set up.
  /// `engine` must outlive the server.
  LineServer(const QueryEngine& engine, std::uint16_t port);

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Stops and joins every thread.
  ~LineServer();

  /// The bound port (the chosen one when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Runs the accept loop on the calling thread until stop() (from another
  /// thread) or a fatal socket error. `mapit serve` sits in this.
  void serve_forever();

  /// Runs the accept loop on a background thread (tests and benches).
  void start();

  /// Shuts down the listener and every live connection, then joins all
  /// server threads. Idempotent.
  void stop();

 private:
  void accept_loop();
  void handle_connection(int fd);

  const QueryEngine& engine_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  /// True while accept_loop() runs; stop() must not close the listener
  /// while a serve_forever() caller may still be inside accept4.
  std::atomic<bool> accept_active_{false};
  std::thread accept_thread_;

  std::mutex mutex_;
  std::mutex stop_mutex_;  ///< serializes stop() (explicit stop + destructor)
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

}  // namespace mapit::query
