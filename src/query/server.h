// Blocking TCP line-protocol server over a QueryEngine.
//
// Protocol: clients send QueryEngine protocol lines ('\n'-terminated, CRLF
// tolerated); the server answers each non-empty line with exactly one
// answer line, in order, so clients may pipeline arbitrarily deep batches.
// One line is handled by the server itself rather than the engine: "HEALTH"
// answers a readiness line ("OK crc32=<hex> uptime=<n> connections=<n>
// inferences=<n> refused=<n> accept_retries=<n> ... last_swap_error=<...>")
// so load balancers and the `mapit supervise` probe can check the server
// and verify which snapshot it is serving (see format_health below).
// Answers for all complete lines in one read are written with a single
// send, which is what sustains 100k+ queries/sec over loopback (see
// bench/perf_query_report.cpp).
//
// Concurrency: one thread per connection. Every connection thread shares
// the one QueryEngine — the snapshot mapping is immutable and the engine
// holds no mutable state, so there is no locking anywhere on the query
// path. Server bookkeeping (the live-connection list) is mutex-protected;
// it is touched only on connect/disconnect.
//
// Overload and failure behavior (DESIGN.md §9):
//   * accept4 failures are never fatal: transient errors (EMFILE, ENFILE,
//     ECONNABORTED, ENOBUFS, ENOMEM, EAGAIN) retry with capped exponential
//     backoff; only listener shutdown ends the loop.
//   * At `max_connections` live connections a new client gets one refusal
//     line ("ERR server at connection capacity (try again later)") and an
//     immediate close — the 503 of this protocol.
//   * A request line longer than `max_line_bytes` is answered with an ERR
//     line and discarded through its terminating newline; the connection
//     and the rest of the batch survive, and the buffer never grows
//     unboundedly.
//   * Connections idle longer than `idle_timeout` are closed (SO_RCVTIMEO).
//   * stop() drains gracefully: the read side of every connection is shut
//     down, in-flight batches finish and their answers are sent, then the
//     connection closes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "fault/io.h"
#include "query/query_engine.h"

namespace mapit::query {

class SnapshotHub;      // hub.h — live snapshot hot-swap
struct LoadedSnapshot;  // hub.h — one pinned snapshot generation

/// Options shared by both servers (the blocking LineServer here and the
/// epoll AsyncServer in async_server.h); fields that only one of them
/// consults say so.
struct ServerOptions {
  /// 127.0.0.1 port to bind (0 picks an ephemeral port, see port()).
  std::uint16_t port = 0;
  /// Close connections with no traffic for this long. zero = no timeout.
  std::chrono::milliseconds idle_timeout{0};
  /// Give up on a blocked send after this long and drop the connection
  /// (LineServer: SO_SNDTIMEO). Zero falls back to `idle_timeout` — a
  /// client that neither reads nor writes for the idle budget is gone
  /// either way. Both zero = block forever (test-only setups).
  /// The AsyncServer never blocks in send; backpressure replaces this.
  std::chrono::milliseconds send_timeout{0};
  /// listen(2) backlog; 0 = SOMAXCONN. Accept bursts beyond the backlog
  /// get SYN drops/refusals the server never sees, so default to the
  /// kernel cap rather than a magic small number.
  int backlog = 0;
  /// Set SO_REUSEPORT so N independent server processes can share one
  /// port and the kernel load-balances connections across them (each
  /// process mmaps the same immutable snapshot).
  bool reuse_port = false;
  /// Live-connection cap; the excess client gets a refusal line + close.
  std::size_t max_connections = 256;
  /// Longest accepted request line (bytes, excluding the newline).
  std::size_t max_line_bytes = 1 << 20;
  /// Upper bound for the accept-failure backoff sleep.
  std::chrono::milliseconds max_accept_backoff{200};
  /// AsyncServer write-buffer high-water mark: once a connection owes this
  /// many unsent bytes, the server stops *reading* from it (EPOLLIN off)
  /// until the peer drains below half — a stalled reader caps its own
  /// memory and never blocks the loop.
  std::size_t max_write_buffer = 1 << 20;
  /// AsyncServer stop() drain bound: connections that cannot flush their
  /// pending answers within this budget are closed anyway, so a stalled
  /// reader cannot block graceful shutdown.
  std::chrono::milliseconds drain_timeout{5000};
  /// Load-shedding budget: aggregate answer bytes accepted but not yet
  /// handed to the kernel, across all connections of this server. A batch
  /// that would push past the budget is not processed — the client gets
  /// "ERR overloaded retry" and a close instead of queueing unboundedly.
  /// 0 = unlimited (the default; per-connection bounds still apply).
  std::size_t max_inflight_bytes = 0;
  /// Injectable syscall boundary (nullptr = fault::system_io()).
  fault::Io* io = nullptr;
};

namespace detail {

/// Creates, binds, and starts listening on the 127.0.0.1:`options.port`
/// listener socket both servers share (SO_REUSEADDR, optional
/// SO_REUSEPORT, `options.backlog` or SOMAXCONN). Returns the fd and
/// writes the bound port; throws mapit::Error on any failure.
[[nodiscard]] int bind_listener(const ServerOptions& options, bool nonblocking,
                                std::uint16_t* port_out);

/// accept4 errnos that mean "right now", not "never again" (shared by both
/// servers' accept paths).
[[nodiscard]] bool transient_accept_error(int err);

/// The refusal line clients past `max_connections` receive.
inline constexpr char kCapacityRefusal[] =
    "ERR server at connection capacity (try again later)\n";

/// The shed answer clients get when the in-flight budget is exhausted
/// (ServerOptions::max_inflight_bytes). Clients should back off and retry.
inline constexpr char kOverloadRefusal[] = "ERR overloaded retry\n";

}  // namespace detail

/// The HEALTH probe answer (no trailing newline); shared so both servers
/// report the identical format. `generation` and `swaps` describe the live
/// snapshot hot-swap state (generation 1 / 0 swaps for a server bound to a
/// fixed engine); the snapshot's own format version comes from the engine's
/// reader. `shed` counts connections refused by the in-flight budget;
/// `last_swap_error` is the most recent hot-swap failure ("" = none yet —
/// reported as `last_swap_error=none`, spaces become '_' so the line stays
/// key=value parseable). New fields append at the end — probes match the
/// line's prefix.
[[nodiscard]] std::string format_health(
    const QueryEngine& engine, std::uint64_t generation, std::uint64_t swaps,
    std::chrono::steady_clock::time_point started, std::size_t connections,
    std::uint64_t refused, std::uint64_t accept_retries, std::uint64_t shed,
    const std::string& last_swap_error);

class LineServer {
 public:
  /// Binds and listens on 127.0.0.1:`options.port`. Throws mapit::Error
  /// when the socket cannot be set up. `engine` must outlive the server.
  LineServer(const QueryEngine& engine, const ServerOptions& options);

  /// Convenience: default options with an explicit port.
  LineServer(const QueryEngine& engine, std::uint16_t port);

  /// Hot-swap mode: answers from `hub`'s current snapshot generation,
  /// pinned once per read batch, so a republish never tears a pipelined
  /// batch and never drops a connection. `hub` must outlive the server.
  LineServer(SnapshotHub& hub, const ServerOptions& options);

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Stops and joins every thread.
  ~LineServer();

  /// The bound port (the chosen one when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Runs the accept loop on the calling thread until stop() (from another
  /// thread) or listener shutdown. `mapit serve` sits in this.
  void serve_forever();

  /// Runs the accept loop on a background thread (tests and benches).
  void start();

  /// Shuts down the listener, drains every live connection (in-flight
  /// batches are answered before the close), then joins all server
  /// threads. Idempotent.
  void stop();

  /// Connections refused with the capacity line so far.
  [[nodiscard]] std::uint64_t refused_connections() const {
    return refused_.load(std::memory_order_relaxed);
  }

  /// accept4 failures absorbed by backoff so far.
  [[nodiscard]] std::uint64_t accept_retries() const {
    return accept_retries_.load(std::memory_order_relaxed);
  }

  /// Connections closed with the overload answer (max_inflight_bytes).
  [[nodiscard]] std::uint64_t shed_connections() const {
    return shed_.load(std::memory_order_relaxed);
  }

  /// Live connections right now (the HEALTH line reports this too).
  [[nodiscard]] std::size_t active_connections() const;

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// Answer for the server-level "HEALTH" probe line (no trailing
  /// newline), reporting the batch's pinned engine and generation.
  [[nodiscard]] std::string health_line(const QueryEngine& engine,
                                        std::uint64_t generation) const;
  /// Closes the listener exactly once (whichever of the accept loop's exit
  /// and stop() runs last with the fd still open does it).
  void close_listener_locked();

  const QueryEngine* engine_ = nullptr;  ///< fixed-engine mode; else null
  SnapshotHub* hub_ = nullptr;           ///< hot-swap mode; else null
  ServerOptions options_;
  fault::Io* io_ = nullptr;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> accept_retries_{0};
  std::atomic<std::uint64_t> shed_{0};
  /// Aggregate answer bytes currently being written across all connection
  /// threads — the quantity max_inflight_bytes budgets.
  std::atomic<std::size_t> inflight_bytes_{0};
  std::thread accept_thread_;

  /// Guards listen_fd_ and accept_active_; accept_cv_ signals accept-loop
  /// exit (so stop() can wait out a serve_forever() caller it cannot join)
  /// and interrupts backoff sleeps.
  std::mutex listener_mutex_;
  std::condition_variable accept_cv_;
  bool accept_active_ = false;

  /// When the server came up (HEALTH uptime). Set once in the constructor.
  std::chrono::steady_clock::time_point started_;

  mutable std::mutex mutex_;
  std::mutex stop_mutex_;  ///< serializes stop() (explicit stop + destructor)
  std::vector<std::thread> connections_;
  std::vector<int> connection_fds_;
};

}  // namespace mapit::query
