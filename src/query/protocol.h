// Socketless protocol state machine shared by the query servers and the
// in-process fuzz/replay harnesses.
//
// A ProtocolSession is exactly one connection's request-side framing,
// factored out of the event loop so the same production code can be driven
// from an epoll readiness callback, a unit test, or a libFuzzer harness —
// bytes in, answer bytes out, no sockets anywhere.
//
// Protocols (identical to the AsyncServer wire behavior, which delegates
// here):
//   * Line protocol — one '\n'-terminated query per line (CRLF tolerated),
//     exactly one answer line per non-empty request line. A line longer
//     than `max_line_bytes` is answered with an ERR line and discarded
//     through its terminating newline; the session survives.
//   * Binary protocol — a session whose first four bytes are the magic
//     "MQB1" switches to length-prefixed framing: `uint32 little-endian
//     payload length` + payload, one protocol line per request frame, one
//     answer frame per request. An oversized frame is answered with an ERR
//     frame and its payload is skipped; the session survives. The magic
//     contains no '\n' and no query verb starts with 'M', so mode sniffing
//     is decided by the very first byte; a strict prefix of the magic
//     simply waits for more bytes.
//
// The "HEALTH" request is server-level, not engine-level: the owner
// supplies a callback producing the health line (servers report uptime and
// connection counters); without one, HEALTH falls through to the engine,
// which answers ERR — harnesses that only care about framing need no fake
// server state.
//
// Buffering is bounded: an unterminated line is answered-and-discarded the
// moment it exceeds `max_line_bytes`, and a complete-but-oversized frame is
// never buffered at all, so a peer streaming garbage can pin at most
// max_line_bytes + one read chunk of memory.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "query/query_engine.h"

namespace mapit::query {

/// First bytes of a binary-protocol session ("MQB1").
inline constexpr char kBinaryProtocolMagic[4] = {'M', 'Q', 'B', '1'};

/// Appends one binary-protocol frame (little-endian uint32 length +
/// payload) to `out`. Shared with clients in tests and benches.
void append_binary_frame(std::string& out, std::string_view payload);

class ProtocolSession {
 public:
  /// Answer for the server-level "HEALTH" probe (no trailing newline).
  using HealthFn = std::function<std::string()>;

  /// `engine` must outlive the session (or every feed must use the
  /// engine-explicit overload below, which re-points the session first).
  /// `max_line_bytes` bounds both a request line and a binary frame
  /// payload. `health` may be empty (see above).
  explicit ProtocolSession(const QueryEngine& engine,
                           std::size_t max_line_bytes = 1 << 20,
                           HealthFn health = {});

  /// Consumes `bytes` and appends the answer bytes for every request they
  /// complete to `out`. Incomplete trailing input is buffered for the next
  /// feed, so arbitrary chunking produces byte-identical output.
  void feed(std::string_view bytes, std::string& out);

  /// Same, answering from `engine` instead of the constructor's — the
  /// hot-swap path: a server pins one snapshot generation per read batch
  /// and feeds with it, so every answer in the batch (all frames, all
  /// lines) comes from exactly that generation. Framing state carries
  /// across feeds regardless of which engine each one used.
  void feed(const QueryEngine& engine, std::string_view bytes,
            std::string& out);

  /// True once the magic decided this is a binary-framing session.
  [[nodiscard]] bool binary_mode() const { return mode_ == Mode::kBinary; }

  /// Unparsed request bytes currently buffered (bounded, see above).
  [[nodiscard]] std::size_t buffered_bytes() const { return in_.size(); }

 private:
  enum class Mode { kUndecided, kLine, kBinary };

  void process(std::string& out);
  void process_line(std::string& out);
  void process_binary(std::string& out);
  [[nodiscard]] std::string answer_health();

  const QueryEngine* engine_;
  std::size_t max_line_bytes_;
  HealthFn health_;
  Mode mode_ = Mode::kUndecided;
  std::string in_;                         ///< unparsed request bytes
  std::uint64_t discard_frame_bytes_ = 0;  ///< oversized-frame payload left
  bool discarding_line_ = false;  ///< inside an oversized line (answered)
};

}  // namespace mapit::query
