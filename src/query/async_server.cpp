#include "query/async_server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <string_view>
#include <vector>

#include "net/error.h"
#include "query/hub.h"

namespace mapit::query {

namespace {

/// One epoll_wait batch. Level-triggered events re-report, so a small batch
/// only costs extra wakeups, never lost readiness.
constexpr int kMaxEvents = 128;

/// recv chunk size (matches the blocking server's stack buffer).
constexpr std::size_t kReadChunk = 64 * 1024;

/// Compact the write buffer once this many sent bytes sit in front of the
/// unsent tail — keeps memory bounded without erasing on every flush.
constexpr std::size_t kCompactThreshold = 256 * 1024;

int clamp_ms(std::chrono::steady_clock::duration d) {
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(d).count();
  if (ms <= 0) return 0;
  if (ms > 60'000) return 60'000;
  // Round up: waking one tick early busy-spins, one tick late is harmless.
  return static_cast<int>(ms) + 1;
}

}  // namespace

AsyncServer::AsyncServer(const QueryEngine& engine,
                         const ServerOptions& options)
    : engine_(&engine),
      options_(options),
      io_(options.io != nullptr ? options.io : &fault::system_io()),
      started_(std::chrono::steady_clock::now()) {
  init_sockets();
}

AsyncServer::AsyncServer(SnapshotHub& hub, const ServerOptions& options)
    : hub_(&hub),
      options_(options),
      io_(options.io != nullptr ? options.io : &fault::system_io()),
      started_(std::chrono::steady_clock::now()) {
  init_sockets();
}

void AsyncServer::init_sockets() {
  listen_fd_ = detail::bind_listener(options_, /*nonblocking=*/true, &port_);
  epoll_fd_ = io_->epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error(std::string("serve: epoll_create1: ") + std::strerror(err));
  }
  if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    ::close(epoll_fd_);
    listen_fd_ = epoll_fd_ = -1;
    throw Error(std::string("serve: pipe2: ") + std::strerror(err));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fds_[0];
  if (io_->epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &event) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    ::close(epoll_fd_);
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    listen_fd_ = epoll_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
    throw Error(std::string("serve: epoll_ctl(wake pipe): ") +
                std::strerror(err));
  }
}

AsyncServer::AsyncServer(const QueryEngine& engine, std::uint16_t port)
    : AsyncServer(engine, ServerOptions{.port = port}) {}

AsyncServer::~AsyncServer() { stop(); }

void AsyncServer::serve_forever() { event_loop(); }

void AsyncServer::start() {
  loop_thread_ = std::thread([this] { event_loop(); });
}

void AsyncServer::close_listener() {
  if (listen_fd_ >= 0) {
    if (listener_registered_) {
      io_->epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      listener_registered_ = false;
    }
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AsyncServer::rearm(Connection& connection) {
  std::uint32_t want = 0;
  const bool may_read =
      !connection.paused && !connection.want_close && !draining_;
  if (may_read) want |= EPOLLIN;
  if (connection.pending_out() > 0) want |= EPOLLOUT;
  if (want == connection.armed) return;
  epoll_event event{};
  event.events = want;
  event.data.fd = connection.fd;
  // A mask of 0 still watches EPOLLHUP/EPOLLERR (they cannot be masked
  // out), which is exactly what a paused connection needs: no reads, but a
  // vanished peer is still noticed.
  if (io_->epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, connection.fd, &event) != 0) {
    // EPOLL_CTL_MOD on a registered fd only fails when the kernel is in
    // real trouble (ENOMEM); drop the connection rather than serve it with
    // a stale mask.
    close_connection(connection);
    return;
  }
  connection.armed = want;
}

void AsyncServer::close_connection(Connection& connection) {
  const int fd = connection.fd;
  total_pending_ -= connection.pending_out();
  io_->epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  connections_.erase(fd);  // destroys `connection`
  active_.store(connections_.size(), std::memory_order_relaxed);
}

bool AsyncServer::flush(Connection& connection) {
  const std::size_t before = connection.pending_out();
  while (connection.out_off < connection.out.size()) {
    const ssize_t n = io_->send(connection.fd,
                                connection.out.data() + connection.out_off,
                                connection.out.size() - connection.out_off,
                                MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n <= 0) {
      // Peer vanished (EPIPE/ECONNRESET/...): the caller closes the
      // connection, which settles the in-flight accounting itself.
      total_pending_ -= before - connection.pending_out();
      return false;
    }
    connection.out_off += static_cast<std::size_t>(n);
  }
  total_pending_ -= before - connection.pending_out();
  if (connection.out_off >= connection.out.size()) {
    connection.out.clear();
    connection.out_off = 0;
  } else if (connection.out_off > kCompactThreshold) {
    connection.out.erase(0, connection.out_off);
    connection.out_off = 0;
  }
  // Backpressure release: the peer drained below half the high-water mark,
  // reading may resume.
  if (connection.paused &&
      connection.pending_out() < options_.max_write_buffer / 2) {
    connection.paused = false;
  }
  return true;
}

std::string AsyncServer::health_line() const {
  // Loop thread only: `feeding_` is set for exactly the feed that can call
  // this (HEALTH is answered synchronously inside session.feed), so the
  // probe reports the generation answering the rest of its batch.
  const QueryEngine& engine =
      feeding_ != nullptr ? feeding_->engine : *engine_;
  const std::uint64_t generation =
      feeding_ != nullptr ? feeding_->generation : 1;
  return format_health(engine, generation,
                       hub_ != nullptr ? hub_->swap_count() : 0, started_,
                       connections_.size(), refused_connections(),
                       accept_retries(), shed_connections(),
                       hub_ != nullptr ? hub_->last_error() : std::string());
}

void AsyncServer::shed_connection(Connection& connection) {
  shed_.fetch_add(1, std::memory_order_relaxed);
  // One refusal in the peer's own framing, then close once it is flushed.
  // The answer is a few dozen bytes — bounded even though the budget is
  // already blown; anything less (a silent close) reads as a server bug to
  // clients instead of a back-off signal.
  const std::size_t before = connection.pending_out();
  constexpr std::string_view kAnswer = "ERR overloaded retry";
  if (connection.session.binary_mode()) {
    append_binary_frame(connection.out, kAnswer);
  } else {
    connection.out.append(kAnswer);
    connection.out += '\n';
  }
  total_pending_ += connection.pending_out() - before;
  connection.want_close = true;
  if (!flush(connection) || connection.pending_out() == 0) {
    close_connection(connection);
    return;
  }
  rearm(connection);
}

void AsyncServer::handle_readable(Connection& connection,
                                  std::chrono::steady_clock::time_point now) {
  // Load shedding: past the aggregate in-flight budget, stop taking on new
  // work — this readable connection gets one overload answer and a close.
  // Checked before reading so a shed batch is never parsed or answered,
  // and pressure can only fall while the server is over budget.
  if (options_.max_inflight_bytes > 0 &&
      total_pending_ > options_.max_inflight_bytes) {
    shed_connection(connection);
    return;
  }
  // Pin exactly one snapshot generation for this readiness event's whole
  // read batch (hub mode): every answer it produces comes from it, so a
  // concurrent republish can never tear a batch. The pin drops on return.
  std::shared_ptr<const LoadedSnapshot> pin;
  const QueryEngine* engine = engine_;
  if (hub_ != nullptr) {
    pin = hub_->current();
    engine = &pin->engine;
  }
  feeding_ = pin.get();
  struct FeedScope {
    AsyncServer& server;
    ~FeedScope() { server.feeding_ = nullptr; }
  } feed_scope{*this};

  char buffer[kReadChunk];
  while (!connection.paused && !connection.want_close) {
    const ssize_t n = io_->recv(connection.fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0) {  // connection error: answers owed are undeliverable anyway
      close_connection(connection);
      return;
    }
    if (n == 0) {
      // Peer half-closed: no more requests, flush what it is owed, then
      // close. Matches the blocking server's drain-on-EOF behavior.
      connection.want_close = true;
      break;
    }
    connection.last_activity = now;
    const std::size_t before = connection.pending_out();
    connection.session.feed(*engine,
                            std::string_view(buffer,
                                             static_cast<std::size_t>(n)),
                            connection.out);
    total_pending_ += connection.pending_out() - before;
    if (!flush(connection)) {
      close_connection(connection);
      return;
    }
    // Backpressure: the peer is not draining its answers; stop reading
    // (and therefore answering) until it does. The write buffer is bounded
    // by high-water + one chunk's worth of answers.
    if (connection.pending_out() > options_.max_write_buffer) {
      connection.paused = true;
    }
  }
  if (connection.want_close && connection.pending_out() == 0) {
    close_connection(connection);
    return;
  }
  rearm(connection);
}

void AsyncServer::accept_ready(std::chrono::steady_clock::time_point now) {
  while (true) {
    const int fd = io_->accept4(listen_fd_, nullptr, nullptr,
                                SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      const int err = errno;
      if (err == EINTR) continue;
      if (err == EAGAIN || err == EWOULDBLOCK) {
        accept_backoff_ = std::chrono::milliseconds{0};
        return;
      }
      if (detail::transient_accept_error(err)) {
        // The event-loop version of the blocking server's backoff sleep:
        // deregister the listener and re-add it once the deadline passes —
        // the loop keeps serving live connections in the meantime, and
        // level-triggered epoll re-reports the pending backlog on re-add.
        accept_retries_.fetch_add(1, std::memory_order_relaxed);
        accept_backoff_ =
            accept_backoff_.count() == 0
                ? std::chrono::milliseconds{1}
                : std::min(accept_backoff_ * 2, options_.max_accept_backoff);
        accept_rearm_at_ = now + accept_backoff_;
        if (listener_registered_) {
          io_->epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
          listener_registered_ = false;
        }
        return;
      }
      // Unrecoverable (EBADF, EINVAL): the listener is dead; match the
      // blocking server, whose accept loop ends only then.
      stopping_.store(true);
      return;
    }
    accept_backoff_ = std::chrono::milliseconds{0};
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (connections_.size() >= options_.max_connections) {
      refused_.fetch_add(1, std::memory_order_relaxed);
      // Best-effort: one refusal line, then close. A full socket buffer on
      // a brand-new connection cannot happen on purpose; if it does the
      // client just sees the close.
      (void)io_->send(fd, detail::kCapacityRefusal,
                      sizeof(detail::kCapacityRefusal) - 1, MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    // The HEALTH callback reports this server's live counters; everything
    // else about request handling lives in the session. In hub mode the
    // construction-time engine is only a placeholder — every feed re-points
    // the session at the generation it pinned.
    const QueryEngine& setup_engine =
        hub_ != nullptr ? hub_->current()->engine : *engine_;
    auto connection = std::make_unique<Connection>(ProtocolSession(
        setup_engine, options_.max_line_bytes,
        [this] { return health_line(); }));
    connection->fd = fd;
    connection->last_activity = now;
    connection->armed = EPOLLIN;
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    if (io_->epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
      ::close(fd);
      continue;
    }
    connections_.emplace(fd, std::move(connection));
    active_.store(connections_.size(), std::memory_order_relaxed);
  }
}

void AsyncServer::scan_idle(std::chrono::steady_clock::time_point now) {
  if (options_.idle_timeout.count() <= 0) return;
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& connection = *it->second;
    ++it;  // close_connection erases; advance first
    if (now - connection.last_activity >= options_.idle_timeout) {
      close_connection(connection);
    }
  }
}

void AsyncServer::begin_drain(std::chrono::steady_clock::time_point now) {
  draining_ = true;
  drain_deadline_ = now + options_.drain_timeout;
  close_listener();
  // Stop reading everywhere; flush what each connection is owed. A
  // connection that owes nothing closes immediately, the rest get until
  // the drain deadline — a stalled reader cannot block shutdown.
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& connection = *it->second;
    ++it;
    if (!flush(connection) || connection.pending_out() == 0) {
      close_connection(connection);
      continue;
    }
    rearm(connection);
  }
}

int AsyncServer::wait_timeout_ms(
    std::chrono::steady_clock::time_point now) const {
  bool bounded = false;
  std::chrono::steady_clock::time_point nearest{};
  const auto consider = [&](std::chrono::steady_clock::time_point deadline) {
    if (!bounded || deadline < nearest) nearest = deadline;
    bounded = true;
  };
  if (draining_) consider(drain_deadline_);
  if (!listener_registered_ && !draining_ && listen_fd_ >= 0) {
    consider(accept_rearm_at_);
  }
  if (options_.idle_timeout.count() > 0 && !connections_.empty()) {
    // O(connections) per wakeup; fine at the 256-connection default. A
    // timer wheel earns its keep only far past that.
    for (const auto& [fd, connection] : connections_) {
      consider(connection->last_activity + options_.idle_timeout);
    }
  }
  if (!bounded) return -1;
  return clamp_ms(nearest - now);
}

void AsyncServer::event_loop() {
  {
    const std::lock_guard<std::mutex> lock(loop_mutex_);
    loop_active_ = true;
  }
  // Register the listener here rather than the constructor so a stop()
  // racing a never-started loop has nothing to unwind.
  epoll_event listen_event{};
  listen_event.events = EPOLLIN;
  listen_event.data.fd = listen_fd_;
  if (listen_fd_ >= 0 && io_->epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_,
                                        &listen_event) == 0) {
    listener_registered_ = true;
  }

  std::vector<epoll_event> events(kMaxEvents);
  while (true) {
    auto now = std::chrono::steady_clock::now();
    if (stopping_.load() && !draining_) begin_drain(now);
    if (draining_ &&
        (connections_.empty() || now >= drain_deadline_)) {
      break;
    }
    // Re-arm the listener once the accept backoff deadline passes.
    if (!draining_ && !listener_registered_ && listen_fd_ >= 0 &&
        now >= accept_rearm_at_) {
      if (io_->epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_,
                         &listen_event) == 0) {
        listener_registered_ = true;
      } else {
        accept_rearm_at_ = now + std::chrono::milliseconds{10};
      }
    }

    const int ready = io_->epoll_wait(epoll_fd_, events.data(),
                                      static_cast<int>(events.size()),
                                      wait_timeout_ms(now));
    now = std::chrono::steady_clock::now();
    if (ready < 0) {
      if (errno == EINTR) continue;
      // epoll_wait only fails fatally on EBADF/EINVAL/EFAULT — the loop's
      // own state is broken; serving blind would spin. Shut down.
      stopping_.store(true);
      continue;
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[static_cast<std::size_t>(i)].data.fd;
      const std::uint32_t mask = events[static_cast<std::size_t>(i)].events;
      if (fd == wake_fds_[0]) {
        char drain[64];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        if (!draining_) accept_ready(now);
        continue;
      }
      const auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this batch
      Connection& connection = *it->second;
      if ((mask & (EPOLLHUP | EPOLLERR)) != 0 &&
          (mask & (EPOLLIN | EPOLLOUT)) == 0) {
        // Pure hangup/error with nothing readable or writable left.
        close_connection(connection);
        continue;
      }
      if ((mask & EPOLLOUT) != 0) {
        if (!flush(connection)) {
          close_connection(connection);
          continue;
        }
        if (connection.pending_out() == 0 &&
            (connection.want_close || draining_)) {
          close_connection(connection);
          continue;
        }
      }
      if ((mask & EPOLLIN) != 0 && !draining_) {
        handle_readable(connection, now);  // may close; touch nothing after
        continue;
      }
      rearm(connection);
    }
    if (!draining_) scan_idle(now);
  }

  // Loop exit: everything still open is torn down here, including the
  // serve_forever() path stop() cannot join.
  for (auto it = connections_.begin(); it != connections_.end();) {
    Connection& connection = *it->second;
    ++it;
    close_connection(connection);
  }
  close_listener();
  {
    const std::lock_guard<std::mutex> lock(loop_mutex_);
    loop_active_ = false;
  }
  loop_cv_.notify_all();
}

void AsyncServer::stop() {
  const std::lock_guard<std::mutex> stop_lock(stop_mutex_);
  stopping_.store(true);
  if (wake_fds_[1] >= 0) {
    const char byte = 1;
    (void)!::write(wake_fds_[1], &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();
  {
    // A serve_forever() caller runs the loop on a thread stop() cannot
    // join; wait for the loop to report exit. A loop that never ran leaves
    // loop_active_ false and falls straight through.
    std::unique_lock<std::mutex> lock(loop_mutex_);
    loop_cv_.wait(lock, [&] { return !loop_active_; });
  }
  // Safe now: the loop has provably exited (or never started).
  close_listener();
  if (epoll_fd_ >= 0) {
    ::close(epoll_fd_);
    epoll_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
}

}  // namespace mapit::query
