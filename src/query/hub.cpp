#include "query/hub.h"

#include <fcntl.h>

#include <utility>

#include "store/format.h"

namespace mapit::query {

SnapshotHub::SnapshotHub(std::string path, fault::Io& io)
    : path_(std::move(path)), io_(&io) {
  // Initial load throws on failure: a server must not come up answering
  // from nothing. The identity is taken before the open — if the file is
  // republished between the stat and the open we record the older identity
  // and the first refresh() simply swaps again, which is benign.
  FileIdentity identity;
  (void)stat_path(&identity);
  failed_.store(0, std::memory_order_relaxed);  // probe failures don't count
  current_ = std::make_shared<LoadedSnapshot>(
      store::SnapshotReader::open(path_, *io_), /*generation=*/1);
  identity_ = identity;
}

std::shared_ptr<const LoadedSnapshot> SnapshotHub::current() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return current_;
}

bool SnapshotHub::stat_path(FileIdentity* out) {
  const int fd = io_->open(path_.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  struct ::stat st{};
  if (io_->fstat(fd, &st) != 0) {
    (void)io_->close(fd);
    failed_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  (void)io_->close(fd);
  out->dev = st.st_dev;
  out->ino = st.st_ino;
  out->size = st.st_size;
  out->mtim = st.st_mtim;
  return true;
}

std::string SnapshotHub::last_error() const {
  const std::lock_guard<std::mutex> lock(error_mutex_);
  return last_error_;
}

bool SnapshotHub::refresh() {
  const std::lock_guard<std::mutex> lock(mutex_);
  FileIdentity identity;
  if (!stat_path(&identity)) {
    const std::lock_guard<std::mutex> error_lock(error_mutex_);
    last_error_ = "cannot stat snapshot " + path_;
    return false;
  }
  if (identity == identity_) return false;
  // The file changed under the path (the publisher renames a complete new
  // file over it). Open + fully validate before anything is swapped; a
  // file that fails validation leaves the previous generation serving.
  try {
    auto next = std::make_shared<LoadedSnapshot>(
        store::SnapshotReader::open(path_, *io_), next_generation_);
    current_ = std::move(next);
    identity_ = identity;
    ++next_generation_;
    swaps_.fetch_add(1, std::memory_order_relaxed);
    return true;
  } catch (const Error& error) {
    // SnapshotError (validation) or Error (open) alike: count, record the
    // message for HEALTH's last_swap_error=, keep serving.
    failed_.fetch_add(1, std::memory_order_relaxed);
    const std::lock_guard<std::mutex> error_lock(error_mutex_);
    last_error_ = error.what();
    return false;
  }
}

}  // namespace mapit::query
