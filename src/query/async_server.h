// Epoll event-loop TCP server over a QueryEngine: the scale-out sibling of
// the thread-per-connection LineServer (server.h).
//
// Why a second server: the blocking design needs one thread per client and
// — before SO_SNDTIMEO — could be pinned forever by a client that stopped
// reading mid-batch. This server is readiness-driven: one event loop owns
// every connection, sockets are non-blocking, and nothing ever blocks in
// send or recv, so a stalled peer can cost memory bounds it cannot exceed
// and nothing else. N independent processes can serve the same immutable
// mmap'd snapshot behind SO_REUSEPORT (`ServerOptions::reuse_port`) for
// per-core scale-out.
//
// Protocols. Both run on the same port, implemented by the socketless
// query::ProtocolSession (protocol.h) — one session per connection, so the
// exact framing code that answers TCP clients is also driven directly by
// unit tests and the fuzz harnesses:
//   * Line protocol — byte-identical to LineServer (one '\n'-terminated
//     query per line, exactly one answer line each, CRLF tolerated, HEALTH
//     answered by the server). tests/query/async_server_test.cpp proves
//     the answer streams of the two servers match byte for byte.
//   * Binary protocol — for bulk clients. A connection whose first four
//     bytes are the magic "MQB1" switches to length-prefixed framing:
//     requests and responses are `uint32 little-endian payload length`
//     followed by the payload; a request payload is exactly one protocol
//     line (no newline), its response payload exactly the answer line.
//     A frame longer than `max_line_bytes` is answered with an ERR frame
//     and its payload is discarded (the connection survives, mirroring the
//     line protocol's oversized-line rule). The magic contains no '\n' and
//     no query verb starts with 'M', so sniffing is unambiguous; a client
//     that sends fewer than 4 bytes that prefix the magic simply waits.
//
// Event-loop state machine (DESIGN.md §12): each connection is
//   reading ──(write buffer > max_write_buffer)──▶ paused
//   paused ──(write buffer < half)──▶ reading
//   reading/paused ──(EOF from peer)──▶ flushing ──(drained)──▶ closed
// Input is parsed as it arrives; every complete request appends its answer
// to the connection's write buffer, which is flushed opportunistically and
// re-armed on EPOLLOUT when the socket would block. Write backpressure
// pauses *reading* (EPOLLIN off), so a slow reader throttles itself
// instead of growing server state.
//
// Overload and failure behavior matches LineServer (same ServerOptions,
// same refusal line, same ERR-and-discard for oversized lines, same idle
// timeout semantics, same transient-accept backoff — implemented by
// disarming the listener until the backoff deadline instead of sleeping).
// stop() drains gracefully but boundedly: pending answers are flushed
// until `drain_timeout`, then stragglers are closed — a stalled reader can
// never block shutdown. All socket/epoll syscalls go through fault::Io, so
// the PR 4 chaos matrices (tests/query/server_fault_test.cpp) run
// identically against both servers.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "fault/io.h"
#include "query/protocol.h"
#include "query/query_engine.h"
#include "query/server.h"

namespace mapit::query {

class AsyncServer {
 public:
  /// Binds and listens on 127.0.0.1:`options.port` and sets up the epoll
  /// instance. Throws mapit::Error when sockets or epoll cannot be set up.
  /// `engine` must outlive the server.
  AsyncServer(const QueryEngine& engine, const ServerOptions& options);

  /// Convenience: default options with an explicit port.
  AsyncServer(const QueryEngine& engine, std::uint16_t port);

  /// Hot-swap mode: answers from `hub`'s current snapshot generation,
  /// pinned once per readiness event's read batch, so a republish never
  /// tears a batch and never drops a connection. `hub` must outlive the
  /// server.
  AsyncServer(SnapshotHub& hub, const ServerOptions& options);

  AsyncServer(const AsyncServer&) = delete;
  AsyncServer& operator=(const AsyncServer&) = delete;

  /// Stops and joins the event loop.
  ~AsyncServer();

  /// The bound port (the chosen one when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Runs the event loop on the calling thread until stop() from another
  /// thread (or a fatally dead listener). `mapit serve --async` sits here.
  void serve_forever();

  /// Runs the event loop on a background thread (tests and benches).
  void start();

  /// Closes the listener, flushes pending answers (bounded by
  /// `drain_timeout`), closes every connection, joins the loop. Idempotent.
  void stop();

  /// Connections refused with the capacity line so far.
  [[nodiscard]] std::uint64_t refused_connections() const {
    return refused_.load(std::memory_order_relaxed);
  }

  /// accept4 failures absorbed by backoff so far.
  [[nodiscard]] std::uint64_t accept_retries() const {
    return accept_retries_.load(std::memory_order_relaxed);
  }

  /// Connections closed with the overload answer (max_inflight_bytes).
  [[nodiscard]] std::uint64_t shed_connections() const {
    return shed_.load(std::memory_order_relaxed);
  }

  /// Live connections right now (the HEALTH line reports this too).
  [[nodiscard]] std::size_t active_connections() const {
    return active_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    explicit Connection(ProtocolSession session_in)
        : session(std::move(session_in)) {}

    int fd = -1;
    /// Request framing + answering (mode sniff, line/binary protocols).
    ProtocolSession session;
    std::string out;           ///< answer bytes not yet written
    std::size_t out_off = 0;   ///< bytes of `out` already sent
    bool want_close = false;   ///< peer EOF: close once `out` is flushed
    bool paused = false;       ///< EPOLLIN off (write backpressure)
    std::uint32_t armed = 0;   ///< epoll events currently registered
    std::chrono::steady_clock::time_point last_activity;

    [[nodiscard]] std::size_t pending_out() const {
      return out.size() - out_off;
    }
  };

  /// Listener + epoll + wake-pipe setup shared by both constructors.
  void init_sockets();
  void event_loop();
  /// HEALTH answer for the batch being fed right now (loop thread only).
  [[nodiscard]] std::string health_line() const;
  /// Accepts until the listener would block; transient failures disarm the
  /// listener and set `accept_rearm_at_` instead of sleeping.
  void accept_ready(std::chrono::steady_clock::time_point now);
  void handle_readable(Connection& connection,
                       std::chrono::steady_clock::time_point now);
  /// Answers "ERR overloaded retry" in the connection's protocol mode and
  /// schedules the close (load shedding past max_inflight_bytes).
  void shed_connection(Connection& connection);
  /// Sends as much of `out` as the socket takes. False = connection dead.
  [[nodiscard]] bool flush(Connection& connection);
  /// Recomputes and applies the epoll event mask for the connection.
  void rearm(Connection& connection);
  void close_connection(Connection& connection);
  /// Closes idle connections; returns the next idle deadline if any.
  void scan_idle(std::chrono::steady_clock::time_point now);
  /// Enters drain mode: listener closed, no more reads, bounded flush.
  void begin_drain(std::chrono::steady_clock::time_point now);
  /// epoll_wait timeout until the nearest deadline (-1 = block).
  [[nodiscard]] int wait_timeout_ms(
      std::chrono::steady_clock::time_point now) const;
  void close_listener();

  const QueryEngine* engine_ = nullptr;  ///< fixed-engine mode; else null
  SnapshotHub* hub_ = nullptr;           ///< hot-swap mode; else null
  ServerOptions options_;
  fault::Io* io_ = nullptr;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: stop() wakes epoll_wait
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> refused_{0};
  std::atomic<std::uint64_t> accept_retries_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::size_t> active_{0};
  std::thread loop_thread_;

  /// When the server came up (HEALTH uptime). Set once in the constructor.
  std::chrono::steady_clock::time_point started_;

  // ---- event-loop-thread state (no locking: only the loop touches it) ----
  /// fd -> connection. Ordered map: deterministic idle-scan order.
  std::map<int, std::unique_ptr<Connection>> connections_;
  /// The generation pinned by the feed in progress (hub mode): set for the
  /// duration of handle_readable so the HEALTH callback reports exactly
  /// the generation answering the rest of the batch. Null between feeds.
  const LoadedSnapshot* feeding_ = nullptr;
  bool listener_registered_ = false;
  /// Σ pending_out() over all connections — the quantity the in-flight
  /// budget (ServerOptions::max_inflight_bytes) sheds against. Maintained
  /// incrementally at every point `out`/`out_off` change.
  std::size_t total_pending_ = 0;
  std::chrono::milliseconds accept_backoff_{0};
  std::chrono::steady_clock::time_point accept_rearm_at_{};
  bool draining_ = false;
  std::chrono::steady_clock::time_point drain_deadline_{};

  /// Guards loop_active_; loop_cv_ signals loop exit so stop() can wait
  /// out a serve_forever() caller it cannot join.
  std::mutex loop_mutex_;
  std::condition_variable loop_cv_;
  bool loop_active_ = false;
  std::mutex stop_mutex_;  ///< serializes stop() (explicit stop + destructor)
};

}  // namespace mapit::query
