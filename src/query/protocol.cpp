#include "query/protocol.h"

#include <algorithm>
#include <cstring>

namespace mapit::query {

namespace {

std::uint32_t read_le32(const char* bytes) {
  return static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[0])) |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[1])) << 8 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[2]))
             << 16 |
         static_cast<std::uint32_t>(static_cast<unsigned char>(bytes[3]))
             << 24;
}

}  // namespace

void append_binary_frame(std::string& out, std::string_view payload) {
  const auto length = static_cast<std::uint32_t>(payload.size());
  const char header[4] = {
      static_cast<char>(length & 0xFF),
      static_cast<char>((length >> 8) & 0xFF),
      static_cast<char>((length >> 16) & 0xFF),
      static_cast<char>((length >> 24) & 0xFF),
  };
  out.append(header, sizeof(header));
  out.append(payload);
}

ProtocolSession::ProtocolSession(const QueryEngine& engine,
                                 std::size_t max_line_bytes, HealthFn health)
    : engine_(&engine),
      max_line_bytes_(max_line_bytes),
      health_(std::move(health)) {}

std::string ProtocolSession::answer_health() {
  // Without a server behind it there is no health to report; the engine's
  // ERR answer keeps the one-answer-per-request invariant.
  return health_ ? health_() : engine_->answer("HEALTH");
}

void ProtocolSession::feed(std::string_view bytes, std::string& out) {
  in_.append(bytes);
  process(out);
}

void ProtocolSession::feed(const QueryEngine& engine, std::string_view bytes,
                           std::string& out) {
  engine_ = &engine;
  feed(bytes, out);
}

void ProtocolSession::process(std::string& out) {
  if (mode_ == Mode::kUndecided) {
    const std::size_t probe =
        std::min(in_.size(), sizeof(kBinaryProtocolMagic));
    if (std::memcmp(in_.data(), kBinaryProtocolMagic, probe) != 0) {
      // Not a prefix of the magic: an ordinary line client (no query verb
      // starts with 'M', so this decides on the very first byte).
      mode_ = Mode::kLine;
    } else if (in_.size() >= sizeof(kBinaryProtocolMagic)) {
      mode_ = Mode::kBinary;
      in_.erase(0, sizeof(kBinaryProtocolMagic));
    } else {
      return;  // a strict prefix of the magic: wait for more bytes
    }
  }
  if (mode_ == Mode::kLine) {
    process_line(out);
  } else {
    process_binary(out);
  }
}

void ProtocolSession::process_line(std::string& out) {
  std::size_t start = 0;
  if (discarding_line_) {
    const std::size_t newline = in_.find('\n');
    if (newline == std::string::npos) {
      in_.clear();
      return;
    }
    start = newline + 1;
    discarding_line_ = false;
  }
  while (true) {
    const std::size_t newline = in_.find('\n', start);
    if (newline == std::string::npos) break;
    std::string_view line(in_.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    start = newline + 1;
    if (line.empty()) continue;  // blank keep-alive lines get no answer
    if (line.size() > max_line_bytes_) {
      out += "ERR request line exceeds " + std::to_string(max_line_bytes_) +
             " bytes";
    } else if (line == "HEALTH") {
      out += answer_health();
    } else {
      out += engine_->answer(line);
    }
    out += '\n';
  }
  in_.erase(0, start);
  // An incomplete line past the bound is answered and discarded NOW — the
  // buffer must stay bounded no matter how much the client streams without
  // a newline (same rule as the blocking server).
  if (in_.size() > max_line_bytes_) {
    out += "ERR request line exceeds " + std::to_string(max_line_bytes_) +
           " bytes\n";
    in_.clear();
    in_.shrink_to_fit();
    discarding_line_ = true;
  }
}

void ProtocolSession::process_binary(std::string& out) {
  std::size_t start = 0;
  while (true) {
    if (discard_frame_bytes_ > 0) {
      const std::size_t available = in_.size() - start;
      const std::size_t eaten = static_cast<std::size_t>(
          std::min<std::uint64_t>(discard_frame_bytes_, available));
      start += eaten;
      discard_frame_bytes_ -= eaten;
      if (discard_frame_bytes_ > 0) break;  // need more to skip
    }
    if (in_.size() - start < 4) break;
    const std::uint32_t length = read_le32(in_.data() + start);
    if (length > max_line_bytes_) {
      // Oversized frame: one ERR response frame, payload skipped, the
      // session survives — the binary protocol's ERR-and-discard rule.
      append_binary_frame(out, "ERR request frame exceeds " +
                                   std::to_string(max_line_bytes_) +
                                   " bytes");
      discard_frame_bytes_ = length;
      start += 4;
      continue;
    }
    if (in_.size() - start < 4 + static_cast<std::size_t>(length)) {
      break;  // frame not complete yet
    }
    const std::string_view query(in_.data() + start + 4, length);
    if (query == "HEALTH") {
      append_binary_frame(out, answer_health());
    } else {
      append_binary_frame(out, engine_->answer(query));
    }
    start += 4 + static_cast<std::size_t>(length);
  }
  in_.erase(0, start);
}

}  // namespace mapit::query
