#include "query/query_engine.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <vector>

#include "core/inference.h"

namespace mapit::query {

namespace {

using store::InferenceRecord;
using store::LinkRecord;
using store::MappingRecord;
using store::PrefixRecord;

[[nodiscard]] std::uint64_t lengths_mask(
    std::span<const PrefixRecord> prefixes) {
  std::uint64_t mask = 0;
  for (const PrefixRecord& record : prefixes) {
    mask |= std::uint64_t{1} << record.length;
  }
  return mask;
}

[[nodiscard]] std::uint64_t half_key(std::uint32_t address,
                                     std::uint8_t direction) {
  return (std::uint64_t{address} << 1) | direction;
}

/// Splits a query line into whitespace-separated tokens (at most 4 — more
/// than any command takes, so garbage tails are detected, not truncated).
std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  std::size_t pos = 0;
  while (pos < line.size() && tokens.size() < 4) {
    while (pos < line.size() && (line[pos] == ' ' || line[pos] == '\t')) ++pos;
    if (pos >= line.size()) break;
    std::size_t end = pos;
    while (end < line.size() && line[end] != ' ' && line[end] != '\t') ++end;
    tokens.push_back(line.substr(pos, end - pos));
    pos = end;
  }
  return tokens;
}

[[nodiscard]] std::optional<graph::Direction> parse_direction(
    std::string_view token) {
  if (token == "f") return graph::Direction::kForward;
  if (token == "b") return graph::Direction::kBackward;
  return std::nullopt;
}

[[nodiscard]] std::optional<asdata::Asn> parse_asn(std::string_view token) {
  asdata::Asn value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size() ||
      token.empty()) {
    return std::nullopt;
  }
  return value;
}

[[nodiscard]] const char* kind_name(std::uint8_t kind) {
  switch (static_cast<core::InferenceKind>(kind)) {
    case core::InferenceKind::kDirect: return "direct";
    case core::InferenceKind::kIndirect: return "indirect";
    case core::InferenceKind::kStub: return "stub";
  }
  return "?";
}

}  // namespace

std::string format_inference(const InferenceRecord& r) {
  std::string out = net::Ipv4Address(r.address).to_string();
  out += '|';
  out += r.direction == 0 ? 'f' : 'b';
  out += '|';
  out += std::to_string(r.router_as);
  out += '|';
  out += std::to_string(r.other_as);
  out += '|';
  out += kind_name(r.kind);
  out += '|';
  out += std::to_string(r.votes);
  out += '/';
  out += std::to_string(r.neighbor_count);
  return out;
}

QueryEngine::QueryEngine(const store::SnapshotReader& reader)
    : reader_(reader),
      bgp_lengths_(lengths_mask(reader.bgp_prefixes())),
      fallback_lengths_(lengths_mask(reader.fallback_prefixes())) {}

const InferenceRecord* QueryEngine::lookup(net::Ipv4Address address,
                                           graph::Direction direction) const {
  const auto inferences = reader_.inferences();
  const std::uint64_t key = half_key(
      address.value(),
      direction == graph::Direction::kForward ? std::uint8_t{0} : std::uint8_t{1});
  const auto it = std::lower_bound(
      inferences.begin(), inferences.end(), key,
      [](const InferenceRecord& record, std::uint64_t want) {
        return half_key(record.address, record.direction) < want;
      });
  if (it == inferences.end() ||
      half_key(it->address, it->direction) != key) {
    return nullptr;
  }
  return &*it;
}

std::span<const InferenceRecord> QueryEngine::lookup_address(
    net::Ipv4Address address) const {
  const auto inferences = reader_.inferences();
  const auto first = std::lower_bound(
      inferences.begin(), inferences.end(), address.value(),
      [](const InferenceRecord& record, std::uint32_t want) {
        return record.address < want;
      });
  auto last = first;
  while (last != inferences.end() && last->address == address.value()) ++last;
  return inferences.subspan(
      static_cast<std::size_t>(first - inferences.begin()),
      static_cast<std::size_t>(last - first));
}

std::optional<std::pair<net::Prefix, asdata::Asn>> QueryEngine::longest_match(
    std::span<const PrefixRecord> prefixes, std::uint64_t lengths_mask,
    net::Ipv4Address address) {
  // Most-specific first: the first length whose masked probe is stored is
  // the trie's deepest match. Each candidate is one binary search over the
  // (network, length)-sorted span.
  for (int length = 32; length >= 0; --length) {
    if ((lengths_mask & (std::uint64_t{1} << length)) == 0) continue;
    const net::Prefix probe(address, length);
    const auto it = std::lower_bound(
        prefixes.begin(), prefixes.end(),
        std::make_pair(probe.network().value(), length),
        [](const PrefixRecord& record, const std::pair<std::uint32_t, int>& want) {
          return std::make_pair(record.network, int{record.length}) < want;
        });
    if (it != prefixes.end() && it->network == probe.network().value() &&
        int{it->length} == length) {
      return std::make_pair(probe, it->asn);
    }
  }
  return std::nullopt;
}

QueryEngine::Ip2AsAnswer QueryEngine::ip2as(net::Ipv4Address address) const {
  Ip2AsAnswer answer;
  if (auto hit = longest_match(reader_.bgp_prefixes(), bgp_lengths_,
                               address)) {
    answer.asn = hit->second;
    answer.prefix = hit->first;
    return answer;
  }
  if (auto hit = longest_match(reader_.fallback_prefixes(), fallback_lengths_,
                               address)) {
    answer.asn = hit->second;
    answer.prefix = hit->first;
    answer.from_fallback = true;
  }
  return answer;
}

std::pair<asdata::Asn, bool> QueryEngine::final_mapping(
    net::Ipv4Address address, graph::Direction direction) const {
  const auto mappings = reader_.mappings();
  const std::uint64_t key = half_key(
      address.value(),
      direction == graph::Direction::kForward ? std::uint8_t{0} : std::uint8_t{1});
  const auto it = std::lower_bound(
      mappings.begin(), mappings.end(), key,
      [](const MappingRecord& record, std::uint64_t want) {
        return half_key(record.address, record.direction) < want;
      });
  if (it != mappings.end() && half_key(it->address, it->direction) == key) {
    return {it->asn, true};
  }
  return {ip2as(address).asn, false};
}

std::span<const LinkRecord> QueryEngine::links_between(asdata::Asn a,
                                                       asdata::Asn b) const {
  const auto links = reader_.links();
  const auto pair = a <= b ? std::make_pair(a, b) : std::make_pair(b, a);
  const auto pair_of = [](const LinkRecord& record) {
    return std::make_pair(record.as_a, record.as_b);
  };
  const auto first = std::lower_bound(
      links.begin(), links.end(), pair,
      [&](const LinkRecord& record, const auto& want) {
        return pair_of(record) < want;
      });
  auto last = first;
  while (last != links.end() && pair_of(*last) == pair) ++last;
  return links.subspan(static_cast<std::size_t>(first - links.begin()),
                       static_cast<std::size_t>(last - first));
}

std::string QueryEngine::answer(std::string_view query) const {
  const std::vector<std::string_view> tokens = tokenize(query);
  if (tokens.empty()) return "ERR empty query";
  const std::string_view command = tokens[0];

  if (command == "lookup") {
    if (tokens.size() != 3) return "ERR usage: lookup <addr> <f|b>";
    const auto address = net::Ipv4Address::parse(tokens[1]);
    const auto direction = parse_direction(tokens[2]);
    if (!address) return "ERR bad address";
    if (!direction) return "ERR bad direction (want f or b)";
    const InferenceRecord* record = lookup(*address, *direction);
    if (record == nullptr) return "MISS";
    if ((record->flags & store::kInferenceUncertain) != 0) {
      return "uncertain|" + format_inference(*record);
    }
    return format_inference(*record);
  }

  if (command == "addr") {
    if (tokens.size() != 2) return "ERR usage: addr <addr>";
    const auto address = net::Ipv4Address::parse(tokens[1]);
    if (!address) return "ERR bad address";
    std::string out;
    for (const InferenceRecord& record : lookup_address(*address)) {
      if ((record.flags & store::kInferenceUncertain) != 0) continue;
      if (!out.empty()) out += ';';
      out += format_inference(record);
    }
    return out.empty() ? "MISS" : out;
  }

  if (command == "ip2as") {
    if (tokens.size() != 2 && tokens.size() != 3) {
      return "ERR usage: ip2as <addr> [f|b]";
    }
    const auto address = net::Ipv4Address::parse(tokens[1]);
    if (!address) return "ERR bad address";
    if (tokens.size() == 3) {
      const auto direction = parse_direction(tokens[2]);
      if (!direction) return "ERR bad direction (want f or b)";
      const auto [asn, overridden] = final_mapping(*address, *direction);
      return std::to_string(asn) + (overridden ? "|final" : "|base");
    }
    const Ip2AsAnswer hit = ip2as(*address);
    if (!hit.announced()) return "unannounced";
    return hit.prefix->to_string() + '|' + std::to_string(hit.asn) + '|' +
           (hit.from_fallback ? "fallback" : "bgp");
  }

  if (command == "links") {
    if (tokens.size() != 3) return "ERR usage: links <asn> <asn>";
    const auto as_a = parse_asn(tokens[1]);
    const auto as_b = parse_asn(tokens[2]);
    if (!as_a || !as_b) return "ERR bad ASN";
    const auto links = links_between(*as_a, *as_b);
    std::string out = std::to_string(links.size());
    for (const LinkRecord& link : links) {
      out += ' ';
      out += net::Ipv4Address(link.low).to_string();
      out += '-';
      out += net::Ipv4Address(link.high).to_string();
    }
    return out;
  }

  if (command == "stats") {
    if (tokens.size() != 1) return "ERR usage: stats";
    std::size_t confident = 0;
    std::size_t uncertain = 0;
    for (const InferenceRecord& record : reader_.inferences()) {
      ((record.flags & store::kInferenceUncertain) != 0 ? uncertain
                                                        : confident)++;
    }
    char crc_hex[9];
    std::snprintf(crc_hex, sizeof(crc_hex), "%08x", reader_.payload_crc32());
    return "inferences=" + std::to_string(confident) +
           " uncertain=" + std::to_string(uncertain) +
           " links=" + std::to_string(reader_.links().size()) +
           " bgp_prefixes=" + std::to_string(reader_.bgp_prefixes().size()) +
           " fallback_prefixes=" +
           std::to_string(reader_.fallback_prefixes().size()) +
           " mappings=" + std::to_string(reader_.mappings().size()) +
           " version=" + std::to_string(reader_.version()) +
           " crc32=" + crc_hex +
           " bytes=" + std::to_string(reader_.size_bytes());
  }

  return "ERR unknown command '" + std::string(command) + "'";
}

}  // namespace mapit::query
