#include "route/as_routing.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace mapit::route {

const char* to_string(RouteType type) {
  switch (type) {
    case RouteType::kSelf: return "self";
    case RouteType::kCustomer: return "customer";
    case RouteType::kPeer: return "peer";
    case RouteType::kProvider: return "provider";
    case RouteType::kNone: return "none";
  }
  return "?";
}

AsRouting::AsRouting(const asdata::AsRelationships& relationships)
    : rels_(relationships), all_ases_(relationships.all_ases()) {}

const std::unordered_map<asdata::Asn, AsRouting::Entry>& AsRouting::table(
    asdata::Asn destination) const {
  auto it = cache_.find(destination);
  if (it == cache_.end()) {
    it = cache_.emplace(destination,
                        std::unordered_map<asdata::Asn, Entry>{})
             .first;
    compute(destination, it->second);
  }
  return it->second;
}

void AsRouting::compute(asdata::Asn destination,
                        std::unordered_map<asdata::Asn, Entry>& table) const {
  // Stage 1: customer routes. BFS from the destination along
  // customer->provider edges; the learning provider forwards *down* to the
  // customer it heard the route from. Candidates at equal distance break
  // ties toward the lowest next-hop ASN, implemented by scanning each BFS
  // frontier in sorted order and keeping the first offer.
  table[destination] = Entry{RouteType::kSelf, 0, destination};
  std::vector<asdata::Asn> frontier{destination};
  std::uint16_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    std::sort(frontier.begin(), frontier.end());
    std::vector<asdata::Asn> next_frontier;
    for (asdata::Asn learned_from : frontier) {
      std::vector<asdata::Asn> providers(
          rels_.providers_of(learned_from).begin(),
          rels_.providers_of(learned_from).end());
      std::sort(providers.begin(), providers.end());
      for (asdata::Asn provider : providers) {
        auto [it, inserted] = table.emplace(
            provider, Entry{RouteType::kCustomer, depth, learned_from});
        if (inserted) {
          next_frontier.push_back(provider);
        } else if (it->second.type == RouteType::kCustomer &&
                   it->second.length == depth &&
                   learned_from < it->second.next) {
          it->second.next = learned_from;  // same depth, lower next hop
        }
      }
    }
    frontier = std::move(next_frontier);
  }

  // Stage 2: peer routes. Only customer routes are exported across
  // peerings; an AS without a customer route may pick the best peer offer.
  std::vector<std::pair<asdata::Asn, Entry>> peer_routes;
  for (asdata::Asn asn : all_ases_) {
    if (table.contains(asn)) continue;  // customer/self route preferred
    Entry best;
    std::vector<asdata::Asn> peers(rels_.peers_of(asn).begin(),
                                   rels_.peers_of(asn).end());
    std::sort(peers.begin(), peers.end());
    for (asdata::Asn peer : peers) {
      auto it = table.find(peer);
      if (it == table.end()) continue;
      if (it->second.type != RouteType::kSelf &&
          it->second.type != RouteType::kCustomer) {
        continue;  // peers only export customer routes
      }
      const auto length = static_cast<std::uint16_t>(it->second.length + 1);
      if (best.type == RouteType::kNone || length < best.length) {
        best = Entry{RouteType::kPeer, length, peer};
      }
    }
    if (best.type == RouteType::kPeer) peer_routes.emplace_back(asn, best);
  }
  for (const auto& [asn, entry] : peer_routes) table.emplace(asn, entry);

  // Stage 3: provider routes. Anything is exported to customers, so this is
  // a multi-source Dijkstra over provider->customer edges seeded with every
  // AS that already holds a route. Ties break toward the lowest provider.
  using Item = std::tuple<std::uint16_t, asdata::Asn, asdata::Asn>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> queue;
  for (const auto& [asn, entry] : table) {
    std::vector<asdata::Asn> customers(rels_.customers_of(asn).begin(),
                                       rels_.customers_of(asn).end());
    std::sort(customers.begin(), customers.end());
    for (asdata::Asn customer : customers) {
      if (!table.contains(customer)) {
        queue.emplace(static_cast<std::uint16_t>(entry.length + 1), customer,
                      asn);
      }
    }
  }
  while (!queue.empty()) {
    const auto [length, asn, via] = queue.top();
    queue.pop();
    if (table.contains(asn)) continue;
    table.emplace(asn, Entry{RouteType::kProvider, length, via});
    std::vector<asdata::Asn> customers(rels_.customers_of(asn).begin(),
                                       rels_.customers_of(asn).end());
    std::sort(customers.begin(), customers.end());
    for (asdata::Asn customer : customers) {
      if (!table.contains(customer)) {
        queue.emplace(static_cast<std::uint16_t>(length + 1), customer, asn);
      }
    }
  }
}

AsRouting::Entry AsRouting::route(asdata::Asn source,
                                  asdata::Asn destination) const {
  const auto& routes = table(destination);
  auto it = routes.find(source);
  return it == routes.end() ? Entry{} : it->second;
}

std::vector<asdata::Asn> AsRouting::as_path(asdata::Asn source,
                                            asdata::Asn destination) const {
  std::vector<asdata::Asn> path;
  const auto& routes = table(destination);
  asdata::Asn current = source;
  // The path length is bounded by the AS count; guard against surprises.
  for (std::size_t guard = 0; guard <= all_ases_.size(); ++guard) {
    auto it = routes.find(current);
    if (it == routes.end()) return {};
    path.push_back(current);
    if (it->second.type == RouteType::kSelf) return path;
    current = it->second.next;
  }
  return {};  // defensive: should be unreachable
}

}  // namespace mapit::route
