#include "route/forwarder.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "net/error.h"

namespace mapit::route {

namespace {
[[nodiscard]] std::uint64_t pair_key(asdata::Asn a, asdata::Asn b) {
  if (a > b) std::swap(a, b);
  return (std::uint64_t{a} << 32) | std::uint64_t{b};
}
}  // namespace

Forwarder::Forwarder(const topo::Internet& net, const AsRouting& routing)
    : net_(net), routing_(routing) {
  for (const topo::AsInfo& info : net.ases()) {
    for (const net::Prefix& prefix : info.announced) {
      true_origins_.insert(prefix, info.asn);
    }
  }
  for (const topo::Link& link : net.links()) {
    if (link.inter_as) {
      const asdata::Asn a = net.router(link.a).owner;
      const asdata::Asn b = net.router(link.b).owner;
      as_pair_links_[pair_key(a, b)].push_back(link.id);
    }
  }
  for (auto& [_, links] : as_pair_links_) {
    std::sort(links.begin(), links.end());
  }
  internal_adj_.resize(net.routers().size());
  for (const topo::Link& link : net.links()) {
    if (link.inter_as) continue;
    internal_adj_[link.a].emplace_back(link.b, link.id);
    internal_adj_[link.b].emplace_back(link.a, link.id);
  }
  for (auto& adj : internal_adj_) std::sort(adj.begin(), adj.end());
}

asdata::Asn Forwarder::true_origin(net::Ipv4Address destination) const {
  const asdata::Asn* asn = true_origins_.longest_match(destination);
  return asn == nullptr ? asdata::kUnknownAsn : *asn;
}

topo::RouterId Forwarder::attachment_router(
    asdata::Asn asn, net::Ipv4Address destination) const {
  const topo::AsInfo& info = net_.as_info(asn);
  MAPIT_ENSURE(!info.routers.empty(), "AS without routers");
  const std::size_t index =
      std::hash<net::Ipv4Address>{}(destination) % info.routers.size();
  return info.routers[index];
}

std::vector<RouterHop> Forwarder::intra_as_path(topo::RouterId from,
                                                topo::RouterId to,
                                                std::uint32_t variant) const {
  std::vector<RouterHop> out;
  if (from == to) {
    out.push_back(RouterHop{from, topo::kNoLink});
    return out;
  }
  // BFS with parent tracking. When `variant` is odd, adjacency is scanned
  // in reverse so equal-length paths flip, modelling ECMP churn.
  std::unordered_map<topo::RouterId, std::pair<topo::RouterId, topo::LinkId>>
      parent;
  std::deque<topo::RouterId> queue{from};
  parent.emplace(from, std::make_pair(topo::kNoRouter, topo::kNoLink));
  while (!queue.empty()) {
    const topo::RouterId current = queue.front();
    queue.pop_front();
    if (current == to) break;
    const auto& adj = internal_adj_[current];
    auto visit = [&](const std::pair<topo::RouterId, topo::LinkId>& edge) {
      if (parent.emplace(edge.first, std::make_pair(current, edge.second))
              .second) {
        queue.push_back(edge.first);
      }
    };
    if ((variant & 1u) == 0) {
      for (const auto& edge : adj) visit(edge);
    } else {
      for (auto it = adj.rbegin(); it != adj.rend(); ++it) visit(*it);
    }
  }
  if (!parent.contains(to)) return {};
  std::vector<RouterHop> reversed;
  topo::RouterId current = to;
  while (current != topo::kNoRouter) {
    const auto& [prev, link] = parent.at(current);
    reversed.push_back(RouterHop{current, link});
    current = prev;
  }
  out.assign(reversed.rbegin(), reversed.rend());
  return out;
}

Forwarder::EgressChoice Forwarder::pick_egress(topo::RouterId from,
                                               asdata::Asn next_as,
                                               std::uint32_t variant) const {
  const asdata::Asn current_as = net_.router(from).owner;
  auto it = as_pair_links_.find(pair_key(current_as, next_as));
  if (it == as_pair_links_.end() || it->second.empty()) return {};

  // Hot potato: choose the candidate whose near-side border router is
  // closest to `from`; break ties by link id (flipped for odd variants).
  // Distances come from one BFS over the AS's internal links.
  std::unordered_map<topo::RouterId, int> dist;
  std::deque<topo::RouterId> queue{from};
  dist.emplace(from, 0);
  while (!queue.empty()) {
    const topo::RouterId current = queue.front();
    queue.pop_front();
    for (const auto& [neighbor, _] : internal_adj_[current]) {
      if (dist.emplace(neighbor, dist.at(current) + 1).second) {
        queue.push_back(neighbor);
      }
    }
  }

  std::vector<std::tuple<int, topo::LinkId, topo::RouterId>> ranked;
  for (topo::LinkId id : it->second) {
    const topo::Link& link = net_.link(id);
    const topo::RouterId near =
        net_.router(link.a).owner == current_as ? link.a : link.b;
    auto dit = dist.find(near);
    if (dit == dist.end()) continue;  // border unreachable inside the AS
    ranked.emplace_back(dit->second, id, near);
  }
  if (ranked.empty()) return {};
  std::sort(ranked.begin(), ranked.end());
  // Variant bit 1 selects the second-best exit when one exists — the
  // "route flap" alternative the traceroute simulator splices in.
  const std::size_t index = ((variant & 2u) != 0 && ranked.size() > 1) ? 1 : 0;
  const auto& [d, id, near] = ranked[index];
  return EgressChoice{near, id};
}

std::vector<RouterHop> Forwarder::path(topo::RouterId source,
                                       net::Ipv4Address destination,
                                       std::uint32_t variant) const {
  const asdata::Asn dest_as = true_origin(destination);
  if (dest_as == asdata::kUnknownAsn) return {};
  const asdata::Asn src_as = net_.router(source).owner;
  const std::vector<asdata::Asn> as_path =
      routing_.as_path(src_as, dest_as);
  if (as_path.empty()) return {};

  std::vector<RouterHop> out;
  topo::RouterId current = source;
  topo::LinkId entry_link = topo::kNoLink;
  for (std::size_t i = 0; i + 1 < as_path.size(); ++i) {
    const EgressChoice egress = pick_egress(current, as_path[i + 1], variant);
    if (egress.link == topo::kNoLink) return {};  // no physical link: drop
    // Walk inside the current AS to the chosen border router.
    std::vector<RouterHop> inside =
        intra_as_path(current, egress.border, variant);
    if (inside.empty()) return {};
    inside.front().in_link = entry_link;
    out.insert(out.end(), inside.begin(), inside.end());
    // Cross the inter-AS link.
    const topo::Link& link = net_.link(egress.link);
    current = link.other_router(egress.border);
    entry_link = egress.link;
  }
  // Final AS: walk to the destination's attachment router.
  const topo::RouterId attach = attachment_router(dest_as, destination);
  std::vector<RouterHop> inside = intra_as_path(current, attach, variant);
  if (inside.empty()) return {};
  inside.front().in_link = entry_link;
  out.insert(out.end(), inside.begin(), inside.end());
  return out;
}

}  // namespace mapit::route
