// AS-level routing under the Gao-Rexford valley-free policy model.
//
// For each destination AS we compute every source AS's best route with the
// standard preference order: customer routes over peer routes over provider
// routes, then shortest AS-path, then lowest next-hop ASN (determinism).
// Export rules are the classic ones: routes learned from peers or providers
// are re-exported only to customers; customer routes go to everyone.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "asdata/asn.h"
#include "asdata/relationships.h"

namespace mapit::route {

/// Kind of the best route an AS holds toward a destination.
enum class RouteType : std::uint8_t {
  kSelf,      ///< the AS itself originates the destination
  kCustomer,  ///< learned from a customer
  kPeer,      ///< learned from a peer
  kProvider,  ///< learned from a provider
  kNone,      ///< unreachable
};

[[nodiscard]] const char* to_string(RouteType type);

class AsRouting {
 public:
  /// `relationships` must outlive this object; it should be the *true*
  /// relationship graph (the network routes on reality, not on the noisy
  /// exported dataset).
  explicit AsRouting(const asdata::AsRelationships& relationships);

  struct Entry {
    RouteType type = RouteType::kNone;
    std::uint16_t length = 0;            ///< AS-path length in hops
    asdata::Asn next = asdata::kUnknownAsn;  ///< next-hop AS toward dest
  };

  /// Best route at `source` toward `destination` (kNone if unreachable).
  [[nodiscard]] Entry route(asdata::Asn source, asdata::Asn destination) const;

  /// Full AS path source..destination inclusive; empty when unreachable.
  [[nodiscard]] std::vector<asdata::Asn> as_path(
      asdata::Asn source, asdata::Asn destination) const;

  /// Precomputes (and caches) the routing table toward `destination`.
  const std::unordered_map<asdata::Asn, Entry>& table(
      asdata::Asn destination) const;

 private:
  void compute(asdata::Asn destination,
               std::unordered_map<asdata::Asn, Entry>& table) const;

  const asdata::AsRelationships& rels_;
  std::vector<asdata::Asn> all_ases_;
  mutable std::unordered_map<asdata::Asn,
                             std::unordered_map<asdata::Asn, Entry>>
      cache_;
};

}  // namespace mapit::route
