// Router-level packet forwarding over the synthetic Internet.
//
// Combines the AS-level valley-free route (as_routing.h) with intra-AS
// shortest-path forwarding and hot-potato egress selection: on entering an
// AS, the packet exits toward the next AS at the border router closest to
// its ingress router (ties toward the lowest link id).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/prefix_trie.h"
#include "route/as_routing.h"
#include "topo/internet.h"

namespace mapit::route {

/// One router traversal: the router and the link the packet arrived on
/// (kNoLink for the very first router).
struct RouterHop {
  topo::RouterId router = topo::kNoRouter;
  topo::LinkId in_link = topo::kNoLink;

  friend bool operator==(const RouterHop&, const RouterHop&) = default;
};

class Forwarder {
 public:
  /// Both references must outlive the forwarder.
  Forwarder(const topo::Internet& net, const AsRouting& routing);

  /// The router path from `source` to the router that owns `destination`'s
  /// address space. Empty when the destination is unreachable or unknown.
  ///
  /// `variant` perturbs equal-cost tie-breaking (egress link choice and
  /// intra-AS equal-length paths); the traceroute simulator uses it to
  /// model per-packet load balancing. variant 0 is the canonical path.
  [[nodiscard]] std::vector<RouterHop> path(
      topo::RouterId source, net::Ipv4Address destination,
      std::uint32_t variant = 0) const;

  /// Origin AS of `destination` under the *true* announced address plan
  /// (the forwarding plane routes on reality, not on collector data).
  [[nodiscard]] asdata::Asn true_origin(net::Ipv4Address destination) const;

  /// The router inside `asn` that `destination` is attached to.
  [[nodiscard]] topo::RouterId attachment_router(
      asdata::Asn asn, net::Ipv4Address destination) const;

  /// Intra-AS shortest router path (internal links only); includes both
  /// endpoints; empty when disconnected. Deterministic; `variant` flips
  /// equal-cost next-hop choices.
  [[nodiscard]] std::vector<RouterHop> intra_as_path(
      topo::RouterId from, topo::RouterId to, std::uint32_t variant) const;

 private:
  struct EgressChoice {
    topo::RouterId border = topo::kNoRouter;
    topo::LinkId link = topo::kNoLink;
  };
  [[nodiscard]] EgressChoice pick_egress(topo::RouterId from,
                                         asdata::Asn next_as,
                                         std::uint32_t variant) const;

  const topo::Internet& net_;
  const AsRouting& routing_;
  net::PrefixTrie<asdata::Asn> true_origins_;
  /// (asn_low, asn_high) -> links between the two ASes, sorted by id.
  std::unordered_map<std::uint64_t, std::vector<topo::LinkId>> as_pair_links_;
  /// Per-router internal adjacency, sorted for determinism.
  std::vector<std::vector<std::pair<topo::RouterId, topo::LinkId>>> internal_adj_;
};

}  // namespace mapit::route
