// The self-healing process tier behind `mapit supervise`.
//
// One supervisor process fork/execs a fleet of children — typically N
// `mapit serve --async --reuseport` workers sharing a port plus one
// `mapit ingest` — from a declarative spec, then babysits them:
//
//   * Crash restarts. A child that exits (or is killed) is restarted with
//     capped exponential backoff: the first restart inside the breaker
//     window waits restart_base_ms, the next doubles, and so on up to
//     restart_cap_ms. The schedule is deterministic (no jitter) so tests
//     can assert it exactly.
//   * Crash-loop breaker. breaker_restarts exits within breaker_window_s
//     seconds trips the breaker for that child: it is abandoned (no more
//     restarts), the rest of the fleet keeps serving, and the run's report
//     says so — the CLI maps it to its own exit code so an init system can
//     tell "operator stopped it" from "one worker is hopeless".
//   * Liveness probes. A worker declared with probe=PORT is periodically
//     probed with the servers' HEALTH line; probe_misses consecutive
//     failures (after a post-start grace) means the PID is alive but the
//     process is wedged — it is SIGKILLed and takes the normal restart
//     path.
//   * Signal cascade. SIGTERM/SIGINT to the supervisor forwards SIGTERM to
//     every child and waits out a bounded graceful drain (drain_s);
//     stragglers get SIGKILL. SIGHUP is forwarded as-is (the serve workers
//     use it to force a snapshot re-check).
//
// Everything process-shaped (fork, execvp, waitpid, kill) and every probe
// byte goes through the fault::Io boundary, so the whole tier is testable
// with injected failures — no real crashes needed to exercise the breaker.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fault/io.h"
#include "net/error.h"

namespace mapit::supervise {

/// A malformed supervision spec (unknown setting, missing argv, ...).
class SpecError : public Error {
 public:
  using Error::Error;
};

/// One supervised child: a name for logs, the argv to exec, and an
/// optional HEALTH probe port.
struct WorkerSpec {
  std::string name;
  std::vector<std::string> argv;
  int probe_port = -1;  ///< -1 = liveness is waitpid-only
};

struct SuperviseOptions {
  std::vector<WorkerSpec> workers;

  // Restart backoff (deterministic: base, 2*base, 4*base, ... capped).
  int restart_base_ms = 500;
  int restart_cap_ms = 30000;

  // Crash-loop breaker: this many exits within the window trips it.
  int breaker_restarts = 5;
  double breaker_window_s = 60.0;

  // HEALTH probing (only for workers with probe_port >= 0).
  double probe_interval_s = 2.0;  ///< cadence between probes per worker
  double probe_timeout_s = 1.0;   ///< connect/send/recv budget per probe
  int probe_misses = 3;           ///< consecutive failures before SIGKILL
  double probe_grace_s = 5.0;     ///< no probing this long after a (re)start

  double drain_s = 5.0;  ///< graceful SIGTERM drain bound on shutdown

  std::ostream* log = nullptr;  ///< event lines (nullptr = silent)
  fault::Io* io = nullptr;      ///< syscall boundary (nullptr = system_io)
};

/// Parses the spec text. Lines: `#` comments, `set <key> <value>` for any
/// SuperviseOptions scalar (kebab-case, e.g. `set restart-base-ms 20`),
/// and `worker <name> [probe=PORT] <argv...>`. Throws SpecError.
[[nodiscard]] SuperviseOptions parse_spec(const std::string& text);

/// Reads and parses a spec file. Throws SpecError / mapit::Error.
[[nodiscard]] SuperviseOptions load_spec(const std::string& path,
                                         fault::Io& io = fault::system_io());

enum class EventType : std::uint8_t {
  kStart,             ///< child spawned (detail = pid)
  kExit,              ///< child reaped (detail = raw waitpid status)
  kRestartScheduled,  ///< restart queued (detail = backoff ms)
  kProbeKill,         ///< live PID stopped answering HEALTH (detail = pid)
  kBreakerTrip,       ///< crash-loop breaker tripped (detail = exits seen)
  kDrainKill,         ///< SIGKILL after the graceful drain ran out
  kStop,              ///< supervisor began cascading shutdown
};

[[nodiscard]] const char* to_string(EventType type);

/// One recorded supervision event. The sequence of events is deterministic
/// for a deterministic child schedule, which is what the tests pin.
struct SuperviseEvent {
  EventType type;
  std::string worker;  ///< "" for supervisor-level events (kStop)
  std::int64_t detail = 0;
};

struct SuperviseReport {
  std::vector<SuperviseEvent> events;
  std::uint64_t restarts = 0;      ///< restarts actually performed
  std::uint64_t probe_kills = 0;   ///< wedged children SIGKILLed
  bool breaker_tripped = false;    ///< at least one worker abandoned
};

/// Runs the fleet until `*stop` becomes true (cascaded shutdown) or every
/// worker has tripped its breaker. `hup`, when given, is a monotonically
/// increasing counter (SignalGuard::hup_count()); every observed increment
/// forwards one SIGHUP to the live children. Single-threaded: one loop
/// owns spawn, reap, probe, and drain.
class ProcessSupervisor {
 public:
  explicit ProcessSupervisor(SuperviseOptions options);

  SuperviseReport run(const std::atomic<bool>* stop,
                      const std::atomic<std::uint64_t>* hup = nullptr);

 private:
  SuperviseOptions options_;
};

}  // namespace mapit::supervise
