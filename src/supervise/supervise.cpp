#include "supervise/supervise.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

namespace mapit::supervise {

namespace {

using Clock = std::chrono::steady_clock;

Clock::duration seconds_of(double seconds) {
  return std::chrono::duration_cast<Clock::duration>(
      std::chrono::duration<double>(seconds));
}

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> tokens;
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

int parse_int(const std::string& value, const std::string& key,
              int line_no) {
  try {
    std::size_t used = 0;
    const int parsed = std::stoi(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw SpecError("spec line " + std::to_string(line_no) + ": " + key +
                    " wants an integer, got \"" + value + "\"");
  }
}

double parse_double(const std::string& value, const std::string& key,
                    int line_no) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw SpecError("spec line " + std::to_string(line_no) + ": " + key +
                    " wants a number, got \"" + value + "\"");
  }
}

void apply_setting(SuperviseOptions& options, const std::string& key,
                   const std::string& value, int line_no) {
  if (key == "restart-base-ms") {
    options.restart_base_ms = parse_int(value, key, line_no);
  } else if (key == "restart-cap-ms") {
    options.restart_cap_ms = parse_int(value, key, line_no);
  } else if (key == "breaker-restarts") {
    options.breaker_restarts = parse_int(value, key, line_no);
  } else if (key == "breaker-window-s") {
    options.breaker_window_s = parse_double(value, key, line_no);
  } else if (key == "probe-interval-s") {
    options.probe_interval_s = parse_double(value, key, line_no);
  } else if (key == "probe-timeout-s") {
    options.probe_timeout_s = parse_double(value, key, line_no);
  } else if (key == "probe-misses") {
    options.probe_misses = parse_int(value, key, line_no);
  } else if (key == "probe-grace-s") {
    options.probe_grace_s = parse_double(value, key, line_no);
  } else if (key == "drain-s") {
    options.drain_s = parse_double(value, key, line_no);
  } else {
    throw SpecError("spec line " + std::to_string(line_no) +
                    ": unknown setting \"" + key + "\"");
  }
}

/// One HEALTH round-trip against 127.0.0.1:`port`. True only when the
/// answer starts with "OK". connect() is raw (fault::Io carries no
/// connect); the request/response bytes go through `io` so probe failures
/// are injectable. A wedged single-threaded server still *accepts* (the
/// kernel backlog does) — it is the recv that times out, which is exactly
/// the live-PID-but-dead-service signal this probe exists to catch.
bool probe_health(int port, double timeout_s, fault::Io& io) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return false;
  struct ::timeval timeout{};
  timeout.tv_sec = static_cast<::time_t>(timeout_s);
  timeout.tv_usec = static_cast<::suseconds_t>(
      (timeout_s - static_cast<double>(timeout.tv_sec)) * 1e6);
  (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  (void)::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
  struct ::sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct ::sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return false;
  }
  constexpr char kProbe[] = "HEALTH\n";
  if (io.send(fd, kProbe, sizeof(kProbe) - 1, MSG_NOSIGNAL) !=
      static_cast<ssize_t>(sizeof(kProbe) - 1)) {
    ::close(fd);
    return false;
  }
  char buffer[256];
  const ssize_t n = io.recv(fd, buffer, sizeof(buffer), 0);
  ::close(fd);
  return n >= 2 && buffer[0] == 'O' && buffer[1] == 'K';
}

std::string describe_status(int status) {
  if (WIFEXITED(status)) {
    return "exit " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "status " + std::to_string(status);
}

struct Child {
  WorkerSpec spec;
  ::pid_t pid = -1;
  bool running = false;
  bool abandoned = false;  ///< breaker tripped: never restarted again
  bool restart_pending = false;
  Clock::time_point restart_at{};
  Clock::time_point started{};
  Clock::time_point next_probe{};
  std::deque<Clock::time_point> exit_times;  ///< pruned to breaker window
  int probe_misses = 0;
};

}  // namespace

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kStart: return "start";
    case EventType::kExit: return "exit";
    case EventType::kRestartScheduled: return "restart-scheduled";
    case EventType::kProbeKill: return "probe-kill";
    case EventType::kBreakerTrip: return "breaker-trip";
    case EventType::kDrainKill: return "drain-kill";
    case EventType::kStop: return "stop";
  }
  return "?";
}

SuperviseOptions parse_spec(const std::string& text) {
  SuperviseOptions options;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const std::vector<std::string> tokens = tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    if (tokens[0] == "set") {
      if (tokens.size() != 3) {
        throw SpecError("spec line " + std::to_string(line_no) +
                        ": want `set <key> <value>`");
      }
      apply_setting(options, tokens[1], tokens[2], line_no);
    } else if (tokens[0] == "worker") {
      if (tokens.size() < 3) {
        throw SpecError("spec line " + std::to_string(line_no) +
                        ": want `worker <name> [probe=PORT] <argv...>`");
      }
      WorkerSpec spec;
      spec.name = tokens[1];
      std::size_t argv_start = 2;
      if (tokens[2].rfind("probe=", 0) == 0) {
        spec.probe_port =
            parse_int(tokens[2].substr(6), "probe", line_no);
        argv_start = 3;
      }
      if (argv_start >= tokens.size()) {
        throw SpecError("spec line " + std::to_string(line_no) +
                        ": worker \"" + spec.name + "\" has no argv");
      }
      spec.argv.assign(tokens.begin() +
                           static_cast<std::ptrdiff_t>(argv_start),
                       tokens.end());
      for (const WorkerSpec& existing : options.workers) {
        if (existing.name == spec.name) {
          throw SpecError("spec line " + std::to_string(line_no) +
                          ": duplicate worker name \"" + spec.name + "\"");
        }
      }
      options.workers.push_back(std::move(spec));
    } else {
      throw SpecError("spec line " + std::to_string(line_no) +
                      ": unknown directive \"" + tokens[0] + "\"");
    }
  }
  return options;
}

SuperviseOptions load_spec(const std::string& path, fault::Io& io) {
  const int fd = io.open(path.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) {
    throw Error("cannot open supervision spec " + path + ": " +
                std::strerror(errno));
  }
  std::string text;
  char buffer[1 << 14];
  while (true) {
    const ssize_t n = io.read(fd, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n < 0) {
      (void)io.close(fd);
      throw Error("cannot read supervision spec " + path + ": " +
                  std::strerror(errno));
    }
    if (n == 0) break;
    text.append(buffer, static_cast<std::size_t>(n));
  }
  (void)io.close(fd);
  return parse_spec(text);
}

ProcessSupervisor::ProcessSupervisor(SuperviseOptions options)
    : options_(std::move(options)) {}

SuperviseReport ProcessSupervisor::run(
    const std::atomic<bool>* stop, const std::atomic<std::uint64_t>* hup) {
  fault::Io& io = options_.io != nullptr ? *options_.io : fault::system_io();
  SuperviseReport report;
  std::vector<Child> children;
  children.reserve(options_.workers.size());
  for (const WorkerSpec& spec : options_.workers) {
    Child child;
    child.spec = spec;
    children.push_back(std::move(child));
  }

  const auto record = [&](EventType type, const std::string& worker,
                          std::int64_t detail) {
    report.events.push_back(SuperviseEvent{type, worker, detail});
  };
  const auto log = [&](const std::string& message) {
    if (options_.log != nullptr) {
      *options_.log << "supervise: " << message << "\n" << std::flush;
    }
  };

  const auto spawn = [&](Child& child, bool is_restart) -> bool {
    const ::pid_t pid = io.fork();
    if (pid < 0) {
      // A failed fork is indistinguishable, for scheduling purposes, from
      // a child that died instantly: it re-enters the backoff/breaker path
      // below via a synthetic exit.
      log("cannot fork " + child.spec.name + ": " + std::strerror(errno));
      return false;
    }
    if (pid == 0) {
      std::vector<char*> argv;
      argv.reserve(child.spec.argv.size() + 1);
      for (const std::string& arg : child.spec.argv) {
        argv.push_back(const_cast<char*>(arg.c_str()));
      }
      argv.push_back(nullptr);
      (void)io.execvp(argv[0], argv.data());
      ::_exit(127);  // exec failed; the parent sees exit 127 and backs off
    }
    const Clock::time_point now = Clock::now();
    child.pid = pid;
    child.running = true;
    child.started = now;
    child.probe_misses = 0;
    child.next_probe = now + seconds_of(options_.probe_grace_s);
    record(EventType::kStart, child.spec.name, pid);
    if (is_restart) {
      ++report.restarts;
      log("restarted " + child.spec.name + " pid " + std::to_string(pid) +
          " (restart #" + std::to_string(report.restarts) + ")");
    } else {
      log("started " + child.spec.name + " pid " + std::to_string(pid));
    }
    return true;
  };

  // Exit bookkeeping shared by real reaps and synthetic fork failures:
  // prune the breaker window, either trip it or schedule the backoff.
  const auto handle_exit = [&](Child& child, bool stopping) {
    if (stopping) return;  // drain mode: exits are just exits
    const Clock::time_point now = Clock::now();
    const Clock::duration window = seconds_of(options_.breaker_window_s);
    child.exit_times.push_back(now);
    while (!child.exit_times.empty() &&
           now - child.exit_times.front() > window) {
      child.exit_times.pop_front();
    }
    const int exits_in_window = static_cast<int>(child.exit_times.size());
    if (exits_in_window >= options_.breaker_restarts) {
      child.abandoned = true;
      report.breaker_tripped = true;
      record(EventType::kBreakerTrip, child.spec.name, exits_in_window);
      log("breaker tripped for " + child.spec.name + ": " +
          std::to_string(exits_in_window) + " exits within " +
          std::to_string(options_.breaker_window_s) +
          "s; abandoning it (the rest of the fleet keeps serving)");
      return;
    }
    std::int64_t backoff_ms = options_.restart_base_ms;
    for (int i = 1; i < exits_in_window &&
                    backoff_ms < options_.restart_cap_ms;
         ++i) {
      backoff_ms *= 2;
    }
    backoff_ms = std::min<std::int64_t>(backoff_ms, options_.restart_cap_ms);
    child.restart_pending = true;
    child.restart_at = now + std::chrono::milliseconds(backoff_ms);
    record(EventType::kRestartScheduled, child.spec.name, backoff_ms);
    log("restarting " + child.spec.name + " in " +
        std::to_string(backoff_ms) + " ms");
  };

  // Reaps every child waitpid has for us. Returns the number reaped.
  const auto reap = [&](bool stopping) {
    int reaped = 0;
    while (true) {
      int status = 0;
      const ::pid_t pid = io.waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      for (Child& child : children) {
        if (child.pid != pid || !child.running) continue;
        child.running = false;
        child.pid = -1;
        record(EventType::kExit, child.spec.name, status);
        log(child.spec.name + " exited (" + describe_status(status) + ")");
        handle_exit(child, stopping);
        ++reaped;
        break;
      }
    }
    return reaped;
  };

  // Initial fleet. A worker whose very first fork fails takes the restart
  // path like everyone else.
  for (Child& child : children) {
    if (!spawn(child, /*is_restart=*/false)) handle_exit(child, false);
  }

  std::uint64_t last_hup = hup != nullptr ? hup->load() : 0;
  bool stop_seen = false;
  while (true) {
    if (stop != nullptr && stop->load()) {
      stop_seen = true;
      break;
    }
    (void)reap(/*stopping=*/false);

    // SIGHUP cascade: every increment the CLI's SignalGuard observed is
    // forwarded once to the live children (serve workers re-check their
    // snapshot on it).
    if (hup != nullptr) {
      const std::uint64_t hups = hup->load();
      if (hups != last_hup) {
        last_hup = hups;
        for (Child& child : children) {
          if (child.running) (void)io.kill(child.pid, SIGHUP);
        }
        log("forwarded SIGHUP to the fleet");
      }
    }

    const Clock::time_point now = Clock::now();
    bool any_alive_or_pending = false;
    for (Child& child : children) {
      if (child.abandoned) continue;
      if (!child.running) {
        if (child.restart_pending && now >= child.restart_at) {
          child.restart_pending = false;
          if (!spawn(child, /*is_restart=*/true)) handle_exit(child, false);
        }
        any_alive_or_pending = true;
        continue;
      }
      any_alive_or_pending = true;
      // Liveness probe: a PID that is alive but no longer answers HEALTH
      // is wedged — SIGKILL it and let the reap/restart path recover.
      if (child.spec.probe_port >= 0 && now >= child.next_probe) {
        child.next_probe = now + seconds_of(options_.probe_interval_s);
        if (probe_health(child.spec.probe_port, options_.probe_timeout_s,
                         io)) {
          child.probe_misses = 0;
        } else if (++child.probe_misses >= options_.probe_misses) {
          record(EventType::kProbeKill, child.spec.name, child.pid);
          ++report.probe_kills;
          log(child.spec.name + " pid " + std::to_string(child.pid) +
              " stopped answering HEALTH (" +
              std::to_string(child.probe_misses) +
              " consecutive misses); killing it");
          (void)io.kill(child.pid, SIGKILL);
          child.probe_misses = 0;
        }
      }
    }
    if (!any_alive_or_pending) {
      // Every worker tripped its breaker: nothing left to supervise.
      log("every worker tripped the crash-loop breaker; giving up");
      return report;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }

  // Cascaded shutdown: SIGTERM the fleet, give it drain_s to leave
  // gracefully, SIGKILL the stragglers, reap everything.
  record(EventType::kStop, "", 0);
  log(std::string("stopping: cascading SIGTERM to the fleet") +
      (stop_seen ? "" : " (spurious)"));
  for (Child& child : children) {
    if (child.running) (void)io.kill(child.pid, SIGTERM);
  }
  const Clock::time_point drain_deadline =
      Clock::now() + seconds_of(options_.drain_s);
  while (Clock::now() < drain_deadline) {
    (void)reap(/*stopping=*/true);
    if (std::none_of(children.begin(), children.end(),
                     [](const Child& c) { return c.running; })) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds{10});
  }
  for (Child& child : children) {
    if (!child.running) continue;
    record(EventType::kDrainKill, child.spec.name, child.pid);
    log(child.spec.name + " did not drain in " +
        std::to_string(options_.drain_s) + "s; killing it");
    (void)io.kill(child.pid, SIGKILL);
  }
  for (Child& child : children) {
    if (!child.running) continue;
    int status = 0;
    if (io.waitpid(child.pid, &status, 0) == child.pid) {
      child.running = false;
      child.pid = -1;
      record(EventType::kExit, child.spec.name, status);
      log(child.spec.name + " exited (" + describe_status(status) + ")");
    }
  }
  log("fleet stopped");
  return report;
}

}  // namespace mapit::supervise
