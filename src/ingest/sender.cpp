#include "ingest/sender.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "ingest/source.h"

namespace mapit::ingest {

namespace {

using Clock = std::chrono::steady_clock;

/// Cut a batch early once its lines total this many bytes, keeping every
/// BATCH frame far under the transport payload cap.
constexpr std::size_t kMaxBatchBytes = 1u << 20;

/// Floor on the socket read slice, which doubles as the tailer poll
/// interval in session_loop: short enough to keep heartbeats, deadlines,
/// and the stop flag responsive.
constexpr double kMinReadSliceSeconds = 0.01;

struct PendingBatch {
  std::uint64_t seq = 0;
  std::uint64_t end_offset = 0;
  std::size_t line_count = 0;
  std::string wire;  ///< serialized frame, reused verbatim for resends
};

void set_socket_timeout(int fd, double seconds) {
  struct ::timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Why the per-connection session loop ended.
enum class SessionEnd {
  kDrained,   ///< drain mode: everything sent and ACKed
  kStopped,   ///< stop flag observed
  kConnLost,  ///< socket died / deadline passed / re-syncable ERROR
};

class Sender {
 public:
  Sender(const SendOptions& options, const std::atomic<bool>& stop)
      : options_(options),
        stop_(&stop),
        io_(options.io != nullptr ? *options.io : fault::system_io()) {
    MAPIT_ENSURE(!options_.session.empty() &&
                     options_.session.size() <= kMaxTransportSession,
                 "sender session name length out of range");
    MAPIT_ENSURE(!options_.secret.empty(), "sender requires a shared secret");
    MAPIT_ENSURE(options_.window >= 1, "sender window must be >= 1");
    MAPIT_ENSURE(options_.batch_lines >= 1,
                 "sender batch size must be >= 1");
  }

  SendStats run() {
    if (!options_.follow) {
      // Drain mode ships a file that must already exist; a typo'd path
      // exiting 0 after "sending" nothing would be a silent data loss.
      const int probe = io_.open(options_.path.c_str(),
                                 O_RDONLY | O_CLOEXEC, 0);
      if (probe < 0) {
        throw Error("cannot open trace file " + options_.path + ": " +
                    std::strerror(errno));
      }
      (void)io_.close(probe);
    }

    std::uint64_t failed_attempts = 0;
    double backoff = options_.reconnect_base_seconds;
    bool handshaken_once = false;

    while (!stop_->load()) {
      const int fd = connect_once();
      if (fd < 0) {
        ++failed_attempts;
        if (options_.max_attempts != 0 &&
            failed_attempts >= options_.max_attempts) {
          throw TransportRetriesExhausted(
              "giving up on " + options_.host + ":" +
              std::to_string(options_.port) + " after " +
              std::to_string(failed_attempts) + " failed attempts");
        }
        sleep_backoff(backoff);
        backoff = std::min(backoff * 2, options_.reconnect_cap_seconds);
        continue;
      }
      bool session_ok = false;
      try {
        handshake(fd);
        session_ok = true;
      } catch (const TransportAuthError&) {
        ::close(fd);
        throw;  // wrong secret / base: retrying cannot help
      } catch (const Error& error) {
        log("handshake failed: " + std::string(error.what()));
      }
      if (!session_ok) {
        ::close(fd);
        ++failed_attempts;
        if (options_.max_attempts != 0 &&
            failed_attempts >= options_.max_attempts) {
          throw TransportRetriesExhausted(
              "giving up on " + options_.host + ":" +
              std::to_string(options_.port) + " after " +
              std::to_string(failed_attempts) + " failed attempts");
        }
        sleep_backoff(backoff);
        backoff = std::min(backoff * 2, options_.reconnect_cap_seconds);
        continue;
      }
      failed_attempts = 0;
      backoff = options_.reconnect_base_seconds;
      if (handshaken_once) {
        ++stats_.reconnects;
      } else {
        handshaken_once = true;
      }

      SessionEnd end = SessionEnd::kConnLost;
      try {
        end = session_loop(fd);
      } catch (const TransportAuthError&) {
        ::close(fd);
        throw;
      } catch (const TransportError& error) {
        // A re-syncable server ERROR (kOverloaded, kBadSequence) or wire
        // garbage: treat it like a lost connection — back off and let the
        // next handshake's HELLO_ACK decide what to replay. Only auth
        // failures are fatal.
        log("session error: " + std::string(error.what()) +
            " (reconnecting)");
        ::close(fd);
        sleep_backoff(backoff);
        backoff = std::min(backoff * 2, options_.reconnect_cap_seconds);
        continue;
      }
      ::close(fd);
      if (end == SessionEnd::kDrained || end == SessionEnd::kStopped) break;
    }
    return stats_;
  }

 private:
  void log(const std::string& message) {
    if (options_.log) options_.log(message);
  }

  void sleep_backoff(double seconds) {
    // Slice the sleep so a stop request is honored promptly.
    auto remaining = std::chrono::duration<double>(seconds);
    while (remaining.count() > 0 && !stop_->load()) {
      const auto slice = std::min<std::chrono::duration<double>>(
          remaining, std::chrono::duration<double>(0.05));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
  }

  /// Opens a TCP connection and ships the stream magic. -1 on failure.
  int connect_once() {
    ::sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(options_.port);
    if (::inet_pton(AF_INET, options_.host.c_str(), &address.sin_addr) != 1) {
      throw Error("invalid IPv4 address: " + options_.host);
    }
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return -1;
    if (io_.connect(fd, reinterpret_cast<const ::sockaddr*>(&address),
                    sizeof(address)) != 0) {
      ::close(fd);
      return -1;
    }
    {
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    }
    set_socket_timeout(fd, std::max(options_.poll_seconds,
                                    kMinReadSliceSeconds));
    if (!send_all(fd, std::string_view(kTransportMagic,
                                       sizeof(kTransportMagic)))) {
      ::close(fd);
      return -1;
    }
    return fd;
  }

  bool send_all(int fd, std::string_view bytes) {
    std::size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = io_.send(fd, bytes.data() + sent,
                                 bytes.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return false;
      sent += static_cast<std::size_t>(n);
    }
    last_tx_ = Clock::now();
    return true;
  }

  /// Pumps the socket until a frame arrives. Throws TransportError on
  /// garbage; nullopt on EOF / deadline / stop.
  std::optional<Frame> read_frame(int fd) {
    Frame frame;
    char buffer[16 * 1024];
    while (!stop_->load()) {
      if (reader_.next(frame)) {
        last_rx_ = Clock::now();
        return frame;
      }
      const ssize_t n = io_.recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        reader_.append(std::string_view(buffer, static_cast<std::size_t>(n)));
        continue;
      }
      if (n == 0) return std::nullopt;
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return std::nullopt;
      if (deadline_passed()) return std::nullopt;
      maybe_heartbeat(fd);
    }
    return std::nullopt;
  }

  [[nodiscard]] bool deadline_passed() const {
    if (options_.deadline_seconds <= 0) return false;
    const std::chrono::duration<double> idle = Clock::now() - last_rx_;
    return idle.count() > options_.deadline_seconds;
  }

  void maybe_heartbeat(int fd) {
    if (options_.heartbeat_seconds <= 0) return;
    const std::chrono::duration<double> quiet = Clock::now() - last_tx_;
    if (quiet.count() > options_.heartbeat_seconds) {
      (void)send_all(fd, serialize_frame(FrameType::kHeartbeat, ""));
    }
  }

  /// Maps a server ERROR frame onto the client exception taxonomy.
  [[noreturn]] void raise_server_error(const ErrorFrame& error) {
    const std::string what = "server rejected session: " + error.message;
    if (error.code == TransportErrorCode::kAuthFailed ||
        error.code == TransportErrorCode::kBaseMismatch) {
      throw TransportAuthError(what);
    }
    throw TransportError(what);
  }

  /// CHALLENGE -> HELLO -> HELLO_ACK. On success the unACKed window and
  /// the tailer position are re-synced to the server's durable watermark.
  void handshake(int fd) {
    reader_ = FrameReader();
    last_rx_ = last_tx_ = Clock::now();

    auto frame = read_frame(fd);
    if (!frame.has_value()) {
      throw TransportError("connection closed before CHALLENGE");
    }
    if (frame->type == FrameType::kError) {
      raise_server_error(parse_error(frame->payload));
    }
    if (frame->type != FrameType::kChallenge) {
      throw TransportError("expected CHALLENGE, got frame type " +
                           std::to_string(static_cast<int>(frame->type)));
    }
    const ChallengeFrame challenge = parse_challenge(frame->payload);
    if (challenge.version != kTransportVersion) {
      throw TransportError("server speaks MDP1 version " +
                           std::to_string(challenge.version));
    }
    if (options_.expect_base.has_value() &&
        challenge.base_fingerprint != *options_.expect_base) {
      throw TransportAuthError(
          "server base fingerprint mismatch: expected " +
          std::to_string(*options_.expect_base) + ", server announced " +
          std::to_string(challenge.base_fingerprint));
    }

    HelloFrame hello;
    hello.base_fingerprint = challenge.base_fingerprint;
    hello.session = options_.session;
    hello.mac = compute_hello_mac(options_.secret, challenge.nonce,
                                  challenge.base_fingerprint,
                                  options_.session);
    if (!send_all(fd, serialize_hello(hello))) {
      throw TransportError("connection closed while sending HELLO");
    }

    frame = read_frame(fd);
    if (!frame.has_value()) {
      throw TransportError("connection closed before HELLO_ACK");
    }
    if (frame->type == FrameType::kError) {
      raise_server_error(parse_error(frame->payload));
    }
    if (frame->type != FrameType::kHelloAck) {
      throw TransportError("expected HELLO_ACK, got frame type " +
                           std::to_string(static_cast<int>(frame->type)));
    }
    const HelloAckFrame ack = parse_hello_ack(frame->payload);

    // Everything at or below the durable watermark is done; the rest of
    // the window must be replayed on this connection.
    absorb_ack(ack.last_seq, ack.last_offset);
    if (tailer_ == nullptr) {
      // First handshake of this process: resume reading exactly where the
      // receiver's journal ends. A crashed predecessor's tail re-sends
      // nothing (ACKed == durable) and loses nothing (unACKed == not
      // journaled, so the bytes are still at offset >= last_offset).
      tailer_ = std::make_unique<FileTailer>(options_.path, ack.last_offset,
                                             io_);
      next_seq_ = ack.last_seq + 1;
      if (ack.last_seq > 0) {
        log("resuming session " + options_.session + " at seq " +
            std::to_string(next_seq_) + ", offset " +
            std::to_string(ack.last_offset));
      }
    } else if (ack.last_seq + 1 > next_seq_) {
      // The server knows sequence numbers this process never sent:
      // another sender is using our session name concurrently. Replaying
      // on top of it would interleave two files into one watermark chain.
      throw TransportAuthError(
          "session " + options_.session + " advanced to seq " +
          std::to_string(ack.last_seq) +
          " behind our back (is another sender using this session?)");
    }
  }

  /// Drops every window entry covered by the cumulative ACK.
  void absorb_ack(std::uint64_t seq, std::uint64_t offset) {
    while (!unacked_.empty() && unacked_.front().seq <= seq) {
      ++stats_.batches_acked;
      unacked_.pop_front();
    }
    if (seq > stats_.last_acked_seq) {
      stats_.last_acked_seq = seq;
      stats_.acked_offset = offset;
    }
  }

  SessionEnd session_loop(int fd) {
    // Replay the unACKed window first: these batches were on the wire
    // when the previous connection died, and the server may or may not
    // have journaled them — its watermark dedupe decides.
    for (const PendingBatch& pending : unacked_) {
      if (!send_all(fd, pending.wire)) return SessionEnd::kConnLost;
      ++stats_.batches_resent;
    }

    Frame frame;
    char buffer[16 * 1024];
    while (!stop_->load()) {
      // 1. Absorb whatever the server sent (ACKs, heartbeats).
      while (reader_.next(frame)) {
        last_rx_ = Clock::now();
        switch (frame.type) {
          case FrameType::kAck: {
            const AckFrame ack = parse_ack(frame.payload);
            absorb_ack(ack.seq, ack.end_offset);
            break;
          }
          case FrameType::kHeartbeat:
            break;
          case FrameType::kError:
            raise_server_error(parse_error(frame.payload));
          default:
            throw TransportError(
                "unexpected frame type " +
                std::to_string(static_cast<int>(frame.type)) +
                " from server");
        }
      }

      // 2. Refill the line buffer from the tailer (unless the window and
      // buffer are already saturated — backpressure reaches the file).
      std::size_t polled = 0;
      if (buffer_.size() < options_.batch_lines * options_.window) {
        polled = tailer_->poll(buffer_);
        if (polled > 0 && buffer_.size() == polled) {
          oldest_buffered_ = Clock::now();
        }
      }
      const bool source_idle = polled == 0;

      // 3. Cut and ship batches while the window has room.
      while (unacked_.size() < options_.window && !buffer_.empty()) {
        const bool full = buffer_.size() >= options_.batch_lines;
        const std::chrono::duration<double> age =
            Clock::now() - oldest_buffered_;
        const bool aged = age.count() >= options_.batch_seconds;
        const bool flush_eof = !options_.follow && source_idle;
        if (!full && !aged && !flush_eof) break;

        PendingBatch pending;
        pending.seq = next_seq_++;
        BatchFrame batch;
        batch.seq = pending.seq;
        std::size_t bytes = 0;
        std::size_t take = 0;
        while (take < buffer_.size() && take < options_.batch_lines &&
               bytes < kMaxBatchBytes) {
          bytes += buffer_[take].line.size();
          ++take;
        }
        batch.lines.reserve(take);
        for (std::size_t i = 0; i < take; ++i) {
          batch.lines.push_back(std::move(buffer_[i].line));
        }
        batch.end_offset = take < buffer_.size() ? buffer_[take].offset
                                                 : tailer_->offset();
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(take));
        if (!buffer_.empty()) oldest_buffered_ = Clock::now();
        pending.end_offset = batch.end_offset;
        pending.line_count = take;
        pending.wire = serialize_batch(batch);

        if (!send_all(fd, pending.wire)) {
          // Not ACKed, still in the window: the reconnect replays it.
          unacked_.push_back(std::move(pending));
          return SessionEnd::kConnLost;
        }
        stats_.lines_sent += take;
        ++stats_.batches_sent;
        unacked_.push_back(std::move(pending));
      }

      // 4. Drain termination: source exhausted, window empty.
      if (!options_.follow && source_idle && buffer_.empty() &&
          unacked_.empty()) {
        return SessionEnd::kDrained;
      }

      // 5. Block briefly on the socket (doubles as the poll interval).
      const ssize_t n = io_.recv(fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        reader_.append(std::string_view(buffer, static_cast<std::size_t>(n)));
        last_rx_ = Clock::now();
      } else if (n == 0) {
        return SessionEnd::kConnLost;
      } else if (errno != EINTR && errno != EAGAIN &&
                 errno != EWOULDBLOCK) {
        return SessionEnd::kConnLost;
      }
      if (deadline_passed()) return SessionEnd::kConnLost;
      maybe_heartbeat(fd);
    }
    return SessionEnd::kStopped;
  }

  SendOptions options_;
  const std::atomic<bool>* stop_;
  fault::Io& io_;
  SendStats stats_;
  FrameReader reader_;
  std::unique_ptr<FileTailer> tailer_;
  std::vector<SourceLine> buffer_;
  std::deque<PendingBatch> unacked_;
  std::uint64_t next_seq_ = 1;
  Clock::time_point last_rx_{};
  Clock::time_point last_tx_{};
  Clock::time_point oldest_buffered_{};
};

}  // namespace

SendStats run_sender(const SendOptions& options,
                     const std::atomic<bool>& stop) {
  Sender sender(options, stop);
  return sender.run();
}

}  // namespace mapit::ingest
