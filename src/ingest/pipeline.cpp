#include "ingest/pipeline.h"

#include <algorithm>
#include <fstream>
#include <utility>

#include "net/error.h"
#include "trace/trace_io.h"

namespace mapit::ingest {

namespace {

std::ifstream open_or_throw(const std::string& path) {
  std::ifstream stream(path);
  if (!stream) throw Error("cannot open " + path);
  return stream;
}

/// Merges `addition` (sorted unique) into `base` (sorted unique) in place.
void merge_sorted_unique(std::vector<net::Ipv4Address>& base,
                         const std::vector<net::Ipv4Address>& addition) {
  const std::size_t old_size = base.size();
  base.insert(base.end(), addition.begin(), addition.end());
  std::inplace_merge(base.begin(),
                     base.begin() + static_cast<std::ptrdiff_t>(old_size),
                     base.end());
  base.erase(std::unique(base.begin(), base.end()), base.end());
}

}  // namespace

IngestPipeline::IngestPipeline(const IngestSetup& setup)
    : options_(setup.options) {
  {
    auto stream = open_or_throw(setup.traces_path);
    const trace::TraceCorpus corpus = trace::read_corpus(
        stream, options_.threads, setup.lenient ? &trace_report_ : nullptr);
    base_traces_ = corpus.size();
    all_addresses_ = corpus.distinct_addresses();
    const trace::SanitizeResult sanitized =
        trace::sanitize(corpus, options_.threads);
    graph_ = std::make_unique<graph::InterfaceGraph>(
        sanitized.clean, all_addresses_, options_.threads);
  }
  {
    auto stream = open_or_throw(setup.rib_path);
    rib_ = bgp::Rib::read(stream, setup.lenient ? &rib_report_ : nullptr);
  }
  if (!setup.relationships_path.empty()) {
    auto stream = open_or_throw(setup.relationships_path);
    rels_ = asdata::AsRelationships::read(stream);
  }
  if (!setup.as2org_path.empty()) {
    auto stream = open_or_throw(setup.as2org_path);
    orgs_ = asdata::As2Org::read(stream);
  }
  if (!setup.ixps_path.empty()) {
    auto stream = open_or_throw(setup.ixps_path);
    ixps_ = asdata::IxpRegistry::read(stream);
  }
  ip2as_ = std::make_unique<bgp::Ip2As>(rib_, net::PrefixTrie<asdata::Asn>{},
                                        &ixps_);

  // Identity of the base run, fingerprinted exactly like the checkpoint
  // family (same presence markers for optional datasets), so a journal is
  // rejected the moment any base input byte changed underneath it.
  meta_.config_hash = core::config_hash(options_);
  meta_.corpus_fingerprint = core::fingerprint_file(setup.traces_path);
  meta_.rib_fingerprint = core::fingerprint_file(setup.rib_path);
  std::uint64_t datasets = core::kFingerprintSeed;
  for (const std::string& optional_path :
       {setup.relationships_path, setup.as2org_path, setup.ixps_path}) {
    datasets =
        core::fingerprint_bytes(datasets, optional_path.empty() ? "-" : "+");
    if (!optional_path.empty()) {
      datasets = core::fingerprint_file(optional_path, datasets);
    }
  }
  meta_.datasets_fingerprint = datasets;
}

void IngestPipeline::fold(const trace::TraceCorpus& raw_delta) {
  if (raw_delta.empty()) return;
  delta_traces_ += raw_delta.size();
  // Witness population first: the other-side heuristic must see the
  // addresses of traces the sanitizer is about to discard.
  merge_sorted_unique(all_addresses_, raw_delta.distinct_addresses());
  const trace::SanitizeResult sanitized =
      trace::sanitize(raw_delta, options_.threads);
  graph_->fold(sanitized.clean, all_addresses_, options_.threads);
}

core::Result IngestPipeline::run() const {
  return core::run_mapit(*graph_, *ip2as_, orgs_, rels_, options_);
}

store::WriteInfo IngestPipeline::publish(const std::string& path,
                                         fault::Io& io) {
  const core::Result result = run();
  const store::SnapshotData data =
      store::make_snapshot_data(result, *graph_, *ip2as_);
  return store::write_snapshot_file(data, path, io);
}

std::string IngestPipeline::serialize() const {
  const core::Result result = run();
  return store::serialize_snapshot(
      store::make_snapshot_data(result, *graph_, *ip2as_));
}

}  // namespace mapit::ingest
