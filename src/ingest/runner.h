// The `mapit ingest` loop: sources -> journal -> fold -> publish.
//
// One run_ingest call owns the whole streaming session:
//
//   1. Load the base run (IngestPipeline) and open the delta journal,
//      creating it when absent and verifying its identity block against
//      the base inputs otherwise (a changed base = JournalError, exit 4).
//   2. Replay the journal: every preserved trace line is parsed and folded
//      (in one batch — the equivalence invariant makes batching
//      irrelevant), and the follow-file position advances past the bytes
//      the journal already preserved.
//   3. Publish the snapshot for the replayed state. If the journal ended
//      with trace records after the last commit marker (a crash between
//      watermark and commit), this publish completes the interrupted
//      batch and appends its commit record — resume-after-kill lands in
//      exactly the state an uninterrupted run would have reached.
//   4. Loop: poll the sources; quarantine (lenient) or reject (strict)
//      lines that do not parse; at each watermark — `batch_lines` pending
//      lines, or `batch_seconds` since the first pending line arrived —
//      append the accepted lines to the journal, sync it (the durability
//      point), fold, publish, then append + sync the commit record.
//
// WAL ordering: lines are durable in the journal *before* the fold that
// consumes them, and the commit record is appended only after the
// published snapshot is safely renamed into place. A crash at any point
// therefore loses nothing: the worst case replays a batch whose snapshot
// was already published, which re-publishes identical bytes.
//
// Degraded mode: a journal or publish failure with an I/O flavor (ENOSPC,
// EIO, a full /tmp) no longer kills the run. The flush parks mid-stage and
// is retried every `retry_interval` seconds while the loop keeps tailing
// its sources (bounded by `max_pending_lines`, past which polling pauses
// and socket backpressure engages). Completed stages are never redone, so
// when the disk recovers the republished snapshot is byte-identical to an
// unfaulted run's. Journal corruption at startup and a rotated/truncated
// follow file (SourceRotatedError) stay fatal — those are not conditions
// that clear on their own. The optional HEALTH endpoint (`health_port`)
// reports `degraded=` so `mapit supervise` can see the state.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/engine.h"
#include "fault/io.h"

namespace mapit::ingest {

struct IngestOptions {
  // Base run inputs (see IngestSetup).
  std::string traces_path;
  std::string rib_path;
  std::string relationships_path;
  std::string as2org_path;
  std::string ixps_path;
  bool lenient = false;
  core::Options engine_options;

  std::string journal_path;  ///< delta journal (required)
  std::string out_path;      ///< snapshot publish target (required)

  /// Append-only delta corpus file to tail-follow ("" = none).
  std::string follow_path;
  /// MDP1 framed-transport listener port (-1 = none; 0 = ephemeral).
  /// Remote `mapit send` clients authenticate with `secret` and get
  /// exactly-once journaling (ACK after fsync, watermark dedupe).
  int listen_port = -1;
  /// Legacy plaintext line listener (-1 = none; 0 = ephemeral). Kept for
  /// trusted loopback producers; anything remote should speak MDP1.
  int listen_plain_port = -1;
  /// Shared HMAC secret for the MDP1 listener (required with listen_port).
  std::string secret;
  /// MDP1 liveness tuning; 0 disables the heartbeat / read deadline
  /// (deterministic-syscall test hook).
  double transport_heartbeat_seconds = 2.0;
  double transport_deadline_seconds = 15.0;
  /// Per-connection unACKed batch quota for the MDP1 listener.
  std::size_t max_inflight_batches = 8;

  std::size_t batch_lines = 1000;  ///< count watermark
  double batch_seconds = 5.0;      ///< time watermark (0 = count only)
  double poll_interval = 0.2;      ///< source poll cadence (seconds)
  /// Degraded-mode retry cadence: how long to wait before re-attempting a
  /// flush stage that failed with an I/O error (<= 0 picks 1s).
  double retry_interval = 1.0;
  /// Accepted-but-unflushed line bound while a flush is parked degraded:
  /// past it, source polling pauses until the flush lands (0 = ten
  /// batches' worth).
  std::size_t max_pending_lines = 0;
  /// HEALTH endpoint port for supervision probes (-1 = none; 0 =
  /// ephemeral). Answers one `OK degraded=... last_error=...` line per
  /// connection.
  int health_port = -1;
  /// Consume everything the sources have right now, flush, publish, exit —
  /// instead of waiting for more input. The batch/resume test mode.
  bool drain = false;
  /// Stop after this many batch commits (0 = unlimited). With --drain the
  /// run also ends once input is exhausted, whichever comes first.
  std::uint64_t max_batches = 0;

  std::ostream* log = nullptr;  ///< progress lines (nullptr = silent)
  fault::Io* io = nullptr;      ///< syscall boundary (nullptr = system_io)
};

struct IngestStats {
  std::uint64_t replayed_traces = 0;  ///< journal lines restored at startup
  std::uint64_t folded_traces = 0;    ///< delta traces folded in total
  std::uint64_t batches = 0;          ///< commit records appended this run
  std::uint64_t quarantined = 0;      ///< delta lines that failed to parse
  std::uint64_t publishes = 0;        ///< snapshot publications
  std::uint64_t degraded_entries = 0; ///< flush failures that began a park
  std::uint64_t source_rearms = 0;    ///< ingest listener re-binds
  std::uint64_t remote_batches = 0;   ///< MDP1 batches journaled + ACKed
  std::uint64_t remote_duplicates = 0;///< replayed batches deduped by watermark
  std::uint32_t snapshot_crc = 0;     ///< last published payload CRC
  std::uint16_t listen_port = 0;      ///< bound MDP1 port (when listening)
  std::uint16_t listen_plain_port = 0;///< bound plaintext port (when enabled)
  std::uint16_t health_port = 0;      ///< bound HEALTH port (when enabled)
};

/// Runs the ingest session described by `options` until input is exhausted
/// (--drain), `max_batches` commits, or `*stop` becomes true (the CLI sets
/// it from SIGTERM/SIGINT; pending accepted lines are flushed as a final
/// batch first). Throws mapit::Error / core::JournalError like the rest of
/// the library; the CLI maps them to exit codes 3 / 4.
IngestStats run_ingest(const IngestOptions& options,
                       const std::atomic<bool>* stop = nullptr);

}  // namespace mapit::ingest
