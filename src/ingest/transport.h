// MDP1: the framed, authenticated delta transport for remote ingestion.
//
// The legacy IngestSocket (source.h) accepts raw newline-delimited lines
// from anyone who can reach the port and loses track of what arrived when
// a connection dies. MDP1 replaces it for remote monitors with a protocol
// that survives sender crashes, receiver crashes, partitions, and
// duplicate delivery without ever violating the byte-identical-to-cold-run
// invariant:
//
//   client                               server
//     "MDP1"              ------------>            (4-byte stream magic)
//                         <------------  CHALLENGE (version, base
//                                        fingerprint, 16-byte nonce)
//     HELLO (version, fingerprint echo,
//            session name, HMAC-SHA256) ------------>
//                         <------------  HELLO_ACK (last durable seq,
//                                        last durable source offset)
//     BATCH (seq, end offset, lines)    ------------>
//                         <------------  ACK (seq, end offset) — sent only
//                                        AFTER the journal fsync
//     HEARTBEAT                         <---------->  (both directions)
//
// Every frame after the magic is length-prefixed and CRC-framed with the
// exact header shape of a journal record (u32 size | u32 CRC-32 | u8 type
// | u8[3] reserved), so one fuzzed parser family covers both formats.
//
// Exactly-once contract: a batch is journaled as ONE atomic kRemoteBatch
// record carrying its (session, seq) watermark, fsynced, and only then
// ACKed. ACKs are cumulative (an ACK for seq covers everything <= seq).
// A sender that never saw the ACK resends; the receiver compares seq
// against the session watermark and drops duplicates idempotently —
// re-ACKing the watermark so the sender advances. A torn journal tail
// drops lines and watermark together, so there is no crash window where
// traces are durable but their dedupe key is not.
//
// Authentication: HELLO carries HMAC-SHA256(secret, "MDP1" || version ||
// nonce || fingerprint || session). A wrong secret or a mismatched base
// fingerprint is rejected at HELLO with a typed ERROR frame and a clean
// close — before any journal write. The fingerprint (a FNV-1a fold of the
// base run's CheckpointMeta) pins which engine state the deltas extend.
//
// Liveness: both ends send HEARTBEAT frames when idle and enforce a read
// deadline; a peer that goes silent is closed (server) or reconnected to
// (client). Per-connection inflight quotas bound unACKed batches, so a
// fast sender is throttled by TCP backpressure like the plain socket.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/journal.h"
#include "fault/io.h"
#include "net/error.h"

namespace mapit::ingest {

/// Malformed or unexpected MDP1 bytes (bad CRC, oversized frame, protocol
/// state violation). Connection-fatal, never journal-corrupting.
class TransportError : public Error {
 public:
  using Error::Error;
};

/// Rejected at HELLO: wrong HMAC or mismatched base fingerprint. Its own
/// type so `mapit send` can map it to a distinct exit code (7) instead of
/// retrying a credential that will never work.
class TransportAuthError : public TransportError {
 public:
  using TransportError::TransportError;
};

inline constexpr char kTransportMagic[4] = {'M', 'D', 'P', '1'};
inline constexpr std::uint32_t kTransportVersion = 1;
/// Frame header: u32 payload size | u32 CRC-32 | u8 type | u8[3] reserved.
inline constexpr std::size_t kTransportFrameSize = 12;
/// Sanity cap on one frame payload; a larger size field is corruption.
inline constexpr std::uint32_t kMaxTransportPayload = 4u << 20;
/// Cap on one trace line inside a BATCH (same bound the plain socket uses).
inline constexpr std::uint32_t kMaxTransportLine = 1u << 20;
inline constexpr std::size_t kTransportNonceSize = 16;
inline constexpr std::size_t kTransportMacSize = 32;
inline constexpr std::size_t kMaxTransportSession = core::kMaxJournalSessionName;

enum class FrameType : std::uint8_t {
  kChallenge = 1,
  kHello = 2,
  kHelloAck = 3,
  kBatch = 4,
  kAck = 5,
  kHeartbeat = 6,
  kError = 7,
};

/// Typed rejection codes carried by ERROR frames.
enum class TransportErrorCode : std::uint16_t {
  kProtocol = 1,      ///< malformed frame or wrong state
  kAuthFailed = 2,    ///< HELLO HMAC did not verify
  kBaseMismatch = 3,  ///< HELLO echoed a different base fingerprint
  kBadSequence = 4,   ///< BATCH seq gap or in-flight duplicate
  kOverloaded = 5,    ///< receiver shedding load; retry later
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  std::string payload;

  friend bool operator==(const Frame&, const Frame&) = default;
};

// ---- Crypto (self-contained; the repo links no external libraries) ------

[[nodiscard]] std::array<std::uint8_t, 32> sha256(std::string_view message);
[[nodiscard]] std::array<std::uint8_t, 32> hmac_sha256(
    std::string_view key, std::string_view message);

/// FNV-1a fold of the base run's CheckpointMeta into the single u64 the
/// handshake pins (logged at ingest startup; `mapit send --expect-base`
/// verifies it client-side).
[[nodiscard]] std::uint64_t combined_fingerprint(const core::CheckpointMeta&);

/// The HMAC a well-formed HELLO must carry for this challenge.
[[nodiscard]] std::array<std::uint8_t, 32> compute_hello_mac(
    std::string_view secret,
    const std::array<std::uint8_t, kTransportNonceSize>& nonce,
    std::uint64_t base_fingerprint, std::string_view session);

// ---- Frame (de)serialization --------------------------------------------

struct ChallengeFrame {
  std::uint32_t version = kTransportVersion;
  std::uint64_t base_fingerprint = 0;
  std::array<std::uint8_t, kTransportNonceSize> nonce{};
};

struct HelloFrame {
  std::uint32_t version = kTransportVersion;
  std::uint64_t base_fingerprint = 0;
  std::string session;
  std::array<std::uint8_t, kTransportMacSize> mac{};
};

struct HelloAckFrame {
  std::uint64_t last_seq = 0;
  std::uint64_t last_offset = 0;
};

struct BatchFrame {
  std::uint64_t seq = 0;
  std::uint64_t end_offset = 0;
  std::vector<std::string> lines;
};

struct AckFrame {
  std::uint64_t seq = 0;
  std::uint64_t end_offset = 0;
};

struct ErrorFrame {
  TransportErrorCode code = TransportErrorCode::kProtocol;
  std::string message;
};

/// Wraps a payload in the 12-byte CRC frame header.
[[nodiscard]] std::string serialize_frame(FrameType type,
                                          std::string_view payload);

[[nodiscard]] std::string serialize_challenge(const ChallengeFrame&);
[[nodiscard]] std::string serialize_hello(const HelloFrame&);
[[nodiscard]] std::string serialize_hello_ack(const HelloAckFrame&);
[[nodiscard]] std::string serialize_batch(const BatchFrame&);
[[nodiscard]] std::string serialize_ack(const AckFrame&);
[[nodiscard]] std::string serialize_error(const ErrorFrame&);

/// Payload parsers; every malformed payload throws TransportError.
[[nodiscard]] ChallengeFrame parse_challenge(std::string_view payload);
[[nodiscard]] HelloFrame parse_hello(std::string_view payload);
[[nodiscard]] HelloAckFrame parse_hello_ack(std::string_view payload);
[[nodiscard]] BatchFrame parse_batch(std::string_view payload);
[[nodiscard]] AckFrame parse_ack(std::string_view payload);
[[nodiscard]] ErrorFrame parse_error(std::string_view payload);

/// Incremental MDP1 frame parser: feed arbitrary byte chunks, pull
/// complete frames. Chunking-invariant by construction (the fuzz harness
/// aborts if whole-buffer and byte-at-a-time feeds ever disagree). Throws
/// TransportError on a bad CRC, oversized size field, nonzero reserved
/// bytes, or unknown frame type; a partial frame is simply "no frame yet".
class FrameReader {
 public:
  void append(std::string_view bytes) { buffer_.append(bytes); }

  /// Extracts the next complete frame. False when more bytes are needed.
  [[nodiscard]] bool next(Frame& out);

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

// ---- Session watermarks --------------------------------------------------

/// Last durable (seq, sender offset) per session — the dedupe key for
/// exactly-once folds. Restored from kRemoteBatch records at journal
/// replay; advanced by the ingest loop only after the journal fsync.
class WatermarkTable {
 public:
  struct Watermark {
    std::uint64_t seq = 0;
    std::uint64_t offset = 0;
  };

  /// Advances `session` to (seq, offset). Watermarks never regress.
  void set(const std::string& session, std::uint64_t seq,
           std::uint64_t offset);

  [[nodiscard]] std::optional<Watermark> get(const std::string& session) const;

  /// Distinct sessions ever journaled.
  [[nodiscard]] std::size_t size() const;

  /// The most recently ACKed (session, watermark), for the HEALTH report.
  [[nodiscard]] std::optional<std::pair<std::string, Watermark>> last_ack()
      const;

  /// Records that an ACK went out for `session` at its current watermark
  /// (duplicate re-ACKs refresh last_ack() without moving the watermark).
  void note_ack(const std::string& session);

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Watermark> marks_;
  std::string last_ack_session_;
};

// ---- Server --------------------------------------------------------------

struct TransportServerOptions {
  std::uint16_t port = 0;  ///< 0 picks an ephemeral port
  std::string secret;      ///< shared HMAC secret (required)
  core::CheckpointMeta meta;  ///< base run the handshake pins
  /// Global bound on accepted-but-not-yet-journaled batches; past it the
  /// reader threads block (TCP backpressure), same as the plain socket.
  std::size_t max_queued_batches = 256;
  /// Per-connection bound on unACKed batches (the inflight quota).
  std::size_t max_inflight_batches = 8;
  /// Idle interval before a HEARTBEAT is sent; 0 disables (tests).
  double heartbeat_seconds = 2.0;
  /// A peer silent this long is presumed dead; 0 disables (tests).
  double deadline_seconds = 15.0;
};

/// One authenticated batch pulled off the wire, not yet journaled.
struct ReceivedBatch {
  std::uint64_t connection_id = 0;
  std::string session;
  std::uint64_t seq = 0;
  std::uint64_t end_offset = 0;
  std::vector<std::string> lines;
};

/// The MDP1 listener: accept thread plus one reader thread per connection,
/// mirroring IngestSocket's lifecycle (bounded queue, clean shutdown).
/// The ingest loop drains batches, journals + fsyncs them, then calls
/// ack() — the server itself never touches the journal.
class TransportServer {
 public:
  TransportServer(const TransportServerOptions& options,
                  WatermarkTable& watermarks,
                  fault::Io& io = fault::system_io());
  TransportServer(const TransportServer&) = delete;
  TransportServer& operator=(const TransportServer&) = delete;
  ~TransportServer();

  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Moves every queued batch into `out`. Never blocks.
  std::size_t drain(std::vector<ReceivedBatch>& out);

  /// Sends a cumulative ACK (seq, end_offset) to `connection_id` and
  /// releases one slot of its inflight quota. A connection that already
  /// died is silently skipped — its sender will re-sync on reconnect.
  void ack(std::uint64_t connection_id, std::uint64_t seq,
           std::uint64_t end_offset);

  /// Authenticated connections right now (HEALTH `sessions=`).
  [[nodiscard]] std::size_t sessions() const;

  /// Batches accepted onto the queue.
  [[nodiscard]] std::uint64_t batches() const {
    return batches_.load(std::memory_order_relaxed);
  }
  /// BATCH frames at-or-below the session watermark, re-ACKed and dropped.
  [[nodiscard]] std::uint64_t duplicates() const {
    return duplicates_.load(std::memory_order_relaxed);
  }
  /// Connections rejected at HELLO (bad HMAC / fingerprint / protocol).
  [[nodiscard]] std::uint64_t handshake_rejects() const {
    return handshake_rejects_.load(std::memory_order_relaxed);
  }
  /// Connections that opened with non-MDP1 bytes and were refused.
  [[nodiscard]] std::uint64_t refused_plaintext() const {
    return refused_plaintext_.load(std::memory_order_relaxed);
  }

 private:
  struct Connection {
    std::uint64_t id = 0;
    int fd = -1;
    std::string session;
    std::mutex send_mutex;  ///< ACKs (ingest loop) vs heartbeats (reader)
    std::atomic<std::size_t> inflight{0};
    std::atomic<bool> dead{false};
  };

  void accept_loop();
  void handle_connection(const std::shared_ptr<Connection>& conn);
  /// Joins handler threads parked on finished_threads_.
  void reap_finished_threads();
  void run_connection(const std::shared_ptr<Connection>& conn);
  /// Sends bytes under the connection's send mutex; marks it dead on error.
  bool send_locked(Connection& conn, std::string_view bytes);
  void send_error(Connection& conn, TransportErrorCode code,
                  const std::string& message);
  /// Blocks while the global queue is full; false once stopping.
  bool enqueue(ReceivedBatch batch);

  TransportServerOptions options_;
  WatermarkTable* watermarks_;
  fault::Io* io_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> next_connection_id_{1};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> handshake_rejects_{0};
  std::atomic<std::uint64_t> refused_plaintext_{0};

  mutable std::mutex mutex_;  ///< guards queue_, connections_, thread lists
  std::condition_variable space_cv_;  ///< signalled when the queue drains
  std::condition_variable quota_cv_;  ///< signalled when an ACK frees quota
  std::deque<ReceivedBatch> queue_;
  std::map<std::uint64_t, std::shared_ptr<Connection>> connections_;
  /// Live reader threads keyed by connection id. A finished handler moves
  /// its own handle to finished_threads_; accept_loop joins them, so
  /// reconnect churn never accumulates unjoined threads.
  std::map<std::uint64_t, std::thread> threads_;
  std::vector<std::thread> finished_threads_;
  std::thread accept_thread_;
};

}  // namespace mapit::ingest
