#include "ingest/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/journal.h"
#include "ingest/pipeline.h"
#include "ingest/source.h"
#include "net/error.h"
#include "net/load_report.h"
#include "trace/trace_io.h"

namespace mapit::ingest {

namespace {

using Clock = std::chrono::steady_clock;

/// A source line that parsed: what the journal, the fold, and the
/// quarantine accounting each need.
struct PendingLine {
  std::uint64_t offset = core::kNoSourceOffset;
  std::string line;
  trace::Trace trace;
};

/// Sleeps `seconds` in small slices so a stop flag interrupts promptly.
void interruptible_sleep(double seconds, const std::atomic<bool>* stop) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  while (Clock::now() < deadline) {
    if (stop != nullptr && stop->load()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }
}

}  // namespace

IngestStats run_ingest(const IngestOptions& options,
                       const std::atomic<bool>* stop) {
  fault::Io& io = options.io != nullptr ? *options.io : fault::system_io();
  IngestStats stats;

  IngestSetup setup;
  setup.traces_path = options.traces_path;
  setup.rib_path = options.rib_path;
  setup.relationships_path = options.relationships_path;
  setup.as2org_path = options.as2org_path;
  setup.ixps_path = options.ixps_path;
  setup.lenient = options.lenient;
  setup.options = options.engine_options;
  IngestPipeline pipeline(setup);
  if (options.log != nullptr) {
    *options.log << "ingest: base " << pipeline.base_traces() << " traces, "
                 << pipeline.interfaces() << " interfaces\n";
  }

  // The journal binds to the base run's identity; a base input edited
  // since the journal was created is rejected here (exit 4), never folded.
  core::JournalContents replayed;
  core::JournalWriter writer = core::JournalWriter::open(
      options.journal_path, pipeline.meta(), &replayed, io);

  // Replay: restore every preserved delta line. Batch boundaries are
  // irrelevant to the folded result (the equivalence invariant), so the
  // whole journal folds as one batch; commit records are only consistency-
  // checked and used to find where the interrupted batch (if any) begins.
  std::uint64_t follow_offset = 0;
  std::uint64_t journal_traces = 0;
  std::uint64_t committed_traces = 0;
  std::uint64_t batch_seq = 0;
  trace::TraceCorpus replay_corpus;
  for (const core::JournalRecord& record : replayed.records) {
    if (record.type == core::JournalRecord::Type::kTrace) {
      ++journal_traces;
      try {
        replay_corpus.add(trace::parse_trace(record.line, "journal"));
      } catch (const Error& error) {
        // Only parsed lines are ever appended; one that no longer parses
        // means the parser and the journal disagree — corruption-grade.
        throw core::JournalError(options.journal_path +
                                 ": journaled trace no longer parses: " +
                                 error.what());
      }
      if (record.source_offset != core::kNoSourceOffset) {
        follow_offset =
            std::max(follow_offset,
                     record.source_offset + record.line.size() + 1);
      }
    } else {
      if (record.traces_total != journal_traces) {
        throw core::JournalError(
            options.journal_path + ": commit record claims " +
            std::to_string(record.traces_total) + " traces but " +
            std::to_string(journal_traces) + " precede it");
      }
      if (record.batch_seq <= batch_seq) {
        throw core::JournalError(options.journal_path +
                                 ": commit sequence numbers not ascending");
      }
      batch_seq = record.batch_seq;
      committed_traces = record.traces_total;
    }
  }
  stats.replayed_traces = journal_traces;
  stats.folded_traces = journal_traces;
  std::uint64_t total_traces = journal_traces;
  pipeline.fold(replay_corpus);

  // Publish the replayed state. When the journal carries trace records
  // past its last commit (crash between watermark and commit), this is
  // the interrupted batch completing: same fold, same snapshot, and the
  // commit record it never got.
  store::WriteInfo info = pipeline.publish(options.out_path, io);
  ++stats.publishes;
  stats.snapshot_crc = info.payload_crc32;
  if (journal_traces > committed_traces) {
    ++batch_seq;
    writer.append(core::JournalRecord::commit(batch_seq, total_traces,
                                              info.payload_crc32));
    writer.sync();
    ++stats.batches;
  }
  if (options.log != nullptr) {
    *options.log << "ingest: replayed " << journal_traces
                 << " journaled traces, published " << options.out_path
                 << "\n";
  }

  std::optional<FileTailer> tailer;
  if (!options.follow_path.empty()) {
    tailer.emplace(options.follow_path, follow_offset, io);
  }
  std::optional<IngestSocket> socket;
  if (options.listen_port >= 0) {
    socket.emplace(static_cast<std::uint16_t>(options.listen_port), 65536,
                   io);
    stats.listen_port = socket->port();
    if (options.log != nullptr) {
      *options.log << "ingest: listening on 127.0.0.1:" << socket->port()
                   << "\n";
    }
  }

  std::vector<SourceLine> incoming;
  std::vector<PendingLine> pending;
  Clock::time_point first_pending{};
  std::uint64_t delta_line_no = 0;
  LoadReport delta_report;

  const auto flush = [&] {
    if (pending.empty()) return;
    // WAL order: accepted lines become durable before the fold that
    // consumes them; the commit record lands only after the snapshot
    // rename. A crash anywhere in between replays into identical state.
    for (const PendingLine& entry : pending) {
      writer.append(core::JournalRecord::trace(entry.offset, entry.line));
    }
    writer.sync();
    trace::TraceCorpus batch;
    for (PendingLine& entry : pending) batch.add(std::move(entry.trace));
    pipeline.fold(batch);
    total_traces += pending.size();
    stats.folded_traces += pending.size();
    info = pipeline.publish(options.out_path, io);
    ++stats.publishes;
    stats.snapshot_crc = info.payload_crc32;
    ++batch_seq;
    writer.append(core::JournalRecord::commit(batch_seq, total_traces,
                                              info.payload_crc32));
    writer.sync();
    ++stats.batches;
    if (options.log != nullptr) {
      char crc_hex[9];
      std::snprintf(crc_hex, sizeof(crc_hex), "%08x", info.payload_crc32);
      *options.log << "ingest: batch " << batch_seq << ": folded "
                   << pending.size() << " traces (" << total_traces
                   << " total), snapshot crc32 " << crc_hex << "\n";
    }
    pending.clear();
  };

  while (true) {
    if (stop != nullptr && stop->load()) {
      flush();  // accepted lines must not be lost to a graceful shutdown
      break;
    }
    if (options.max_batches != 0 && stats.batches >= options.max_batches) {
      break;
    }
    incoming.clear();
    std::size_t arrived = 0;
    if (tailer) arrived += tailer->poll(incoming);
    if (socket) arrived += socket->drain(incoming);
    for (SourceLine& source_line : incoming) {
      ++delta_line_no;
      const std::string& line = source_line.line;
      if (line.empty() || line[0] == '#') continue;  // corpus comment rules
      try {
        trace::Trace parsed = trace::parse_trace(
            line, "delta line " + std::to_string(delta_line_no));
        if (pending.empty()) first_pending = Clock::now();
        pending.push_back(PendingLine{source_line.offset,
                                      std::move(source_line.line),
                                      std::move(parsed)});
        delta_report.add_loaded(1);
      } catch (const Error& error) {
        if (!options.lenient) throw;
        delta_report.record(delta_line_no,
                            source_line.offset == core::kNoSourceOffset
                                ? 0
                                : source_line.offset,
                            error.what());
      }
    }
    stats.quarantined = delta_report.skipped();

    bool due = pending.size() >= options.batch_lines;
    if (!due && options.batch_seconds > 0 && !pending.empty() &&
        std::chrono::duration<double>(Clock::now() - first_pending).count() >=
            options.batch_seconds) {
      due = true;
    }
    if (options.drain && arrived == 0) {
      flush();  // input exhausted: flush the leftovers and finish
      break;
    }
    if (due) {
      flush();
    } else if (arrived == 0) {
      interruptible_sleep(options.poll_interval, stop);
    }
  }

  if (options.log != nullptr) {
    const std::string summary = delta_report.summary("ingest deltas");
    if (!summary.empty()) *options.log << summary;
  }
  return stats;
}

}  // namespace mapit::ingest
