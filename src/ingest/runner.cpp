#include "ingest/runner.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <cstdio>
#include <deque>
#include <mutex>
#include <optional>
#include <ostream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/journal.h"
#include "ingest/pipeline.h"
#include "ingest/source.h"
#include "ingest/transport.h"
#include "net/error.h"
#include "net/load_report.h"
#include "query/server.h"
#include "trace/trace_io.h"

namespace mapit::ingest {

namespace {

using Clock = std::chrono::steady_clock;

/// A source line that parsed: what the journal, the fold, and the
/// quarantine accounting each need.
struct PendingLine {
  std::uint64_t offset = core::kNoSourceOffset;
  std::string line;
  trace::Trace trace;
  /// Remote batches are journaled (as one kRemoteBatch record) before their
  /// ACK, ahead of the flush that folds them; the journal stage skips these.
  bool journaled = false;
};

/// Sleeps `seconds` in small slices so a stop flag interrupts promptly.
void interruptible_sleep(double seconds, const std::atomic<bool>* stop) {
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Clock::duration>(
                         std::chrono::duration<double>(seconds));
  while (Clock::now() < deadline) {
    if (stop != nullptr && stop->load()) return;
    std::this_thread::sleep_for(std::chrono::milliseconds{20});
  }
}

/// What the ingest loop shares with the HEALTH endpoint thread.
struct HealthState {
  Clock::time_point started = Clock::now();
  std::atomic<bool> degraded{false};
  std::atomic<std::uint64_t> batches{0};
  std::atomic<std::uint64_t> publishes{0};
  std::atomic<std::size_t> pending{0};
  std::atomic<std::size_t> sessions{0};  ///< authenticated MDP1 connections

  void set_error(const std::string& message) {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_error_ = message;
  }
  [[nodiscard]] std::string error() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return last_error_;
  }
  void set_last_ack(const std::string& value) {
    const std::lock_guard<std::mutex> lock(mutex_);
    last_ack_ = value;
  }
  [[nodiscard]] std::string last_ack() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return last_ack_;
  }

 private:
  mutable std::mutex mutex_;
  std::string last_error_;
  std::string last_ack_;
};

/// The ingest process's answer to `mapit supervise` liveness probes: one
/// connection at a time, read one request line (bounded by a receive
/// timeout so a wedged prober cannot pin the thread), answer a single
/// status line, close. Deliberately minimal — probes are rare and tiny,
/// and the real intake has its own socket.
class HealthEndpoint {
 public:
  HealthEndpoint(std::uint16_t port, const HealthState& state, fault::Io& io)
      : state_(&state), io_(&io) {
    query::ServerOptions options;
    options.port = port;
    listen_fd_ =
        query::detail::bind_listener(options, /*nonblocking=*/false, &port_);
    thread_ = std::thread([this] { loop(); });
  }
  HealthEndpoint(const HealthEndpoint&) = delete;
  HealthEndpoint& operator=(const HealthEndpoint&) = delete;
  ~HealthEndpoint() {
    stopping_.store(true);
    ::shutdown(listen_fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    ::close(listen_fd_);
  }

  [[nodiscard]] std::uint16_t port() const { return port_; }

 private:
  void loop() {
    while (!stopping_.load()) {
      const int fd =
          io_->accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (stopping_.load()) break;
        if (errno == EINTR) continue;
        if (query::detail::transient_accept_error(errno)) {
          std::this_thread::sleep_for(std::chrono::milliseconds{1});
          continue;
        }
        break;
      }
      answer(fd);
      ::close(fd);
    }
  }

  void answer(int fd) {
    struct ::timeval timeout{2, 0};
    (void)::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout,
                       sizeof(timeout));
    char buffer[256];
    std::string request;
    while (request.find('\n') == std::string::npos &&
           request.size() < sizeof(buffer)) {
      const ssize_t n = io_->recv(fd, buffer, sizeof(buffer), 0);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) break;  // EOF, timeout, or error: answer what we can
      request.append(buffer, static_cast<std::size_t>(n));
    }
    const auto uptime =
        std::chrono::duration_cast<std::chrono::seconds>(Clock::now() -
                                                         state_->started)
            .count();
    std::string error = state_->error();
    if (error.empty()) error = "none";
    for (char& c : error) {
      if (c == ' ' || c == '\n' || c == '\r' || c == '\t') c = '_';
    }
    std::string last_ack = state_->last_ack();
    if (last_ack.empty()) last_ack = "none";
    for (char& c : last_ack) {
      if (c == ' ' || c == '\n' || c == '\r' || c == '\t') c = '_';
    }
    std::string line = "OK degraded=";
    line += state_->degraded.load(std::memory_order_relaxed) ? '1' : '0';
    line += " uptime=" + std::to_string(uptime);
    line += " batches=" +
            std::to_string(state_->batches.load(std::memory_order_relaxed));
    line += " publishes=" + std::to_string(state_->publishes.load(
                                std::memory_order_relaxed));
    line += " pending=" +
            std::to_string(state_->pending.load(std::memory_order_relaxed));
    line += " sessions=" +
            std::to_string(state_->sessions.load(std::memory_order_relaxed));
    line += " last_ack=" + last_ack;
    line += " last_error=" + error + "\n";
    (void)io_->send(fd, line.data(), line.size(), MSG_NOSIGNAL);
  }

  const HealthState* state_;
  fault::Io* io_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace

IngestStats run_ingest(const IngestOptions& options,
                       const std::atomic<bool>* stop) {
  fault::Io& io = options.io != nullptr ? *options.io : fault::system_io();
  IngestStats stats;

  IngestSetup setup;
  setup.traces_path = options.traces_path;
  setup.rib_path = options.rib_path;
  setup.relationships_path = options.relationships_path;
  setup.as2org_path = options.as2org_path;
  setup.ixps_path = options.ixps_path;
  setup.lenient = options.lenient;
  setup.options = options.engine_options;
  IngestPipeline pipeline(setup);
  if (options.log != nullptr) {
    *options.log << "ingest: base " << pipeline.base_traces() << " traces, "
                 << pipeline.interfaces() << " interfaces\n";
  }

  // The journal binds to the base run's identity; a base input edited
  // since the journal was created is rejected here (exit 4), never folded.
  core::JournalContents replayed;
  core::JournalWriter writer = core::JournalWriter::open(
      options.journal_path, pipeline.meta(), &replayed, io);

  // Replay: restore every preserved delta line. Batch boundaries are
  // irrelevant to the folded result (the equivalence invariant), so the
  // whole journal folds as one batch; commit records are only consistency-
  // checked and used to find where the interrupted batch (if any) begins.
  std::uint64_t follow_offset = 0;
  std::uint64_t journal_traces = 0;
  std::uint64_t committed_traces = 0;
  std::uint64_t batch_seq = 0;
  WatermarkTable watermarks;
  trace::TraceCorpus replay_corpus;
  const auto replay_line = [&](const std::string& line) {
    ++journal_traces;
    try {
      replay_corpus.add(trace::parse_trace(line, "journal"));
    } catch (const Error& error) {
      // Only parsed lines are ever appended; one that no longer parses
      // means the parser and the journal disagree — corruption-grade.
      throw core::JournalError(options.journal_path +
                               ": journaled trace no longer parses: " +
                               error.what());
    }
  };
  for (const core::JournalRecord& record : replayed.records) {
    if (record.type == core::JournalRecord::Type::kTrace) {
      replay_line(record.line);
      if (record.source_offset != core::kNoSourceOffset) {
        follow_offset =
            std::max(follow_offset,
                     record.source_offset + record.line.size() + 1);
      }
    } else if (record.type == core::JournalRecord::Type::kRemoteBatch) {
      // Restore the session watermark the ACK promised was durable. The
      // record is atomic: its lines and its dedupe key replay together.
      const auto mark = watermarks.get(record.session);
      if (mark && record.batch_seq <= mark->seq) {
        throw core::JournalError(options.journal_path +
                                 ": remote batch sequence not ascending "
                                 "for session " +
                                 record.session);
      }
      if (mark && record.source_offset < mark->offset) {
        throw core::JournalError(options.journal_path +
                                 ": remote batch offset regressed for "
                                 "session " +
                                 record.session);
      }
      watermarks.set(record.session, record.batch_seq,
                     record.source_offset);
      for (const std::string& line : record.lines) replay_line(line);
    } else {
      if (record.traces_total != journal_traces) {
        throw core::JournalError(
            options.journal_path + ": commit record claims " +
            std::to_string(record.traces_total) + " traces but " +
            std::to_string(journal_traces) + " precede it");
      }
      if (record.batch_seq <= batch_seq) {
        throw core::JournalError(options.journal_path +
                                 ": commit sequence numbers not ascending");
      }
      batch_seq = record.batch_seq;
      committed_traces = record.traces_total;
    }
  }
  stats.replayed_traces = journal_traces;
  stats.folded_traces = journal_traces;
  std::uint64_t total_traces = journal_traces;
  pipeline.fold(replay_corpus);

  HealthState health;
  std::optional<HealthEndpoint> health_endpoint;
  if (options.health_port >= 0) {
    health_endpoint.emplace(static_cast<std::uint16_t>(options.health_port),
                            health, io);
    stats.health_port = health_endpoint->port();
    if (options.log != nullptr) {
      *options.log << "ingest: health endpoint on 127.0.0.1:"
                   << health_endpoint->port() << "\n";
    }
  }

  // ---- the flush machine --------------------------------------------------
  // One batch moves through journal -> fold -> publish -> commit. A stage
  // that fails with an I/O-shaped Error (ENOSPC, EIO, a full filesystem)
  // parks the machine instead of killing the run: the loop keeps tailing
  // its sources and the failed stage is retried every retry_interval
  // seconds until the disk recovers. Completed stages never rerun, so the
  // eventual republish is byte-identical to an unfaulted run's output.
  // The journal stages track a dirty flag because a failed append can
  // leave a partial frame on disk that writer.size() does not account
  // for — a retry first rolls the file back to the batch's start.
  enum class Stage { kIdle, kJournal, kFold, kPublish, kCommit };
  struct FlushState {
    Stage stage = Stage::kIdle;
    std::vector<PendingLine> inflight;  ///< the batch being flushed
    std::uint64_t seq = 0;              ///< its commit sequence number
    bool commit = true;     ///< append a commit record at the end
    bool startup = false;   ///< the replay-completion publish
    std::uint64_t rollback_size = 0;  ///< journal size to restore on retry
    bool journal_dirty = false;  ///< bytes possibly past rollback_size
    bool degraded = false;
    Clock::time_point next_attempt{};
  };
  FlushState flush;
  store::WriteInfo info;
  const double retry_interval =
      options.retry_interval > 0 ? options.retry_interval : 1.0;
  // The remote receipt path (journal + fsync before ACK) has its own
  // degraded park, independent of the flush machine's; HEALTH reports
  // degraded while either is stuck.
  bool remote_degraded = false;
  bool remote_dirty = false;  ///< a parked remote append may have left bytes
  std::uint64_t remote_rollback = 0;
  Clock::time_point remote_next_attempt{};

  const auto attempt_flush = [&]() -> bool {
    try {
      if (flush.stage == Stage::kJournal) {
        if (remote_dirty) {
          // A parked remote append left bytes past the durable end; clear
          // them before this batch claims the tail (the remote retry will
          // recapture a fresh rollback point).
          writer.rollback_to(remote_rollback);
          remote_dirty = false;
          flush.rollback_size = writer.size();
        }
        if (flush.journal_dirty) {
          writer.rollback_to(flush.rollback_size);
          flush.journal_dirty = false;
        }
        flush.journal_dirty = true;
        // WAL order: accepted lines become durable before the fold that
        // consumes them; the commit record lands only after the snapshot
        // rename. A crash anywhere in between replays into identical
        // state.
        for (const PendingLine& entry : flush.inflight) {
          if (entry.journaled) continue;  // remote lines are durable already
          writer.append(
              core::JournalRecord::trace(entry.offset, entry.line));
        }
        writer.sync();
        flush.journal_dirty = false;
        flush.stage = Stage::kFold;
      }
      if (flush.stage == Stage::kFold) {
        // In-memory: cannot fail with I/O, runs exactly once per batch
        // (the traces move out of inflight here).
        trace::TraceCorpus batch;
        for (PendingLine& entry : flush.inflight) {
          batch.add(std::move(entry.trace));
        }
        pipeline.fold(batch);
        total_traces += flush.inflight.size();
        stats.folded_traces += flush.inflight.size();
        flush.stage = Stage::kPublish;
      }
      if (flush.stage == Stage::kPublish) {
        info = pipeline.publish(options.out_path, io);
        ++stats.publishes;
        health.publishes.fetch_add(1, std::memory_order_relaxed);
        stats.snapshot_crc = info.payload_crc32;
        if (flush.commit) {
          flush.stage = Stage::kCommit;
          flush.rollback_size = writer.size();
          flush.journal_dirty = false;
        } else {
          flush.stage = Stage::kIdle;
        }
      }
      if (flush.stage == Stage::kCommit) {
        if (flush.journal_dirty) {
          writer.rollback_to(flush.rollback_size);
          flush.journal_dirty = false;
        }
        flush.journal_dirty = true;
        writer.append(core::JournalRecord::commit(flush.seq, total_traces,
                                                  info.payload_crc32));
        writer.sync();
        flush.journal_dirty = false;
        batch_seq = flush.seq;
        ++stats.batches;
        health.batches.fetch_add(1, std::memory_order_relaxed);
        flush.stage = Stage::kIdle;
      }
    } catch (const Error& error) {
      // JournalError from append/sync/rollback, SnapshotError from
      // publish. (Injected crashes are not Errors and still unwind —
      // the WAL replay covers those.)
      if (!flush.degraded) {
        flush.degraded = true;
        ++stats.degraded_entries;
        health.degraded.store(true, std::memory_order_relaxed);
        if (options.log != nullptr) {
          *options.log << "ingest: DEGRADED: " << error.what()
                       << " (retrying every " << retry_interval << "s)\n";
        }
      }
      health.set_error(error.what());
      flush.next_attempt =
          Clock::now() + std::chrono::duration_cast<Clock::duration>(
                             std::chrono::duration<double>(retry_interval));
      return false;
    }
    if (flush.degraded) {
      flush.degraded = false;
      health.degraded.store(remote_degraded, std::memory_order_relaxed);
      if (options.log != nullptr) {
        *options.log << "ingest: recovered from degraded mode\n";
      }
    }
    if (options.log != nullptr && !flush.startup) {
      char crc_hex[9];
      std::snprintf(crc_hex, sizeof(crc_hex), "%08x", info.payload_crc32);
      *options.log << "ingest: batch " << flush.seq << ": folded "
                   << flush.inflight.size() << " traces (" << total_traces
                   << " total), snapshot crc32 " << crc_hex << "\n";
    }
    flush.inflight.clear();
    return true;
  };

  // Publish the replayed state. When the journal carries trace records
  // past its last commit (crash between watermark and commit), this is
  // the interrupted batch completing: same fold, same snapshot, and the
  // commit record it never got. Runs through the flush machine so even a
  // sick disk at startup degrades instead of killing the process.
  flush.stage = Stage::kPublish;
  flush.startup = true;
  flush.commit = journal_traces > committed_traces;
  flush.seq = batch_seq + 1;
  while (!attempt_flush()) {
    if (stop != nullptr && stop->load()) break;
    interruptible_sleep(retry_interval, stop);
  }
  if (options.log != nullptr && flush.stage == Stage::kIdle) {
    *options.log << "ingest: replayed " << journal_traces
                 << " journaled traces, published " << options.out_path
                 << "\n";
  }
  flush.startup = false;

  std::optional<FileTailer> tailer;
  if (!options.follow_path.empty()) {
    tailer.emplace(options.follow_path, follow_offset, io);
  }
  std::optional<TransportServer> transport;
  if (options.listen_port >= 0) {
    TransportServerOptions server_options;
    server_options.port = static_cast<std::uint16_t>(options.listen_port);
    server_options.secret = options.secret;
    server_options.meta = pipeline.meta();
    server_options.max_inflight_batches = options.max_inflight_batches;
    server_options.heartbeat_seconds = options.transport_heartbeat_seconds;
    server_options.deadline_seconds = options.transport_deadline_seconds;
    transport.emplace(server_options, watermarks, io);
    stats.listen_port = transport->port();
    if (options.log != nullptr) {
      char fingerprint_hex[17];
      std::snprintf(fingerprint_hex, sizeof(fingerprint_hex), "%016llx",
                    static_cast<unsigned long long>(
                        combined_fingerprint(pipeline.meta())));
      *options.log << "ingest: listening (MDP1) on 127.0.0.1:"
                   << transport->port() << ", base fingerprint "
                   << fingerprint_hex << "\n";
    }
  }
  std::optional<IngestSocket> socket;
  if (options.listen_plain_port >= 0) {
    socket.emplace(static_cast<std::uint16_t>(options.listen_plain_port),
                   65536, io);
    stats.listen_plain_port = socket->port();
    if (options.log != nullptr) {
      *options.log << "ingest: listening (plaintext) on 127.0.0.1:"
                   << socket->port() << "\n";
    }
  }

  std::vector<SourceLine> incoming;
  std::vector<PendingLine> pending;
  Clock::time_point first_pending{};
  std::uint64_t delta_line_no = 0;
  LoadReport delta_report;

  // Seeds a new batch into the flush machine: pending -> inflight, journal
  // rollback point at the current durable end of file.
  const auto start_flush = [&] {
    flush.inflight = std::move(pending);
    pending.clear();
    flush.stage = Stage::kJournal;
    flush.commit = true;
    flush.seq = batch_seq + 1;
    flush.rollback_size = writer.size();
    flush.journal_dirty = false;
    flush.next_attempt = Clock::now();
  };

  // ---- the remote receipt path --------------------------------------------
  // One drained batch becomes one atomic kRemoteBatch journal record:
  // journal -> fsync -> watermark -> ACK, strictly in that order, so an
  // ACK always names durable state. Lines are parsed exactly once at
  // intake (quarantine accounting must not double-count across journal
  // retries); the journal step has its own degraded park mirroring the
  // flush machine's, and runs only while that machine is idle — the
  // commit-record consistency check relies on every remote record
  // preceding the commit that folds its lines.
  struct RemoteWork {
    std::uint64_t connection_id = 0;
    std::string session;
    std::uint64_t seq = 0;
    std::uint64_t end_offset = 0;
    std::vector<PendingLine> accepted;  ///< parsed, marked journaled
    core::JournalRecord record;         ///< prebuilt kRemoteBatch
  };
  std::deque<RemoteWork> remote_backlog;
  std::vector<ReceivedBatch> remote_incoming;

  const auto intake_remote = [&](ReceivedBatch& batch) {
    RemoteWork work;
    work.connection_id = batch.connection_id;
    work.session = batch.session;
    work.seq = batch.seq;
    work.end_offset = batch.end_offset;
    std::vector<std::string> accepted_lines;
    for (std::string& line : batch.lines) {
      ++delta_line_no;
      if (line.empty() || line[0] == '#') continue;  // corpus comment rules
      try {
        trace::Trace parsed = trace::parse_trace(
            line, "delta line " + std::to_string(delta_line_no));
        PendingLine entry;
        entry.line = line;
        entry.trace = std::move(parsed);
        entry.journaled = true;
        work.accepted.push_back(std::move(entry));
        accepted_lines.push_back(std::move(line));
        delta_report.add_loaded(1);
      } catch (const Error& error) {
        if (!options.lenient) throw;
        delta_report.record(delta_line_no, 0, error.what());
      }
    }
    // Even an all-quarantined batch is journaled: the watermark must
    // become durable before the ACK, or a resend would re-quarantine.
    work.record = core::JournalRecord::remote_batch(
        work.session, work.seq, work.end_offset, std::move(accepted_lines));
    remote_backlog.push_back(std::move(work));
  };

  const auto attempt_remote = [&]() -> bool {
    while (!remote_backlog.empty()) {
      RemoteWork& work = remote_backlog.front();
      const auto mark = watermarks.get(work.session);
      const std::uint64_t durable_seq = mark ? mark->seq : 0;
      if (mark && work.seq <= mark->seq) {
        // Raced duplicate (e.g. the same seq arrived on two connections
        // around a reconnect): the journal already has it; re-ACK the
        // watermark so the sender advances.
        ++stats.remote_duplicates;
        watermarks.note_ack(work.session);
        if (transport) transport->ack(work.connection_id, mark->seq, mark->offset);
        remote_backlog.pop_front();
        continue;
      }
      if (work.seq != durable_seq + 1) {
        // Connection-level sequencing makes a gap impossible unless the
        // peer is buggy; drop without ACK and let its deadline resync it.
        if (options.log != nullptr) {
          *options.log << "ingest: dropping out-of-order remote batch "
                       << work.seq << " from session " << work.session
                       << " (watermark " << durable_seq << ")\n";
        }
        remote_backlog.pop_front();
        continue;
      }
      if (mark && work.end_offset < mark->offset) {
        // A seq that advances while the source offset regresses can only
        // come from a buggy or malicious sender. It must never become
        // durable — replay rejects an offset-regressing record as journal
        // corruption — so drop it without an ACK, like a gap.
        if (options.log != nullptr) {
          *options.log << "ingest: dropping offset-regressing remote batch "
                       << work.seq << " from session " << work.session
                       << " (offset " << work.end_offset << " < watermark "
                       << mark->offset << ")\n";
        }
        remote_backlog.pop_front();
        continue;
      }
      try {
        if (remote_dirty) {
          writer.rollback_to(remote_rollback);
          remote_dirty = false;
        }
        remote_rollback = writer.size();
        remote_dirty = true;
        writer.append(work.record);
        writer.sync();  // the durability point: ACK only past this line
        remote_dirty = false;
      } catch (const Error& error) {
        if (!remote_degraded) {
          remote_degraded = true;
          ++stats.degraded_entries;
          health.degraded.store(true, std::memory_order_relaxed);
          if (options.log != nullptr) {
            *options.log << "ingest: DEGRADED (remote): " << error.what()
                         << " (retrying every " << retry_interval << "s)\n";
          }
        }
        health.set_error(error.what());
        remote_next_attempt =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                std::chrono::duration<double>(retry_interval));
        return false;
      }
      watermarks.set(work.session, work.seq, work.end_offset);
      watermarks.note_ack(work.session);
      if (transport) transport->ack(work.connection_id, work.seq, work.end_offset);
      ++stats.remote_batches;
      if (pending.empty() && !work.accepted.empty()) {
        first_pending = Clock::now();
      }
      for (PendingLine& entry : work.accepted) {
        pending.push_back(std::move(entry));
      }
      remote_backlog.pop_front();
    }
    if (remote_degraded) {
      remote_degraded = false;
      health.degraded.store(flush.degraded, std::memory_order_relaxed);
      if (options.log != nullptr) {
        *options.log << "ingest: recovered from degraded mode (remote)\n";
      }
    }
    return true;
  };

  const std::size_t backlog_cap = options.max_pending_lines != 0
                                      ? options.max_pending_lines
                                      : options.batch_lines * 10;

  while (true) {
    const bool stopping = stop != nullptr && stop->load();
    // Advance an in-flight flush first: immediately when healthy, at the
    // retry cadence while degraded — and once more when stopping, a last
    // chance to land the batch before exit.
    if (flush.stage != Stage::kIdle &&
        (!flush.degraded || stopping ||
         Clock::now() >= flush.next_attempt)) {
      (void)attempt_flush();
    }
    if (stopping) {
      if (flush.stage == Stage::kIdle && !pending.empty()) {
        start_flush();  // accepted lines must not be lost to a shutdown
        (void)attempt_flush();
      }
      if (flush.stage != Stage::kIdle && options.log != nullptr) {
        *options.log << "ingest: stopping while degraded: the in-flight "
                        "batch did not complete\n";
      }
      break;
    }
    if (options.max_batches != 0 && stats.batches >= options.max_batches) {
      break;
    }
    incoming.clear();
    std::size_t arrived = 0;
    // While a flush is parked degraded, keep accepting input only up to
    // the backlog bound; past it the tailer holds position and the ingest
    // socket's queue fills, throttling producers through TCP.
    const bool backlogged =
        flush.stage != Stage::kIdle && pending.size() >= backlog_cap;
    // Remote batches: retry any parked journal write, then drain fresh
    // ones — but only while the flush machine is idle (it owns the journal
    // tail mid-batch) and the backlog bound has room. Batches left queued
    // inside the server throttle senders via the inflight quota.
    if (transport && flush.stage == Stage::kIdle &&
        (!remote_degraded || Clock::now() >= remote_next_attempt)) {
      if (attempt_remote() && pending.size() < backlog_cap) {
        remote_incoming.clear();
        transport->drain(remote_incoming);
        for (ReceivedBatch& batch : remote_incoming) {
          arrived += batch.lines.size();
          intake_remote(batch);
        }
        if (!remote_backlog.empty()) (void)attempt_remote();
      }
    }
    if (!backlogged) {
      if (tailer) arrived += tailer->poll(incoming);
      if (socket) arrived += socket->drain(incoming);
    }
    for (SourceLine& source_line : incoming) {
      ++delta_line_no;
      const std::string& line = source_line.line;
      if (line.empty() || line[0] == '#') continue;  // corpus comment rules
      try {
        trace::Trace parsed = trace::parse_trace(
            line, "delta line " + std::to_string(delta_line_no));
        if (pending.empty()) first_pending = Clock::now();
        pending.push_back(PendingLine{source_line.offset,
                                      std::move(source_line.line),
                                      std::move(parsed)});
        delta_report.add_loaded(1);
      } catch (const Error& error) {
        if (!options.lenient) throw;
        delta_report.record(delta_line_no,
                            source_line.offset == core::kNoSourceOffset
                                ? 0
                                : source_line.offset,
                            error.what());
      }
    }
    stats.quarantined = delta_report.skipped();
    health.pending.store(pending.size() + flush.inflight.size(),
                         std::memory_order_relaxed);
    if (transport) {
      health.sessions.store(transport->sessions(),
                            std::memory_order_relaxed);
      if (const auto last = watermarks.last_ack()) {
        health.set_last_ack(last->first + ":" +
                            std::to_string(last->second.seq));
      }
    }

    bool due = flush.stage == Stage::kIdle &&
               pending.size() >= options.batch_lines;
    if (!due && flush.stage == Stage::kIdle && options.batch_seconds > 0 &&
        !pending.empty() &&
        std::chrono::duration<double>(Clock::now() - first_pending).count() >=
            options.batch_seconds) {
      due = true;
    }
    if (options.drain && arrived == 0 && !backlogged &&
        remote_backlog.empty()) {
      if (flush.stage == Stage::kIdle) {
        if (pending.empty()) break;  // input exhausted and flushed: done
        start_flush();  // leftovers become the final batch
        continue;
      }
      // A drain run never abandons its last batch: wait out the fault and
      // let the top of the loop retry it.
      interruptible_sleep(std::min(options.poll_interval, retry_interval),
                          stop);
      continue;
    }
    if (due) {
      start_flush();
      (void)attempt_flush();
    } else if (arrived == 0) {
      interruptible_sleep(flush.degraded
                              ? std::min(options.poll_interval,
                                         retry_interval)
                              : options.poll_interval,
                          stop);
    }
  }

  if (socket) stats.source_rearms = socket->rearms();
  // Duplicates are dropped at two levels: connection threads re-ACK
  // batches already at-or-below the durable watermark (the common resend
  // path), and attempt_remote catches the race where the duplicate was
  // queued before the watermark advanced. The stat reports both.
  if (transport) stats.remote_duplicates += transport->duplicates();
  if (options.log != nullptr) {
    const std::string summary = delta_report.summary("ingest deltas");
    if (!summary.empty()) *options.log << summary;
  }
  return stats;
}

}  // namespace mapit::ingest
