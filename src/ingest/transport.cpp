#include "ingest/transport.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <utility>

#include "core/wire.h"
#include "query/server.h"

namespace mapit::ingest {

namespace {

using wire_cursor = core::wire::Cursor;
using core::wire::append_u16;
using core::wire::append_u32;
using core::wire::append_u64;
using core::wire::crc32;

using Clock = std::chrono::steady_clock;

// ---- SHA-256 (FIPS 180-4; self-contained like core/wire's CRC table) ----

constexpr std::uint32_t kSha256K[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

[[nodiscard]] std::uint32_t rotr(std::uint32_t value, int bits) {
  return (value >> bits) | (value << (32 - bits));
}

void sha256_block(std::uint32_t state[8], const std::uint8_t block[64]) {
  std::uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (static_cast<std::uint32_t>(block[4 * i]) << 24) |
           (static_cast<std::uint32_t>(block[4 * i + 1]) << 16) |
           (static_cast<std::uint32_t>(block[4 * i + 2]) << 8) |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const std::uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const std::uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
  std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
  for (int i = 0; i < 64; ++i) {
    const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const std::uint32_t ch = (e & f) ^ (~e & g);
    const std::uint32_t t1 = h + s1 + ch + kSha256K[i] + w[i];
    const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const std::uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  state[0] += a;
  state[1] += b;
  state[2] += c;
  state[3] += d;
  state[4] += e;
  state[5] += f;
  state[6] += g;
  state[7] += h;
}

/// Constant-time digest comparison: an attacker probing HELLO must not
/// learn a prefix of the expected MAC from response timing.
[[nodiscard]] bool digest_equal(const std::array<std::uint8_t, 32>& a,
                                const std::array<std::uint8_t, 32>& b) {
  unsigned diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    diff |= static_cast<unsigned>(a[i] ^ b[i]);
  }
  return diff == 0;
}

/// Wraps a Cursor-based payload parse, converting the cursor's
/// CheckpointError overruns into TransportError — wire garbage is a
/// connection problem, never the exit-4 artifact-corruption family.
template <typename Parse>
[[nodiscard]] auto parse_payload(const char* what, Parse parse) {
  try {
    return parse();
  } catch (const TransportError&) {
    throw;
  } catch (const core::CheckpointError& error) {
    throw TransportError(std::string("malformed MDP1 ") + what + ": " +
                         error.what());
  }
}

void set_socket_timeout(int fd, double seconds) {
  struct ::timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(
                                             tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

/// Poll granularity of the connection read loop: short enough to notice a
/// missed heartbeat promptly, long enough to stay off the scheduler.
constexpr double kReadSliceSeconds = 0.2;

}  // namespace

// ---- Crypto --------------------------------------------------------------

std::array<std::uint8_t, 32> sha256(std::string_view message) {
  std::uint32_t state[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
                            0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19};
  std::size_t offset = 0;
  while (message.size() - offset >= 64) {
    sha256_block(state,
                 reinterpret_cast<const std::uint8_t*>(message.data()) +
                     offset);
    offset += 64;
  }
  // Final block(s): message tail, 0x80, zero pad, 64-bit bit length.
  std::uint8_t tail[128] = {};
  const std::size_t rest = message.size() - offset;
  std::memcpy(tail, message.data() + offset, rest);
  tail[rest] = 0x80;
  const std::size_t tail_blocks = (rest + 1 + 8 > 64) ? 2 : 1;
  const std::uint64_t bits = static_cast<std::uint64_t>(message.size()) * 8;
  for (std::size_t i = 0; i < 8; ++i) {
    tail[tail_blocks * 64 - 1 - i] =
        static_cast<std::uint8_t>(bits >> (8 * i));
  }
  sha256_block(state, tail);
  if (tail_blocks == 2) sha256_block(state, tail + 64);
  std::array<std::uint8_t, 32> digest{};
  for (std::size_t i = 0; i < 8; ++i) {
    digest[4 * i] = static_cast<std::uint8_t>(state[i] >> 24);
    digest[4 * i + 1] = static_cast<std::uint8_t>(state[i] >> 16);
    digest[4 * i + 2] = static_cast<std::uint8_t>(state[i] >> 8);
    digest[4 * i + 3] = static_cast<std::uint8_t>(state[i]);
  }
  return digest;
}

std::array<std::uint8_t, 32> hmac_sha256(std::string_view key,
                                         std::string_view message) {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const auto digest = sha256(key);
    std::memcpy(block.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block.data(), key.data(), key.size());
  }
  std::string inner;
  inner.reserve(block.size() + message.size());
  for (const std::uint8_t byte : block) {
    inner.push_back(static_cast<char>(byte ^ 0x36));
  }
  inner.append(message);
  const auto inner_digest = sha256(inner);
  std::string outer;
  outer.reserve(block.size() + inner_digest.size());
  for (const std::uint8_t byte : block) {
    outer.push_back(static_cast<char>(byte ^ 0x5c));
  }
  outer.append(reinterpret_cast<const char*>(inner_digest.data()),
               inner_digest.size());
  return sha256(outer);
}

std::uint64_t combined_fingerprint(const core::CheckpointMeta& meta) {
  std::string bytes;
  bytes.reserve(32);
  append_u64(bytes, meta.config_hash);
  append_u64(bytes, meta.corpus_fingerprint);
  append_u64(bytes, meta.rib_fingerprint);
  append_u64(bytes, meta.datasets_fingerprint);
  return core::fingerprint_bytes(core::kFingerprintSeed, bytes);
}

std::array<std::uint8_t, 32> compute_hello_mac(
    std::string_view secret,
    const std::array<std::uint8_t, kTransportNonceSize>& nonce,
    std::uint64_t base_fingerprint, std::string_view session) {
  std::string message;
  message.reserve(4 + 4 + nonce.size() + 8 + session.size());
  message.append(kTransportMagic, sizeof(kTransportMagic));
  append_u32(message, kTransportVersion);
  message.append(reinterpret_cast<const char*>(nonce.data()), nonce.size());
  append_u64(message, base_fingerprint);
  message.append(session);
  return hmac_sha256(secret, message);
}

// ---- Frame (de)serialization --------------------------------------------

std::string serialize_frame(FrameType type, std::string_view payload) {
  MAPIT_ENSURE(payload.size() <= kMaxTransportPayload,
               "MDP1 frame payload exceeds cap");
  std::string out;
  out.reserve(kTransportFrameSize + payload.size());
  append_u32(out, static_cast<std::uint32_t>(payload.size()));
  append_u32(out, crc32(payload));
  out.push_back(static_cast<char>(static_cast<std::uint8_t>(type)));
  out.append(3, '\0');  // reserved
  out.append(payload);
  return out;
}

std::string serialize_challenge(const ChallengeFrame& frame) {
  std::string payload;
  append_u32(payload, frame.version);
  append_u64(payload, frame.base_fingerprint);
  payload.append(reinterpret_cast<const char*>(frame.nonce.data()),
                 frame.nonce.size());
  return serialize_frame(FrameType::kChallenge, payload);
}

std::string serialize_hello(const HelloFrame& frame) {
  MAPIT_ENSURE(!frame.session.empty() &&
                   frame.session.size() <= kMaxTransportSession,
               "MDP1 session name length out of range");
  std::string payload;
  append_u32(payload, frame.version);
  append_u64(payload, frame.base_fingerprint);
  append_u16(payload, static_cast<std::uint16_t>(frame.session.size()));
  payload.append(frame.session);
  payload.append(reinterpret_cast<const char*>(frame.mac.data()),
                 frame.mac.size());
  return serialize_frame(FrameType::kHello, payload);
}

std::string serialize_hello_ack(const HelloAckFrame& frame) {
  std::string payload;
  append_u64(payload, frame.last_seq);
  append_u64(payload, frame.last_offset);
  return serialize_frame(FrameType::kHelloAck, payload);
}

std::string serialize_batch(const BatchFrame& frame) {
  std::string payload;
  append_u64(payload, frame.seq);
  append_u64(payload, frame.end_offset);
  append_u32(payload, static_cast<std::uint32_t>(frame.lines.size()));
  for (const std::string& line : frame.lines) {
    append_u32(payload, static_cast<std::uint32_t>(line.size()));
    payload.append(line);
  }
  return serialize_frame(FrameType::kBatch, payload);
}

std::string serialize_ack(const AckFrame& frame) {
  std::string payload;
  append_u64(payload, frame.seq);
  append_u64(payload, frame.end_offset);
  return serialize_frame(FrameType::kAck, payload);
}

std::string serialize_error(const ErrorFrame& frame) {
  std::string payload;
  append_u16(payload, static_cast<std::uint16_t>(frame.code));
  payload.append(frame.message);
  return serialize_frame(FrameType::kError, payload);
}

ChallengeFrame parse_challenge(std::string_view payload) {
  return parse_payload("CHALLENGE", [&] {
    wire_cursor cursor(payload, "MDP1 CHALLENGE");
    ChallengeFrame out;
    out.version = cursor.read_u32();
    out.base_fingerprint = cursor.read_u64();
    const std::string_view nonce = cursor.read_bytes(kTransportNonceSize);
    std::memcpy(out.nonce.data(), nonce.data(), nonce.size());
    if (!cursor.exhausted()) {
      throw TransportError("MDP1 CHALLENGE has trailing bytes");
    }
    return out;
  });
}

HelloFrame parse_hello(std::string_view payload) {
  return parse_payload("HELLO", [&] {
    wire_cursor cursor(payload, "MDP1 HELLO");
    HelloFrame out;
    out.version = cursor.read_u32();
    out.base_fingerprint = cursor.read_u64();
    const std::size_t session_len = cursor.read_u16();
    if (session_len == 0 || session_len > kMaxTransportSession) {
      throw TransportError("MDP1 HELLO session name length " +
                           std::to_string(session_len) + " out of range");
    }
    out.session = std::string(cursor.read_bytes(session_len));
    const std::string_view mac = cursor.read_bytes(kTransportMacSize);
    std::memcpy(out.mac.data(), mac.data(), mac.size());
    if (!cursor.exhausted()) {
      throw TransportError("MDP1 HELLO has trailing bytes");
    }
    return out;
  });
}

HelloAckFrame parse_hello_ack(std::string_view payload) {
  return parse_payload("HELLO_ACK", [&] {
    wire_cursor cursor(payload, "MDP1 HELLO_ACK");
    HelloAckFrame out;
    out.last_seq = cursor.read_u64();
    out.last_offset = cursor.read_u64();
    if (!cursor.exhausted()) {
      throw TransportError("MDP1 HELLO_ACK has trailing bytes");
    }
    return out;
  });
}

BatchFrame parse_batch(std::string_view payload) {
  return parse_payload("BATCH", [&] {
    wire_cursor cursor(payload, "MDP1 BATCH");
    BatchFrame out;
    out.seq = cursor.read_u64();
    out.end_offset = cursor.read_u64();
    const std::uint32_t count = cursor.read_u32();
    out.lines.reserve(std::min<std::uint32_t>(count, 4096));
    for (std::uint32_t i = 0; i < count; ++i) {
      const std::uint32_t len = cursor.read_u32();
      if (len > kMaxTransportLine) {
        throw TransportError("MDP1 BATCH line length " +
                             std::to_string(len) + " exceeds cap");
      }
      out.lines.emplace_back(cursor.read_bytes(len));
    }
    if (!cursor.exhausted()) {
      throw TransportError("MDP1 BATCH has trailing bytes");
    }
    return out;
  });
}

AckFrame parse_ack(std::string_view payload) {
  return parse_payload("ACK", [&] {
    wire_cursor cursor(payload, "MDP1 ACK");
    AckFrame out;
    out.seq = cursor.read_u64();
    out.end_offset = cursor.read_u64();
    if (!cursor.exhausted()) {
      throw TransportError("MDP1 ACK has trailing bytes");
    }
    return out;
  });
}

ErrorFrame parse_error(std::string_view payload) {
  return parse_payload("ERROR", [&] {
    wire_cursor cursor(payload, "MDP1 ERROR");
    ErrorFrame out;
    out.code = static_cast<TransportErrorCode>(cursor.read_u16());
    out.message = std::string(cursor.rest());
    return out;
  });
}

// ---- FrameReader ---------------------------------------------------------

bool FrameReader::next(Frame& out) {
  if (buffer_.size() < kTransportFrameSize) return false;
  wire_cursor header(std::string_view(buffer_).substr(0, kTransportFrameSize),
                     "MDP1 frame header");
  const std::uint32_t payload_size = header.read_u32();
  const std::uint32_t expected_crc = header.read_u32();
  const std::uint8_t type = header.read_u8();
  const bool reserved_zero = header.read_u8() == 0 && header.read_u8() == 0 &&
                             header.read_u8() == 0;
  if (payload_size > kMaxTransportPayload) {
    throw TransportError("MDP1 frame payload size " +
                         std::to_string(payload_size) + " exceeds cap");
  }
  if (!reserved_zero) {
    throw TransportError("MDP1 frame reserved bytes are nonzero");
  }
  if (type < static_cast<std::uint8_t>(FrameType::kChallenge) ||
      type > static_cast<std::uint8_t>(FrameType::kError)) {
    throw TransportError("MDP1 frame has unknown type " +
                         std::to_string(type));
  }
  if (buffer_.size() - kTransportFrameSize < payload_size) return false;
  const std::string_view payload =
      std::string_view(buffer_).substr(kTransportFrameSize, payload_size);
  if (crc32(payload) != expected_crc) {
    throw TransportError("MDP1 frame CRC mismatch");
  }
  out.type = static_cast<FrameType>(type);
  out.payload = std::string(payload);
  buffer_.erase(0, kTransportFrameSize + payload_size);
  return true;
}

// ---- WatermarkTable ------------------------------------------------------

void WatermarkTable::set(const std::string& session, std::uint64_t seq,
                         std::uint64_t offset) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Watermark& mark = marks_[session];
  MAPIT_ENSURE(seq >= mark.seq && offset >= mark.offset,
               "session watermark may never regress");
  mark.seq = seq;
  mark.offset = offset;
  last_ack_session_ = session;
}

std::optional<WatermarkTable::Watermark> WatermarkTable::get(
    const std::string& session) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = marks_.find(session);
  if (it == marks_.end()) return std::nullopt;
  return it->second;
}

std::size_t WatermarkTable::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return marks_.size();
}

std::optional<std::pair<std::string, WatermarkTable::Watermark>>
WatermarkTable::last_ack() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = marks_.find(last_ack_session_);
  if (it == marks_.end()) return std::nullopt;
  return std::make_pair(it->first, it->second);
}

void WatermarkTable::note_ack(const std::string& session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (marks_.count(session) != 0) last_ack_session_ = session;
}

// ---- TransportServer -----------------------------------------------------

TransportServer::TransportServer(const TransportServerOptions& options,
                                 WatermarkTable& watermarks, fault::Io& io)
    : options_(options), watermarks_(&watermarks), io_(&io) {
  MAPIT_ENSURE(!options_.secret.empty(),
               "MDP1 transport requires a shared secret");
  query::ServerOptions listener;
  listener.port = options_.port;
  listen_fd_ = query::detail::bind_listener(listener, /*nonblocking=*/false,
                                            &port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

TransportServer::~TransportServer() {
  stopping_.store(true);
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
    for (const auto& [id, conn] : connections_) {
      conn->dead.store(true);
      ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  space_cv_.notify_all();
  quota_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (auto& [id, thread] : threads_) threads.push_back(std::move(thread));
    threads_.clear();
    for (std::thread& thread : finished_threads_) {
      threads.push_back(std::move(thread));
    }
    finished_threads_.clear();
  }
  for (std::thread& thread : threads) thread.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void TransportServer::accept_loop() {
  while (!stopping_.load()) {
    // Join handler threads that finished since the last accept, so
    // reconnect churn cannot accumulate unjoined threads and their stacks.
    reap_finished_threads();
    const int fd = io_->accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      if (query::detail::transient_accept_error(errno)) {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
        continue;
      }
      // A fatal accept error with no re-arm would go deaf; keep polling —
      // shutdown() from the destructor unblocks us either way.
      std::this_thread::sleep_for(std::chrono::milliseconds{10});
      continue;
    }
    auto conn = std::make_shared<Connection>();
    conn->id = next_connection_id_.fetch_add(1, std::memory_order_relaxed);
    conn->fd = fd;
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connections_.emplace(conn->id, conn);
    threads_.emplace(conn->id,
                     std::thread([this, conn] { handle_connection(conn); }));
  }
}

void TransportServer::handle_connection(
    const std::shared_ptr<Connection>& conn) {
  try {
    run_connection(conn);
  } catch (const TransportError& error) {
    send_error(*conn, TransportErrorCode::kProtocol, error.what());
  } catch (...) {
    // Injected I/O faults and the like: isolated to this connection.
  }
  {
    // Unregister first (the destructor only shutdown()s fds still in the
    // map), then park our own thread handle for accept_loop to join.
    const std::lock_guard<std::mutex> lock(mutex_);
    connections_.erase(conn->id);
    const auto it = threads_.find(conn->id);
    if (it != threads_.end()) {
      finished_threads_.push_back(std::move(it->second));
      threads_.erase(it);
    }
  }
  {
    // Mark dead and close under send_mutex: the ingest loop's ack() checks
    // `dead` under the same mutex, so it can never write to a closed (and
    // possibly reused) fd and inject an ACK into another session's stream.
    const std::lock_guard<std::mutex> lock(conn->send_mutex);
    conn->dead.store(true);
    ::close(conn->fd);
    conn->fd = -1;
  }
  quota_cv_.notify_all();
}

void TransportServer::reap_finished_threads() {
  std::vector<std::thread> finished;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    finished.swap(finished_threads_);
  }
  for (std::thread& thread : finished) thread.join();
}

bool TransportServer::send_locked(Connection& conn, std::string_view bytes) {
  const std::lock_guard<std::mutex> lock(conn.send_mutex);
  if (conn.dead.load()) return false;
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = io_->send(conn.fd, bytes.data() + sent,
                                bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      conn.dead.store(true);
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

void TransportServer::send_error(Connection& conn, TransportErrorCode code,
                                 const std::string& message) {
  ErrorFrame frame;
  frame.code = code;
  frame.message = message;
  (void)send_locked(conn, serialize_error(frame));
}

void TransportServer::run_connection(const std::shared_ptr<Connection>& conn) {
  if (options_.deadline_seconds > 0) {
    set_socket_timeout(conn->fd, kReadSliceSeconds);
  }
  {
    const int one = 1;
    ::setsockopt(conn->fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }

  auto last_rx = Clock::now();
  auto last_tx = last_rx;
  FrameReader reader;
  char buffer[16 * 1024];

  // Reads more bytes into `reader`, enforcing the heartbeat schedule and
  // the read deadline. False on EOF / dead peer / shutdown.
  const auto pump = [&]() -> bool {
    while (!stopping_.load() && !conn->dead.load()) {
      const ssize_t n = io_->recv(conn->fd, buffer, sizeof(buffer), 0);
      if (n > 0) {
        reader.append(std::string_view(buffer, static_cast<std::size_t>(n)));
        last_rx = Clock::now();
        return true;
      }
      if (n == 0) return false;  // clean EOF
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) return false;
      const auto now = Clock::now();
      const std::chrono::duration<double> idle = now - last_rx;
      if (options_.deadline_seconds > 0 &&
          idle.count() > options_.deadline_seconds) {
        return false;  // peer presumed dead
      }
      const std::chrono::duration<double> quiet = now - last_tx;
      if (options_.heartbeat_seconds > 0 &&
          quiet.count() > options_.heartbeat_seconds) {
        if (!send_locked(*conn, serialize_frame(FrameType::kHeartbeat, "")))
          return false;
        last_tx = now;
      }
    }
    return false;
  };

  // Pulls the next frame, pumping the socket as needed.
  const auto next_frame = [&](Frame& frame) -> bool {
    while (true) {
      if (reader.next(frame)) return true;
      if (!pump()) return false;
    }
  };

  // --- Stream magic: decide MDP1 vs something else in the first 4 bytes.
  std::string magic;
  while (magic.size() < sizeof(kTransportMagic)) {
    const ssize_t n = io_->recv(conn->fd, buffer,
                                sizeof(kTransportMagic) - magic.size(), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const std::chrono::duration<double> idle = Clock::now() - last_rx;
      if (options_.deadline_seconds > 0 &&
          idle.count() > options_.deadline_seconds) {
        return;
      }
      continue;
    }
    if (n <= 0) return;
    magic.append(buffer, static_cast<std::size_t>(n));
  }
  if (std::memcmp(magic.data(), kTransportMagic, sizeof(kTransportMagic)) !=
      0) {
    // Not an MDP1 client. One-line diagnosis, clean close — the legacy
    // line protocol lives behind --listen-plain, never on this port.
    refused_plaintext_.fetch_add(1, std::memory_order_relaxed);
    (void)send_locked(*conn,
                      "ERR this port speaks MDP1 (framed transport); use "
                      "--listen-plain for raw line ingest\n");
    return;
  }
  last_rx = Clock::now();

  // --- Handshake: CHALLENGE out, HELLO in, HELLO_ACK out.
  const std::uint64_t fingerprint = combined_fingerprint(options_.meta);
  ChallengeFrame challenge;
  challenge.base_fingerprint = fingerprint;
  {
    // The nonce only needs uniqueness per connection (it keys the HELLO
    // MAC to this challenge, preventing replayed HELLOs).
    std::random_device device;
    std::mt19937_64 rng(
        (static_cast<std::uint64_t>(device()) << 32) ^ device() ^
        (conn->id * 0x9e3779b97f4a7c15ull));
    for (std::size_t i = 0; i < challenge.nonce.size(); i += 8) {
      const std::uint64_t word = rng();
      std::memcpy(challenge.nonce.data() + i, &word,
                  std::min<std::size_t>(8, challenge.nonce.size() - i));
    }
  }
  if (!send_locked(*conn, serialize_challenge(challenge))) return;
  last_tx = Clock::now();

  Frame frame;
  HelloFrame hello;
  while (true) {
    if (!next_frame(frame)) return;
    if (frame.type == FrameType::kHeartbeat) continue;
    if (frame.type != FrameType::kHello) {
      handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
      send_error(*conn, TransportErrorCode::kProtocol,
                 "expected HELLO after CHALLENGE");
      return;
    }
    hello = parse_hello(frame.payload);
    break;
  }
  if (hello.version != kTransportVersion) {
    handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
    send_error(*conn, TransportErrorCode::kProtocol,
               "unsupported MDP1 version " + std::to_string(hello.version));
    return;
  }
  if (hello.base_fingerprint != fingerprint) {
    handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
    send_error(*conn, TransportErrorCode::kBaseMismatch,
               "sender pins a different base run (fingerprint mismatch)");
    return;
  }
  const auto expected_mac = compute_hello_mac(
      options_.secret, challenge.nonce, fingerprint, hello.session);
  if (!digest_equal(expected_mac, hello.mac)) {
    handshake_rejects_.fetch_add(1, std::memory_order_relaxed);
    send_error(*conn, TransportErrorCode::kAuthFailed,
               "HELLO authentication failed");
    return;
  }
  conn->session = hello.session;

  const auto mark = watermarks_->get(hello.session);
  HelloAckFrame hello_ack;
  if (mark.has_value()) {
    hello_ack.last_seq = mark->seq;
    hello_ack.last_offset = mark->offset;
  }
  if (!send_locked(*conn, serialize_hello_ack(hello_ack))) return;
  last_tx = Clock::now();

  // --- Authenticated stream: BATCH in, ACK out (from the ingest loop).
  std::uint64_t next_seq = hello_ack.last_seq + 1;
  while (true) {
    if (!next_frame(frame)) return;
    switch (frame.type) {
      case FrameType::kHeartbeat:
        continue;
      case FrameType::kBatch: {
        BatchFrame batch = parse_batch(frame.payload);
        if (batch.seq == 0) {
          send_error(*conn, TransportErrorCode::kBadSequence,
                     "batch sequence numbers are 1-based");
          return;
        }
        const auto current = watermarks_->get(conn->session);
        const std::uint64_t durable_seq =
            current.has_value() ? current->seq : 0;
        if (batch.seq <= durable_seq) {
          // Replayed frame from a sender that missed our ACK: dedupe and
          // re-ACK the durable watermark so it advances.
          duplicates_.fetch_add(1, std::memory_order_relaxed);
          watermarks_->note_ack(conn->session);
          AckFrame ack;
          ack.seq = current->seq;
          ack.end_offset = current->offset;
          if (!send_locked(*conn, serialize_ack(ack))) return;
          last_tx = Clock::now();
          continue;
        }
        if (batch.seq != next_seq) {
          send_error(*conn, TransportErrorCode::kBadSequence,
                     "expected seq " + std::to_string(next_seq) + ", got " +
                         std::to_string(batch.seq));
          return;
        }
        // Inflight quota: block until the ingest loop ACKs something or
        // the connection dies — TCP backpressure does the actual shaping.
        {
          std::unique_lock<std::mutex> lock(mutex_);
          quota_cv_.wait(lock, [&] {
            return stopping_.load() || conn->dead.load() ||
                   conn->inflight.load() < options_.max_inflight_batches;
          });
          if (stopping_.load() || conn->dead.load()) return;
        }
        ReceivedBatch received;
        received.connection_id = conn->id;
        received.session = conn->session;
        received.seq = batch.seq;
        received.end_offset = batch.end_offset;
        received.lines = std::move(batch.lines);
        conn->inflight.fetch_add(1, std::memory_order_relaxed);
        if (!enqueue(std::move(received))) return;
        batches_.fetch_add(1, std::memory_order_relaxed);
        ++next_seq;
        continue;
      }
      default:
        send_error(*conn, TransportErrorCode::kProtocol,
                   "unexpected frame type " +
                       std::to_string(static_cast<int>(frame.type)));
        return;
    }
  }
}

bool TransportServer::enqueue(ReceivedBatch batch) {
  std::unique_lock<std::mutex> lock(mutex_);
  space_cv_.wait(lock, [&] {
    return stopping_.load() || queue_.size() < options_.max_queued_batches;
  });
  if (stopping_.load()) return false;
  queue_.push_back(std::move(batch));
  return true;
}

std::size_t TransportServer::drain(std::vector<ReceivedBatch>& out) {
  std::deque<ReceivedBatch> batches;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    batches.swap(queue_);
  }
  if (!batches.empty()) space_cv_.notify_all();
  const std::size_t count = batches.size();
  for (ReceivedBatch& batch : batches) out.push_back(std::move(batch));
  return count;
}

void TransportServer::ack(std::uint64_t connection_id, std::uint64_t seq,
                          std::uint64_t end_offset) {
  std::shared_ptr<Connection> conn;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = connections_.find(connection_id);
    if (it == connections_.end()) {
      return;  // sender re-syncs via HELLO_ACK on reconnect
    }
    conn = it->second;
    // Decrement under mutex_: the reader's quota wait evaluates its
    // predicate under the same mutex, so the notify below cannot land in
    // the window between its predicate check and its block (lost wakeup).
    if (conn->inflight.load() > 0) {
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  quota_cv_.notify_all();
  AckFrame frame;
  frame.seq = seq;
  frame.end_offset = end_offset;
  (void)send_locked(*conn, serialize_ack(frame));
}

std::size_t TransportServer::sessions() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t count = 0;
  for (const auto& [id, conn] : connections_) {
    if (!conn->session.empty() && !conn->dead.load()) ++count;
  }
  return count;
}

}  // namespace mapit::ingest
