// Delta sources for streaming ingestion: where new trace lines come from.
//
// Two sources, both producing the same thing — raw corpus lines tagged
// with a source byte offset (kNoSourceOffset when there is none):
//
//   * FileTailer — tail-follows an append-only delta corpus file. Only
//     complete ('\n'-terminated) lines are emitted; a partial tail line
//     waits for the rest of its bytes. The tailer keeps its fd open across
//     polls, so appends by a concurrent writer are picked up by plain
//     read() calls — no seeking, which keeps the whole surface inside
//     fault::Io. A file that does not exist yet is simply "no input";
//     the tailer retries the open on every poll. The input is append-only
//     by contract: rewriting, truncating, or rotating the followed file is
//     DETECTED, not survived — at every EOF the tailer compares the held
//     fd's identity (dev/inode) with whatever the path names now and the
//     file size with the bytes already consumed, and throws
//     SourceRotatedError (a loud, distinct failure) rather than silently
//     re-reading garbage from a stale offset.
//
//   * IngestSocket — a bounded TCP intake on 127.0.0.1. Clients connect,
//     send corpus lines, and close; every complete line is queued for the
//     ingest loop. The queue is bounded: when it is full the reader
//     threads stop reading, so a fast producer is throttled by TCP
//     backpressure instead of growing the process (same philosophy as the
//     query servers' write-buffer high-water mark). Listener and sockets
//     share the query servers' bind helper and the fault::Io boundary.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/journal.h"
#include "fault/io.h"
#include "net/error.h"

namespace mapit::ingest {

/// The followed delta file was rotated, replaced, or truncated under the
/// tailer. Deliberately its own type: the degraded-mode ingest loop retries
/// plain I/O errors but must NOT retry this — the persisted offsets no
/// longer describe the file, so continuing would fold garbage. The CLI maps
/// it to exit 3 like other load errors, with a message naming the cause.
class SourceRotatedError : public Error {
 public:
  using Error::Error;
};

/// One delta corpus line plus where it came from.
struct SourceLine {
  /// Byte offset of the line start in the followed file, or
  /// core::kNoSourceOffset for socket lines.
  std::uint64_t offset = core::kNoSourceOffset;
  std::string line;  ///< without the trailing newline
};

class FileTailer {
 public:
  /// Follows `path` starting at byte `start_offset` (a resume skips the
  /// prefix already replayed from the journal by reading and discarding
  /// it — once, at the first successful open).
  FileTailer(std::string path, std::uint64_t start_offset,
             fault::Io& io = fault::system_io());
  FileTailer(const FileTailer&) = delete;
  FileTailer& operator=(const FileTailer&) = delete;
  ~FileTailer();

  /// Appends every complete line that arrived since the last poll to
  /// `out`. Returns the number of lines appended. A missing file or an
  /// unreadable prefix yields 0 (and the next poll retries). Throws
  /// SourceRotatedError when the followed file was rotated/truncated.
  std::size_t poll(std::vector<SourceLine>& out);

  /// Byte offset the next emitted line will start at.
  [[nodiscard]] std::uint64_t offset() const { return offset_; }

 private:
  /// Ensures fd_ is open and positioned past start_offset_. False when
  /// the file cannot be opened (yet) or the skip failed.
  bool ensure_open();

  /// Called at EOF: throws SourceRotatedError when the path no longer
  /// names the file we hold (rotation) or the file shrank below the bytes
  /// already consumed (truncation). Transient stat/open failures are
  /// ignored — the next poll rechecks.
  void check_rotation();

  std::string path_;
  std::uint64_t start_offset_ = 0;  ///< bytes to discard at first open
  std::uint64_t offset_ = 0;        ///< file position of partial_'s start
  std::string partial_;             ///< bytes of an incomplete tail line
  int fd_ = -1;
  ::dev_t dev_ = 0;  ///< identity of the file fd_ holds (rotation check)
  ::ino_t ino_ = 0;
  bool have_identity_ = false;
  fault::Io* io_;
};

class IngestSocket {
 public:
  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts the
  /// accept thread. Throws mapit::Error when the listener cannot be set
  /// up. `max_queued` bounds the line queue (backpressure past it).
  explicit IngestSocket(std::uint16_t port, std::size_t max_queued = 65536,
                        fault::Io& io = fault::system_io());
  IngestSocket(const IngestSocket&) = delete;
  IngestSocket& operator=(const IngestSocket&) = delete;

  /// Stops accepting, closes every connection, joins all threads.
  ~IngestSocket();

  /// The bound port (the chosen one when constructed with port 0).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Moves every queued line into `out` (offset = kNoSourceOffset).
  /// Returns the number of lines appended. Never blocks.
  std::size_t drain(std::vector<SourceLine>& out);

  /// Lines accepted into the queue so far.
  [[nodiscard]] std::uint64_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

  /// Times the listener died on a fatal accept error and was re-bound.
  [[nodiscard]] std::uint64_t rearms() const {
    return rearms_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void handle_connection(int fd);
  /// The recv/parse body of handle_connection; may throw, the wrapper
  /// isolates the failure to this one connection.
  void read_lines(int fd);
  /// Re-binds the listener on the original port after a fatal accept
  /// error. False when binding failed (retried) or we are stopping.
  bool rearm_listener();
  /// Blocks while the queue is full (backpressure); false once stopping.
  bool enqueue(std::string line);

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::size_t max_queued_;
  fault::Io* io_;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> rearms_{0};

  std::mutex mutex_;  ///< guards queue_, connection_fds_, connections_
  std::condition_variable space_cv_;  ///< signalled when the queue drains
  std::deque<std::string> queue_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connections_;
  std::thread accept_thread_;
};

}  // namespace mapit::ingest
