// Incremental MAP-IT pipeline: the in-memory state `mapit ingest` folds
// delta traces into.
//
// The pipeline loads the base run once (corpus, RIB, optional AS datasets),
// builds the interface graph, and then accepts delta batches: each batch is
// sanitized independently (per-trace decisions — identical whether a trace
// is sanitized in the base load or in a delta), its raw addresses are
// merged into the corpus-wide address population (the §4.2 other-side
// heuristic deliberately sees discarded traces too), and the graph is
// folded via InterfaceGraph::fold. Publishing runs the full multipass
// engine cold over the folded graph — the engine's passes are
// history-dependent, so re-running from scratch per batch is the only
// recompute that preserves byte-identical equivalence with a cold batch
// run; the incremental part is never re-parsing, re-sanitizing, or
// re-folding the base.
//
// Equivalence invariant (the subsystem's signature property, pinned by
// tests/integration/ingest_equivalence_test.cpp): after folding deltas D
// over base B in any batch partitioning and publishing with any thread
// count, the published snapshot is byte-identical to `mapit snapshot` over
// the concatenated corpus B+D.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/ixp.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "bgp/rib.h"
#include "core/checkpoint.h"
#include "core/engine.h"
#include "fault/io.h"
#include "graph/interface_graph.h"
#include "net/ipv4.h"
#include "net/load_report.h"
#include "store/writer.h"
#include "trace/sanitize.h"
#include "trace/trace.h"

namespace mapit::ingest {

/// Base-run inputs for an ingest session. Paths are the library's text
/// formats; empty optional paths mean "absent" (exactly like the CLI's
/// missing flags — the dataset fingerprint distinguishes the two).
struct IngestSetup {
  std::string traces_path;         ///< base corpus (required)
  std::string rib_path;            ///< required
  std::string relationships_path;  ///< optional
  std::string as2org_path;         ///< optional
  std::string ixps_path;           ///< optional
  bool lenient = false;            ///< quarantine malformed base lines
  core::Options options;           ///< engine options (threads included)
};

class IngestPipeline {
 public:
  /// Loads the base run and builds its graph. Throws mapit::Error on any
  /// load failure; in strict mode a malformed line throws ParseError.
  /// Quarantined base lines (lenient mode) land in base_trace_report() /
  /// base_rib_report().
  explicit IngestPipeline(const IngestSetup& setup);

  IngestPipeline(const IngestPipeline&) = delete;
  IngestPipeline& operator=(const IngestPipeline&) = delete;

  /// Identity block for the delta journal: config hash + fingerprints of
  /// the base input files, computed exactly like the checkpoint family's.
  [[nodiscard]] const core::CheckpointMeta& meta() const { return meta_; }

  /// Folds one batch of raw (unsanitized) delta traces into the graph.
  void fold(const trace::TraceCorpus& raw_delta);

  /// Runs the engine over the folded graph and atomically publishes the
  /// snapshot to `path`. Byte-identical for identical folded content,
  /// any thread count, any fold batching.
  store::WriteInfo publish(const std::string& path,
                           fault::Io& io = fault::system_io());

  /// Serialized snapshot bytes for the current folded state (tests compare
  /// these against a cold run's without touching the filesystem).
  [[nodiscard]] std::string serialize() const;

  [[nodiscard]] std::size_t interfaces() const { return graph_->size(); }
  [[nodiscard]] std::size_t base_traces() const { return base_traces_; }
  [[nodiscard]] std::size_t delta_traces() const { return delta_traces_; }
  [[nodiscard]] const LoadReport& base_trace_report() const {
    return trace_report_;
  }
  [[nodiscard]] const LoadReport& base_rib_report() const {
    return rib_report_;
  }

 private:
  [[nodiscard]] core::Result run() const;

  core::Options options_;
  core::CheckpointMeta meta_;
  LoadReport trace_report_;
  LoadReport rib_report_;
  std::size_t base_traces_ = 0;
  std::size_t delta_traces_ = 0;

  bgp::Rib rib_;
  asdata::AsRelationships rels_;
  asdata::As2Org orgs_;
  asdata::IxpRegistry ixps_;
  /// Sorted distinct addresses of the raw corpus, base plus every folded
  /// delta so far (the §4.2 witness population).
  std::vector<net::Ipv4Address> all_addresses_;
  std::unique_ptr<graph::InterfaceGraph> graph_;
  std::unique_ptr<bgp::Ip2As> ip2as_;
};

}  // namespace mapit::ingest
