// `mapit send`: the MDP1 client that ships a local delta trace file to a
// remote `mapit ingest --listen` receiver.
//
// The sender tails the file (FileTailer — same rotation detection as the
// receiver's --follow mode), cuts complete lines into batches with
// per-session monotonic sequence numbers, and keeps a bounded window of
// unACKed batches in memory. Recovery is entirely ACK-driven:
//
//   * Dropped connection: reconnect with capped exponential backoff, then
//     re-handshake. The server's HELLO_ACK names the last durable (seq,
//     source offset); everything at or below it is dropped from the
//     window, everything above it is resent verbatim.
//   * Sender crash (kill -9): a fresh process starts with an empty window,
//     seeks its tailer to HELLO_ACK's offset, and continues at seq + 1 —
//     no local state files needed; the journal on the receiver is the only
//     source of truth.
//   * Receiver crash: same as a dropped connection; the journal replay on
//     the other side restores the watermark the next HELLO_ACK reports.
//
// An ACK is cumulative (covers every seq <= the ACKed one) and is only
// ever sent after the receiver's journal fsync, so "ACKed" means durable.
// Resends below the watermark are deduped server-side; the transport is
// exactly-once end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "fault/io.h"
#include "ingest/transport.h"

namespace mapit::ingest {

/// Reconnect attempts exhausted without a durable handshake. Its own type
/// so the CLI maps it to exit code 8 (transient transport failure) rather
/// than 7 (rejected credentials — TransportAuthError).
class TransportRetriesExhausted : public TransportError {
 public:
  using TransportError::TransportError;
};

struct SendOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string path;     ///< delta trace file to tail
  std::string session;  ///< stable sender identity (the dedupe namespace)
  std::string secret;   ///< shared HMAC secret
  /// When set, the CHALLENGE's base fingerprint must match (mismatch is a
  /// TransportAuthError before HELLO is ever sent).
  std::optional<std::uint64_t> expect_base;
  std::size_t batch_lines = 256;   ///< cut a batch at this many lines
  double batch_seconds = 0.5;      ///< ... or when the oldest line is this old
  double poll_seconds = 0.05;      ///< tailer poll interval when idle
  bool follow = false;  ///< keep tailing after EOF (default: drain and exit)
  std::size_t window = 8;          ///< max unACKed batches in flight
  double heartbeat_seconds = 2.0;  ///< 0 disables
  double deadline_seconds = 15.0;  ///< peer silent this long = reconnect
  double reconnect_base_seconds = 0.2;  ///< first backoff step
  double reconnect_cap_seconds = 5.0;   ///< backoff ceiling
  /// Consecutive failed connection attempts tolerated before giving up
  /// (TransportRetriesExhausted). 0 = retry forever.
  std::uint64_t max_attempts = 0;
  std::function<void(const std::string&)> log;
  fault::Io* io = nullptr;  ///< nullptr = fault::system_io()
};

struct SendStats {
  std::uint64_t lines_sent = 0;     ///< lines shipped at least once
  std::uint64_t batches_sent = 0;   ///< BATCH frames put on the wire
  std::uint64_t batches_acked = 0;  ///< batches covered by an ACK
  std::uint64_t batches_resent = 0; ///< window replays after reconnect
  std::uint64_t reconnects = 0;     ///< successful re-handshakes after the first
  std::uint64_t last_acked_seq = 0;
  std::uint64_t acked_offset = 0;   ///< source bytes durable on the receiver
};

/// Runs the sender until the file is drained (follow == false), `stop`
/// becomes true, or an unrecoverable rejection. Throws TransportAuthError
/// (bad secret / base mismatch), TransportRetriesExhausted (peer
/// unreachable), mapit::Error (bad source file).
SendStats run_sender(const SendOptions& options,
                     const std::atomic<bool>& stop);

}  // namespace mapit::ingest
