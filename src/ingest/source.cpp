#include "ingest/source.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <utility>

#include "query/server.h"

namespace mapit::ingest {

namespace {

/// A socket client streaming this much without a newline is not sending
/// corpus lines; drop it rather than buffer without bound.
constexpr std::size_t kMaxPartialLine = 1 << 20;

}  // namespace

// ---- FileTailer ----------------------------------------------------------

FileTailer::FileTailer(std::string path, std::uint64_t start_offset,
                       fault::Io& io)
    : path_(std::move(path)),
      start_offset_(start_offset),
      offset_(start_offset),
      io_(&io) {}

FileTailer::~FileTailer() {
  if (fd_ >= 0) (void)io_->close(fd_);
}

bool FileTailer::ensure_open() {
  if (fd_ >= 0) return true;
  const int fd = io_->open(path_.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) return false;  // not created yet: poll again later
  // Skip the prefix already replayed from the journal. Sequential reads
  // instead of a seek keep the tailer inside the fault::Io surface; this
  // runs once per (re)open, not per poll.
  std::uint64_t remaining = start_offset_;
  char buffer[1 << 16];
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, sizeof(buffer)));
    const ssize_t n = io_->read(fd, buffer, want);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // The file is (still) shorter than the replayed prefix — the source
      // has not caught up to what the journal preserved. Retry later.
      (void)io_->close(fd);
      return false;
    }
    remaining -= static_cast<std::uint64_t>(n);
  }
  fd_ = fd;
  return true;
}

std::size_t FileTailer::poll(std::vector<SourceLine>& out) {
  if (!ensure_open()) return 0;
  std::size_t emitted = 0;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = io_->read(fd_, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF for now; appended bytes show up next poll
    partial_.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = partial_.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = partial_.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      out.push_back(SourceLine{offset_ + start, std::move(line)});
      ++emitted;
      start = newline + 1;
    }
    partial_.erase(0, start);
    offset_ += start;
  }
  return emitted;
}

// ---- IngestSocket --------------------------------------------------------

IngestSocket::IngestSocket(std::uint16_t port, std::size_t max_queued,
                           fault::Io& io)
    : max_queued_(max_queued), io_(&io) {
  query::ServerOptions options;
  options.port = port;
  listen_fd_ = query::detail::bind_listener(options, /*nonblocking=*/false,
                                            &port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

IngestSocket::~IngestSocket() {
  stopping_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  space_cv_.notify_all();  // release readers blocked on a full queue
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void IngestSocket::accept_loop() {
  while (!stopping_.load()) {
    const int fd = io_->accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      if (query::detail::transient_accept_error(errno)) {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
        continue;
      }
      break;  // listener shut down or unrecoverable
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

void IngestSocket::handle_connection(int fd) {
  std::string pending;
  char buffer[16 * 1024];
  while (true) {
    const ssize_t n = io_->recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or connection error
    pending.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    bool dead = false;
    while (true) {
      const std::size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = pending.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = newline + 1;
      if (!enqueue(std::move(line))) {
        dead = true;  // shutting down
        break;
      }
    }
    if (dead) break;
    pending.erase(0, start);
    if (pending.size() > kMaxPartialLine) break;  // not a corpus client
  }
  // An incomplete final line (no newline before EOF) is dropped: the
  // client never finished sending it.
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

bool IngestSocket::enqueue(std::string line) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Backpressure: a full queue blocks this reader (and therefore, through
  // TCP flow control, its client) until the ingest loop drains.
  space_cv_.wait(lock, [&] {
    return stopping_.load() || queue_.size() < max_queued_;
  });
  if (stopping_.load()) return false;
  queue_.push_back(std::move(line));
  received_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t IngestSocket::drain(std::vector<SourceLine>& out) {
  std::deque<std::string> lines;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    lines.swap(queue_);
  }
  if (!lines.empty()) space_cv_.notify_all();
  for (std::string& line : lines) {
    out.push_back(SourceLine{core::kNoSourceOffset, std::move(line)});
  }
  return lines.size();
}

}  // namespace mapit::ingest
