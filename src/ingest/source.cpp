#include "ingest/source.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cerrno>
#include <utility>

#include "query/server.h"

namespace mapit::ingest {

namespace {

/// A socket client streaming this much without a newline is not sending
/// corpus lines; drop it rather than buffer without bound.
constexpr std::size_t kMaxPartialLine = 1 << 20;

}  // namespace

// ---- FileTailer ----------------------------------------------------------

FileTailer::FileTailer(std::string path, std::uint64_t start_offset,
                       fault::Io& io)
    : path_(std::move(path)),
      start_offset_(start_offset),
      offset_(start_offset),
      io_(&io) {}

FileTailer::~FileTailer() {
  if (fd_ >= 0) (void)io_->close(fd_);
}

bool FileTailer::ensure_open() {
  if (fd_ >= 0) return true;
  const int fd = io_->open(path_.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (fd < 0) return false;  // not created yet: poll again later
  struct ::stat st{};
  if (io_->fstat(fd, &st) == 0) {
    dev_ = st.st_dev;
    ino_ = st.st_ino;
    have_identity_ = true;
  } else {
    have_identity_ = false;  // rotation check degrades to size-only
  }
  // Skip the prefix already replayed from the journal. Sequential reads
  // instead of a seek keep the tailer inside the fault::Io surface; this
  // runs once per (re)open, not per poll.
  std::uint64_t remaining = start_offset_;
  char buffer[1 << 16];
  while (remaining > 0) {
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(remaining, sizeof(buffer)));
    const ssize_t n = io_->read(fd, buffer, want);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      // The file is (still) shorter than the replayed prefix — the source
      // has not caught up to what the journal preserved. Retry later.
      (void)io_->close(fd);
      return false;
    }
    remaining -= static_cast<std::uint64_t>(n);
  }
  fd_ = fd;
  return true;
}

std::size_t FileTailer::poll(std::vector<SourceLine>& out) {
  if (!ensure_open()) return 0;
  std::size_t emitted = 0;
  char buffer[1 << 16];
  while (true) {
    const ssize_t n = io_->read(fd_, buffer, sizeof(buffer));
    if (n < 0 && errno == EINTR) continue;
    if (n == 0) {
      // EOF for now; appended bytes show up next poll. This is also the
      // only moment rotation is observable: mid-file we are still reading
      // bytes the held fd preserves even if the path moved on.
      check_rotation();
      break;
    }
    if (n < 0) break;  // transient read error: retry next poll
    partial_.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t newline = partial_.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = partial_.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      out.push_back(SourceLine{offset_ + start, std::move(line)});
      ++emitted;
      start = newline + 1;
    }
    partial_.erase(0, start);
    offset_ += start;
  }
  return emitted;
}

void FileTailer::check_rotation() {
  // Truncation: the file now holds fewer bytes than we already consumed.
  // The persisted offsets no longer describe this file — loud failure.
  struct ::stat held{};
  if (io_->fstat(fd_, &held) != 0) return;  // transient: recheck next poll
  const std::uint64_t consumed = offset_ + partial_.size();
  if (static_cast<std::uint64_t>(held.st_size) < consumed) {
    throw SourceRotatedError(
        "delta source " + path_ + " was truncated: file holds " +
        std::to_string(held.st_size) + " bytes but offset " +
        std::to_string(consumed) + " was already consumed (the followed "
        "file is append-only by contract)");
  }
  // Rotation: the path no longer names the file our fd holds. ENOENT is
  // conclusive (logrotate-style delete); any other open failure is treated
  // as transient and rechecked at the next EOF.
  const int probe = io_->open(path_.c_str(), O_RDONLY | O_CLOEXEC, 0);
  if (probe < 0) {
    if (errno == ENOENT) {
      throw SourceRotatedError("delta source " + path_ +
                               " was rotated: the followed file was deleted");
    }
    return;
  }
  struct ::stat named{};
  const bool probed = io_->fstat(probe, &named) == 0;
  (void)io_->close(probe);
  if (!probed || !have_identity_) return;
  if (named.st_dev != dev_ || named.st_ino != ino_) {
    throw SourceRotatedError(
        "delta source " + path_ +
        " was rotated: the path names a different file now (the tailer "
        "would re-read from a stale offset)");
  }
}

// ---- IngestSocket --------------------------------------------------------

IngestSocket::IngestSocket(std::uint16_t port, std::size_t max_queued,
                           fault::Io& io)
    : max_queued_(max_queued), io_(&io) {
  query::ServerOptions options;
  options.port = port;
  listen_fd_ = query::detail::bind_listener(options, /*nonblocking=*/false,
                                            &port_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

IngestSocket::~IngestSocket() {
  stopping_.store(true);
  {
    // Under the lock: rearm_listener() rechecks stopping_ under the same
    // lock before installing a fresh fd, so either we shut the fd it
    // installed or it never installs one.
    const std::lock_guard<std::mutex> lock(mutex_);
    if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  }
  space_cv_.notify_all();  // release readers blocked on a full queue
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> connections;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    for (int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
    connections.swap(connections_);
  }
  for (std::thread& thread : connections) thread.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void IngestSocket::accept_loop() {
  while (!stopping_.load()) {
    int listen_fd;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      listen_fd = listen_fd_;
    }
    if (listen_fd < 0) {
      // The listener died on a fatal accept error; keep trying to re-bind
      // the original port instead of going deaf for the rest of the run.
      if (!rearm_listener()) {
        std::this_thread::sleep_for(std::chrono::milliseconds{10});
      }
      continue;
    }
    const int fd = io_->accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (stopping_.load()) break;
      if (errno == EINTR) continue;
      if (query::detail::transient_accept_error(errno)) {
        std::this_thread::sleep_for(std::chrono::milliseconds{1});
        continue;
      }
      // Unrecoverable on this fd (EBADF, EINVAL after an injected fault,
      // ...): drop it and fall into the re-arm path above.
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (listen_fd_ == listen_fd) {
          ::close(listen_fd_);
          listen_fd_ = -1;
        }
      }
      continue;
    }
    const std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_.load()) {
      ::close(fd);
      break;
    }
    connection_fds_.push_back(fd);
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
}

bool IngestSocket::rearm_listener() {
  query::ServerOptions options;
  options.port = port_;
  int fd = -1;
  try {
    fd = query::detail::bind_listener(options, /*nonblocking=*/false,
                                      nullptr);
  } catch (const Error&) {
    return false;  // port still busy (lingering sockets); retried shortly
  }
  const std::lock_guard<std::mutex> lock(mutex_);
  if (stopping_.load()) {
    ::close(fd);
    return false;
  }
  listen_fd_ = fd;
  rearms_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void IngestSocket::handle_connection(int fd) {
  try {
    read_lines(fd);
  } catch (...) {
    // One client's failure — an injected recv fault, a hostile payload —
    // is isolated to that connection; the listener and every other reader
    // keep running.
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    connection_fds_.erase(
        std::remove(connection_fds_.begin(), connection_fds_.end(), fd),
        connection_fds_.end());
  }
  ::close(fd);
}

void IngestSocket::read_lines(int fd) {
  std::string pending;
  char buffer[16 * 1024];
  while (true) {
    const ssize_t n = io_->recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or connection error
    pending.append(buffer, static_cast<std::size_t>(n));
    std::size_t start = 0;
    bool dead = false;
    while (true) {
      const std::size_t newline = pending.find('\n', start);
      if (newline == std::string::npos) break;
      std::string line = pending.substr(start, newline - start);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      start = newline + 1;
      if (!enqueue(std::move(line))) {
        dead = true;  // shutting down
        break;
      }
    }
    if (dead) break;
    pending.erase(0, start);
    if (pending.size() > kMaxPartialLine) break;  // not a corpus client
  }
  // An incomplete final line (no newline before EOF) is dropped: the
  // client never finished sending it.
}

bool IngestSocket::enqueue(std::string line) {
  std::unique_lock<std::mutex> lock(mutex_);
  // Backpressure: a full queue blocks this reader (and therefore, through
  // TCP flow control, its client) until the ingest loop drains.
  space_cv_.wait(lock, [&] {
    return stopping_.load() || queue_.size() < max_queued_;
  });
  if (stopping_.load()) return false;
  queue_.push_back(std::move(line));
  received_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::size_t IngestSocket::drain(std::vector<SourceLine>& out) {
  std::deque<std::string> lines;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    lines.swap(queue_);
  }
  if (!lines.empty()) space_cv_.notify_all();
  for (std::string& line : lines) {
    out.push_back(SourceLine{core::kNoSourceOffset, std::move(line)});
  }
  return lines.size();
}

}  // namespace mapit::ingest
