// Composite IP-to-AS mapping service.
//
// Layering follows the paper's §5 recipe: special-purpose registry first
// (those addresses are never mapped), then IXP prefixes, then consolidated
// BGP announcements, then a Team-Cymru-style fallback table for prefixes
// absent from the collectors' view. Addresses matched by no layer map to
// kUnknownAsn ("unannounced").
#pragma once

#include <iosfwd>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "asdata/asn.h"
#include "asdata/ixp.h"
#include "bgp/rib.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"
#include "net/special_purpose.h"

namespace mapit::bgp {

/// Which layer of the composite produced a lookup result.
enum class Ip2AsSource {
  kUnannounced,  ///< no layer matched
  kSpecial,      ///< RFC 6890 special-purpose space
  kIxp,          ///< known IXP peering LAN
  kBgp,          ///< consolidated BGP announcements
  kFallback,     ///< Team-Cymru-style fallback table
};

[[nodiscard]] const char* to_string(Ip2AsSource source);

/// Result of a composite lookup.
struct Ip2AsResult {
  asdata::Asn asn = asdata::kUnknownAsn;
  Ip2AsSource source = Ip2AsSource::kUnannounced;
  /// Matched prefix (meaningful for kIxp/kBgp/kFallback).
  std::optional<net::Prefix> prefix;
};

class Ip2As {
 public:
  /// Builds the composite. `ixps` must outlive this object.
  /// IXP addresses resolve to the IXP's ASN when one is registered for the
  /// matched prefix's IXP, else to kUnknownAsn with source kIxp.
  Ip2As(const Rib& rib, net::PrefixTrie<asdata::Asn> fallback,
        const asdata::IxpRegistry* ixps);

  /// Convenience: BGP-only mapping with no fallback or IXP layer.
  explicit Ip2As(const Rib& rib);

  /// Full lookup with provenance.
  [[nodiscard]] Ip2AsResult lookup(net::Ipv4Address address) const;

  /// Origin AS of `address`, or kUnknownAsn for special/IXP/unannounced
  /// space. This is the mapping MAP-IT's neighbour-set counting consumes.
  [[nodiscard]] asdata::Asn origin(net::Ipv4Address address) const;

  [[nodiscard]] bool is_special(net::Ipv4Address address) const {
    return net::is_special_purpose(address);
  }

  [[nodiscard]] bool is_ixp(net::Ipv4Address address) const {
    return ixps_ != nullptr && ixps_->is_ixp_address(address);
  }

  /// Fraction of a set of addresses covered by any non-special layer;
  /// mirrors the paper's "99.2% of usable interfaces covered" statistic.
  template <typename Range>
  [[nodiscard]] double coverage(const Range& addresses) const {
    std::size_t usable = 0;
    std::size_t covered = 0;
    for (net::Ipv4Address address : addresses) {
      if (is_special(address)) continue;
      ++usable;
      const Ip2AsResult result = lookup(address);
      if (result.source != Ip2AsSource::kUnannounced) ++covered;
    }
    return usable == 0 ? 1.0
                       : static_cast<double>(covered) /
                             static_cast<double>(usable);
  }

  [[nodiscard]] std::size_t bgp_prefix_count() const { return bgp_.size(); }
  [[nodiscard]] std::size_t fallback_prefix_count() const {
    return fallback_.size();
  }

  /// Flattened (prefix, origin) contents of the consolidated BGP layer in
  /// lexicographic prefix order — the snapshot writer serializes this into
  /// the flat binary-search table the query engine LPMs over.
  [[nodiscard]] std::vector<std::pair<net::Prefix, asdata::Asn>> bgp_entries()
      const;
  /// Same for the Team-Cymru-style fallback layer.
  [[nodiscard]] std::vector<std::pair<net::Prefix, asdata::Asn>>
  fallback_entries() const;

 private:
  net::PrefixTrie<asdata::Asn> bgp_;
  net::PrefixTrie<asdata::Asn> fallback_;
  const asdata::IxpRegistry* ixps_ = nullptr;
};

}  // namespace mapit::bgp
