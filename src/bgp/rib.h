// Multi-collector BGP RIB model.
//
// The paper combines prefix announcements seen by 40 route collectors
// (RouteViews, RIPE RIS, Internet2) to maximise prefix coverage and origin
// accuracy (§5). This class stores per-collector (prefix -> origin)
// observations and consolidates them into a single origin table, electing
// the majority origin for MOAS prefixes.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "asdata/asn.h"
#include "net/load_report.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace mapit::bgp {

/// Identifier of a route collector (index into Rib::collector_names()).
using CollectorId = std::uint32_t;

/// One origin observation: collector `collector` saw `prefix` originated by
/// `origin`.
struct Announcement {
  CollectorId collector = 0;
  net::Prefix prefix;
  asdata::Asn origin = asdata::kUnknownAsn;

  friend auto operator<=>(const Announcement&, const Announcement&) = default;
};

class Rib {
 public:
  Rib() = default;

  /// Registers a collector and returns its id. Registering the same name
  /// twice returns the existing id.
  CollectorId add_collector(const std::string& name);

  /// Records that `collector` saw `prefix` originated by `origin`.
  /// Duplicate observations are idempotent.
  void add_announcement(CollectorId collector, const net::Prefix& prefix,
                        asdata::Asn origin);

  [[nodiscard]] const std::vector<std::string>& collector_names() const {
    return collector_names_;
  }

  [[nodiscard]] std::size_t announcement_count() const { return count_; }

  /// Distinct announced prefixes.
  [[nodiscard]] std::size_t prefix_count() const { return origins_.size(); }

  /// Consolidated origin table: for every announced prefix, the origin AS
  /// elected by majority vote across collectors (ties broken towards the
  /// lowest ASN for determinism). MOAS prefixes therefore resolve to one AS,
  /// matching how an IP2AS tool collapses them.
  [[nodiscard]] net::PrefixTrie<asdata::Asn> consolidate() const;

  /// Prefixes originated by more than one AS across collectors (MOAS).
  [[nodiscard]] std::vector<net::Prefix> moas_prefixes() const;

  /// All announcements, sorted (collector, prefix, origin).
  [[nodiscard]] std::vector<Announcement> announcements() const;

  /// Text format: "collector_name|prefix|origin_asn" per line.
  ///
  /// Strict mode (`report == nullptr`, the default) throws
  /// mapit::ParseError on the first malformed line. Lenient mode skips and
  /// counts malformed lines into `*report`; a skipped line registers
  /// nothing (not even its collector name).
  static Rib read(std::istream& in, LoadReport* report = nullptr);
  void write(std::ostream& out) const;

 private:
  // prefix -> origin -> set of collectors that observed it (stored as count
  // per collector id to keep duplicates idempotent).
  struct OriginVotes {
    std::map<asdata::Asn, std::vector<bool>> seen_by;  // origin -> collector bitmap
  };

  std::vector<std::string> collector_names_;
  std::unordered_map<std::string, CollectorId> collector_ids_;
  std::map<net::Prefix, OriginVotes> origins_;
  std::size_t count_ = 0;
};

}  // namespace mapit::bgp
