#include "bgp/rib.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "net/error.h"
#include "net/parse.h"

namespace mapit::bgp {

CollectorId Rib::add_collector(const std::string& name) {
  if (auto it = collector_ids_.find(name); it != collector_ids_.end()) {
    return it->second;
  }
  const auto id = static_cast<CollectorId>(collector_names_.size());
  collector_names_.push_back(name);
  collector_ids_.emplace(name, id);
  return id;
}

void Rib::add_announcement(CollectorId collector, const net::Prefix& prefix,
                           asdata::Asn origin) {
  MAPIT_ENSURE(collector < collector_names_.size(), "unregistered collector");
  MAPIT_ENSURE(origin != asdata::kUnknownAsn,
               "announcement with unknown origin");
  auto& bitmap = origins_[prefix].seen_by[origin];
  if (bitmap.size() <= collector) bitmap.resize(collector_names_.size());
  if (!bitmap[collector]) {
    bitmap[collector] = true;
    ++count_;
  }
}

net::PrefixTrie<asdata::Asn> Rib::consolidate() const {
  net::PrefixTrie<asdata::Asn> table;
  for (const auto& [prefix, votes] : origins_) {
    asdata::Asn best = asdata::kUnknownAsn;
    std::size_t best_votes = 0;
    for (const auto& [origin, bitmap] : votes.seen_by) {
      const auto n = static_cast<std::size_t>(
          std::count(bitmap.begin(), bitmap.end(), true));
      // std::map iteration is ascending by ASN, so strictly-greater keeps
      // the lowest ASN on ties.
      if (n > best_votes) {
        best_votes = n;
        best = origin;
      }
    }
    if (best != asdata::kUnknownAsn) table.insert(prefix, best);
  }
  return table;
}

std::vector<net::Prefix> Rib::moas_prefixes() const {
  std::vector<net::Prefix> out;
  for (const auto& [prefix, votes] : origins_) {
    if (votes.seen_by.size() > 1) out.push_back(prefix);
  }
  return out;
}

std::vector<Announcement> Rib::announcements() const {
  std::vector<Announcement> out;
  out.reserve(count_);
  for (const auto& [prefix, votes] : origins_) {
    for (const auto& [origin, bitmap] : votes.seen_by) {
      for (std::size_t c = 0; c < bitmap.size(); ++c) {
        if (bitmap[c]) {
          out.push_back({static_cast<CollectorId>(c), prefix, origin});
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Rib Rib::read(std::istream& in, LoadReport* report) {
  Rib rib;
  std::string line;
  std::size_t line_no = 0;
  std::size_t line_offset = 0;
  std::size_t loaded = 0;
  // Line number for humans, byte offset so a crashing input (fuzzer
  // finding, corrupt dump) maps straight to the offending bytes.
  const auto where = [&line_no, &line_offset] {
    return "rib line " + std::to_string(line_no) + " (byte " +
           std::to_string(line_offset) + ")";
  };
  // Parses + applies one payload line; throws ParseError on any damage.
  // The prefix and origin are parsed BEFORE the collector is registered,
  // so a rejected line leaves the Rib completely untouched — lenient mode
  // must not leak collector ids from quarantined lines.
  const auto load_line = [&rib, &line, &where] {
    const auto bar1 = line.find('|');
    const auto bar2 = bar1 == std::string::npos ? std::string::npos
                                                : line.find('|', bar1 + 1);
    if (bar2 == std::string::npos) {
      throw ParseError(where() + ": expected 'collector|prefix|asn', got '" +
                       line + "'");
    }
    try {
      const net::Prefix prefix =
          net::Prefix::parse_or_throw(line.substr(bar1 + 1, bar2 - bar1 - 1));
      const auto origin =
          net::parse_uint<asdata::Asn>(std::string_view(line).substr(bar2 + 1));
      if (!origin) {
        throw ParseError("bad origin ASN '" + line.substr(bar2 + 1) + "'");
      }
      MAPIT_ENSURE(*origin != asdata::kUnknownAsn,
                   "announcement with unknown origin");
      const CollectorId collector = rib.add_collector(line.substr(0, bar1));
      rib.add_announcement(collector, prefix, *origin);
    } catch (const ParseError& e) {
      // Prefix parse errors carry no position; add the line number so the
      // caller (and the LoadReport) can name the offender.
      throw ParseError(where() + ": " + e.what());
    } catch (const std::exception&) {
      throw ParseError(where() + ": malformed record '" + line + "'");
    }
  };
  while (std::getline(in, line)) {
    ++line_no;
    // getline consumed the line plus one '\n'; remember where it started.
    const std::size_t next_offset = line_offset + line.size() + 1;
    if (line.empty() || line[0] == '#') {
      line_offset = next_offset;
      continue;
    }
    if (report == nullptr) {
      load_line();
      ++loaded;
    } else {
      try {
        load_line();
        ++loaded;
      } catch (const ParseError& e) {
        report->record(line_no, line_offset, e.what());
      }
    }
    line_offset = next_offset;
  }
  if (report != nullptr) report->add_loaded(loaded);
  return rib;
}

void Rib::write(std::ostream& out) const {
  out << "# collector|prefix|origin_asn\n";
  for (const Announcement& a : announcements()) {
    out << collector_names_[a.collector] << '|' << a.prefix.to_string() << '|'
        << a.origin << '\n';
  }
}

}  // namespace mapit::bgp
