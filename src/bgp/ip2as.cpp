#include "bgp/ip2as.h"

namespace mapit::bgp {

const char* to_string(Ip2AsSource source) {
  switch (source) {
    case Ip2AsSource::kUnannounced: return "unannounced";
    case Ip2AsSource::kSpecial: return "special";
    case Ip2AsSource::kIxp: return "ixp";
    case Ip2AsSource::kBgp: return "bgp";
    case Ip2AsSource::kFallback: return "fallback";
  }
  return "?";
}

Ip2As::Ip2As(const Rib& rib, net::PrefixTrie<asdata::Asn> fallback,
             const asdata::IxpRegistry* ixps)
    : bgp_(rib.consolidate()), fallback_(std::move(fallback)), ixps_(ixps) {}

Ip2As::Ip2As(const Rib& rib) : bgp_(rib.consolidate()) {}

Ip2AsResult Ip2As::lookup(net::Ipv4Address address) const {
  if (net::is_special_purpose(address)) {
    return {asdata::kUnknownAsn, Ip2AsSource::kSpecial, std::nullopt};
  }
  if (ixps_ != nullptr && ixps_->is_ixp_address(address)) {
    return {asdata::kUnknownAsn, Ip2AsSource::kIxp, std::nullopt};
  }
  if (auto hit = bgp_.longest_match_entry(address)) {
    return {*hit->second, Ip2AsSource::kBgp, hit->first};
  }
  if (auto hit = fallback_.longest_match_entry(address)) {
    return {*hit->second, Ip2AsSource::kFallback, hit->first};
  }
  return {asdata::kUnknownAsn, Ip2AsSource::kUnannounced, std::nullopt};
}

asdata::Asn Ip2As::origin(net::Ipv4Address address) const {
  return lookup(address).asn;
}

namespace {

std::vector<std::pair<net::Prefix, asdata::Asn>> flatten(
    const net::PrefixTrie<asdata::Asn>& trie) {
  std::vector<std::pair<net::Prefix, asdata::Asn>> out;
  out.reserve(trie.size());
  trie.for_each([&](const net::Prefix& prefix, const asdata::Asn& asn) {
    out.emplace_back(prefix, asn);
  });
  return out;
}

}  // namespace

std::vector<std::pair<net::Prefix, asdata::Asn>> Ip2As::bgp_entries() const {
  return flatten(bgp_);
}

std::vector<std::pair<net::Prefix, asdata::Asn>> Ip2As::fallback_entries()
    const {
  return flatten(fallback_);
}

}  // namespace mapit::bgp
