// Minimal data-parallel utility layer: a persistent worker pool with
// static partitioning of index ranges.
//
// The engine's sweeps, trace ingestion, and graph construction all follow
// the same pattern: a pure per-index evaluation over [0, count) whose
// results are folded sequentially afterwards (so output stays byte-identical
// to a single-threaded run regardless of worker count). ThreadPool::for_ranges
// serves exactly that pattern and nothing more:
//
//   * [0, count) is split into at most size() contiguous ranges, one per
//     worker, in ascending order (worker w owns lower indices than w+1).
//     Concatenating per-worker result buffers in worker order therefore
//     preserves ascending index order — the deterministic merge every
//     caller relies on.
//   * The calling thread participates as worker 0, so a pool of size N
//     creates N-1 threads and a pool of size 1 creates none and runs the
//     callback inline — byte-for-byte the sequential code path.
//   * Exceptions thrown by the callback are captured per worker and the
//     lowest-indexed one is rethrown on the caller; because ranges are
//     ascending, that is the exception a sequential loop would have hit
//     first (workers stop their own range at the first throw).
//   * Nested use is rejected: calling for_ranges from inside a callback on
//     the same pool throws std::logic_error instead of deadlocking.
//
// No external dependencies: <thread>, <mutex>, <condition_variable> only.
#pragma once

#include <cstddef>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace mapit::parallel {

/// Resolves a user-facing thread-count option: 0 means "auto" (one worker
/// per hardware thread); anything else is used as given. Never returns 0.
[[nodiscard]] unsigned resolve_threads(unsigned requested);

class ThreadPool {
 public:
  /// Creates a pool of resolve_threads(threads) workers (the caller counts
  /// as one; threads-1 std::threads are spawned). threads == 1 spawns
  /// nothing and makes for_ranges run inline.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the calling thread.
  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size()) + 1;
  }

  /// fn(worker, begin, end): process the half-open index range [begin, end).
  /// `worker` in [0, size()) identifies the executing partition — use it to
  /// select per-worker scratch/result buffers.
  using RangeFn = std::function<void(unsigned worker, std::size_t begin,
                                     std::size_t end)>;

  /// Splits [0, count) into size() contiguous ascending ranges and runs fn
  /// on each concurrently (worker 0 = the calling thread). Blocks until all
  /// ranges finish. Workers whose range is empty never invoke fn. Rethrows
  /// the lowest-indexed worker's exception, if any. Throws std::logic_error
  /// when called re-entrantly from inside a callback on this pool.
  void for_ranges(std::size_t count, const RangeFn& fn);

  /// The half-open subrange of [0, count) that partition `part` of `parts`
  /// owns: near-equal sizes, remainder spread over the leading partitions,
  /// ascending and disjoint. Exposed for tests.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> partition(
      std::size_t count, unsigned parts, unsigned part);

 private:
  void worker_loop(unsigned worker);
  void run_partition(unsigned worker);

  std::vector<std::thread> workers_;

  std::mutex mutex_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const RangeFn* job_ = nullptr;     ///< current callback (guarded by mutex_)
  std::size_t job_count_ = 0;        ///< current index-space size
  std::uint64_t generation_ = 0;     ///< bumped once per for_ranges call
  unsigned pending_ = 0;             ///< spawned workers still running
  bool stopping_ = false;
  bool busy_ = false;                ///< a for_ranges call is in flight
  std::vector<std::exception_ptr> errors_;  ///< one slot per worker
};

/// One-shot convenience: runs fn over [0, count) on `pool` when it can go
/// parallel (non-null, size > 1, count > 0), else inline on the caller.
/// Callers use this to keep the threads == 1 path free of pool machinery.
void for_ranges(ThreadPool* pool, std::size_t count,
                const ThreadPool::RangeFn& fn);

}  // namespace mapit::parallel
