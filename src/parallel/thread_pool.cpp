#include "parallel/thread_pool.h"

#include <stdexcept>

namespace mapit::parallel {

unsigned resolve_threads(unsigned requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads) {
  const unsigned resolved = resolve_threads(threads);
  errors_.resize(resolved);
  workers_.reserve(resolved - 1);
  for (unsigned w = 1; w < resolved; ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::pair<std::size_t, std::size_t> ThreadPool::partition(std::size_t count,
                                                          unsigned parts,
                                                          unsigned part) {
  const std::size_t base = count / parts;
  const std::size_t extra = count % parts;
  // The first `extra` partitions get base+1 elements; later ones get base.
  const std::size_t begin =
      part * base + (part < extra ? part : extra);
  const std::size_t size = base + (part < extra ? 1 : 0);
  return {begin, begin + size};
}

void ThreadPool::run_partition(unsigned worker) {
  const auto [begin, end] = partition(job_count_, size(), worker);
  if (begin == end) return;
  try {
    (*job_)(worker, begin, end);
  } catch (...) {
    errors_[worker] = std::current_exception();
  }
}

void ThreadPool::worker_loop(unsigned worker) {
  std::uint64_t seen_generation = 0;
  while (true) {
    {
      std::unique_lock lock(mutex_);
      start_cv_.wait(lock, [&] {
        return stopping_ || generation_ != seen_generation;
      });
      if (stopping_) return;
      seen_generation = generation_;
    }
    run_partition(worker);
    {
      std::lock_guard lock(mutex_);
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::for_ranges(std::size_t count, const RangeFn& fn) {
  // busy_ is only read/written under mutex_ except for this entry check,
  // which must also work when worker threads call back in (nested use).
  {
    std::lock_guard lock(mutex_);
    if (busy_) {
      throw std::logic_error(
          "mapit::parallel::ThreadPool: nested for_ranges on the same pool");
    }
    busy_ = true;
  }
  struct BusyReset {
    ThreadPool& pool;
    ~BusyReset() {
      std::lock_guard lock(pool.mutex_);
      pool.busy_ = false;
    }
  } busy_reset{*this};

  if (count == 0) return;
  for (std::exception_ptr& error : errors_) error = nullptr;
  job_ = &fn;
  job_count_ = count;

  if (!workers_.empty()) {
    {
      std::lock_guard lock(mutex_);
      pending_ = static_cast<unsigned>(workers_.size());
      ++generation_;
    }
    start_cv_.notify_all();
  }

  run_partition(0);

  if (!workers_.empty()) {
    std::unique_lock lock(mutex_);
    done_cv_.wait(lock, [&] { return pending_ == 0; });
  }
  job_ = nullptr;

  for (const std::exception_ptr& error : errors_) {
    if (error) std::rethrow_exception(error);
  }
}

void for_ranges(ThreadPool* pool, std::size_t count,
                const ThreadPool::RangeFn& fn) {
  if (pool != nullptr && pool->size() > 1) {
    pool->for_ranges(count, fn);
  } else if (count > 0) {
    fn(0, 0, count);
  }
}

}  // namespace mapit::parallel
