#include "asdata/as2org.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "net/error.h"

namespace mapit::asdata {

void As2Org::assign(Asn asn, OrgId org) {
  MAPIT_ENSURE(asn != kUnknownAsn, "cannot assign org to the unknown ASN");
  MAPIT_ENSURE(org != kNoOrg, "cannot assign the null organization");
  org_[asn] = org;
  next_org_ = std::max(next_org_, org + 1);
}

void As2Org::add_sibling_pair(Asn a, Asn b) {
  MAPIT_ENSURE(a != kUnknownAsn && b != kUnknownAsn,
               "sibling pair with unknown ASN");
  const OrgId org_a = org_of(a);
  const OrgId org_b = org_of(b);
  if (org_a == kNoOrg && org_b == kNoOrg) {
    const OrgId fresh = next_org_++;
    org_[a] = fresh;
    org_[b] = fresh;
    return;
  }
  if (org_a == kNoOrg) {
    org_[a] = org_b;
    return;
  }
  if (org_b == kNoOrg) {
    org_[b] = org_a;
    return;
  }
  if (org_a == org_b) return;
  // Merge the smaller-numbered org into the larger to keep this O(n) merge
  // deterministic regardless of call order.
  const OrgId keep = std::min(org_a, org_b);
  const OrgId drop = std::max(org_a, org_b);
  for (auto& [asn, org] : org_) {
    if (org == drop) org = keep;
  }
}

OrgId As2Org::org_of(Asn asn) const {
  auto it = org_.find(asn);
  return it == org_.end() ? kNoOrg : it->second;
}

bool As2Org::are_siblings(Asn a, Asn b) const {
  if (a == b) return true;
  const OrgId org_a = org_of(a);
  return org_a != kNoOrg && org_a == org_of(b);
}

std::uint64_t As2Org::group_key(Asn asn) const {
  const OrgId org = org_of(asn);
  if (org != kNoOrg) return std::uint64_t{org};
  // Singleton key, disjoint from org ids by the high bit.
  return (std::uint64_t{1} << 63) | std::uint64_t{asn};
}

std::vector<Asn> As2Org::members(OrgId org) const {
  std::vector<Asn> out;
  for (const auto& [asn, o] : org_) {
    if (o == org) out.push_back(asn);
  }
  std::sort(out.begin(), out.end());
  return out;
}

As2Org As2Org::read(std::istream& in) {
  As2Org result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto bar = line.find('|');
    if (bar == std::string::npos) {
      throw ParseError("as2org line " + std::to_string(line_no) +
                       ": expected 'asn|org_id', got '" + line + "'");
    }
    try {
      const Asn asn = static_cast<Asn>(std::stoul(line.substr(0, bar)));
      const OrgId org = static_cast<OrgId>(std::stoul(line.substr(bar + 1)));
      result.assign(asn, org);
    } catch (const std::exception&) {
      throw ParseError("as2org line " + std::to_string(line_no) +
                       ": malformed number in '" + line + "'");
    }
  }
  return result;
}

void As2Org::write(std::ostream& out) const {
  std::vector<std::pair<Asn, OrgId>> rows(org_.begin(), org_.end());
  std::sort(rows.begin(), rows.end());
  out << "# asn|org_id\n";
  for (const auto& [asn, org] : rows) out << asn << '|' << org << '\n';
}

}  // namespace mapit::asdata
