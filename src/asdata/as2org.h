// AS-to-organization (sibling) mapping, modelled on CAIDA's AS2ORG dataset.
//
// MAP-IT treats sibling ASes — ASes run by the same organization — as a
// single AS when counting neighbour-set majorities, and never infers links
// *between* siblings (paper §4.4.1, §4.9). This class answers both
// questions. The dataset may be incomplete; unknown ASes are treated as
// singleton organizations.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "asdata/asn.h"

namespace mapit::asdata {

/// Organization identifier. 0 means "no organization on record".
using OrgId = std::uint32_t;
inline constexpr OrgId kNoOrg = 0;

class As2Org {
 public:
  As2Org() = default;

  /// Assigns `asn` to `org`. Re-assignment overwrites (last writer wins).
  void assign(Asn asn, OrgId org);

  /// Registers a sibling pair directly (the "140 additional pairs gathered
  /// from independent research" path, paper §5). Merges the two ASes into a
  /// common organization, allocating one if neither has an org yet.
  void add_sibling_pair(Asn a, Asn b);

  /// The organization of `asn`, or kNoOrg.
  [[nodiscard]] OrgId org_of(Asn asn) const;

  /// True when both ASes are on record as run by the same organization.
  /// An AS is always a sibling of itself.
  [[nodiscard]] bool are_siblings(Asn a, Asn b) const;

  /// Canonical representative for sibling-grouped counting: the org id when
  /// known, otherwise a singleton key derived from the ASN itself. Two ASes
  /// share a group key iff are_siblings() is true.
  [[nodiscard]] std::uint64_t group_key(Asn asn) const;

  /// All ASes assigned to `org`, sorted.
  [[nodiscard]] std::vector<Asn> members(OrgId org) const;

  [[nodiscard]] std::size_t size() const { return org_.size(); }

  /// Text format: one "asn|org_id" record per line; '#' comments allowed.
  static As2Org read(std::istream& in);
  void write(std::ostream& out) const;

 private:
  std::unordered_map<Asn, OrgId> org_;
  OrgId next_org_ = 1'000'000;  // allocator for add_sibling_pair()
};

}  // namespace mapit::asdata
