// AS business-relationship dataset, modelled on CAIDA's AS Relationships
// (serial-1) files.
//
// MAP-IT uses relationships for three things (paper §5, §5.4):
//   * identifying ISP ASes ("at least one non-sibling customer") for the
//     stub heuristic's gate,
//   * classifying inferred links as transit vs peering for Table 1,
//   * the Convention baseline's provider-address-space rule.
#pragma once

#include <iosfwd>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "asdata/as2org.h"
#include "asdata/asn.h"

namespace mapit::asdata {

/// Relationship between two ASes, from the first AS's point of view.
enum class Relationship {
  kNone,      ///< no link on record between the two ASes
  kProvider,  ///< first AS is a transit provider of the second
  kCustomer,  ///< first AS is a transit customer of the second
  kPeer,      ///< settlement-free peers
};

/// Link classification used in Table 1 of the paper.
enum class LinkClass {
  kIspTransit,   ///< customer-provider link where the customer is an ISP
  kPeer,         ///< peering link (or no transit relationship on record)
  kStubTransit,  ///< customer-provider link whose customer is a stub, or an
                 ///< AS absent from the relationship dataset entirely
};

[[nodiscard]] const char* to_string(Relationship relationship);
[[nodiscard]] const char* to_string(LinkClass link_class);

class AsRelationships {
 public:
  AsRelationships() = default;

  /// Records that `provider` transits for `customer`.
  void add_transit(Asn provider, Asn customer);

  /// Records a settlement-free peering.
  void add_peering(Asn a, Asn b);

  /// Relationship of `a` towards `b`.
  [[nodiscard]] Relationship relationship(Asn a, Asn b) const;

  /// True when the AS appears anywhere in the dataset.
  [[nodiscard]] bool known(Asn asn) const;

  /// True when the AS has no customers at all (or is absent from the
  /// dataset). Paper §5.4: absent ASes are treated as stubs.
  [[nodiscard]] bool is_stub(Asn asn) const;

  /// True when the AS has at least one non-sibling customer (paper §5's
  /// definition of an ISP AS).
  [[nodiscard]] bool is_isp(Asn asn, const As2Org& orgs) const;

  /// Table 1 classification for a link between `a` and `b`.
  [[nodiscard]] LinkClass classify_link(Asn a, Asn b,
                                        const As2Org& orgs) const;

  [[nodiscard]] const std::unordered_set<Asn>& providers_of(Asn asn) const;
  [[nodiscard]] const std::unordered_set<Asn>& customers_of(Asn asn) const;
  [[nodiscard]] const std::unordered_set<Asn>& peers_of(Asn asn) const;

  /// All ASes appearing in the dataset, sorted.
  [[nodiscard]] std::vector<Asn> all_ases() const;

  [[nodiscard]] std::size_t transit_count() const { return transit_count_; }
  [[nodiscard]] std::size_t peering_count() const { return peering_count_; }

  /// CAIDA serial-1 text format: "provider|customer|-1" and "peer|peer|0";
  /// '#' comments allowed.
  static AsRelationships read(std::istream& in);
  void write(std::ostream& out) const;

 private:
  std::unordered_map<Asn, std::unordered_set<Asn>> providers_;
  std::unordered_map<Asn, std::unordered_set<Asn>> customers_;
  std::unordered_map<Asn, std::unordered_set<Asn>> peers_;
  std::size_t transit_count_ = 0;
  std::size_t peering_count_ = 0;
};

}  // namespace mapit::asdata
