#include "asdata/relationships.h"

#include <algorithm>
#include <istream>
#include <ostream>

#include "net/error.h"

namespace mapit::asdata {

namespace {
const std::unordered_set<Asn>& empty_set() {
  static const std::unordered_set<Asn> empty;
  return empty;
}
}  // namespace

const char* to_string(Relationship relationship) {
  switch (relationship) {
    case Relationship::kNone: return "none";
    case Relationship::kProvider: return "provider";
    case Relationship::kCustomer: return "customer";
    case Relationship::kPeer: return "peer";
  }
  return "?";
}

const char* to_string(LinkClass link_class) {
  switch (link_class) {
    case LinkClass::kIspTransit: return "ISP Transit";
    case LinkClass::kPeer: return "Peer";
    case LinkClass::kStubTransit: return "Stub Transit";
  }
  return "?";
}

void AsRelationships::add_transit(Asn provider, Asn customer) {
  MAPIT_ENSURE(provider != kUnknownAsn && customer != kUnknownAsn,
               "transit edge with unknown ASN");
  MAPIT_ENSURE(provider != customer, "transit edge from an AS to itself");
  if (customers_[provider].insert(customer).second) ++transit_count_;
  providers_[customer].insert(provider);
}

void AsRelationships::add_peering(Asn a, Asn b) {
  MAPIT_ENSURE(a != kUnknownAsn && b != kUnknownAsn,
               "peering edge with unknown ASN");
  MAPIT_ENSURE(a != b, "peering edge from an AS to itself");
  if (peers_[a].insert(b).second) ++peering_count_;
  peers_[b].insert(a);
}

Relationship AsRelationships::relationship(Asn a, Asn b) const {
  if (auto it = customers_.find(a);
      it != customers_.end() && it->second.contains(b)) {
    return Relationship::kProvider;
  }
  if (auto it = providers_.find(a);
      it != providers_.end() && it->second.contains(b)) {
    return Relationship::kCustomer;
  }
  if (auto it = peers_.find(a); it != peers_.end() && it->second.contains(b)) {
    return Relationship::kPeer;
  }
  return Relationship::kNone;
}

bool AsRelationships::known(Asn asn) const {
  return providers_.contains(asn) || customers_.contains(asn) ||
         peers_.contains(asn);
}

bool AsRelationships::is_stub(Asn asn) const {
  auto it = customers_.find(asn);
  return it == customers_.end() || it->second.empty();
}

bool AsRelationships::is_isp(Asn asn, const As2Org& orgs) const {
  auto it = customers_.find(asn);
  if (it == customers_.end()) return false;
  return std::any_of(it->second.begin(), it->second.end(), [&](Asn customer) {
    return !orgs.are_siblings(asn, customer);
  });
}

LinkClass AsRelationships::classify_link(Asn a, Asn b,
                                         const As2Org& orgs) const {
  // Paper §5.4: "If an AS does not appear in the relationship dataset we
  // classify the relationship as Stub Transit, and if there is no transit
  // link between the ASes then we classify the relationship as Peer."
  if (!known(a) || !known(b)) return LinkClass::kStubTransit;
  const Relationship rel = relationship(a, b);
  if (rel == Relationship::kProvider) {
    return is_isp(b, orgs) ? LinkClass::kIspTransit : LinkClass::kStubTransit;
  }
  if (rel == Relationship::kCustomer) {
    return is_isp(a, orgs) ? LinkClass::kIspTransit : LinkClass::kStubTransit;
  }
  return LinkClass::kPeer;
}

const std::unordered_set<Asn>& AsRelationships::providers_of(Asn asn) const {
  auto it = providers_.find(asn);
  return it == providers_.end() ? empty_set() : it->second;
}

const std::unordered_set<Asn>& AsRelationships::customers_of(Asn asn) const {
  auto it = customers_.find(asn);
  return it == customers_.end() ? empty_set() : it->second;
}

const std::unordered_set<Asn>& AsRelationships::peers_of(Asn asn) const {
  auto it = peers_.find(asn);
  return it == peers_.end() ? empty_set() : it->second;
}

std::vector<Asn> AsRelationships::all_ases() const {
  std::unordered_set<Asn> seen;
  for (const auto* map : {&providers_, &customers_, &peers_}) {
    for (const auto& [asn, _] : *map) seen.insert(asn);
  }
  std::vector<Asn> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

AsRelationships AsRelationships::read(std::istream& in) {
  AsRelationships result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto bar1 = line.find('|');
    const auto bar2 = bar1 == std::string::npos ? std::string::npos
                                                : line.find('|', bar1 + 1);
    if (bar2 == std::string::npos) {
      throw ParseError("relationships line " + std::to_string(line_no) +
                       ": expected 'a|b|type', got '" + line + "'");
    }
    try {
      const Asn a = static_cast<Asn>(std::stoul(line.substr(0, bar1)));
      const Asn b =
          static_cast<Asn>(std::stoul(line.substr(bar1 + 1, bar2 - bar1 - 1)));
      const int type = std::stoi(line.substr(bar2 + 1));
      if (type == -1) {
        result.add_transit(a, b);
      } else if (type == 0) {
        result.add_peering(a, b);
      } else {
        throw ParseError("relationships line " + std::to_string(line_no) +
                         ": unknown relationship type " + std::to_string(type));
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      throw ParseError("relationships line " + std::to_string(line_no) +
                       ": malformed number in '" + line + "'");
    }
  }
  return result;
}

void AsRelationships::write(std::ostream& out) const {
  out << "# provider|customer|-1 ; peer|peer|0\n";
  std::vector<std::pair<Asn, Asn>> transit;
  for (const auto& [provider, customers] : customers_) {
    for (Asn customer : customers) transit.emplace_back(provider, customer);
  }
  std::sort(transit.begin(), transit.end());
  for (const auto& [provider, customer] : transit) {
    out << provider << '|' << customer << "|-1\n";
  }
  std::vector<std::pair<Asn, Asn>> peerings;
  for (const auto& [a, peers] : peers_) {
    for (Asn b : peers) {
      if (a < b) peerings.emplace_back(a, b);
    }
  }
  std::sort(peerings.begin(), peerings.end());
  for (const auto& [a, b] : peerings) out << a << '|' << b << "|0\n";
}

}  // namespace mapit::asdata
