// Autonomous System number type.
#pragma once

#include <cstdint>

namespace mapit::asdata {

/// AS number. Plain 32-bit value; 0 is reserved and used as "unknown".
using Asn = std::uint32_t;

/// Sentinel for "no AS known for this address" (unannounced space).
inline constexpr Asn kUnknownAsn = 0;

}  // namespace mapit::asdata
