// IXP prefix registry, modelled on the PeeringDB + Packet Clearing House
// prefix lists the paper combines (§5).
//
// Addresses inside IXP peering LANs are assigned in a multipoint fashion, so
// MAP-IT must (a) recognise them to avoid bogus other-side updates
// (footnote 7) and (b) tolerate staleness/incompleteness in the list.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <unordered_set>
#include <vector>

#include "asdata/asn.h"
#include "net/ipv4.h"
#include "net/prefix.h"
#include "net/prefix_trie.h"

namespace mapit::asdata {

/// Identifier of an IXP within the registry.
using IxpId = std::uint32_t;

class IxpRegistry {
 public:
  IxpRegistry() = default;

  /// Registers a peering-LAN prefix for IXP `id`.
  void add_prefix(const net::Prefix& prefix, IxpId id);

  /// Registers an IXP's route-server/management ASN (PeeringDB provides
  /// these for some IXPs; combined with BGP announcements they identify
  /// additional IXP addresses, paper §5).
  void add_ixp_asn(Asn asn);

  /// True when `address` is inside a registered IXP peering LAN.
  [[nodiscard]] bool is_ixp_address(net::Ipv4Address address) const {
    return prefixes_.longest_match(address) != nullptr;
  }

  /// IXP owning `address`'s peering LAN, or nullptr.
  [[nodiscard]] const IxpId* lookup(net::Ipv4Address address) const {
    return prefixes_.longest_match(address);
  }

  /// True when `asn` is a registered IXP ASN.
  [[nodiscard]] bool is_ixp_asn(Asn asn) const { return asns_.contains(asn); }

  [[nodiscard]] std::size_t prefix_count() const { return prefixes_.size(); }
  [[nodiscard]] std::vector<net::Prefix> prefixes() const {
    return prefixes_.prefixes();
  }
  [[nodiscard]] const std::unordered_set<Asn>& asns() const { return asns_; }

  /// Text format: "prefix|ixp_id" and "asn|A|ixp-asn" records.
  static IxpRegistry read(std::istream& in);
  void write(std::ostream& out) const;

 private:
  net::PrefixTrie<IxpId> prefixes_;
  std::unordered_set<Asn> asns_;
};

}  // namespace mapit::asdata
