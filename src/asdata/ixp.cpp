#include "asdata/ixp.h"

#include <algorithm>
#include <istream>
#include <map>
#include <ostream>

#include "net/error.h"

namespace mapit::asdata {

void IxpRegistry::add_prefix(const net::Prefix& prefix, IxpId id) {
  prefixes_.insert(prefix, id);
}

void IxpRegistry::add_ixp_asn(Asn asn) {
  MAPIT_ENSURE(asn != kUnknownAsn, "IXP ASN cannot be the unknown ASN");
  asns_.insert(asn);
}

IxpRegistry IxpRegistry::read(std::istream& in) {
  IxpRegistry result;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    const auto bar = line.find('|');
    if (bar == std::string::npos) {
      throw ParseError("ixp line " + std::to_string(line_no) +
                       ": expected 'prefix|id' or 'asn|A', got '" + line + "'");
    }
    const std::string left = line.substr(0, bar);
    const std::string right = line.substr(bar + 1);
    try {
      if (!right.empty() && right[0] == 'A') {
        result.add_ixp_asn(static_cast<Asn>(std::stoul(left)));
      } else {
        result.add_prefix(net::Prefix::parse_or_throw(left),
                          static_cast<IxpId>(std::stoul(right)));
      }
    } catch (const ParseError&) {
      throw;
    } catch (const std::exception&) {
      throw ParseError("ixp line " + std::to_string(line_no) +
                       ": malformed record '" + line + "'");
    }
  }
  return result;
}

void IxpRegistry::write(std::ostream& out) const {
  out << "# prefix|ixp_id ; asn|A\n";
  std::map<net::Prefix, IxpId> ordered;
  prefixes_.for_each(
      [&](const net::Prefix& p, const IxpId& id) { ordered.emplace(p, id); });
  for (const auto& [prefix, id] : ordered) {
    out << prefix.to_string() << '|' << id << '\n';
  }
  std::vector<Asn> asns(asns_.begin(), asns_.end());
  std::sort(asns.begin(), asns.end());
  for (Asn asn : asns) out << asn << "|A\n";
}

}  // namespace mapit::asdata
