// Third-party addresses and dual inferences (paper §4.4.3, Fig 4).
//
// 212.113.9.210 is announced by AS3356 (Level3) and really connects
// AS3356 to AS51159 (Think Systems). But Think Systems returns its ICMP
// replies through Level3 even for probes that arrived via TeliaSonera
// (AS1299) — so 212.113.9.210 also shows up *after* TeliaSonera hops,
// acquiring a backward neighbour set dominated by AS1299.
//
// MAP-IT initially infers both directions; the dual-inference rule keeps
// the forward inference (the true link) and discards the backward one.
#include <iostream>
#include <sstream>

#include "asdata/as2org.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "core/engine.h"
#include "graph/interface_graph.h"
#include "trace/sanitize.h"
#include "trace/trace_io.h"

int main() {
  using namespace mapit;

  std::istringstream traces(
      // Probes crossing TeliaSonera toward Think Systems; the reply for the
      // border hop is sourced from the Level3-facing interface.
      "0|31.131.0.1|80.91.240.1 212.113.9.210 31.131.0.9\n"
      "1|31.131.0.1|80.91.244.5 212.113.9.210 31.131.0.13\n");
  const trace::TraceCorpus corpus = trace::read_corpus(traces);

  std::istringstream announcements(
      "rc0|212.113.0.0/16|3356\n"   // Level3
      "rc0|80.91.240.0/20|1299\n"   // TeliaSonera
      "rc0|31.131.0.0/16|51159\n"); // Think Systems
  const bgp::Rib rib = bgp::Rib::read(announcements);
  const bgp::Ip2As ip2as(rib);

  const auto sanitized = trace::sanitize(corpus);
  const auto all_addresses = corpus.distinct_addresses();
  const graph::InterfaceGraph graph(sanitized.clean, all_addresses);

  const asdata::As2Org orgs;
  asdata::AsRelationships rels;
  // Level3 transits Think Systems; knowing Level3 is an ISP also keeps the
  // stub heuristic away from its addresses.
  rels.add_transit(3356, 51159);
  const core::Result result =
      core::run_mapit(graph, ip2as, orgs, rels, core::Options{});

  std::cout << "inferences after dual resolution:\n";
  for (const core::Inference& inference : result.inferences) {
    std::cout << "  " << inference.to_string() << "\n";
  }
  std::cout << "dual inferences resolved: " << result.stats.duals_resolved
            << "\n";

  const net::Ipv4Address tp = net::Ipv4Address::parse_or_throw("212.113.9.210");
  const core::Inference* forward = result.find(graph::forward_half(tp));
  const core::Inference* backward = result.find(graph::backward_half(tp));
  if (forward != nullptr && backward == nullptr &&
      forward->router_as == 51159 && forward->other_as == 3356) {
    std::cout << "\nkept: the true AS3356 <-> AS51159 link "
              << "(THINK-SYSTE.edge5.London1.Level3.net);\n"
              << "dropped: the phantom AS1299 <-> AS3356 backward "
              << "inference caused by the third-party reply path.\n";
    return 0;
  }
  std::cerr << "unexpected result\n";
  return 1;
}
