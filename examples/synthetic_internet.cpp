// Full-pipeline demo on a synthetic Internet.
//
// Generates a complete router-level Internet (tiered AS topology, BGP-style
// valley-free routing, realistic link addressing), runs a traceroute
// campaign with the full artifact menu, sanitizes the corpus, runs MAP-IT,
// and verifies the inferences against ground truth — the whole reproduction
// pipeline in one program. Also demonstrates writing the datasets and the
// inference results to files in the library's text formats.
#include <filesystem>
#include <fstream>
#include <iostream>

#include "baselines/claims.h"
#include "core/result_io.h"
#include "eval/experiment.h"
#include "trace/trace_io.h"

int main() {
  using namespace mapit;

  // 1. Build a laptop-fast synthetic world (see ExperimentConfig for every
  //    knob: AS counts, artifact rates, dataset noise, monitor placement).
  eval::ExperimentConfig config = eval::ExperimentConfig::small();
  config.topology.seed = 2016;  // IMC 2016
  const auto experiment = eval::Experiment::build(config);

  std::cout << "synthetic Internet: " << experiment->internet().ases().size()
            << " ASes, " << experiment->internet().routers().size()
            << " routers, " << experiment->internet().links().size()
            << " links (" << experiment->internet().true_links().size()
            << " inter-AS)\n";
  std::cout << "campaign: " << experiment->raw_corpus().size()
            << " traces; sanitizer discarded "
            << experiment->sanitize_stats().discarded_traces
            << " for interface cycles\n";

  // 2. Run MAP-IT at the paper's operating point.
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);
  std::cout << "MAP-IT: " << result.inferences.size()
            << " confident inferences (" << result.stats.stub_inferences
            << " via the stub heuristic), " << result.uncertain.size()
            << " uncertain, converged after " << result.stats.iterations
            << " iterations\n\n";

  // 3. Verify against ground truth for the three designated networks.
  const baselines::Claims claims = baselines::claims_from_result(result);
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const eval::AsGroundTruth truth = experiment->ground_truth(target);
    const eval::Verification v = experiment->evaluator().verify(truth, claims);
    std::cout << "AS" << target << (truth.is_exact() ? " (exact truth)   "
                                                     : " (hostname truth)")
              << ": precision " << 100.0 * v.total.precision()
              << "%, recall " << 100.0 * v.total.recall() << "% ("
              << v.total.tp << " links found)\n";
  }

  // 4. Persist the corpus and the results in the text formats, then read
  //    the inferences back — what the mapit CLI does for real datasets.
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "mapit_example";
  std::filesystem::create_directories(dir);
  {
    std::ofstream traces(dir / "traces.txt");
    trace::write_corpus(traces, experiment->raw_corpus());
    std::ofstream inferences(dir / "inferences.txt");
    core::write_inferences(inferences, result.inferences);
  }
  std::ifstream reread_stream(dir / "inferences.txt");
  const std::vector<core::Inference> reread =
      core::read_inferences(reread_stream);
  std::cout << "\nwrote " << result.inferences.size() << " inferences to "
            << (dir / "inferences.txt").string() << " and read back "
            << reread.size() << "\n";
  return reread.size() == result.inferences.size() ? 0 : 1;
}
