// Quickstart: run MAP-IT on a handful of traceroute paths.
//
// This reconstructs the paper's running example (Figs 1-3): an interface
// announced by one AS whose neighbour sets reveal that it actually sits on
// another AS's router, at an inter-AS boundary. Roles:
//
//   AS11537  Internet2        198.71.0.0/16
//   AS2603   NORDUnet         109.105.0.0/16
//   AS20965  GEANT            205.233.0.0/16 (stand-in prefix)
//   AS11164  Internet2 TR-CPS 216.249.0.0/16
//
// 109.105.98.10 is NORDUnet-announced, but every address ever seen after
// it belongs to Internet2 — so it must be the NORDUnet-facing interface of
// an Internet2 router: an inter-AS link between AS11537 and AS2603.
#include <iostream>
#include <sstream>

#include "asdata/as2org.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "core/engine.h"
#include "graph/interface_graph.h"
#include "trace/sanitize.h"
#include "trace/trace_io.h"

int main() {
  using namespace mapit;

  // 1. A few traceroute paths (monitor|destination|hops). In real use,
  //    read these from a file with trace::read_corpus().
  std::istringstream traces(
      "0|198.71.200.1|109.105.98.10 198.71.46.180 205.233.255.36\n"
      "1|198.71.200.1|109.105.98.10 198.71.46.180 216.249.136.197\n"
      "2|198.71.200.1|198.71.45.236 198.71.46.180 *\n"
      "3|198.71.200.1|109.105.98.10 198.71.46.180 199.109.5.1\n"
      "4|198.71.200.1|109.105.98.10 198.71.45.2\n");
  const trace::TraceCorpus corpus = trace::read_corpus(traces);

  // 2. BGP-derived IP-to-AS mappings (collector|prefix|origin).
  std::istringstream announcements(
      "rc0|198.71.0.0/16|11537\n"
      "rc0|109.105.0.0/16|2603\n"
      "rc0|205.233.0.0/16|20965\n"
      "rc0|216.249.0.0/16|11164\n"
      "rc0|199.109.0.0/16|3754\n");
  const bgp::Rib rib = bgp::Rib::read(announcements);
  const bgp::Ip2As ip2as(rib);

  // 3. Sanitize, build the interface graph, run MAP-IT.
  const auto sanitized = trace::sanitize(corpus);
  const auto all_addresses = corpus.distinct_addresses();
  const graph::InterfaceGraph graph(sanitized.clean, all_addresses);

  const asdata::As2Org orgs;          // no sibling data in this example
  asdata::AsRelationships rels;       // minimal relationship knowledge
  rels.add_transit(11537, 11164);

  core::Options options;
  options.f = 0.5;
  const core::Result result = core::run_mapit(graph, ip2as, orgs, rels,
                                              options);

  // 4. Inspect the inferences.
  std::cout << "MAP-IT found " << result.inferences.size()
            << " inter-AS link interface inferences:\n";
  for (const core::Inference& inference : result.inferences) {
    std::cout << "  " << inference.to_string() << "  ["
              << inference.votes << "/" << inference.neighbor_count
              << " neighbours agree]\n";
  }

  // The headline inference from the paper's Fig 2.
  const core::Inference* headline = result.find(
      graph::forward_half(net::Ipv4Address::parse_or_throw("109.105.98.10")));
  if (headline != nullptr && headline->router_as == 11537 &&
      headline->other_as == 2603) {
    std::cout << "\n109.105.98.10 resides on an Internet2 (AS11537) router\n"
              << "and heads the AS11537 <-> AS2603 inter-AS link — exactly\n"
              << "the paper's reading of Fig 2.\n";
    return 0;
  }
  std::cerr << "unexpected result; see inferences above\n";
  return 1;
}
