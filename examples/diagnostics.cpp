// Operator-style diagnostics: link aggregation and evidence trails.
//
// Runs the full pipeline on a synthetic Internet, aggregates the
// per-interface-half inferences into inter-AS *link* records, ranks them
// by evidence, and prints the full evidence trail (both neighbour sets,
// origins, refined mappings) for the strongest and weakest links — the
// workflow a network operator would use to audit a boundary before
// trusting it for congestion measurement or facility mapping.
#include <algorithm>
#include <iostream>

#include "core/explain.h"
#include "core/links.h"
#include "eval/experiment.h"

int main() {
  using namespace mapit;

  const auto experiment =
      eval::Experiment::build(eval::ExperimentConfig::small());
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);

  std::vector<core::InterAsLink> links =
      core::aggregate_links(result, experiment->graph());
  std::cout << result.inferences.size() << " inferences aggregate into "
            << links.size() << " inter-AS links\n\n";

  std::sort(links.begin(), links.end(),
            [](const core::InterAsLink& a, const core::InterAsLink& b) {
              return a.votes > b.votes;
            });

  std::cout << "strongest links by evidence:\n";
  for (std::size_t i = 0; i < std::min<std::size_t>(5, links.size()); ++i) {
    const core::InterAsLink& link = links[i];
    std::cout << "  " << link.low.to_string() << " <-> "
              << link.high.to_string() << "  AS" << link.as_a << " <-> AS"
              << link.as_b << "  (" << link.votes << "/"
              << link.neighbor_count << " neighbours, "
              << link.supporting_inferences << " inferences"
              << (link.via_stub_heuristic ? ", stub heuristic" : "")
              << (link.conflicting ? ", CONFLICTING" : "") << ")\n";
  }

  if (!links.empty()) {
    std::cout << "\nevidence trail for the strongest link's interface:\n";
    std::cout << core::explain(result, experiment->graph(),
                               experiment->ip2as(), links.front().high);

    // And the weakest confident link, which deserves scrutiny.
    const core::InterAsLink& weakest = links.back();
    std::cout << "\nweakest confident link ("
              << weakest.votes << "/" << weakest.neighbor_count
              << " neighbours):\n";
    std::cout << core::explain(result, experiment->graph(),
                               experiment->ip2as(), weakest.high);
  }
  return links.empty() ? 1 : 0;
}
