// Multipass refinement (paper §4.4.1's narrative).
//
// On the first pass through the interface halves, nothing can be inferred
// for 199.109.5.1_b: its backward neighbours map to three different ASes.
// But once 109.105.98.10_f is inferred to sit on an AS11537 router, its
// IP2AS mapping is updated — and on the next pass AS11537 dominates
// 199.109.5.1's backward set, exposing the AS11537 <-> AS3754 link.
//
// This example instruments the engine with snapshots so you can watch each
// stage of the refinement.
#include <iostream>
#include <sstream>

#include "asdata/as2org.h"
#include "asdata/relationships.h"
#include "bgp/ip2as.h"
#include "core/engine.h"
#include "graph/interface_graph.h"
#include "trace/sanitize.h"
#include "trace/trace_io.h"

int main() {
  using namespace mapit;

  std::istringstream traces(
      // Evidence that 109.105.98.10 (NORDUnet space) is on an I2 router.
      "0|199.109.200.1|109.105.98.10 198.71.46.180\n"
      "1|199.109.200.1|109.105.98.10 198.71.45.2\n"
      // 199.109.5.1's backward set: one NORDUnet-space, one I2-space, one
      // unrelated address. No initial majority.
      "2|199.109.200.1|109.105.98.10 199.109.5.1 199.109.9.9\n"
      "3|199.109.200.1|198.71.44.6 199.109.5.1 199.109.9.9\n"
      "4|199.109.200.1|64.57.28.130 199.109.5.1 199.109.9.9\n");
  const trace::TraceCorpus corpus = trace::read_corpus(traces);

  std::istringstream announcements(
      "rc0|198.71.0.0/16|11537\n"
      "rc0|109.105.0.0/16|2603\n"
      "rc0|199.109.0.0/16|3754\n"
      "rc0|64.57.28.0/24|55\n");  // unrelated third AS
  const bgp::Rib rib = bgp::Rib::read(announcements);
  const bgp::Ip2As ip2as(rib);

  const auto sanitized = trace::sanitize(corpus);
  const auto all_addresses = corpus.distinct_addresses();
  const graph::InterfaceGraph graph(sanitized.clean, all_addresses);

  const asdata::As2Org orgs;
  const asdata::AsRelationships rels;
  core::Options options;
  options.f = 0.5;
  options.capture_snapshots = true;
  const core::Result result = core::run_mapit(graph, ip2as, orgs, rels,
                                              options);

  const graph::InterfaceHalf watched = graph::backward_half(
      net::Ipv4Address::parse_or_throw("199.109.5.1"));
  std::cout << "watching " << watched.to_string() << " through the stages:\n";
  for (const core::Snapshot& snapshot : result.snapshots) {
    const core::Inference* inference = nullptr;
    for (const core::Inference& candidate : snapshot.inferences) {
      if (candidate.half == watched) inference = &candidate;
    }
    std::cout << "  after " << snapshot.label << ": "
              << (inference != nullptr ? inference->to_string()
                                       : "(no inference yet)")
              << "\n";
  }

  std::cout << "\ntotal add passes: " << result.stats.add_passes
            << " (the second pass is where the update pays off)\n";

  const core::Inference* final_inference = result.find(watched);
  if (final_inference != nullptr && final_inference->router_as == 11537 &&
      final_inference->other_as == 3754) {
    std::cout << "199.109.5.1 connects AS11537 <-> AS3754, found only\n"
              << "because the first pass refined the IP2AS mappings.\n";
    return 0;
  }
  std::cerr << "unexpected result\n";
  return 1;
}
