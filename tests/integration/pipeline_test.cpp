// End-to-end integration tests: the full pipeline reproduces the paper's
// qualitative results on a laptop-fast corpus.
#include <gtest/gtest.h>

#include "baselines/itdk.h"
#include "baselines/simple.h"
#include "eval/experiment.h"

namespace mapit {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const auto instance =
        eval::Experiment::build(eval::ExperimentConfig::small());
    return *instance;
  }

  static eval::Metrics verify(asdata::Asn target,
                              const baselines::Claims& claims) {
    const eval::AsGroundTruth gt = experiment().ground_truth(target);
    return experiment().evaluator().verify(gt, claims).total;
  }
};

TEST_F(PipelineTest, SanitizerStatisticsAreInPaperBallpark) {
  const trace::SanitizeStats& stats = experiment().sanitize_stats();
  EXPECT_GT(stats.input_traces, 1000u);
  // Paper: 2.7% discarded, 89.1% of addresses retained. Shape check only.
  EXPECT_LT(stats.discard_fraction(), 0.2);
  EXPECT_GT(stats.address_retention(), 0.8);
}

TEST_F(PipelineTest, Slash31FractionNearConfiguredRate) {
  // Generator numbers ~40% of links from /31s (paper: 40.4% inferred).
  const graph::GraphStats stats = experiment().graph().stats();
  EXPECT_GT(stats.slash31_fraction, 0.25);
  EXPECT_LT(stats.slash31_fraction, 0.55);
}

TEST_F(PipelineTest, MapItIsHighPrecisionOnAllTargets) {
  const core::Result result = experiment().run_mapit({});
  const baselines::Claims claims = baselines::claims_from_result(result);
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const eval::Metrics metrics = verify(target, claims);
    EXPECT_GE(metrics.precision(), 0.9) << "AS" << target;
    EXPECT_GE(metrics.recall(), 0.6) << "AS" << target;
    EXPECT_GT(metrics.tp, 0u) << "AS" << target;
  }
}

TEST_F(PipelineTest, ExactTruthTargetReachesPaperPrecision) {
  // The paper's headline: 100% precision on Internet2 at f = 0.5. Allow a
  // single residual artifact error on the synthetic corpus.
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment().run_mapit(options);
  const eval::Metrics metrics = verify(topo::Generator::rne_asn(),
                                       baselines::claims_from_result(result));
  EXPECT_GE(metrics.precision(), 0.97);
}

TEST_F(PipelineTest, MapItDominatesEveryBaselineOnPrecision) {
  const core::Result result = experiment().run_mapit({});
  const baselines::Claims mapit_claims =
      baselines::claims_from_result(result);
  const baselines::Claims simple =
      baselines::simple_heuristic(experiment().corpus(), experiment().ip2as());
  const baselines::Claims convention = baselines::convention_heuristic(
      experiment().corpus(), experiment().ip2as(),
      experiment().relationships());
  const baselines::Claims midar = baselines::itdk_router_graph(
      experiment().corpus(), experiment().internet(), experiment().ip2as(),
      baselines::AliasConfig::midar());
  const baselines::Claims kapar = baselines::itdk_router_graph(
      experiment().corpus(), experiment().internet(), experiment().ip2as(),
      baselines::AliasConfig::kapar());

  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const double ours = verify(target, mapit_claims).precision();
    for (const auto* baseline : {&simple, &convention, &midar, &kapar}) {
      EXPECT_GT(ours, verify(target, *baseline).precision())
          << "AS" << target;
    }
  }
}

TEST_F(PipelineTest, ConventionHeuristicCollapsesOnCustomerNamedNetwork) {
  // Fig 8's signature asymmetry: Convention does far worse than MAP-IT on
  // the R&E network because its transit links are customer-named.
  const baselines::Claims convention = baselines::convention_heuristic(
      experiment().corpus(), experiment().ip2as(),
      experiment().relationships());
  const eval::Metrics metrics =
      verify(topo::Generator::rne_asn(), convention);
  EXPECT_LT(metrics.precision(), 0.5);
}

TEST_F(PipelineTest, RecallDropsAtHighF) {
  core::Options low;
  low.f = 0.3;
  core::Options high;
  high.f = 1.0;
  const baselines::Claims low_claims =
      baselines::claims_from_result(experiment().run_mapit(low));
  const baselines::Claims high_claims =
      baselines::claims_from_result(experiment().run_mapit(high));
  // Summed over all three targets, recall must not improve with f = 1.
  std::size_t low_tp = 0, low_fn = 0, high_tp = 0, high_fn = 0;
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const eval::Metrics l = verify(target, low_claims);
    const eval::Metrics h = verify(target, high_claims);
    low_tp += l.tp;
    low_fn += l.fn;
    high_tp += h.tp;
    high_fn += h.fn;
  }
  const double low_recall =
      static_cast<double>(low_tp) / static_cast<double>(low_tp + low_fn);
  const double high_recall =
      static_cast<double>(high_tp) / static_cast<double>(high_tp + high_fn);
  EXPECT_LT(high_recall, low_recall);
}

TEST_F(PipelineTest, StubHeuristicLiftsRecall) {
  core::Options with;
  core::Options without;
  without.stub_heuristic = false;
  std::size_t with_tp = 0, without_tp = 0;
  const baselines::Claims with_claims =
      baselines::claims_from_result(experiment().run_mapit(with));
  const baselines::Claims without_claims =
      baselines::claims_from_result(experiment().run_mapit(without));
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    with_tp += verify(target, with_claims).tp;
    without_tp += verify(target, without_claims).tp;
  }
  EXPECT_GT(with_tp, without_tp);
}

TEST_F(PipelineTest, MultipassSnapshotsImproveMonotonically) {
  core::Options options;
  options.f = 0.5;
  options.capture_snapshots = true;
  const core::Result result = experiment().run_mapit(options);
  ASSERT_GE(result.snapshots.size(), 4u);
  // Inverse-resolution must not lose precision relative to the raw Direct
  // pass on the exact-truth network.
  auto precision_at = [&](const core::Snapshot& snapshot) {
    baselines::Claims claims;
    for (const core::Inference& inference : snapshot.inferences) {
      if (!inference.complete() ||
          inference.kind == core::InferenceKind::kIndirect) {
        continue;
      }
      claims.push_back(baselines::make_claim(
          inference.half.address, inference.router_as, inference.other_as));
    }
    baselines::normalize(claims);
    return verify(topo::Generator::rne_asn(), claims).precision();
  };
  const double direct = precision_at(result.snapshots[0]);
  const double inverse = precision_at(result.snapshots[2]);
  const double final_precision = precision_at(result.snapshots.back());
  EXPECT_GE(inverse, direct);
  EXPECT_GE(final_precision, 0.95);
}

TEST_F(PipelineTest, Ip2AsCoverageIsHigh) {
  const auto adjacent = experiment().corpus().adjacent_addresses();
  EXPECT_GT(experiment().ip2as().coverage(adjacent), 0.95);
}

TEST_F(PipelineTest, EngineConvergesInFewIterations) {
  const core::Result result = experiment().run_mapit({});
  EXPECT_TRUE(result.stats.converged);
  EXPECT_LE(result.stats.iterations, 6);
}

}  // namespace
}  // namespace mapit
