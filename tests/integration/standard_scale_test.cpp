// Standard-scale regression pins: the EXPERIMENTS.md headline numbers are
// asserted here so any algorithm or substrate change that shifts the
// paper-shape results is caught in CI, not discovered in a bench run.
//
// These run the bench-scale configuration (~80k traces); the whole file
// costs a few seconds.
#include <gtest/gtest.h>

#include "baselines/claims.h"
#include "baselines/simple.h"
#include "eval/experiment.h"

namespace mapit {
namespace {

class StandardScaleTest : public ::testing::Test {
 protected:
  static const eval::Experiment& experiment() {
    static const auto instance =
        eval::Experiment::build(eval::ExperimentConfig::standard());
    return *instance;
  }

  static const core::Result& result() {
    static const core::Result r = [] {
      core::Options options;
      options.f = 0.5;
      return experiment().run_mapit(options);
    }();
    return r;
  }

  static eval::Metrics verify(asdata::Asn target) {
    const baselines::Claims claims = baselines::claims_from_result(result());
    const eval::AsGroundTruth truth = experiment().ground_truth(target);
    return experiment().evaluator().verify(truth, claims).total;
  }
};

TEST_F(StandardScaleTest, ExactTruthNetworkAtPaperOperatingPoint) {
  // Paper Table 1: I2 at 100.0% precision / 96.9% recall.
  const eval::Metrics metrics = verify(topo::Generator::rne_asn());
  EXPECT_EQ(metrics.fp, 0u) << "I2 precision must stay at 100%";
  EXPECT_GE(metrics.recall(), 0.90);
}

TEST_F(StandardScaleTest, Tier1NetworksInPaperBand) {
  for (asdata::Asn target :
       {topo::Generator::tier1_a(), topo::Generator::tier1_b()}) {
    const eval::Metrics metrics = verify(target);
    EXPECT_GE(metrics.precision(), 0.94) << "AS" << target;
    EXPECT_GE(metrics.recall(), 0.85) << "AS" << target;
  }
}

TEST_F(StandardScaleTest, CorpusStatisticsStayInBand) {
  const trace::SanitizeStats& ss = experiment().sanitize_stats();
  EXPECT_GT(ss.discard_fraction(), 0.001);  // artifacts exist (paper: 2.7%)
  EXPECT_LT(ss.discard_fraction(), 0.10);
  const graph::GraphStats gs = experiment().graph().stats();
  EXPECT_NEAR(gs.slash31_fraction, 0.40, 0.08);  // paper: 40.4%
  EXPECT_LT(gs.overlap_fraction(), 0.02);        // paper: 0.3%
}

TEST_F(StandardScaleTest, ConvergesLikeThePaper) {
  // Paper §4.6: convergence after 3 iterations of the main loop.
  EXPECT_TRUE(result().stats.converged);
  EXPECT_LE(result().stats.iterations, 5);
}

TEST_F(StandardScaleTest, SimpleHeuristicStaysFarBehind) {
  const baselines::Claims simple =
      baselines::simple_heuristic(experiment().corpus(), experiment().ip2as());
  for (asdata::Asn target : eval::Experiment::evaluation_targets()) {
    const eval::AsGroundTruth truth = experiment().ground_truth(target);
    const double baseline_precision =
        experiment().evaluator().verify(truth, simple).total.precision();
    const double ours = verify(target).precision();
    EXPECT_GT(ours, baseline_precision + 0.3) << "AS" << target;
  }
}

TEST_F(StandardScaleTest, UncertainListStaysSmall) {
  // Paper §4.4.4: "a much smaller list of uncertain inferences".
  EXPECT_LT(result().uncertain.size(), result().inferences.size() / 10 + 5);
}

}  // namespace
}  // namespace mapit
