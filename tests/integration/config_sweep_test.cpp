// Pipeline robustness across generator extremes: whatever the topology's
// addressing conventions, artifact rates, or population mix, the pipeline
// must stay deterministic, convergent, and high-precision on the
// exact-truth network.
#include <gtest/gtest.h>

#include <string>

#include "baselines/claims.h"
#include "eval/experiment.h"

namespace mapit {
namespace {

struct SweepCase {
  const char* name;
  void (*tweak)(eval::ExperimentConfig&);
};

void all_slash31(eval::ExperimentConfig& c) {
  c.topology.slash31_prob = 1.0;
}
void all_slash30(eval::ExperimentConfig& c) {
  c.topology.slash31_prob = 0.0;
}
void provider_space_everywhere(eval::ExperimentConfig& c) {
  c.topology.transit_from_customer_space_prob = 0.0;
  c.topology.rne_customer_space_prob = 0.0;
}
void customer_space_everywhere(eval::ExperimentConfig& c) {
  c.topology.transit_from_customer_space_prob = 1.0;
  c.topology.rne_customer_space_prob = 1.0;
}
void artifact_storm(eval::ExperimentConfig& c) {
  c.simulation.per_packet_lb_prob = 0.08;
  c.simulation.route_flap_prob = 0.08;
  c.simulation.hop_loss_prob = 0.05;
}
void clean_room(eval::ExperimentConfig& c) {
  c.simulation.per_packet_lb_prob = 0.0;
  c.simulation.route_flap_prob = 0.0;
  c.simulation.hop_loss_prob = 0.0;
  c.topology.buggy_router_prob = 0.0;
  c.topology.egress_reply_router_prob = 0.0;
  c.topology.nat_stub_prob = 0.0;
  c.topology.router_silent_prob = 0.0;
  c.topology.silent_border_as_prob = 0.0;
}
void no_ixps(eval::ExperimentConfig& c) { c.topology.ixp_count = 0; }
void noisy_datasets(eval::ExperimentConfig& c) {
  c.noise.missing_relationship = 0.15;
  c.noise.missing_sibling = 0.5;
  c.noise.missing_ixp_prefix = 0.5;
  c.noise.fallback_only = 0.1;
}

class ConfigSweepTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ConfigSweepTest, PipelineStaysSoundAndPrecise) {
  eval::ExperimentConfig config = eval::ExperimentConfig::small();
  GetParam().tweak(config);
  const auto experiment = eval::Experiment::build(config);
  core::Options options;
  options.f = 0.5;
  const core::Result result = experiment->run_mapit(options);

  EXPECT_TRUE(result.stats.converged);
  EXPECT_FALSE(result.inferences.empty());

  const baselines::Claims claims = baselines::claims_from_result(result);
  const eval::AsGroundTruth truth =
      experiment->ground_truth(topo::Generator::rne_asn());
  const eval::Verification v = experiment->evaluator().verify(truth, claims);
  // Precision holds up even in hostile regimes; recall may drop when the
  // corpus is artifact-heavy or visibility-starved.
  EXPECT_GE(v.total.precision(), 0.9) << GetParam().name;
  EXPECT_GT(v.total.tp, 0u) << GetParam().name;

  // Determinism regardless of config.
  const core::Result again = experiment->run_mapit(options);
  EXPECT_EQ(result.inferences, again.inferences) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Regimes, ConfigSweepTest,
    ::testing::Values(SweepCase{"all_slash31", all_slash31},
                      SweepCase{"all_slash30", all_slash30},
                      SweepCase{"provider_space", provider_space_everywhere},
                      SweepCase{"customer_space", customer_space_everywhere},
                      SweepCase{"artifact_storm", artifact_storm},
                      SweepCase{"clean_room", clean_room},
                      SweepCase{"no_ixps", no_ixps},
                      SweepCase{"noisy_datasets", noisy_datasets}),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return std::string(param_info.param.name);
    });

}  // namespace
}  // namespace mapit
