// Lenient and strict ingestion must be deterministic across thread counts:
// a parallel load reports the same first strict-mode error and produces the
// same LoadReport and the same surviving corpus as the sequential reader.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "net/error.h"
#include "net/load_report.h"
#include "trace/trace_io.h"

namespace mapit::trace {
namespace {

/// A corpus with malformed lines sprinkled at known positions, big enough
/// that an 8-thread load splits it across every worker.
std::string dirty_corpus(std::size_t total_lines,
                         std::vector<std::size_t>* bad_line_numbers) {
  std::string text = "# dirty corpus\n";
  std::size_t line_no = 1;
  for (std::size_t i = 0; i < total_lines; ++i) {
    ++line_no;
    if (i % 37 == 5) {
      text += "garbage line " + std::to_string(i) + "\n";
      bad_line_numbers->push_back(line_no);
    } else if (i % 53 == 11) {
      text += "3|9.9.9.9|1.0.0.1@999\n";  // quoted TTL out of range
      bad_line_numbers->push_back(line_no);
    } else {
      text += std::to_string(i % 16) + "|9.9.9." + std::to_string(i % 200) +
              "|1.0.0." + std::to_string(1 + i % 200) + " *\n";
    }
  }
  return text;
}

TEST(LenientLoad, ParallelReportMatchesSequential) {
  std::vector<std::size_t> bad_lines;
  const std::string text = dirty_corpus(1000, &bad_lines);
  ASSERT_GE(bad_lines.size(), LoadReport::kMaxDetailed + 1);

  std::stringstream sequential_in(text);
  LoadReport sequential;
  const TraceCorpus baseline = read_corpus(sequential_in, 1, &sequential);
  EXPECT_EQ(sequential.skipped(), bad_lines.size());
  EXPECT_EQ(sequential.loaded() + sequential.skipped(), 1000u);
  ASSERT_EQ(sequential.offenders().size(), LoadReport::kMaxDetailed);
  for (std::size_t i = 0; i < sequential.offenders().size(); ++i) {
    EXPECT_EQ(sequential.offenders()[i].line_no, bad_lines[i]) << i;
  }

  for (const unsigned threads : {2u, 8u}) {
    std::stringstream in(text);
    LoadReport report;
    const TraceCorpus corpus = read_corpus(in, threads, &report);
    EXPECT_EQ(report.skipped(), sequential.skipped()) << threads;
    EXPECT_EQ(report.loaded(), sequential.loaded()) << threads;
    ASSERT_EQ(report.offenders().size(), sequential.offenders().size())
        << threads;
    for (std::size_t i = 0; i < report.offenders().size(); ++i) {
      EXPECT_EQ(report.offenders()[i].line_no,
                sequential.offenders()[i].line_no)
          << threads << " threads, offender " << i;
      EXPECT_EQ(report.offenders()[i].byte_offset,
                sequential.offenders()[i].byte_offset)
          << threads << " threads, offender " << i;
      EXPECT_EQ(report.offenders()[i].error, sequential.offenders()[i].error)
          << threads << " threads, offender " << i;
    }
    ASSERT_EQ(corpus.size(), baseline.size()) << threads;
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      EXPECT_EQ(corpus.traces()[i], baseline.traces()[i])
          << threads << " threads, trace " << i;
    }
  }
}

TEST(LenientLoad, ParallelStrictFirstErrorMatchesSequential) {
  std::vector<std::size_t> bad_lines;
  const std::string text = dirty_corpus(1000, &bad_lines);

  std::string sequential_error;
  {
    std::stringstream in(text);
    try {
      (void)read_corpus(in, 1);
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      sequential_error = e.what();
    }
  }
  EXPECT_NE(
      sequential_error.find("line " + std::to_string(bad_lines.front())),
      std::string::npos)
      << sequential_error;

  for (const unsigned threads : {2u, 8u}) {
    std::stringstream in(text);
    try {
      (void)read_corpus(in, threads);
      FAIL() << "expected ParseError with " << threads << " threads";
    } catch (const ParseError& e) {
      EXPECT_EQ(std::string(e.what()), sequential_error)
          << threads << " threads";
    }
  }
}

}  // namespace
}  // namespace mapit::trace
