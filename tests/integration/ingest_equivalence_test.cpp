// The streaming-ingestion signature property: folding deltas D over base B
// — in ANY batch partitioning, with ANY thread count — publishes a snapshot
// byte-identical to a cold batch run over the concatenated corpus B+D.
// Plus the crash half of the contract: run_ingest killed at any injected
// syscall (journal append, fsync, snapshot write, rename, ...) resumes
// from the journal into exactly the same bytes.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.h"
#include "fault/plan.h"
#include "ingest/pipeline.h"
#include "ingest/runner.h"
#include "trace/trace_io.h"

namespace mapit {
namespace {

namespace fs = std::filesystem;

// A hand-sized internet: three ASes, a handful of inter-AS links, enough
// traces that several batch splits are distinguishable. Cheap enough that
// the crash matrix can afford an engine run per injection point.
constexpr const char* kRib =
    "rc0|10.1.0.0/16|100\n"
    "rc0|10.2.0.0/16|200\n"
    "rc0|10.3.0.0/16|300\n";

std::vector<std::string> corpus_lines() {
  std::vector<std::string> lines;
  // Forward and reverse crossings of the 100-200 and 200-300 borders from
  // a few monitors, with some intra-AS churn so halves see traffic.
  for (int i = 0; i < 6; ++i) {
    const std::string a = std::to_string(2 + i);
    lines.push_back("0|10.2.0." + a + "|10.1.0.1@1 10.1.0." + a +
                    "@2 10.2.0.1@3 10.2.0." + a + "@4");
    lines.push_back("1|10.3.0." + a + "|10.2.0.1@1 10.2.0." + a +
                    "@2 10.3.0.1@3 10.3.0." + a + "@4");
    lines.push_back("2|10.1.0." + a + "|10.3.0.1@1 10.3.0." + a +
                    "@2 10.2.0.1@3 10.2.0." + a + "@4 10.1.0.1@5 10.1.0." +
                    a + "@6");
  }
  for (int i = 0; i < 6; ++i) {
    const std::string a = std::to_string(20 + i);
    lines.push_back("0|10.3.0." + a + "|10.1.0.1@1 10.1.0." + a +
                    "@2 10.2.0.40@3 10.3.0.1@4 10.3.0." + a + "@5");
    lines.push_back("1|10.1.0." + a + "|10.2.0.40@1 10.2.0." + a +
                    "@2 10.1.0.1@3 10.1.0." + a + "@4");
  }
  return lines;
}

void write_lines(const std::string& path,
                 const std::vector<std::string>& lines) {
  std::ofstream out(path, std::ios::trunc);
  for (const std::string& line : lines) out << line << "\n";
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

trace::TraceCorpus parse_lines(const std::vector<std::string>& lines,
                               std::size_t begin, std::size_t end) {
  trace::TraceCorpus corpus;
  for (std::size_t i = begin; i < end && i < lines.size(); ++i) {
    corpus.add(trace::parse_trace(lines[i], "test"));
  }
  return corpus;
}

class IngestEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("mapit_ingest_eq_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    lines_ = corpus_lines();
    rib_path_ = (dir_ / "rib.txt").string();
    std::ofstream rib(rib_path_);
    rib << kRib;
    full_path_ = (dir_ / "full.txt").string();
    write_lines(full_path_, lines_);
    base_count_ = lines_.size() / 2;
    base_path_ = (dir_ / "base.txt").string();
    write_lines(base_path_, std::vector<std::string>(
                                lines_.begin(),
                                lines_.begin() +
                                    static_cast<std::ptrdiff_t>(base_count_)));
  }
  void TearDown() override { fs::remove_all(dir_); }

  ingest::IngestSetup setup(const std::string& traces_path,
                            unsigned threads) const {
    ingest::IngestSetup setup;
    setup.traces_path = traces_path;
    setup.rib_path = rib_path_;
    setup.options.threads = threads;
    return setup;
  }

  /// Cold reference: one pipeline over the full corpus, no folds.
  std::string cold_bytes(unsigned threads) const {
    const ingest::IngestPipeline pipeline(setup(full_path_, threads));
    return pipeline.serialize();
  }

  fs::path dir_;
  std::vector<std::string> lines_;
  std::string rib_path_;
  std::string full_path_;
  std::string base_path_;
  std::size_t base_count_ = 0;
};

TEST_F(IngestEquivalenceTest, AnyBatchSplitAnyThreadCountMatchesCold) {
  const std::string cold = cold_bytes(1);
  ASSERT_FALSE(cold.empty());
  const std::size_t delta = lines_.size() - base_count_;

  // Split vectors: batch sizes that partition the delta. One batch, two
  // uneven batches, three batches, and fully line-by-line.
  const std::vector<std::vector<std::size_t>> splits = {
      {delta},
      {delta / 3, delta - delta / 3},
      {delta / 3, delta / 3, delta - 2 * (delta / 3)},
      std::vector<std::size_t>(delta, 1),
  };
  for (const unsigned threads : {1u, 2u, 8u}) {
    EXPECT_EQ(cold_bytes(threads), cold) << "cold threads=" << threads;
    for (std::size_t s = 0; s < splits.size(); ++s) {
      ingest::IngestPipeline pipeline(setup(base_path_, threads));
      std::size_t at = base_count_;
      for (const std::size_t size : splits[s]) {
        pipeline.fold(parse_lines(lines_, at, at + size));
        at += size;
      }
      ASSERT_EQ(at, lines_.size());
      EXPECT_EQ(pipeline.serialize(), cold)
          << "threads=" << threads << " split=" << s;
      EXPECT_EQ(pipeline.delta_traces(), delta);
    }
  }
}

TEST_F(IngestEquivalenceTest, RunIngestDrainPublishesColdBytes) {
  const std::string cold = cold_bytes(1);
  const std::string follow = (dir_ / "delta_follow.txt").string();
  write_lines(follow, std::vector<std::string>(
                          lines_.begin() +
                              static_cast<std::ptrdiff_t>(base_count_),
                          lines_.end()));

  ingest::IngestOptions options;
  options.traces_path = base_path_;
  options.rib_path = rib_path_;
  options.engine_options.threads = 1;
  options.journal_path = (dir_ / "delta.jnl").string();
  options.out_path = (dir_ / "live.snap").string();
  options.follow_path = follow;
  options.drain = true;
  const ingest::IngestStats stats = ingest::run_ingest(options);
  EXPECT_EQ(stats.folded_traces, lines_.size() - base_count_);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_EQ(read_file(options.out_path), cold);

  // Re-running over the same journal is idempotent: full replay, zero new
  // lines, identical bytes.
  const ingest::IngestStats again = ingest::run_ingest(options);
  EXPECT_EQ(again.replayed_traces, stats.folded_traces);
  EXPECT_EQ(read_file(options.out_path), cold);
}

TEST_F(IngestEquivalenceTest, KillMidJournalResumesToColdBytes) {
  const std::string cold = cold_bytes(1);
  const std::string follow = (dir_ / "delta_follow.txt").string();
  const auto delta_lines = std::vector<std::string>(
      lines_.begin() + static_cast<std::ptrdiff_t>(base_count_),
      lines_.end());

  // Grow the follow file in three stages with a drain run after each, so
  // the journal accumulates multiple commit records at staged offsets.
  ingest::IngestOptions options;
  options.traces_path = base_path_;
  options.rib_path = rib_path_;
  options.engine_options.threads = 1;
  options.journal_path = (dir_ / "delta.jnl").string();
  options.out_path = (dir_ / "live.snap").string();
  options.follow_path = follow;
  options.drain = true;
  const std::size_t third = delta_lines.size() / 3;
  write_lines(follow, std::vector<std::string>(delta_lines.begin(),
                                               delta_lines.begin() +
                                                   static_cast<std::ptrdiff_t>(
                                                       third)));
  (void)ingest::run_ingest(options);
  write_lines(follow, std::vector<std::string>(delta_lines.begin(),
                                               delta_lines.begin() +
                                                   static_cast<std::ptrdiff_t>(
                                                       2 * third)));
  (void)ingest::run_ingest(options);
  write_lines(follow, delta_lines);
  (void)ingest::run_ingest(options);
  ASSERT_EQ(read_file(options.out_path), cold);
  const std::string journal_bytes = read_file(options.journal_path);

  // Kill simulation: chop the journal at assorted byte lengths (torn tail,
  // lost commits, lost whole batches), delete the snapshot, re-ingest.
  // Every cut must resume to the cold bytes — the surviving journal prefix
  // plus the follow-file tail always reconstructs B+D exactly.
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{7}, std::size_t{40}, std::size_t{100},
        journal_bytes.size() - core::kJournalHeaderSize - 1,
        journal_bytes.size() - core::kJournalHeaderSize}) {
    std::ofstream out(options.journal_path,
                      std::ios::binary | std::ios::trunc);
    out << journal_bytes.substr(0, journal_bytes.size() - cut);
    out.close();
    fs::remove(options.out_path);
    const ingest::IngestStats stats = ingest::run_ingest(options);
    EXPECT_EQ(read_file(options.out_path), cold) << "cut " << cut;
    EXPECT_EQ(stats.folded_traces, delta_lines.size()) << "cut " << cut;
  }
}

TEST_F(IngestEquivalenceTest, CrashAtEveryInjectedSyscallThenResume) {
  const std::string cold = cold_bytes(1);
  const std::string follow = (dir_ / "delta_follow.txt").string();
  write_lines(follow, std::vector<std::string>(
                          lines_.begin() +
                              static_cast<std::ptrdiff_t>(base_count_),
                          lines_.end()));

  ingest::IngestOptions options;
  options.traces_path = base_path_;
  options.rib_path = rib_path_;
  options.engine_options.threads = 1;
  options.journal_path = (dir_ / "delta.jnl").string();
  options.out_path = (dir_ / "live.snap").string();
  options.follow_path = follow;
  options.drain = true;

  // Counting pass: every syscall of a clean drain session is an injection
  // point for the crash matrix.
  fault::FaultPlan counter;
  options.io = &counter;
  (void)ingest::run_ingest(options);
  ASSERT_EQ(read_file(options.out_path), cold);

  const fault::Op kOps[] = {fault::Op::kOpen,  fault::Op::kWrite,
                            fault::Op::kFsync, fault::Op::kFtruncate,
                            fault::Op::kRename};
  int crash_points = 0;
  for (const fault::Op op : kOps) {
    const std::uint64_t total = counter.calls(op);
    // Full matrix for the rare ops; stride the frequent ones so the test
    // stays inside the integration budget.
    const std::uint64_t stride = total > 24 ? total / 12 : 1;
    for (std::uint64_t nth = 1; nth <= total; nth += stride) {
      fs::remove(options.journal_path);
      fs::remove(options.out_path);
      fault::FaultPlan plan;
      plan.add(fault::Fault{.op = op, .nth = nth, .crash = true});
      options.io = &plan;
      EXPECT_THROW((void)ingest::run_ingest(options), fault::InjectedCrash)
          << to_string(op) << " call " << nth;
      ++crash_points;
      // Recovery: a clean rerun resumes from whatever survived and must
      // land on the cold bytes.
      options.io = nullptr;
      const ingest::IngestStats stats = ingest::run_ingest(options);
      EXPECT_EQ(read_file(options.out_path), cold)
          << to_string(op) << " call " << nth;
      EXPECT_EQ(stats.folded_traces, lines_.size() - base_count_)
          << to_string(op) << " call " << nth;
    }
  }
  EXPECT_GE(crash_points, 12);
}

TEST_F(IngestEquivalenceTest, LenientQuarantinesDeltaGarbageStrictThrows) {
  const std::string cold = cold_bytes(1);
  std::vector<std::string> delta_lines(
      lines_.begin() + static_cast<std::ptrdiff_t>(base_count_),
      lines_.end());
  delta_lines.insert(delta_lines.begin() + 2, "this is not a trace");
  delta_lines.push_back("0|not-an-address|junk");
  const std::string follow = (dir_ / "delta_follow.txt").string();
  write_lines(follow, delta_lines);

  ingest::IngestOptions options;
  options.traces_path = base_path_;
  options.rib_path = rib_path_;
  options.engine_options.threads = 1;
  options.journal_path = (dir_ / "delta.jnl").string();
  options.out_path = (dir_ / "live.snap").string();
  options.follow_path = follow;
  options.drain = true;

  EXPECT_THROW((void)ingest::run_ingest(options), Error);

  fs::remove(options.journal_path);
  options.lenient = true;
  std::ostringstream log;
  options.log = &log;
  const ingest::IngestStats stats = ingest::run_ingest(options);
  EXPECT_EQ(stats.quarantined, 2u);
  EXPECT_EQ(stats.folded_traces, lines_.size() - base_count_);
  // Quarantined garbage must not perturb the published bytes.
  EXPECT_EQ(read_file(options.out_path), cold);
  EXPECT_NE(log.str().find("skipped 2"), std::string::npos);
}

}  // namespace
}  // namespace mapit
