// The checkpoint/resume headline guarantee (ISSUE acceptance criteria):
// stopping a run at ANY pass boundary, saving the engine state, and
// resuming it in a fresh engine — same or different thread count — produces
// byte-identical inferences, equal stats, and equal final mappings to an
// uninterrupted run. Both experiment scales; the /Standard instantiations
// carry the slow label. The file-level crash matrix for the checkpoint
// artifact itself lives in tests/core/checkpoint_fault_test.cpp; the
// process-level kill/resume chain through the real CLI is in tools/ci.sh.
#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include <filesystem>

#include "core/checkpoint.h"
#include "core/engine.h"
#include "core/result_io.h"
#include "eval/experiment.h"
#include "net/error.h"

namespace mapit {
namespace {

namespace fs = std::filesystem;

std::string serialize(const core::Result& result) {
  std::ostringstream out;
  core::write_inferences(out, result.inferences);
  core::write_inferences(out, result.uncertain);
  return out.str();
}

/// Engine state captured at one run boundary, as a checkpoint would hold it.
struct SavedState {
  std::string state;
  core::RunBoundary boundary = core::RunBoundary::kAfterIteration;
  int iterations_done = 0;
};

core::Engine make_engine(const eval::Experiment& exp,
                         const core::Options& options) {
  return core::Engine(exp.graph(), exp.ip2as(), exp.orgs(),
                      exp.relationships(), options);
}

/// Runs until the `stop_at`-th boundary (1-based), saves there, and
/// abandons the run — the in-process equivalent of kill -9 after a
/// checkpoint write. Returns nullopt when the run completes first.
std::optional<SavedState> run_and_stop_at(const eval::Experiment& exp,
                                          const core::Options& options,
                                          int stop_at) {
  core::Engine engine = make_engine(exp, options);
  SavedState saved;
  int boundaries = 0;
  core::RunControl control;
  control.on_boundary = [&](core::RunBoundary boundary, int iterations) {
    if (++boundaries < stop_at) return true;
    saved.state = engine.save_state();
    saved.boundary = boundary;
    saved.iterations_done = iterations;
    return false;
  };
  const core::RunOutcome outcome = engine.run_controlled(control);
  if (outcome.completed()) return std::nullopt;
  EXPECT_EQ(outcome.stopped_at, saved.boundary);
  EXPECT_EQ(outcome.iterations_done, saved.iterations_done);
  return saved;
}

core::Result resume_from(const eval::Experiment& exp,
                         const core::Options& options,
                         const SavedState& saved) {
  core::Engine engine = make_engine(exp, options);
  core::RunControl control;
  control.resume_state = &saved.state;
  control.resume_boundary = saved.boundary;
  const core::RunOutcome outcome = engine.run_controlled(control);
  EXPECT_TRUE(outcome.completed()) << "resumed run did not complete";
  return *outcome.result;
}

/// Parameter: true = standard scale, false = small scale.
class CheckpointResumeTest : public ::testing::TestWithParam<bool> {
 protected:
  static const eval::Experiment& experiment(bool standard_scale) {
    static const auto standard =
        eval::Experiment::build(eval::ExperimentConfig::standard());
    static const auto small =
        eval::Experiment::build(eval::ExperimentConfig::small());
    return standard_scale ? *standard : *small;
  }
};

TEST_P(CheckpointResumeTest, KillAtEveryBoundaryThenResumeIsByteIdentical) {
  const eval::Experiment& exp = experiment(GetParam());
  core::Options options;
  options.threads = 1;

  const core::Result reference = *make_engine(exp, options)
                                      .run_controlled({})
                                      .result;
  const std::string expected = serialize(reference);

  // Count the boundaries of an uninterrupted run, then kill at each one.
  int total_boundaries = 0;
  {
    core::RunControl counting;
    counting.on_boundary = [&](core::RunBoundary, int) {
      ++total_boundaries;
      return true;
    };
    ASSERT_TRUE(
        make_engine(exp, options).run_controlled(counting).completed());
  }
  ASSERT_GE(total_boundaries, 2) << "run too short to exercise boundaries";

  for (int stop_at = 1; stop_at <= total_boundaries; ++stop_at) {
    const std::optional<SavedState> saved =
        run_and_stop_at(exp, options, stop_at);
    ASSERT_TRUE(saved.has_value()) << "boundary " << stop_at << " not hit";
    for (unsigned resume_threads : {1u, 8u}) {
      core::Options resume_options = options;
      resume_options.threads = resume_threads;
      const core::Result resumed = resume_from(exp, resume_options, *saved);
      const std::string label = "boundary " + std::to_string(stop_at) +
                                " resume_threads=" +
                                std::to_string(resume_threads);
      EXPECT_EQ(serialize(resumed), expected) << label;
      EXPECT_EQ(resumed.stats, reference.stats) << label;
      EXPECT_EQ(resumed.final_mappings, reference.final_mappings) << label;
    }
  }
}

// A state saved by a parallel run must resume identically too (the CLI
// writes checkpoints from whatever --threads the run used).
TEST_P(CheckpointResumeTest, ParallelSaveResumesInSequentialEngine) {
  const eval::Experiment& exp = experiment(GetParam());
  core::Options parallel_options;
  parallel_options.threads = 8;
  core::Options sequential_options;
  sequential_options.threads = 1;

  const core::Result reference =
      *make_engine(exp, sequential_options).run_controlled({}).result;
  const std::optional<SavedState> saved =
      run_and_stop_at(exp, parallel_options, 2);
  ASSERT_TRUE(saved.has_value());
  const core::Result resumed = resume_from(exp, sequential_options, *saved);
  EXPECT_EQ(serialize(resumed), serialize(reference));
  EXPECT_EQ(resumed.stats, reference.stats);
  EXPECT_EQ(resumed.final_mappings, reference.final_mappings);
}

// Resume-of-resume: stop at every boundary in sequence, saving and
// restoring through a real checkpoint FILE each leg — the in-process
// version of the ci.sh kill/resume chain.
TEST_P(CheckpointResumeTest, ChainedFileCheckpointsReachTheSameResult) {
  const eval::Experiment& exp = experiment(GetParam());
  core::Options options;
  options.threads = 1;
  const core::Result reference =
      *make_engine(exp, options).run_controlled({}).result;

  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("mapit_resume_chain_" + std::to_string(::getpid()) +
       (GetParam() ? "_standard" : "_small"));
  fs::create_directories(dir);
  const std::string path = core::checkpoint_path(dir.string());
  core::CheckpointMeta meta;
  meta.config_hash = core::config_hash(options);
  meta.corpus_fingerprint = 11;
  meta.rib_fingerprint = 22;
  meta.datasets_fingerprint = 33;

  std::optional<core::Result> final_result;
  std::optional<SavedState> carried;
  int legs = 0;
  while (!final_result.has_value()) {
    ASSERT_LT(++legs, 100) << "resume chain does not terminate";
    core::Engine engine = make_engine(exp, options);
    SavedState saved;
    bool stopped = false;
    core::RunControl control;
    if (carried.has_value()) {
      control.resume_state = &carried->state;
      control.resume_boundary = carried->boundary;
    }
    control.on_boundary = [&](core::RunBoundary boundary, int iterations) {
      stopped = true;
      saved.state = engine.save_state();
      saved.boundary = boundary;
      saved.iterations_done = iterations;
      return false;  // one boundary per leg, like --stop-after 1
    };
    const core::RunOutcome outcome = engine.run_controlled(control);
    if (outcome.completed()) {
      final_result = *outcome.result;
      break;
    }
    ASSERT_TRUE(stopped);
    // Through the real artifact: write, read back, verify identity.
    core::Checkpoint ckpt;
    ckpt.meta = meta;
    ckpt.boundary = saved.boundary;
    ckpt.iterations_done = saved.iterations_done;
    ckpt.engine_state = saved.state;
    core::write_checkpoint(path, ckpt);
    const core::Checkpoint restored = core::read_checkpoint(path);
    ASSERT_NO_THROW(core::verify_checkpoint_meta(meta, restored.meta));
    carried = SavedState{restored.engine_state, restored.boundary,
                         restored.iterations_done};
  }
  fs::remove_all(dir);

  ASSERT_GE(legs, 3) << "chain never actually paused";
  EXPECT_EQ(serialize(*final_result), serialize(reference));
  EXPECT_EQ(final_result->stats, reference.stats);
  EXPECT_EQ(final_result->final_mappings, reference.final_mappings);
}

// Guard rails that need an engine but not scale: small experiment only.
using CheckpointResumeGuardTest = CheckpointResumeTest;

TEST_F(CheckpointResumeGuardTest, ResumeRequiresSnapshotCaptureOff) {
  const eval::Experiment& exp = experiment(false);
  core::Options options;
  options.threads = 1;
  const std::optional<SavedState> saved = run_and_stop_at(exp, options, 1);
  ASSERT_TRUE(saved.has_value());
  core::Options with_snapshots = options;
  with_snapshots.capture_snapshots = true;
  core::Engine engine = make_engine(exp, with_snapshots);
  core::RunControl control;
  control.resume_state = &saved->state;
  control.resume_boundary = saved->boundary;
  EXPECT_THROW((void)engine.run_controlled(control), Error);
}

TEST_F(CheckpointResumeGuardTest, RestoreRejectsTruncatedOrPaddedBlobs) {
  const eval::Experiment& exp = experiment(false);
  core::Options options;
  options.threads = 1;
  const std::optional<SavedState> saved = run_and_stop_at(exp, options, 1);
  ASSERT_TRUE(saved.has_value());

  const auto resume_with = [&](const std::string& blob) {
    core::Engine engine = make_engine(exp, options);
    core::RunControl control;
    control.resume_state = &blob;
    control.resume_boundary = saved->boundary;
    return engine.run_controlled(control);
  };
  // A sane blob resumes; the mangled variants must be rejected, not
  // reinterpreted.
  EXPECT_TRUE(resume_with(saved->state).completed());
  EXPECT_THROW((void)resume_with(saved->state.substr(
                   0, saved->state.size() / 2)),
               core::CheckpointError);
  EXPECT_THROW((void)resume_with(saved->state + "xx"),
               core::CheckpointError);
  EXPECT_THROW((void)resume_with(std::string()), core::CheckpointError);
}

INSTANTIATE_TEST_SUITE_P(
    Scales, CheckpointResumeTest, ::testing::Values(false, true),
    [](const ::testing::TestParamInfo<bool>& param_info) {
      return param_info.param ? "Standard" : "Small";
    });

}  // namespace
}  // namespace mapit
