// Parser robustness sweep: every text reader in the library must either
// parse or throw mapit::ParseError on arbitrary byte salad — never crash,
// never accept garbage silently into an inconsistent state.
#include <gtest/gtest.h>

#include <random>
#include <sstream>
#include <string>

#include "asdata/as2org.h"
#include "asdata/ixp.h"
#include "asdata/relationships.h"
#include "bgp/rib.h"
#include "core/result_io.h"
#include "net/error.h"
#include "topo/truth_io.h"
#include "trace/trace_io.h"

namespace mapit {
namespace {

std::string random_line(std::mt19937_64& rng) {
  // A mix of plausible separators/digits and raw noise.
  static const std::string alphabet =
      "0123456789.|/@*abcxyz -#\t";
  std::uniform_int_distribution<std::size_t> length(0, 40);
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::string line;
  const std::size_t n = length(rng);
  for (std::size_t i = 0; i < n; ++i) line.push_back(alphabet[pick(rng)]);
  return line;
}

class ParserRobustnessTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  std::string garbage() {
    std::mt19937_64 rng(GetParam());
    std::string blob;
    for (int i = 0; i < 60; ++i) {
      blob += random_line(rng);
      blob.push_back('\n');
    }
    return blob;
  }
};

template <typename Fn>
void expect_parse_or_throw(Fn&& parse, const std::string& input) {
  std::istringstream stream(input);
  try {
    parse(stream);
  } catch (const Error&) {
    // fine: rejected with a diagnostic (ParseError, or InvariantError when
    // a syntactically valid record violates a semantic precondition such
    // as ASN 0)
  }
  // anything else (segfault, std::bad_alloc, silent UB) fails the test
}

TEST_P(ParserRobustnessTest, TraceCorpusReader) {
  expect_parse_or_throw(
      [](std::istream& in) { (void)trace::read_corpus(in); }, garbage());
}

TEST_P(ParserRobustnessTest, RibReader) {
  expect_parse_or_throw([](std::istream& in) { (void)bgp::Rib::read(in); },
                        garbage());
}

TEST_P(ParserRobustnessTest, RelationshipsReader) {
  expect_parse_or_throw(
      [](std::istream& in) { (void)asdata::AsRelationships::read(in); },
      garbage());
}

TEST_P(ParserRobustnessTest, As2OrgReader) {
  expect_parse_or_throw(
      [](std::istream& in) { (void)asdata::As2Org::read(in); }, garbage());
}

TEST_P(ParserRobustnessTest, IxpReader) {
  expect_parse_or_throw(
      [](std::istream& in) { (void)asdata::IxpRegistry::read(in); },
      garbage());
}

TEST_P(ParserRobustnessTest, InferenceReader) {
  expect_parse_or_throw(
      [](std::istream& in) { (void)core::read_inferences(in); }, garbage());
}

TEST_P(ParserRobustnessTest, TruthReader) {
  expect_parse_or_throw(
      [](std::istream& in) { (void)topo::read_true_links(in); }, garbage());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserRobustnessTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

}  // namespace
}  // namespace mapit
