// Dense incremental engine equivalence: the dirty-set incremental recount
// (Options::incremental_recount, the default) must be observationally
// indistinguishable from full per-pass sweeps. A half is only skipped when
// none of its neighbours' frozen mappings changed, in which case its
// majority count — a pure function of the frozen view and its own base
// mapping — is unchanged, so skipping cannot alter any decision. This test
// pins that argument empirically: byte-identical serialized inference
// output and equal engine stats across both experiment scales, the f
// operating points evaluated in the paper (§5.3), and both remove rules.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/result_io.h"
#include "eval/experiment.h"
#include "graph/interface_graph.h"
#include "trace/sanitize.h"
#include "trace/trace_io.h"

namespace mapit {
namespace {

std::string serialize(const core::Result& result) {
  std::ostringstream out;
  core::write_inferences(out, result.inferences);
  core::write_inferences(out, result.uncertain);
  return out.str();
}

/// Parameter: true = standard scale, false = small scale.
class EngineEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  static const eval::Experiment& experiment(bool standard_scale) {
    static const auto standard =
        eval::Experiment::build(eval::ExperimentConfig::standard());
    static const auto small =
        eval::Experiment::build(eval::ExperimentConfig::small());
    return standard_scale ? *standard : *small;
  }
};

TEST_P(EngineEquivalenceTest, IncrementalMatchesFullSweep) {
  const eval::Experiment& exp = experiment(GetParam());
  for (double f : {0.5, 0.75, 1.0}) {
    for (core::RemoveRule rule :
         {core::RemoveRule::kMajority, core::RemoveRule::kAddRule}) {
      core::Options incremental;
      incremental.f = f;
      incremental.remove_rule = rule;
      incremental.incremental_recount = true;
      core::Options full = incremental;
      full.incremental_recount = false;

      const core::Result a = exp.run_mapit(incremental);
      const core::Result b = exp.run_mapit(full);

      const std::string label =
          "f=" + std::to_string(f) +
          " rule=" + std::to_string(static_cast<int>(rule));
      EXPECT_EQ(serialize(a), serialize(b)) << label;
      EXPECT_EQ(a.stats, b.stats) << label;
      EXPECT_EQ(a.final_mappings, b.final_mappings) << label;
    }
  }
}

// Parallel sweeps must be invisible: the engine evaluates full-sweep
// decisions against the frozen previous-pass view (paper §4.4.5), so
// workers counting disjoint HalfId ranges and committing proposals in
// ascending-id order reproduce the sequential mutation sequence exactly.
// This pins the claim: byte-identical output for threads ∈ {1, 2, 8},
// both remove rules, at the paper's default operating point.
TEST_P(EngineEquivalenceTest, ThreadCountInvariance) {
  const eval::Experiment& exp = experiment(GetParam());
  for (core::RemoveRule rule :
       {core::RemoveRule::kMajority, core::RemoveRule::kAddRule}) {
    core::Options sequential;
    sequential.remove_rule = rule;
    sequential.threads = 1;
    const core::Result reference = exp.run_mapit(sequential);
    const std::string expected = serialize(reference);

    for (unsigned threads : {2u, 8u}) {
      core::Options parallel_options = sequential;
      parallel_options.threads = threads;
      const core::Result parallel_result = exp.run_mapit(parallel_options);

      const std::string label =
          "threads=" + std::to_string(threads) +
          " rule=" + std::to_string(static_cast<int>(rule));
      EXPECT_EQ(expected, serialize(parallel_result)) << label;
      EXPECT_EQ(reference.stats, parallel_result.stats) << label;
      EXPECT_EQ(reference.final_mappings, parallel_result.final_mappings)
          << label;
    }
  }
}

// Same invariance for the ingestion pipeline: chunked parallel parsing,
// sanitization, and dense-layout graph construction must reproduce the
// sequential result element for element.
TEST_P(EngineEquivalenceTest, ParallelIngestionMatchesSequential) {
  const eval::Experiment& exp = experiment(GetParam());
  std::ostringstream serialized;
  trace::write_corpus(serialized, exp.raw_corpus());
  const std::string text = serialized.str();

  std::istringstream seq_in(text);
  const trace::TraceCorpus seq_corpus = trace::read_corpus(seq_in, 1);
  const auto seq_sanitized = trace::sanitize(seq_corpus, 1);
  const auto all_addresses = seq_corpus.distinct_addresses();
  const graph::InterfaceGraph seq_graph(seq_sanitized.clean, all_addresses, 1);

  for (unsigned threads : {2u, 8u}) {
    const std::string label = "threads=" + std::to_string(threads);

    std::istringstream par_in(text);
    const trace::TraceCorpus par_corpus = trace::read_corpus(par_in, threads);
    std::ostringstream seq_out, par_out;
    trace::write_corpus(seq_out, seq_corpus);
    trace::write_corpus(par_out, par_corpus);
    ASSERT_EQ(seq_out.str(), par_out.str()) << label;

    const auto par_sanitized = trace::sanitize(par_corpus, threads);
    std::ostringstream seq_clean, par_clean;
    trace::write_corpus(seq_clean, seq_sanitized.clean);
    trace::write_corpus(par_clean, par_sanitized.clean);
    EXPECT_EQ(seq_clean.str(), par_clean.str()) << label;
    EXPECT_EQ(seq_sanitized.stats.discarded_traces,
              par_sanitized.stats.discarded_traces) << label;
    EXPECT_EQ(seq_sanitized.stats.removed_ttl0_hops,
              par_sanitized.stats.removed_ttl0_hops) << label;
    EXPECT_EQ(seq_sanitized.stats.retained_addresses,
              par_sanitized.stats.retained_addresses) << label;

    const graph::InterfaceGraph par_graph(par_sanitized.clean, all_addresses,
                                          threads);
    ASSERT_EQ(seq_graph.half_count(), par_graph.half_count()) << label;
    for (graph::HalfId id = 0;
         id < static_cast<graph::HalfId>(seq_graph.half_count()); ++id) {
      ASSERT_EQ(seq_graph.address_at(id), par_graph.address_at(id)) << label;
      ASSERT_EQ(seq_graph.other_side_id(id), par_graph.other_side_id(id))
          << label;
      const auto seq_fwd = seq_graph.neighbor_ids(id);
      const auto par_fwd = par_graph.neighbor_ids(id);
      ASSERT_TRUE(std::equal(seq_fwd.begin(), seq_fwd.end(), par_fwd.begin(),
                             par_fwd.end()))
          << label << " neighbor span mismatch at id " << id;
      const auto seq_rev = seq_graph.reverse_neighbor_ids(id);
      const auto par_rev = par_graph.reverse_neighbor_ids(id);
      ASSERT_TRUE(std::equal(seq_rev.begin(), seq_rev.end(), par_rev.begin(),
                             par_rev.end()))
          << label << " reverse span mismatch at id " << id;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, EngineEquivalenceTest, ::testing::Values(false, true),
    [](const ::testing::TestParamInfo<bool>& param_info) {
      return param_info.param ? "Standard" : "Small";
    });

}  // namespace
}  // namespace mapit
