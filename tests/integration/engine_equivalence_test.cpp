// Dense incremental engine equivalence: the dirty-set incremental recount
// (Options::incremental_recount, the default) must be observationally
// indistinguishable from full per-pass sweeps. A half is only skipped when
// none of its neighbours' frozen mappings changed, in which case its
// majority count — a pure function of the frozen view and its own base
// mapping — is unchanged, so skipping cannot alter any decision. This test
// pins that argument empirically: byte-identical serialized inference
// output and equal engine stats across both experiment scales, the f
// operating points evaluated in the paper (§5.3), and both remove rules.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/engine.h"
#include "core/result_io.h"
#include "eval/experiment.h"

namespace mapit {
namespace {

std::string serialize(const core::Result& result) {
  std::ostringstream out;
  core::write_inferences(out, result.inferences);
  core::write_inferences(out, result.uncertain);
  return out.str();
}

/// Parameter: true = standard scale, false = small scale.
class EngineEquivalenceTest : public ::testing::TestWithParam<bool> {
 protected:
  static const eval::Experiment& experiment(bool standard_scale) {
    static const auto standard =
        eval::Experiment::build(eval::ExperimentConfig::standard());
    static const auto small =
        eval::Experiment::build(eval::ExperimentConfig::small());
    return standard_scale ? *standard : *small;
  }
};

TEST_P(EngineEquivalenceTest, IncrementalMatchesFullSweep) {
  const eval::Experiment& exp = experiment(GetParam());
  for (double f : {0.5, 0.75, 1.0}) {
    for (core::RemoveRule rule :
         {core::RemoveRule::kMajority, core::RemoveRule::kAddRule}) {
      core::Options incremental;
      incremental.f = f;
      incremental.remove_rule = rule;
      incremental.incremental_recount = true;
      core::Options full = incremental;
      full.incremental_recount = false;

      const core::Result a = exp.run_mapit(incremental);
      const core::Result b = exp.run_mapit(full);

      const std::string label =
          "f=" + std::to_string(f) +
          " rule=" + std::to_string(static_cast<int>(rule));
      EXPECT_EQ(serialize(a), serialize(b)) << label;
      EXPECT_EQ(a.stats, b.stats) << label;
      EXPECT_EQ(a.final_mappings, b.final_mappings) << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Scales, EngineEquivalenceTest, ::testing::Values(false, true),
    [](const ::testing::TestParamInfo<bool>& param_info) {
      return param_info.param ? "Standard" : "Small";
    });

}  // namespace
}  // namespace mapit
